//! Offline stand-in for `criterion`: implements the API surface the
//! workspace benches use (`Criterion`, groups, `BenchmarkId`,
//! `Throughput`, `b.iter`, the `criterion_group!`/`criterion_main!`
//! macros) with a simple warm-up + timed-sample measurement loop and
//! plain-text reporting. No statistics, plots, or baselines.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// The benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    sample_size: usize,
}

/// Work-per-iteration annotations (reported alongside the timing).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Items processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark's name, optionally parameterized.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Display, parameter: impl Display) -> BenchmarkId {
        BenchmarkId(format!("{name}/{parameter}"))
    }

    /// Just the parameter (the group supplies the name).
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId(parameter.to_string())
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Passed to the measured closure; [`Bencher::iter`] runs the payload.
#[derive(Debug)]
pub struct Bencher {
    samples: usize,
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Measure `f`: a warm-up call, then `samples` timed iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        std::hint::black_box(f());
        let start = Instant::now();
        for _ in 0..self.samples {
            std::hint::black_box(f());
        }
        self.elapsed = start.elapsed();
        self.iters = self.samples as u64;
    }
}

fn run_one(
    label: &str,
    samples: usize,
    throughput: Option<Throughput>,
    f: impl FnOnce(&mut Bencher),
) {
    let mut b = Bencher {
        samples: samples.max(1),
        elapsed: Duration::ZERO,
        iters: 0,
    };
    f(&mut b);
    let per_iter = if b.iters > 0 {
        b.elapsed / b.iters as u32
    } else {
        Duration::ZERO
    };
    let rate = match throughput {
        Some(Throughput::Elements(n)) if per_iter > Duration::ZERO => {
            format!("  ({:.0} elem/s)", n as f64 / per_iter.as_secs_f64())
        }
        Some(Throughput::Bytes(n)) if per_iter > Duration::ZERO => {
            format!(
                "  ({:.1} MiB/s)",
                n as f64 / per_iter.as_secs_f64() / (1 << 20) as f64
            )
        }
        _ => String::new(),
    };
    println!("bench {label:<50} {per_iter:>12.2?}/iter{rate}");
}

impl Criterion {
    /// Benchmark a closure under `name`.
    pub fn bench_function(&mut self, name: impl Display, f: impl FnOnce(&mut Bencher)) {
        run_one(&name.to_string(), self.effective_samples(), None, f);
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Display) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            sample_size: None,
            throughput: None,
        }
    }

    fn effective_samples(&self) -> usize {
        if self.sample_size == 0 {
            10
        } else {
            self.sample_size
        }
    }
}

/// A group of benchmarks sharing a name prefix and settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Set the timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Annotate following benchmarks with a work rate.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    fn samples(&self) -> usize {
        self.sample_size
            .unwrap_or_else(|| self.criterion.effective_samples())
            // Criterion requires >= 10; we just honor small counts.
            .max(1)
    }

    /// Benchmark a closure under `group/name`.
    pub fn bench_function(&mut self, id: impl Display, f: impl FnOnce(&mut Bencher)) {
        let label = format!("{}/{}", self.name, id);
        run_one(&label, self.samples(), self.throughput, f);
    }

    /// Benchmark a closure over an input under `group/id`.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        f: impl FnOnce(&mut Bencher, &I),
    ) {
        let label = format!("{}/{}", self.name, id.0);
        run_one(&label, self.samples(), self.throughput, |b| f(b, input));
    }

    /// End the group.
    pub fn finish(self) {}
}

/// Bundle benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generate `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
