//! Venue (conference / journal) comparison with abbreviation handling.

use crate::{jaro_winkler, lowercase_into, token_spans, tokenize_lower};

/// Boilerplate words that carry no venue identity.
const BOILERPLATE: &[&str] = &[
    "proceedings",
    "proc",
    "of",
    "the",
    "on",
    "in",
    "international",
    "intl",
    "conference",
    "conf",
    "workshop",
    "symposium",
    "symp",
    "annual",
    "acm",
    "ieee",
    "journal",
    "trans",
    "transactions",
];

/// Visit a venue string's identity tokens — lowercased, with boilerplate,
/// years and ordinals stripped — without materializing a token list. The
/// `&str` handed to `f` points into a buffer that is reused between tokens,
/// so hash or copy it before the next call. [`venue_tokens`] is the
/// collecting wrapper.
pub fn for_each_venue_token(v: &str, mut f: impl FnMut(&str)) {
    let mut buf = String::new();
    for tok in token_spans(v) {
        lowercase_into(tok, &mut buf);
        if BOILERPLATE.contains(&buf.as_str()) {
            continue;
        }
        if buf.chars().all(|c| c.is_ascii_digit()) {
            continue;
        }
        if is_ordinal(&buf) {
            continue;
        }
        f(&buf);
    }
}

/// Normalize a venue string: lowercase tokens, strip boilerplate, years and
/// ordinals (`"Proceedings of the 24th ACM SIGMOD, 2005"` → `["sigmod"]`).
pub fn venue_tokens(v: &str) -> Vec<String> {
    let mut out = Vec::new();
    for_each_venue_token(v, |t| out.push(t.to_owned()));
    out
}

fn is_ordinal(t: &str) -> bool {
    let digits: String = t.chars().take_while(|c| c.is_ascii_digit()).collect();
    if digits.is_empty() {
        return false;
    }
    matches!(&t[digits.len()..], "st" | "nd" | "rd" | "th")
}

/// Whether `abbr` could abbreviate `full`: the initialism of `full`'s
/// identity tokens, the initialism of *all* its non-stopword tokens
/// (conference abbreviations usually keep the "International Conference on"
/// letters: ICMD), or a prefix of a single dominant token.
pub fn is_abbreviation(abbr: &str, full: &str) -> bool {
    let a: String = abbr
        .chars()
        .filter(|c| c.is_alphanumeric())
        .collect::<String>()
        .to_lowercase();
    if a.len() < 2 {
        return false;
    }
    let toks = venue_tokens(full);
    if toks.is_empty() {
        return false;
    }
    let initialism: String = toks.iter().filter_map(|t| t.chars().next()).collect();
    if initialism == a {
        return true;
    }
    // Initialism over all non-stopword tokens, boilerplate included.
    let full_initialism: String = tokenize_lower(full)
        .iter()
        .filter(|t| !matches!(t.as_str(), "of" | "the" | "on" | "and" | "in" | "for"))
        .filter_map(|t| t.chars().next())
        .collect();
    if full_initialism == a {
        return true;
    }
    toks.len() == 1 && toks[0].starts_with(&a) && a.len() >= 3
}

/// Venue similarity in `[0, 1]`: exact normalized match scores 1,
/// abbreviation matches score 0.95, otherwise best token-pair
/// Jaro–Winkler over normalized tokens (so `"SIGMOD Conference"` ~
/// `"Proc. SIGMOD"`).
pub fn venue_similarity(a: &str, b: &str) -> f64 {
    let ta = venue_tokens(a);
    let tb = venue_tokens(b);
    if ta.is_empty() && tb.is_empty() {
        return 1.0;
    }
    if ta.is_empty() || tb.is_empty() {
        return 0.0;
    }
    if ta == tb {
        return 1.0;
    }
    let ja = ta.join(" ");
    let jb = tb.join(" ");
    if ja == jb {
        return 1.0;
    }
    if is_abbreviation(&ja, b) || is_abbreviation(&jb, a) {
        return 0.95;
    }
    // Best alignment of tokens, averaged over one side; taking the max of
    // both directions keeps the measure symmetric while letting a short
    // venue string match a longer one.
    let dir = |xs: &[String], ys: &[String]| -> f64 {
        let sum: f64 = xs
            .iter()
            .map(|x| {
                ys.iter()
                    .map(|y| jaro_winkler(x, y))
                    .fold(0.0_f64, f64::max)
            })
            .sum();
        sum / xs.len() as f64
    };
    dir(&ta, &tb).max(dir(&tb, &ta)) * 0.9 // cap below abbreviation confidence
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn normalization_strips_boilerplate() {
        assert_eq!(
            venue_tokens("Proceedings of the 24th ACM SIGMOD Conference, 2005"),
            vec!["sigmod"]
        );
        assert_eq!(
            venue_tokens("IEEE Transactions on Knowledge and Data Engineering"),
            vec!["knowledge", "and", "data", "engineering"]
        );
    }

    #[test]
    fn abbreviation_detection() {
        assert!(is_abbreviation("VLDB", "Very Large Data Bases"));
        assert!(is_abbreviation("SIG", "SIGMOD"));
        assert!(!is_abbreviation("X", "Very Large Data Bases"));
        assert!(!is_abbreviation("VLDB", "SIGMOD"));
    }

    #[test]
    fn similarity_tiers() {
        assert_eq!(
            venue_similarity("Proc. of SIGMOD 2005", "ACM SIGMOD Conference"),
            1.0
        );
        assert_eq!(venue_similarity("VLDB", "Very Large Data Bases"), 0.95);
        assert!(venue_similarity("SIGMOD", "SIGMOD Record") > 0.5);
        assert!(venue_similarity("SIGMOD", "CIDR") < 0.6);
        assert_eq!(venue_similarity("", ""), 1.0);
        assert_eq!(venue_similarity("SIGMOD", "2005"), 0.0);
    }

    proptest! {
        #[test]
        fn bounds_and_symmetry(a in "[A-Za-z0-9 ]{0,30}", b in "[A-Za-z0-9 ]{0,30}") {
            let s = venue_similarity(&a, &b);
            prop_assert!((0.0..=1.0).contains(&s));
            prop_assert!((s - venue_similarity(&b, &a)).abs() < 1e-9);
        }

        #[test]
        fn identity(a in "[A-Za-z]{2,10}( [A-Za-z]{2,10}){0,3}") {
            let s = venue_similarity(&a, &a);
            // Either all tokens are boilerplate (both sides empty -> 1.0) or exact match.
            prop_assert_eq!(s, 1.0);
        }
    }
}
