/root/repo/target/debug/deps/integration_flow-c4ff39e464ab5ef4.d: tests/integration_flow.rs tests/common/mod.rs Cargo.toml

/root/repo/target/debug/deps/libintegration_flow-c4ff39e464ab5ef4.rmeta: tests/integration_flow.rs tests/common/mod.rs Cargo.toml

tests/integration_flow.rs:
tests/common/mod.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
