/root/repo/target/debug/deps/fault_sweep-5d5f692b81d8225a.d: crates/journal/tests/fault_sweep.rs

/root/repo/target/debug/deps/fault_sweep-5d5f692b81d8225a: crates/journal/tests/fault_sweep.rs

crates/journal/tests/fault_sweep.rs:
