/root/repo/target/release/deps/integrate-671d060348b0dd0b.d: crates/bench/benches/integrate.rs

/root/repo/target/release/deps/integrate-671d060348b0dd0b: crates/bench/benches/integrate.rs

crates/bench/benches/integrate.rs:
