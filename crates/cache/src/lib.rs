#![warn(missing_docs)]

//! Epoch-keyed read cache with single-flight miss coalescing.
//!
//! The serve layer publishes immutable epoch snapshots per tenant, so a
//! read result keyed on `(tenant, epoch, canonicalized request)` can never
//! be stale: a write produces a new epoch and therefore a new key, and the
//! old generation's entries become dead weight rather than a correctness
//! hazard. This crate exploits that invariant:
//!
//! * [`ReadCache`] is a sharded, byte-budgeted LRU over *encoded response
//!   payloads* (the exact frame bytes the server would write), so a hit
//!   skips both evaluation and re-encoding.
//! * **Single-flight coalescing** — concurrent identical misses on one
//!   [`CacheKey`] share a per-key in-flight latch: one caller evaluates,
//!   the rest block on the latch and reuse its payload. A thundering herd
//!   of N readers costs one evaluation.
//! * **Generation invalidation** — [`ReadCache::note_epoch`] records the
//!   newest published epoch per tenant under its own lock; writers never
//!   touch the shard locks. Entries from older epochs are swept lazily, a
//!   few per insert, from the cold end of each shard's LRU order.
//! * **Per-tenant counters** — hits, misses, coalesced waits, evictions
//!   and resident bytes, surfaced through the serving stats path.
//!
//! The cache holds no references into any snapshot: keys are strings and
//! values are `Arc<Vec<u8>>`, so dropping a tenant's entries (on tenant
//! eviction) is a plain map purge.

use std::collections::hash_map::DefaultHasher;
use std::collections::{BTreeMap, HashMap};
use std::hash::{Hash, Hasher};
use std::sync::{Arc, Condvar, Mutex, RwLock};

/// Construction parameters for a [`ReadCache`].
#[derive(Debug, Clone)]
pub struct CacheConfig {
    /// Total byte budget across all shards. Entry sizes are measured
    /// (key + payload + bookkeeping overhead); the budget is divided
    /// evenly into per-shard slices.
    pub budget_bytes: usize,
    /// Number of independently locked shards.
    pub shards: usize,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig {
            budget_bytes: 64 << 20,
            shards: 16,
        }
    }
}

/// What a cached result is keyed on. Epochs are per-tenant event-sequence
/// numbers (durable across tenant eviction), and `request` is the
/// canonical encoding of the request (deterministic field order), so two
/// textually different but semantically identical frames still collide
/// only when they canonicalize identically.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Tenant the result belongs to.
    pub tenant: String,
    /// Epoch of the snapshot the result was computed against.
    pub epoch: u64,
    /// Canonicalized request text.
    pub request: String,
}

/// Cumulative per-tenant cache counters. `resident_bytes` is a gauge (the
/// tenant's currently cached bytes); everything else is monotonic.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TenantCacheStats {
    /// Reads answered from the cache.
    pub hits: u64,
    /// Reads that evaluated against the snapshot (single-flight leaders).
    pub misses: u64,
    /// Reads that waited on another caller's in-flight evaluation.
    pub coalesced: u64,
    /// Entries removed: budget pressure, stale-epoch sweeps, or purges.
    pub evictions: u64,
    /// Bytes currently cached for this tenant.
    pub resident_bytes: u64,
}

impl TenantCacheStats {
    fn accumulate(&mut self, other: &TenantCacheStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.coalesced += other.coalesced;
        self.evictions += other.evictions;
        self.resident_bytes += other.resident_bytes;
    }
}

/// Fixed per-entry bookkeeping charge (map nodes, ticks, Arc headers) on
/// top of the measured key and payload bytes.
const ENTRY_OVERHEAD: usize = 160;

/// How many cold-end entries an insert inspects for stale epochs.
const STALE_SWEEP_PER_INSERT: usize = 16;

fn entry_size(key: &CacheKey, payload: &[u8]) -> usize {
    key.tenant.len() + key.request.len() + payload.len() + ENTRY_OVERHEAD
}

enum FlightState {
    Pending,
    Done(Arc<Vec<u8>>),
    /// The leader unwound (panicked) without producing a payload; waiters
    /// go back to the shard and elect a new leader.
    Abandoned,
}

struct Flight {
    state: Mutex<FlightState>,
    cv: Condvar,
}

impl Flight {
    fn new() -> Flight {
        Flight {
            state: Mutex::new(FlightState::Pending),
            cv: Condvar::new(),
        }
    }

    fn wait(&self) -> Option<Arc<Vec<u8>>> {
        let mut state = self.state.lock().unwrap();
        loop {
            match &*state {
                FlightState::Pending => state = self.cv.wait(state).unwrap(),
                FlightState::Done(payload) => return Some(Arc::clone(payload)),
                FlightState::Abandoned => return None,
            }
        }
    }

    fn finish(&self, result: Option<Arc<Vec<u8>>>) {
        *self.state.lock().unwrap() = match result {
            Some(payload) => FlightState::Done(payload),
            None => FlightState::Abandoned,
        };
        self.cv.notify_all();
    }
}

struct Entry {
    payload: Arc<Vec<u8>>,
    size: usize,
    tick: u64,
}

#[derive(Default)]
struct Shard {
    entries: HashMap<Arc<CacheKey>, Entry>,
    /// LRU order: ascending tick = coldest first. Ticks are unique within
    /// a shard, so this doubles as the eviction queue.
    order: BTreeMap<u64, Arc<CacheKey>>,
    inflight: HashMap<CacheKey, Arc<Flight>>,
    tenants: HashMap<String, TenantCacheStats>,
    bytes: usize,
    tick: u64,
}

impl Shard {
    fn tenant(&mut self, name: &str) -> &mut TenantCacheStats {
        self.tenants.entry(name.to_string()).or_default()
    }

    fn next_tick(&mut self) -> u64 {
        self.tick += 1;
        self.tick
    }

    /// Remove the entry at `tick` (if still present), charging an eviction
    /// to its tenant. Returns the freed bytes.
    fn evict_tick(&mut self, tick: u64) -> usize {
        let Some(key) = self.order.remove(&tick) else {
            return 0;
        };
        let Some(entry) = self.entries.remove(&*key) else {
            return 0;
        };
        self.bytes -= entry.size;
        let stats = self.tenant(&key.tenant);
        stats.evictions += 1;
        stats.resident_bytes -= entry.size as u64;
        entry.size
    }
}

enum Role {
    Hit(Arc<Vec<u8>>),
    Lead(Arc<Flight>),
    Follow(Arc<Flight>),
}

/// Removes the in-flight latch and wakes waiters with `Abandoned` if the
/// leader's evaluation unwinds instead of completing.
struct AbandonGuard<'a> {
    cache: &'a ReadCache,
    idx: usize,
    key: &'a CacheKey,
    flight: &'a Flight,
    armed: bool,
}

impl Drop for AbandonGuard<'_> {
    fn drop(&mut self) {
        if self.armed {
            let mut shard = self.cache.shards[self.idx].lock().unwrap();
            shard.inflight.remove(self.key);
            drop(shard);
            self.flight.finish(None);
        }
    }
}

/// A process-wide, sharded, epoch-keyed read cache. One instance serves
/// every tenant in a pool; per-tenant accounting lives inside the shards.
pub struct ReadCache {
    shards: Vec<Mutex<Shard>>,
    /// Per-shard byte budget. Entries larger than a slice are never
    /// cached (they still coalesce through the in-flight latch).
    slice: usize,
    budget: usize,
    /// Newest published epoch per tenant. Writers only touch this lock,
    /// so publication never contends with the shard LRUs.
    live: RwLock<HashMap<String, u64>>,
}

impl ReadCache {
    /// Build a cache with `config.shards` independent LRU shards.
    pub fn new(config: CacheConfig) -> ReadCache {
        let shards = config.shards.max(1);
        ReadCache {
            shards: (0..shards).map(|_| Mutex::new(Shard::default())).collect(),
            slice: config.budget_bytes / shards,
            budget: config.budget_bytes,
            live: RwLock::new(HashMap::new()),
        }
    }

    /// Total configured byte budget.
    pub fn budget_bytes(&self) -> usize {
        self.budget
    }

    fn shard_of(&self, key: &CacheKey) -> usize {
        let mut hasher = DefaultHasher::new();
        key.hash(&mut hasher);
        (hasher.finish() % self.shards.len() as u64) as usize
    }

    /// Return the cached payload for `key`, or evaluate `compute` exactly
    /// once across all concurrent callers of the same key and cache its
    /// result. Panics in `compute` propagate to the leader; waiters then
    /// re-elect a leader among themselves.
    pub fn get_or_compute<F>(&self, key: CacheKey, compute: F) -> Arc<Vec<u8>>
    where
        F: FnOnce() -> Arc<Vec<u8>>,
    {
        let idx = self.shard_of(&key);
        let mut compute = Some(compute);
        loop {
            match self.lookup(idx, &key) {
                Role::Hit(payload) => return payload,
                Role::Follow(flight) => match flight.wait() {
                    Some(payload) => {
                        let mut shard = self.shards[idx].lock().unwrap();
                        shard.tenant(&key.tenant).coalesced += 1;
                        return payload;
                    }
                    // The leader unwound; go around and elect a new one.
                    None => continue,
                },
                Role::Lead(flight) => {
                    let mut guard = AbandonGuard {
                        cache: self,
                        idx,
                        key: &key,
                        flight: &flight,
                        armed: true,
                    };
                    let payload = (compute.take().expect("a caller leads at most once"))();
                    guard.armed = false;
                    drop(guard);
                    self.complete(idx, &key, &payload);
                    flight.finish(Some(Arc::clone(&payload)));
                    return payload;
                }
            }
        }
    }

    fn lookup(&self, idx: usize, key: &CacheKey) -> Role {
        let mut shard = self.shards[idx].lock().unwrap();
        if let Some((arc, entry)) = shard.entries.get_key_value(key) {
            let arc = Arc::clone(arc);
            let payload = Arc::clone(&entry.payload);
            let old_tick = entry.tick;
            let tick = shard.next_tick();
            shard.order.remove(&old_tick);
            shard.order.insert(tick, arc);
            shard.entries.get_mut(key).unwrap().tick = tick;
            shard.tenant(&key.tenant).hits += 1;
            return Role::Hit(payload);
        }
        if let Some(flight) = shard.inflight.get(key) {
            return Role::Follow(Arc::clone(flight));
        }
        let flight = Arc::new(Flight::new());
        shard.inflight.insert(key.clone(), Arc::clone(&flight));
        shard.tenant(&key.tenant).misses += 1;
        Role::Lead(flight)
    }

    /// Leader post-processing: drop the latch, insert the entry if it fits
    /// the shard slice, sweep a few stale-epoch entries, and enforce the
    /// byte budget from the cold end.
    fn complete(&self, idx: usize, key: &CacheKey, payload: &Arc<Vec<u8>>) {
        let mut shard = self.shards[idx].lock().unwrap();
        shard.inflight.remove(key);
        let size = entry_size(key, payload);
        if size > self.slice {
            return;
        }
        let arc = Arc::new(key.clone());
        let tick = shard.next_tick();
        shard.order.insert(tick, Arc::clone(&arc));
        shard.entries.insert(
            arc,
            Entry {
                payload: Arc::clone(payload),
                size,
                tick,
            },
        );
        shard.bytes += size;
        let stats = shard.tenant(&key.tenant);
        stats.resident_bytes += size as u64;
        self.sweep_stale(&mut shard);
        while shard.bytes > self.slice {
            let coldest = *shard
                .order
                .keys()
                .next()
                .expect("over budget implies entries");
            shard.evict_tick(coldest);
        }
    }

    /// Inspect up to [`STALE_SWEEP_PER_INSERT`] cold-end entries and drop
    /// those whose epoch predates their tenant's newest published epoch.
    /// Lock order: shard, then `live` (readers); `note_epoch` takes only
    /// `live`, so writers never wait on a shard.
    fn sweep_stale(&self, shard: &mut Shard) {
        let live = self.live.read().unwrap();
        let stale: Vec<u64> = shard
            .order
            .iter()
            .take(STALE_SWEEP_PER_INSERT)
            .filter(|(_, key)| live.get(&key.tenant).is_some_and(|&e| key.epoch < e))
            .map(|(&tick, _)| tick)
            .collect();
        drop(live);
        for tick in stale {
            shard.evict_tick(tick);
        }
    }

    /// Record that `tenant` published `epoch`. Entries keyed on older
    /// epochs become sweepable dead weight; nothing blocks here beyond the
    /// epoch-map write lock.
    pub fn note_epoch(&self, tenant: &str, epoch: u64) {
        let mut live = self.live.write().unwrap();
        match live.get_mut(tenant) {
            Some(newest) => *newest = (*newest).max(epoch),
            None => {
                live.insert(tenant.to_string(), epoch);
            }
        }
    }

    /// Drop every cached entry belonging to `tenant` (called when the
    /// tenant itself is evicted from the pool). Counters stay cumulative;
    /// the purged entries are charged as evictions and the tenant's
    /// resident gauge returns to zero. Returns the number of entries
    /// dropped.
    pub fn purge_tenant(&self, tenant: &str) -> usize {
        let mut dropped = 0;
        for shard in &self.shards {
            let mut shard = shard.lock().unwrap();
            let victims: Vec<u64> = shard
                .entries
                .iter()
                .filter(|(key, _)| key.tenant == tenant)
                .map(|(_, entry)| entry.tick)
                .collect();
            for tick in victims {
                if shard.evict_tick(tick) > 0 {
                    dropped += 1;
                }
            }
        }
        self.live.write().unwrap().remove(tenant);
        dropped
    }

    /// Cumulative counters for one tenant, summed across shards.
    pub fn stats_for(&self, tenant: &str) -> TenantCacheStats {
        let mut total = TenantCacheStats::default();
        for shard in &self.shards {
            let shard = shard.lock().unwrap();
            if let Some(stats) = shard.tenants.get(tenant) {
                total.accumulate(stats);
            }
        }
        total
    }

    /// Counters summed over every tenant.
    pub fn totals(&self) -> TenantCacheStats {
        let mut total = TenantCacheStats::default();
        for shard in &self.shards {
            let shard = shard.lock().unwrap();
            for stats in shard.tenants.values() {
                total.accumulate(stats);
            }
        }
        total
    }

    /// Bytes currently held across all shards.
    pub fn resident_bytes(&self) -> usize {
        self.shards.iter().map(|s| s.lock().unwrap().bytes).sum()
    }

    /// Number of cached entries across all shards.
    pub fn entry_count(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().unwrap().entries.len())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Barrier;
    use std::thread;

    fn key(tenant: &str, epoch: u64, request: &str) -> CacheKey {
        CacheKey {
            tenant: tenant.to_string(),
            epoch,
            request: request.to_string(),
        }
    }

    fn payload(len: usize) -> Arc<Vec<u8>> {
        Arc::new(vec![0xAB; len])
    }

    fn one_shard(budget: usize) -> ReadCache {
        ReadCache::new(CacheConfig {
            budget_bytes: budget,
            shards: 1,
        })
    }

    #[test]
    fn hit_returns_the_same_payload_and_counts() {
        let cache = one_shard(1 << 20);
        let first = cache.get_or_compute(key("t", 1, "q"), || payload(10));
        let second = cache.get_or_compute(key("t", 1, "q"), || unreachable!("must hit"));
        assert!(Arc::ptr_eq(&first, &second));
        let stats = cache.stats_for("t");
        assert_eq!((stats.misses, stats.hits), (1, 1));
        assert_eq!(stats.resident_bytes as usize, cache.resident_bytes());
    }

    #[test]
    fn byte_budget_evicts_the_coldest_entry() {
        // Budget fits exactly two entries; touching "a" makes "b" coldest.
        let size = entry_size(&key("t", 1, "a"), &payload(100));
        let cache = one_shard(2 * size);
        cache.get_or_compute(key("t", 1, "a"), || payload(100));
        cache.get_or_compute(key("t", 1, "b"), || payload(100));
        cache.get_or_compute(key("t", 1, "a"), || unreachable!("hot entry"));
        cache.get_or_compute(key("t", 1, "c"), || payload(100));
        assert_eq!(cache.entry_count(), 2);
        cache.get_or_compute(key("t", 1, "a"), || unreachable!("survivor"));
        cache.get_or_compute(key("t", 1, "b"), || payload(100)); // evicted: recomputes
        let stats = cache.stats_for("t");
        assert_eq!(stats.evictions, 2, "{stats:?}");
    }

    #[test]
    fn oversized_entries_are_not_cached_but_still_served() {
        let cache = one_shard(64); // slice smaller than any real entry
        let first = cache.get_or_compute(key("t", 1, "big"), || payload(1000));
        assert_eq!(first.len(), 1000);
        assert_eq!(cache.entry_count(), 0);
        assert_eq!(cache.resident_bytes(), 0);
    }

    #[test]
    fn epoch_publication_sweeps_stale_entries() {
        let cache = one_shard(1 << 20);
        cache.get_or_compute(key("t", 1, "a"), || payload(10));
        cache.get_or_compute(key("t", 1, "b"), || payload(10));
        cache.note_epoch("t", 2);
        assert_eq!(cache.entry_count(), 2, "sweep is lazy");
        // The next insert sweeps the old generation from the cold end.
        cache.get_or_compute(key("t", 2, "a"), || payload(10));
        assert_eq!(cache.entry_count(), 1);
        let stats = cache.stats_for("t");
        assert_eq!(stats.evictions, 2);
        // Old-epoch keys still answer if recomputed (never wrong, just cold).
        let again = cache.get_or_compute(key("t", 1, "a"), || payload(10));
        assert_eq!(again.len(), 10);
    }

    #[test]
    fn purge_drops_one_tenant_and_spares_the_rest() {
        let cache = ReadCache::new(CacheConfig {
            budget_bytes: 1 << 20,
            shards: 4,
        });
        for i in 0..16 {
            cache.get_or_compute(key("gone", 1, &format!("q{i}")), || payload(10));
            cache.get_or_compute(key("stays", 1, &format!("q{i}")), || payload(10));
        }
        assert_eq!(cache.purge_tenant("gone"), 16);
        assert_eq!(cache.entry_count(), 16);
        assert_eq!(cache.stats_for("gone").resident_bytes, 0);
        assert_eq!(cache.stats_for("gone").evictions, 16);
        assert!(cache.stats_for("stays").resident_bytes > 0);
        cache.get_or_compute(key("stays", 1, "q0"), || unreachable!("spared"));
    }

    #[test]
    fn identical_miss_herd_coalesces_to_one_evaluation() {
        const HERD: usize = 8;
        let cache = Arc::new(one_shard(1 << 20));
        let evaluations = Arc::new(AtomicUsize::new(0));
        let barrier = Arc::new(Barrier::new(HERD));
        let workers: Vec<_> = (0..HERD)
            .map(|_| {
                let (cache, evaluations, barrier) = (
                    Arc::clone(&cache),
                    Arc::clone(&evaluations),
                    Arc::clone(&barrier),
                );
                thread::spawn(move || {
                    barrier.wait();
                    cache.get_or_compute(key("t", 7, "herd"), || {
                        evaluations.fetch_add(1, Ordering::SeqCst);
                        // Hold the flight open long enough that the rest of
                        // the herd arrives while it is pending.
                        thread::sleep(std::time::Duration::from_millis(50));
                        payload(10)
                    })
                })
            })
            .collect();
        for worker in workers {
            assert_eq!(worker.join().unwrap().len(), 10);
        }
        assert_eq!(evaluations.load(Ordering::SeqCst), 1);
        let stats = cache.stats_for("t");
        assert_eq!(stats.misses, 1, "{stats:?}");
        assert_eq!(stats.hits + stats.coalesced, (HERD - 1) as u64, "{stats:?}");
    }

    #[test]
    fn abandoned_leader_lets_a_waiter_take_over() {
        let cache = Arc::new(one_shard(1 << 20));
        let barrier = Arc::new(Barrier::new(2));
        let leader = {
            let (cache, barrier) = (Arc::clone(&cache), Arc::clone(&barrier));
            thread::spawn(move || {
                let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    cache.get_or_compute(key("t", 1, "q"), || {
                        barrier.wait(); // follower is now queued behind us
                        std::thread::sleep(std::time::Duration::from_millis(30));
                        panic!("evaluation failed");
                    })
                }));
                assert!(result.is_err());
            })
        };
        let follower = {
            let cache = Arc::clone(&cache);
            thread::spawn(move || {
                barrier.wait();
                cache.get_or_compute(key("t", 1, "q"), || payload(10))
            })
        };
        leader.join().unwrap();
        assert_eq!(follower.join().unwrap().len(), 10);
        let stats = cache.stats_for("t");
        assert_eq!(stats.misses, 2, "retry elects a second leader: {stats:?}");
    }
}
