/root/repo/target/debug/deps/smoke-47ed207a809ad201.d: crates/serve/tests/smoke.rs

/root/repo/target/debug/deps/libsmoke-47ed207a809ad201.rmeta: crates/serve/tests/smoke.rs

crates/serve/tests/smoke.rs:
