#![warn(missing_docs)]

//! On-the-fly integration of external sources.
//!
//! The SEMEX demo's third scenario: the user receives a new data source —
//! a spreadsheet of workshop participants, an exported contact list — and
//! wants it folded into their personal information space *without writing a
//! schema mapping by hand*. This crate provides:
//!
//! * [`SchemaMatcher`] — matches the columns of a tabular source against a
//!   domain-model class's attributes, combining **name-based** similarity
//!   (column header vs. attribute name, with a synonym table) and
//!   **instance-based** signals (do the values *look like* e-mails, years,
//!   dates, person names? do they overlap with values already in the
//!   store?);
//! * [`import`] — applies a [`Mapping`] to the table, creating references
//!   with `External` provenance and running reference reconciliation so the
//!   imported rows merge into existing objects where they denote the same
//!   entities. The returned [`ImportReport`] says how many rows landed on
//!   existing objects vs. created new ones — the demo's headline number.

mod matcher;

pub use matcher::{ColumnProfile, Mapping, MatchedColumn, SchemaMatcher};

use semex_extract::csv::Table;
use semex_model::Value;
use semex_recon::{reconcile_incremental, ReconConfig, Variant};
use semex_store::{SourceId, SourceInfo, SourceKind, Store, StoreError};

/// Outcome of importing an external table.
#[derive(Debug, Clone, PartialEq)]
pub struct ImportReport {
    /// The provenance source registered for this import.
    pub source: SourceId,
    /// Data rows consumed.
    pub rows: usize,
    /// References created (one per non-empty row).
    pub created: usize,
    /// How many of the created references were merged into objects that
    /// existed *before* the import (reconciliation hits).
    pub merged_into_existing: usize,
    /// Rows skipped because every mapped cell was empty.
    pub skipped: usize,
}

/// Import a table into the store under the given mapping, then reconcile.
pub fn import(
    store: &mut Store,
    name: &str,
    table: &Table,
    mapping: &Mapping,
    recon_cfg: &ReconConfig,
) -> Result<ImportReport, StoreError> {
    let source = store.register_source(SourceInfo::new(name, SourceKind::External));
    let preexisting = store.slot_count() as u64;

    let mut created_ids = Vec::new();
    let mut skipped = 0usize;
    for row in &table.rows {
        let mut values: Vec<(semex_model::AttrId, Value)> = Vec::new();
        for col in &mapping.columns {
            let raw = row[col.column].trim();
            if raw.is_empty() {
                continue;
            }
            let kind = store.model().attr_def(col.attr).kind;
            let value = match kind {
                semex_model::ValueKind::Str => Some(Value::from(raw)),
                semex_model::ValueKind::Int => raw.parse::<i64>().ok().map(Value::Int),
                semex_model::ValueKind::Float => raw.parse::<f64>().ok().map(Value::Float),
                semex_model::ValueKind::Date => semex_extract::parse_date(raw).map(Value::Date),
                semex_model::ValueKind::Bool => raw.parse::<bool>().ok().map(Value::Bool),
            };
            if let Some(v) = value {
                values.push((col.attr, v));
            }
        }
        if values.is_empty() {
            skipped += 1;
            continue;
        }
        let obj = store.add_object(mapping.class);
        for (a, v) in values {
            store.add_attr(obj, a, v)?;
        }
        store.add_source_to(obj, source);
        created_ids.push(obj);
    }

    // Fold the new references into the existing space. Incremental: only
    // pairs touching the imported rows are considered.
    reconcile_incremental(store, &created_ids, Variant::Full, recon_cfg);

    let merged_into_existing = created_ids
        .iter()
        .filter(|&&o| store.resolve(o).0 < preexisting)
        .count();

    Ok(ImportReport {
        source,
        rows: table.rows.len(),
        created: created_ids.len(),
        merged_into_existing,
        skipped,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use semex_extract::csv::parse_csv;
    use semex_extract::{vcard::extract_vcards, ExtractContext};
    use semex_model::names::{attr, class};

    fn store_with_contacts() -> Store {
        let mut st = Store::with_builtin_model();
        let src = st.register_source(SourceInfo::new("c", SourceKind::Contacts));
        let mut ctx = ExtractContext::new(&mut st, src);
        extract_vcards(
            "BEGIN:VCARD\nFN:Ann Walker\nEMAIL:ann@x.edu\nEND:VCARD\n\
             BEGIN:VCARD\nFN:Bob Fisher\nEMAIL:bob@y.org\nEND:VCARD\n",
            &mut ctx,
        )
        .unwrap();
        st
    }

    #[test]
    fn import_merges_known_people() {
        let mut st = store_with_contacts();
        let table = parse_csv(
            "full name,e-mail,phone\n\
             Ann Walker,ann@x.edu,555-0101\n\
             Carol Reyes,carol@z.net,555-0102\n\
             ,,\n",
        )
        .unwrap();
        let matcher = SchemaMatcher::new(&st);
        let mapping = matcher.match_table(&table).expect("a usable mapping");
        assert_eq!(
            st.model().class_def(mapping.class).name,
            class::PERSON,
            "people-shaped table maps to Person"
        );

        let report = import(
            &mut st,
            "attendees.csv",
            &table,
            &mapping,
            &ReconConfig::sequential(),
        )
        .unwrap();
        // The all-blank third line is dropped by the CSV parser itself.
        assert_eq!(report.rows, 2);
        assert_eq!(report.created, 2);
        assert_eq!(report.skipped, 0);
        assert_eq!(report.merged_into_existing, 1, "Ann merges, Carol is new");

        // Ann's object pooled the phone number from the import.
        let c_person = st.model().class(class::PERSON).unwrap();
        let a_phone = st.model().attr(attr::PHONE).unwrap();
        let ann = st
            .objects_of_class(c_person)
            .find(|&p| st.label(p) == "Ann Walker")
            .unwrap();
        assert!(st.object(ann).has(a_phone));
        assert_eq!(st.class_count(c_person), 3, "Ann, Bob, Carol");
    }

    #[test]
    fn import_respects_value_kinds() {
        let mut st = store_with_contacts();
        let c_pub = st.model().class(class::PUBLICATION).unwrap();
        let a_title = st.model().attr(attr::TITLE).unwrap();
        let a_year = st.model().attr(attr::YEAR).unwrap();
        let table = parse_csv("title,year\nSome Paper,2004\nBad Year,not-a-year\n").unwrap();
        let mapping = Mapping {
            class: c_pub,
            columns: vec![
                MatchedColumn {
                    column: 0,
                    attr: a_title,
                    confidence: 1.0,
                },
                MatchedColumn {
                    column: 1,
                    attr: a_year,
                    confidence: 1.0,
                },
            ],
            score: 1.0,
        };
        let report = import(
            &mut st,
            "pubs.csv",
            &table,
            &mapping,
            &ReconConfig::sequential(),
        )
        .unwrap();
        assert_eq!(report.created, 2);
        let with_year = st
            .objects_of_class(c_pub)
            .filter(|&p| st.object(p).has(a_year))
            .count();
        assert_eq!(with_year, 1, "unparseable year dropped, row kept");
    }
}
