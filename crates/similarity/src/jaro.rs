//! Jaro and Jaro–Winkler similarity.

/// Jaro similarity in `[0, 1]`.
///
/// Matches are characters equal within the standard window
/// `max(|a|,|b|)/2 - 1`; transpositions are half-counted per the classic
/// definition. Empty-vs-empty is 1, empty-vs-nonempty is 0.
pub fn jaro(a: &str, b: &str) -> f64 {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    if a == b {
        return 1.0;
    }
    let window = (a.len().max(b.len()) / 2).saturating_sub(1);
    let mut b_used = vec![false; b.len()];
    let mut matches_a: Vec<char> = Vec::new();
    for (i, &ca) in a.iter().enumerate() {
        let lo = i.saturating_sub(window);
        let hi = (i + window + 1).min(b.len());
        for j in lo..hi {
            if !b_used[j] && b[j] == ca {
                b_used[j] = true;
                matches_a.push(ca);
                break;
            }
        }
    }
    let m = matches_a.len();
    if m == 0 {
        return 0.0;
    }
    let matches_b: Vec<char> = b
        .iter()
        .zip(b_used.iter())
        .filter(|(_, &u)| u)
        .map(|(&c, _)| c)
        .collect();
    let transpositions = matches_a
        .iter()
        .zip(matches_b.iter())
        .filter(|(x, y)| x != y)
        .count()
        / 2;
    let m = m as f64;
    let t = transpositions as f64;
    (m / a.len() as f64 + m / b.len() as f64 + (m - t) / m) / 3.0
}

/// Jaro–Winkler similarity: Jaro boosted by up to 4 characters of common
/// prefix with the standard scaling factor 0.1.
pub fn jaro_winkler(a: &str, b: &str) -> f64 {
    let j = jaro(a, b);
    let prefix = a
        .chars()
        .zip(b.chars())
        .take(4)
        .take_while(|(x, y)| x == y)
        .count() as f64;
    j + prefix * 0.1 * (1.0 - j)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-9
    }

    #[test]
    fn classic_examples() {
        assert!(close(jaro("MARTHA", "MARHTA"), 0.944_444_444_444_444_4));
        assert!(close(jaro("DIXON", "DICKSONX"), 0.766_666_666_666_666_6));
        assert!(close(
            jaro("JELLYFISH", "SMELLYFISH"),
            0.896_296_296_296_296_2
        ));
        assert!(close(
            jaro_winkler("MARTHA", "MARHTA"),
            0.961_111_111_111_111_1
        ));
        assert!(close(
            jaro_winkler("DIXON", "DICKSONX"),
            0.813_333_333_333_333_3
        ));
    }

    #[test]
    fn edge_cases() {
        assert_eq!(jaro("", ""), 1.0);
        assert_eq!(jaro("", "a"), 0.0);
        assert_eq!(jaro("a", ""), 0.0);
        assert_eq!(jaro("same", "same"), 1.0);
        assert_eq!(jaro("abc", "xyz"), 0.0);
        assert_eq!(jaro_winkler("same", "same"), 1.0);
    }

    #[test]
    fn winkler_boosts_prefix_matches() {
        // Same Jaro-level difference, but a shared prefix scores higher.
        assert!(jaro_winkler("halevy", "halevi") > jaro_winkler("yhalev", "ihalev"));
    }

    proptest! {
        #[test]
        fn bounds_and_symmetry(a in "[a-f]{0,16}", b in "[a-f]{0,16}") {
            let j = jaro(&a, &b);
            let w = jaro_winkler(&a, &b);
            prop_assert!((0.0..=1.0).contains(&j));
            prop_assert!((0.0..=1.0).contains(&w));
            prop_assert!(w >= j - 1e-12);
            prop_assert!(close(j, jaro(&b, &a)));
            prop_assert!(close(w, jaro_winkler(&b, &a)));
        }

        #[test]
        fn identity_scores_one(a in "[a-f]{1,16}") {
            prop_assert_eq!(jaro(&a, &a), 1.0);
            prop_assert_eq!(jaro_winkler(&a, &a), 1.0);
        }
    }
}
