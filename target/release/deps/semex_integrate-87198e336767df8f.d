/root/repo/target/release/deps/semex_integrate-87198e336767df8f.d: crates/integrate/src/lib.rs crates/integrate/src/matcher.rs

/root/repo/target/release/deps/semex_integrate-87198e336767df8f: crates/integrate/src/lib.rs crates/integrate/src/matcher.rs

crates/integrate/src/lib.rs:
crates/integrate/src/matcher.rs:
