//! Person-name parsing and comparison.
//!
//! The same person appears in a PIM corpus as `"Michael J. Carey"`,
//! `"Carey, M."`, `"mike carey"` or `"M Carey"`. This module parses such
//! strings into a structured [`PersonName`] and scores pairs for
//! compatibility: last names must agree (allowing typos and phonetic
//! variants), first names may be initials or nicknames of each other.

use crate::{jaro_winkler, soundex};

/// A structured person name.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PersonName {
    /// Given name (possibly a bare initial), lowercase.
    pub first: Option<String>,
    /// Middle names / initials, lowercase.
    pub middle: Vec<String>,
    /// Family name, lowercase.
    pub last: Option<String>,
}

/// Honorifics and suffixes dropped during parsing.
const DROPPED: &[&str] = &[
    "dr",
    "prof",
    "professor",
    "mr",
    "mrs",
    "ms",
    "jr",
    "sr",
    "ii",
    "iii",
    "phd",
];

/// Common English nickname pairs used by first-name compatibility.
const NICKNAMES: &[(&str, &str)] = &[
    ("mike", "michael"),
    ("bill", "william"),
    ("will", "william"),
    ("bob", "robert"),
    ("rob", "robert"),
    ("jim", "james"),
    ("dave", "david"),
    ("tom", "thomas"),
    ("liz", "elizabeth"),
    ("beth", "elizabeth"),
    ("kate", "katherine"),
    ("chris", "christopher"),
    ("dan", "daniel"),
    ("sam", "samuel"),
    ("alex", "alexander"),
    ("jen", "jennifer"),
    ("andy", "andrew"),
    ("drew", "andrew"),
    ("tony", "anthony"),
    ("sue", "susan"),
    ("dick", "richard"),
    ("rick", "richard"),
    ("ted", "edward"),
    ("ed", "edward"),
    ("joe", "joseph"),
    ("jack", "john"),
    ("peggy", "margaret"),
    ("meg", "margaret"),
    ("nick", "nicholas"),
    ("steve", "steven"),
    ("steve", "stephen"),
    ("luna", "xin"),
];

fn clean_token(t: &str) -> String {
    t.chars()
        .filter(|c| c.is_alphanumeric())
        .flat_map(char::to_lowercase)
        .collect()
}

impl PersonName {
    /// Parse a display name. Handles `"First Middle Last"`,
    /// `"Last, First Middle"`, initials with or without dots, and drops
    /// honorifics/suffixes.
    pub fn parse(s: &str) -> PersonName {
        let s = s.trim();
        let (last_first, body) = match s.split_once(',') {
            Some((last, rest)) => (Some(clean_token(last)), rest.to_owned()),
            None => (None, s.to_owned()),
        };
        let mut tokens: Vec<String> = body
            .split_whitespace()
            .flat_map(|w| {
                // "J.D." style multi-initial tokens split into initials.
                if w.contains('.') && w.chars().filter(|c| c.is_alphabetic()).count() <= 3 {
                    w.split('.')
                        .map(clean_token)
                        .filter(|t| !t.is_empty())
                        .collect::<Vec<_>>()
                } else {
                    vec![clean_token(w)]
                }
            })
            .filter(|t| !t.is_empty() && !DROPPED.contains(&t.as_str()))
            .collect();

        let mut name = PersonName::default();
        if let Some(last) = last_first {
            // "Last, First Middle..."
            if !last.is_empty() && !DROPPED.contains(&last.as_str()) {
                name.last = Some(last);
            }
            if !tokens.is_empty() {
                name.first = Some(tokens.remove(0));
                name.middle = tokens;
            }
            return name;
        }
        match tokens.len() {
            0 => {}
            1 => name.last = Some(tokens.remove(0)),
            _ => {
                name.first = Some(tokens.remove(0));
                name.last = tokens.pop();
                name.middle = tokens;
            }
        }
        name
    }

    /// True when the name is only initials (no token longer than one char).
    pub fn is_initials_only(&self) -> bool {
        self.first
            .iter()
            .chain(self.last.iter())
            .chain(self.middle.iter())
            .all(|t| t.chars().count() <= 1)
    }

    /// Canonical `"first middle… last"` rendering (lowercase).
    pub fn canonical(&self) -> String {
        let mut parts: Vec<&str> = Vec::new();
        if let Some(f) = &self.first {
            parts.push(f);
        }
        for m in &self.middle {
            parts.push(m);
        }
        if let Some(l) = &self.last {
            parts.push(l);
        }
        parts.join(" ")
    }
}

/// Whether `a` and `b` could name the same given name: equal, one an initial
/// of the other, a known nickname pair, or very close in Jaro–Winkler.
pub fn given_names_compatible(a: &str, b: &str) -> bool {
    if a.is_empty() || b.is_empty() {
        return true; // missing information does not contradict
    }
    if a == b {
        return true;
    }
    let (short, long) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    if short.chars().count() == 1 {
        return long.starts_with(short);
    }
    if NICKNAMES
        .iter()
        .any(|&(n, f)| (n == short && f == long) || (n == long && f == short))
    {
        return true;
    }
    jaro_winkler(a, b) >= 0.90
}

/// Whether two family names agree, tolerating typos (Jaro–Winkler ≥ 0.92)
/// and phonetic variants (equal Soundex with JW ≥ 0.84).
pub fn last_names_compatible(a: &str, b: &str) -> bool {
    if a == b {
        return true;
    }
    let jw = jaro_winkler(a, b);
    if jw >= 0.92 {
        return true;
    }
    jw >= 0.84 && soundex(a).is_some() && soundex(a) == soundex(b)
}

/// Structural compatibility of two parsed names: last names must agree and
/// every aligned given/middle component must be compatible.
pub fn names_compatible(a: &PersonName, b: &PersonName) -> bool {
    match (&a.last, &b.last) {
        (Some(la), Some(lb)) => {
            if !last_names_compatible(la, lb) {
                return false;
            }
        }
        _ => return false, // no last name: not enough signal
    }
    if let (Some(fa), Some(fb)) = (&a.first, &b.first) {
        if !given_names_compatible(fa, fb) {
            return false;
        }
    }
    // Middle names, when both present at a position, must be compatible.
    for (ma, mb) in a.middle.iter().zip(b.middle.iter()) {
        if !given_names_compatible(ma, mb) {
            return false;
        }
    }
    true
}

/// Graded similarity of two name strings in `[0, 1]`.
///
/// Incompatible names score at most 0.4 (raw string similarity, capped);
/// compatible names score from 0.75 (initial-only overlap) to 1.0 (full
/// token agreement), increasing with the specificity of the agreement.
pub fn name_similarity(raw_a: &str, raw_b: &str) -> f64 {
    let a = PersonName::parse(raw_a);
    let b = PersonName::parse(raw_b);
    if a.canonical() == b.canonical() && !a.canonical().is_empty() {
        return 1.0;
    }
    if !names_compatible(&a, &b) {
        return jaro_winkler(&a.canonical(), &b.canonical()).min(0.4);
    }
    // Base score for compatible names; reward exact given-name agreement.
    let mut score: f64 = 0.75;
    match (&a.first, &b.first) {
        (Some(fa), Some(fb)) => {
            if fa == fb {
                score += 0.15;
            } else if fa.chars().count() > 1 && fb.chars().count() > 1 {
                score += 0.10 * jaro_winkler(fa, fb);
            } else {
                score += 0.05; // initial match only
            }
        }
        _ => score -= 0.05, // one side missing the given name entirely
    }
    if !a.middle.is_empty() && !b.middle.is_empty() {
        score += 0.05;
    }
    if let (Some(la), Some(lb)) = (&a.last, &b.last) {
        if la == lb {
            score += 0.05;
        }
    }
    score.min(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn parse_forms() {
        let n = PersonName::parse("Michael J. Carey");
        assert_eq!(n.first.as_deref(), Some("michael"));
        assert_eq!(n.middle, vec!["j"]);
        assert_eq!(n.last.as_deref(), Some("carey"));

        let n = PersonName::parse("Carey, Michael J.");
        assert_eq!(n.first.as_deref(), Some("michael"));
        assert_eq!(n.last.as_deref(), Some("carey"));

        let n = PersonName::parse("M. Carey");
        assert_eq!(n.first.as_deref(), Some("m"));
        assert_eq!(n.last.as_deref(), Some("carey"));

        let n = PersonName::parse("Dr. Alon Halevy");
        assert_eq!(n.first.as_deref(), Some("alon"));
        assert_eq!(n.last.as_deref(), Some("halevy"));

        let n = PersonName::parse("Madonna");
        assert_eq!(n.first, None);
        assert_eq!(n.last.as_deref(), Some("madonna"));

        let n = PersonName::parse("J.D. Ullman");
        assert_eq!(n.first.as_deref(), Some("j"));
        assert_eq!(n.middle, vec!["d"]);
        assert_eq!(n.last.as_deref(), Some("ullman"));
    }

    #[test]
    fn parse_degenerate() {
        assert_eq!(PersonName::parse(""), PersonName::default());
        assert_eq!(PersonName::parse("  ,  "), PersonName::default());
        let n = PersonName::parse("Smith,");
        assert_eq!(n.last.as_deref(), Some("smith"));
        assert_eq!(n.first, None);
    }

    #[test]
    fn initials_detection() {
        assert!(PersonName::parse("M. C.").is_initials_only());
        assert!(!PersonName::parse("M. Carey").is_initials_only());
    }

    #[test]
    fn given_name_rules() {
        assert!(given_names_compatible("michael", "michael"));
        assert!(given_names_compatible("m", "michael"));
        assert!(given_names_compatible("mike", "michael"));
        assert!(given_names_compatible("jen", "jennifer"));
        assert!(!given_names_compatible("michael", "alon"));
        assert!(!given_names_compatible("m", "alon"));
        assert!(given_names_compatible("", "anything"));
    }

    #[test]
    fn last_name_rules() {
        assert!(last_names_compatible("carey", "carey"));
        assert!(last_names_compatible("halevy", "halevi"));
        assert!(last_names_compatible("smith", "smyth"));
        assert!(!last_names_compatible("carey", "halevy"));
    }

    #[test]
    fn full_compatibility() {
        let a = PersonName::parse("Michael J. Carey");
        for s in ["Carey, M.", "mike carey", "M Carey", "Michael Carey"] {
            assert!(names_compatible(&a, &PersonName::parse(s)), "{s}");
        }
        for s in ["Alon Halevy", "Nancy Carey", "Carey"] {
            let other = PersonName::parse(s);
            if s == "Carey" {
                // Missing given name does not contradict.
                assert!(names_compatible(&a, &other));
            } else {
                assert!(!names_compatible(&a, &other), "{s}");
            }
        }
    }

    #[test]
    fn similarity_ordering() {
        let full = name_similarity("Michael J. Carey", "Michael J. Carey");
        let nick = name_similarity("Michael Carey", "Mike Carey");
        let initial = name_similarity("Michael Carey", "M. Carey");
        let incompatible = name_similarity("Michael Carey", "Alon Halevy");
        assert_eq!(full, 1.0);
        assert!(nick > initial, "{nick} vs {initial}");
        assert!(initial > incompatible);
        assert!(incompatible <= 0.4);
    }

    proptest! {
        #[test]
        fn similarity_bounds_and_symmetry(a in "[A-Za-z. ]{0,24}", b in "[A-Za-z. ]{0,24}") {
            let s = name_similarity(&a, &b);
            prop_assert!((0.0..=1.0).contains(&s));
            prop_assert!((s - name_similarity(&b, &a)).abs() < 1e-9);
        }

        #[test]
        fn parse_never_panics(s in ".{0,40}") {
            let _ = PersonName::parse(&s);
        }

        #[test]
        fn self_similarity_is_one(s in "[A-Z][a-z]{1,8} [A-Z][a-z]{1,8}") {
            prop_assert_eq!(name_similarity(&s, &s), 1.0);
        }
    }
}
