//! The Cora-style shape claim (the reconciliation paper's headline):
//! on attribute-sparse citation data, association evidence is the
//! difference between failure and success.

mod common;

use common::{label_references, labels_of_kind};
use semex::corpus::{generate_cora, CoraConfig};
use semex::extract::{bibtex::extract_bibtex, ExtractContext};
use semex::recon::{pair_metrics, reconcile, Metrics, ReconConfig, Variant};
use semex::store::{SourceInfo, SourceKind, Store};

fn run(variant: Variant, cfg: &CoraConfig) -> (Metrics, Metrics) {
    let cora = generate_cora(cfg);
    let mut store = Store::with_builtin_model();
    let src = store.register_source(SourceInfo::new("cora", SourceKind::Bibliography));
    let mut ctx = ExtractContext::new(&mut store, src);
    extract_bibtex(&cora.bibtex, &mut ctx).unwrap();
    let labels = label_references(&store, &cora.truth);
    let pub_labels = labels_of_kind(&labels, 2);
    let report = reconcile(&mut store, variant, &ReconConfig::default());
    (
        pair_metrics(&report.clusters, &labels),
        pair_metrics(&report.clusters, &pub_labels),
    )
}

fn small_cora() -> CoraConfig {
    CoraConfig {
        seed: 51,
        papers: 60,
        authors: 45,
        venues: 8,
        ..CoraConfig::default()
    }
}

#[test]
fn association_evidence_dominates_on_citations() {
    let cfg = small_cora();
    let (attr, _) = run(Variant::AttrOnly, &cfg);
    let (full, _) = run(Variant::Full, &cfg);
    eprintln!("attr-only: {attr}\nfull:      {full}");
    assert!(
        full.recall > attr.recall + 0.2,
        "evidence must lift recall dramatically: attr {attr}, full {full}"
    );
    assert!(full.f1 > attr.f1 + 0.15);
    assert!(full.precision >= 0.9);
}

#[test]
fn publications_reconcile_in_every_variant() {
    let cfg = small_cora();
    for v in Variant::ALL {
        let (_, pubs) = run(v, &cfg);
        assert!(
            pubs.f1 >= 0.95,
            "{v}: publication F1 {pubs} (titles are discriminative in citations)"
        );
    }
}

#[test]
fn more_citation_copies_make_attr_only_worse_relative_to_full() {
    // With more noisy copies per paper, the fraction of pairs bridgeable by
    // exact/near-exact attributes shrinks, widening the gap.
    let sparse = CoraConfig {
        seed: 52,
        max_citations_per_paper: 2,
        ..small_cora()
    };
    let dense = CoraConfig {
        seed: 52,
        max_citations_per_paper: 6,
        ..small_cora()
    };
    let (attr_sparse, _) = run(Variant::AttrOnly, &sparse);
    let (full_sparse, _) = run(Variant::Full, &sparse);
    let (attr_dense, _) = run(Variant::AttrOnly, &dense);
    let (full_dense, _) = run(Variant::Full, &dense);
    let gap_sparse = full_sparse.f1 - attr_sparse.f1;
    let gap_dense = full_dense.f1 - attr_dense.f1;
    eprintln!("gap sparse {gap_sparse:.3}, gap dense {gap_dense:.3}");
    assert!(gap_dense > 0.0 && gap_sparse > 0.0);
}
