//! LaTeX source extraction.
//!
//! Scans a LaTeX document for `\title{…}`, `\author{…}` (with `\and`
//! separators), `\cite{key,…}` commands and `\bibliography{…}` references.
//! The document itself becomes a `Publication` reference with `AuthoredBy`
//! edges; every `\cite` key that resolves against a previously extracted
//! bibliography (via the shared [`ExtractContext`] key registry) yields a
//! `Cites` edge.

use crate::{ExtractContext, ExtractError, ExtractStats};
use semex_model::names::assoc as assoc_names;
use semex_store::ObjectId;

/// The salient commands scanned out of a LaTeX source.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LatexDoc {
    /// `\title{…}` argument, brace-stripped.
    pub title: Option<String>,
    /// Author display names (split on `\and`).
    pub authors: Vec<String>,
    /// All `\cite{…}` keys in order of appearance (deduplicated).
    pub cites: Vec<String>,
    /// `\bibliography{…}` base names.
    pub bibliographies: Vec<String>,
}

/// Read the brace-balanced argument starting at `input[start]` (which must
/// be `{`). Returns the argument body and the index one past the closing
/// brace.
fn braced_arg(input: &str, start: usize) -> Option<(String, usize)> {
    let bytes = input.as_bytes();
    if bytes.get(start) != Some(&b'{') {
        return None;
    }
    let mut depth = 0usize;
    for (i, &b) in bytes.iter().enumerate().skip(start) {
        match b {
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                if depth == 0 {
                    return Some((input[start + 1..i].to_owned(), i + 1));
                }
            }
            _ => {}
        }
    }
    None
}

fn strip_commands(s: &str) -> String {
    // Remove simple inline commands (\textbf, \\, \thanks{...} bodies kept).
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars().peekable();
    while let Some(c) = chars.next() {
        if c == '\\' {
            // Skip the command name.
            while matches!(chars.peek(), Some(c) if c.is_ascii_alphabetic()) {
                chars.next();
            }
            out.push(' ');
        } else if c != '{' && c != '}' {
            out.push(c);
        }
    }
    out.split_whitespace().collect::<Vec<_>>().join(" ")
}

/// Scan a LaTeX source for the commands SEMEX extracts.
pub fn parse_latex(input: &str) -> LatexDoc {
    let mut doc = LatexDoc::default();
    let mut seen_cites = std::collections::HashSet::new();
    let mut i = 0;
    let bytes = input.as_bytes();
    while i < bytes.len() {
        if bytes[i] != b'\\' {
            i += 1;
            continue;
        }
        let rest = &input[i + 1..];
        let cmd: String = rest
            .chars()
            .take_while(|c| c.is_ascii_alphabetic())
            .collect();
        let arg_at = i + 1 + cmd.len();
        match cmd.as_str() {
            "title" => {
                if let Some((arg, next)) = braced_arg(input, arg_at) {
                    doc.title = Some(strip_commands(&arg));
                    i = next;
                    continue;
                }
            }
            "author" => {
                if let Some((arg, next)) = braced_arg(input, arg_at) {
                    for piece in arg.split("\\and") {
                        let name = strip_commands(piece);
                        if !name.is_empty() {
                            doc.authors.push(name);
                        }
                    }
                    i = next;
                    continue;
                }
            }
            "cite" | "citep" | "citet" => {
                if let Some((arg, next)) = braced_arg(input, arg_at) {
                    for key in arg.split(',') {
                        let key = key.trim().to_owned();
                        if !key.is_empty() && seen_cites.insert(key.clone()) {
                            doc.cites.push(key);
                        }
                    }
                    i = next;
                    continue;
                }
            }
            "bibliography" => {
                if let Some((arg, next)) = braced_arg(input, arg_at) {
                    for name in arg.split(',') {
                        let name = name.trim().to_owned();
                        if !name.is_empty() {
                            doc.bibliographies.push(name);
                        }
                    }
                    i = next;
                    continue;
                }
            }
            _ => {}
        }
        i += 1 + cmd.len().max(1);
    }
    doc
}

/// Extract a LaTeX source into the context's store. Returns the document's
/// `Publication` object when a `\title` was present.
pub fn extract_latex(
    input: &str,
    ctx: &mut ExtractContext<'_>,
) -> Result<(ExtractStats, Option<ObjectId>), ExtractError> {
    let before = ctx.stats;
    let doc = parse_latex(input);
    let Some(title) = &doc.title else {
        ctx.stats.skipped += 1;
        return Ok((
            ExtractStats {
                skipped: 1,
                ..Default::default()
            },
            None,
        ));
    };
    ctx.stats.records += 1;
    let pubn = ctx.publication(title, &[])?;
    for author in &doc.authors {
        if let Some(p) = ctx.person(Some(author), None)? {
            ctx.link_named(pubn, assoc_names::AUTHORED_BY, p)?;
        }
    }
    for key in &doc.cites {
        if let Some(cited) = ctx.publication_by_key(key) {
            if cited != pubn {
                ctx.link_named(pubn, assoc_names::CITES, cited)?;
            }
        }
    }
    let stats = ExtractStats {
        records: ctx.stats.records - before.records,
        objects: ctx.stats.objects - before.objects,
        triples: ctx.stats.triples - before.triples,
        skipped: ctx.stats.skipped - before.skipped,
    };
    Ok((stats, Some(pubn)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bibtex::extract_bibtex;
    use semex_model::names::{assoc, class};
    use semex_store::{SourceInfo, SourceKind, Store};

    const SAMPLE: &str = r#"
\documentclass{article}
\title{Personal Information Management with \textsc{Semex}}
\author{Xin Dong \and Alon Halevy}
\begin{document}
\maketitle
As shown in \cite{dong05, carey95} and again in \cite{dong05},
reconciliation matters.
\bibliography{refs}
\end{document}
"#;

    #[test]
    fn parse_commands() {
        let doc = parse_latex(SAMPLE);
        assert_eq!(
            doc.title.as_deref(),
            Some("Personal Information Management with Semex")
        );
        assert_eq!(doc.authors, vec!["Xin Dong", "Alon Halevy"]);
        assert_eq!(doc.cites, vec!["dong05", "carey95"]);
        assert_eq!(doc.bibliographies, vec!["refs"]);
    }

    #[test]
    fn empty_and_unclosed_inputs() {
        assert_eq!(parse_latex(""), LatexDoc::default());
        let doc = parse_latex("\\title{unclosed");
        assert_eq!(doc.title, None);
        let doc = parse_latex("\\cite{a}\\cite{a,b}");
        assert_eq!(doc.cites, vec!["a", "b"]);
    }

    #[test]
    fn extraction_resolves_citations() {
        let mut st = Store::with_builtin_model();
        let src = st.register_source(SourceInfo::new("paper.tex", SourceKind::Latex));
        let mut ctx = ExtractContext::new(&mut st, src);
        extract_bibtex(
            "@inproceedings{dong05, title={Reference Reconciliation}, author={Dong, Xin}, year=2005}",
            &mut ctx,
        )
        .unwrap();
        let (stats, pubn) = extract_latex(SAMPLE, &mut ctx).unwrap();
        assert_eq!(stats.records, 1);
        let pubn = pubn.unwrap();

        let model = st.model();
        let cites = model.assoc(assoc::CITES).unwrap();
        // Only dong05 resolves; carey95 was never in a bibliography.
        assert_eq!(st.neighbors(pubn, cites).len(), 1);
        assert_eq!(st.class_count(model.class(class::PUBLICATION).unwrap()), 2);
        // Xin Dong appears as the raw bib form "Dong, Xin" and the LaTeX
        // form "Xin Dong": the surface forms differ, so they remain two
        // references (for reconciliation to merge), plus Alon Halevy.
        assert_eq!(st.class_count(model.class(class::PERSON).unwrap()), 3);
    }

    #[test]
    fn titleless_doc_skipped() {
        let mut st = Store::with_builtin_model();
        let src = st.register_source(SourceInfo::new("x.tex", SourceKind::Latex));
        let mut ctx = ExtractContext::new(&mut st, src);
        let (stats, pubn) = extract_latex("\\section{hi}", &mut ctx).unwrap();
        assert_eq!(stats.skipped, 1);
        assert!(pubn.is_none());
    }
}
