/root/repo/target/debug/deps/semex_serve-371fe530c9ea8e1c.d: crates/serve/src/lib.rs crates/serve/src/json.rs crates/serve/src/protocol.rs crates/serve/src/client.rs crates/serve/src/engine.rs crates/serve/src/master.rs crates/serve/src/server.rs crates/serve/src/writer.rs

/root/repo/target/debug/deps/libsemex_serve-371fe530c9ea8e1c.rlib: crates/serve/src/lib.rs crates/serve/src/json.rs crates/serve/src/protocol.rs crates/serve/src/client.rs crates/serve/src/engine.rs crates/serve/src/master.rs crates/serve/src/server.rs crates/serve/src/writer.rs

/root/repo/target/debug/deps/libsemex_serve-371fe530c9ea8e1c.rmeta: crates/serve/src/lib.rs crates/serve/src/json.rs crates/serve/src/protocol.rs crates/serve/src/client.rs crates/serve/src/engine.rs crates/serve/src/master.rs crates/serve/src/server.rs crates/serve/src/writer.rs

crates/serve/src/lib.rs:
crates/serve/src/json.rs:
crates/serve/src/protocol.rs:
crates/serve/src/client.rs:
crates/serve/src/engine.rs:
crates/serve/src/master.rs:
crates/serve/src/server.rs:
crates/serve/src/writer.rs:
