/root/repo/target/debug/deps/protocol_prop-7abf266824591a6e.d: crates/serve/tests/protocol_prop.rs

/root/repo/target/debug/deps/protocol_prop-7abf266824591a6e: crates/serve/tests/protocol_prop.rs

crates/serve/tests/protocol_prop.rs:
