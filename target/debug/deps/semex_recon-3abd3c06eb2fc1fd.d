/root/repo/target/debug/deps/semex_recon-3abd3c06eb2fc1fd.d: crates/recon/src/lib.rs crates/recon/src/blocking.rs crates/recon/src/config.rs crates/recon/src/engine.rs crates/recon/src/eval.rs crates/recon/src/refs.rs crates/recon/src/score.rs crates/recon/src/shard.rs crates/recon/src/union_find.rs crates/recon/src/worklist.rs Cargo.toml

/root/repo/target/debug/deps/libsemex_recon-3abd3c06eb2fc1fd.rmeta: crates/recon/src/lib.rs crates/recon/src/blocking.rs crates/recon/src/config.rs crates/recon/src/engine.rs crates/recon/src/eval.rs crates/recon/src/refs.rs crates/recon/src/score.rs crates/recon/src/shard.rs crates/recon/src/union_find.rs crates/recon/src/worklist.rs Cargo.toml

crates/recon/src/lib.rs:
crates/recon/src/blocking.rs:
crates/recon/src/config.rs:
crates/recon/src/engine.rs:
crates/recon/src/eval.rs:
crates/recon/src/refs.rs:
crates/recon/src/score.rs:
crates/recon/src/shard.rs:
crates/recon/src/union_find.rs:
crates/recon/src/worklist.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
