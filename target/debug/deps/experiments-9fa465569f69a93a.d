/root/repo/target/debug/deps/experiments-9fa465569f69a93a.d: crates/bench/src/bin/experiments.rs Cargo.toml

/root/repo/target/debug/deps/libexperiments-9fa465569f69a93a.rmeta: crates/bench/src/bin/experiments.rs Cargo.toml

crates/bench/src/bin/experiments.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
