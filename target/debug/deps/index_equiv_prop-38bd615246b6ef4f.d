/root/repo/target/debug/deps/index_equiv_prop-38bd615246b6ef4f.d: crates/index/tests/index_equiv_prop.rs

/root/repo/target/debug/deps/libindex_equiv_prop-38bd615246b6ef4f.rmeta: crates/index/tests/index_equiv_prop.rs

crates/index/tests/index_equiv_prop.rs:
