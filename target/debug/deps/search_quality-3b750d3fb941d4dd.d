/root/repo/target/debug/deps/search_quality-3b750d3fb941d4dd.d: tests/search_quality.rs tests/common/mod.rs Cargo.toml

/root/repo/target/debug/deps/libsearch_quality-3b750d3fb941d4dd.rmeta: tests/search_quality.rs tests/common/mod.rs Cargo.toml

tests/search_quality.rs:
tests/common/mod.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
