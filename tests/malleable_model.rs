//! The "malleable domain model" story end-to-end: a user extends the
//! built-in vocabulary with their own class and associations, instances
//! flow through the store, reconciliation treats the new class like any
//! reconcilable class, and browsing evaluates user-defined derived
//! associations.

use semex::model::{AssocDef, AttrDef, ClassDef, DerivedDef, DomainModel, PathExpr, ValueKind};
use semex::recon::{reconcile, ReconConfig, Variant};
use semex::store::{SourceInfo, SourceKind, Store};

fn extended_model() -> DomainModel {
    let mut m = DomainModel::builtin();
    // A research-data world: datasets, used by publications.
    let a_doi = m.add_attr(AttrDef::new("doi", ValueKind::Str)).unwrap();
    let name = m.attr("name").unwrap();
    let dataset = m
        .add_class(
            ClassDef::new("Dataset")
                .with_attrs(vec![name, a_doi])
                .with_label(name)
                .reconcilable(),
        )
        .unwrap();
    let publication = m.class("Publication").unwrap();
    let uses = m
        .add_assoc(AssocDef::new("UsesDataset", publication, dataset, "UsedBy"))
        .unwrap();
    m.add_derived(DerivedDef::new(
        "SharedDataset",
        publication,
        publication,
        PathExpr::path(vec![
            semex::model::PathStep::Forward(uses),
            semex::model::PathStep::Inverse(uses),
        ]),
    ))
    .unwrap();
    m
}

#[test]
fn custom_class_reconciles_and_browses() {
    let mut st = Store::new(extended_model());
    let src = st.register_source(SourceInfo::new("lab", SourceKind::Synthetic));
    let m = st.model();
    let dataset = m.class("Dataset").unwrap();
    let publication = m.class("Publication").unwrap();
    let a_name = m.attr("name").unwrap();
    let a_title = m.attr("title").unwrap();
    let uses = m.assoc("UsesDataset").unwrap();

    // Two references to the same dataset under slightly different names,
    // plus an unrelated one.
    let d1 = st.add_object(dataset);
    st.add_attr(d1, a_name, "Cora Citation Benchmark".into())
        .unwrap();
    let d2 = st.add_object(dataset);
    st.add_attr(d2, a_name, "Cora citation benchmrak".into())
        .unwrap();
    let d3 = st.add_object(dataset);
    st.add_attr(d3, a_name, "Reuters Newswire".into()).unwrap();

    let p1 = st.add_object(publication);
    st.add_attr(p1, a_title, "Paper One".into()).unwrap();
    let p2 = st.add_object(publication);
    st.add_attr(p2, a_title, "Paper Two".into()).unwrap();
    st.add_triple(p1, uses, d1, src).unwrap();
    st.add_triple(p2, uses, d2, src).unwrap();

    // Reconciliation merges the two Cora references (RefKind::Other
    // compares by name) and leaves Reuters alone.
    let report = reconcile(&mut st, Variant::Full, &ReconConfig::sequential());
    assert_eq!(st.class_count(dataset), 2, "{report:?}");
    assert_eq!(st.resolve(d1), st.resolve(d2));
    assert_ne!(st.resolve(d1), st.resolve(d3));

    // The user-defined derived association now connects the two papers
    // through the merged dataset.
    let browser = semex::browse::Browser::new(&st);
    let shared = browser.derived_by_name(p1, "SharedDataset").unwrap();
    assert_eq!(shared, vec![p2]);

    // And the merged dataset browses back to both papers.
    let links = browser.neighborhood(st.resolve(d1));
    let used_by: Vec<_> = links.iter().filter(|l| l.label == "UsedBy").collect();
    assert_eq!(used_by.len(), 2);
}

#[test]
fn snapshot_preserves_extended_model() {
    let mut st = Store::new(extended_model());
    let dataset = st.model().class("Dataset").unwrap();
    let a_name = st.model().attr("name").unwrap();
    let d = st.add_object(dataset);
    st.add_attr(d, a_name, "Cora".into()).unwrap();

    let st2 = Store::from_json(&st.to_json().unwrap()).unwrap();
    assert_eq!(st2.model().class("Dataset"), Some(dataset));
    assert!(st2.model().derived("SharedDataset").is_some());
    assert_eq!(st2.class_count(dataset), 1);
}
