/root/repo/target/debug/deps/incremental_recon-b4362444789f672b.d: tests/incremental_recon.rs tests/common/mod.rs

/root/repo/target/debug/deps/incremental_recon-b4362444789f672b: tests/incremental_recon.rs tests/common/mod.rs

tests/incremental_recon.rs:
tests/common/mod.rs:
