/root/repo/target/release/deps/journal-17c6f5ec750c88b8.d: crates/bench/benches/journal.rs

/root/repo/target/release/deps/journal-17c6f5ec750c88b8: crates/bench/benches/journal.rs

crates/bench/benches/journal.rs:
