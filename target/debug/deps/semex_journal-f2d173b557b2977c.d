/root/repo/target/debug/deps/semex_journal-f2d173b557b2977c.d: crates/journal/src/lib.rs crates/journal/src/crc32.rs crates/journal/src/io.rs crates/journal/src/journal.rs crates/journal/src/record.rs crates/journal/src/segment.rs

/root/repo/target/debug/deps/libsemex_journal-f2d173b557b2977c.rmeta: crates/journal/src/lib.rs crates/journal/src/crc32.rs crates/journal/src/io.rs crates/journal/src/journal.rs crates/journal/src/record.rs crates/journal/src/segment.rs

crates/journal/src/lib.rs:
crates/journal/src/crc32.rs:
crates/journal/src/io.rs:
crates/journal/src/journal.rs:
crates/journal/src/record.rs:
crates/journal/src/segment.rs:
