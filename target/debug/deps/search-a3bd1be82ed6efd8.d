/root/repo/target/debug/deps/search-a3bd1be82ed6efd8.d: crates/bench/benches/search.rs

/root/repo/target/debug/deps/libsearch-a3bd1be82ed6efd8.rmeta: crates/bench/benches/search.rs

crates/bench/benches/search.rs:
