//! Minimal date parsing (no external chrono dependency).

/// Days from civil date to days-since-epoch (Howard Hinnant's algorithm).
fn days_from_civil(y: i64, m: u32, d: u32) -> i64 {
    let y = if m <= 2 { y - 1 } else { y };
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = (y - era * 400) as u64; // [0, 399]
    let mp = ((m + 9) % 12) as u64; // Mar=0
    let doy = (153 * mp + 2) / 5 + (d as u64 - 1); // [0, 365]
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
    era * 146_097 + doe as i64 - 719_468
}

/// Convert a civil date + time to seconds since the Unix epoch (UTC).
pub fn ymd_to_epoch(year: i64, month: u32, day: u32, hour: u32, min: u32, sec: u32) -> i64 {
    days_from_civil(year, month, day) * 86_400 + (hour * 3600 + min * 60 + sec) as i64
}

const MONTHS: &[(&str, u32)] = &[
    ("jan", 1),
    ("feb", 2),
    ("mar", 3),
    ("apr", 4),
    ("may", 5),
    ("jun", 6),
    ("jul", 7),
    ("aug", 8),
    ("sep", 9),
    ("oct", 10),
    ("nov", 11),
    ("dec", 12),
];

fn month_by_name(s: &str) -> Option<u32> {
    let s = s.to_lowercase();
    MONTHS
        .iter()
        .find(|(n, _)| s.starts_with(n))
        .map(|&(_, m)| m)
}

/// Parse a date string to epoch seconds. Supports:
///
/// * RFC-2822 style: `"Tue, 15 Mar 2005 10:11:12 -0800"` (day name and
///   timezone optional; the offset is applied);
/// * ISO style: `"2005-03-15"` or `"2005-03-15 10:11:12"` /
///   `"2005-03-15T10:11:12"`;
/// * bare year: `"2005"` (January 1st).
///
/// Returns `None` for anything unrecognized.
pub fn parse_date(s: &str) -> Option<i64> {
    let s = s.trim();
    if s.is_empty() {
        return None;
    }
    // ISO formats.
    if let Some(epoch) = parse_iso(s) {
        return Some(epoch);
    }
    // Bare year.
    if s.len() == 4 && s.chars().all(|c| c.is_ascii_digit()) {
        let y: i64 = s.parse().ok()?;
        return Some(ymd_to_epoch(y, 1, 1, 0, 0, 0));
    }
    parse_rfc2822(s)
}

fn parse_iso(s: &str) -> Option<i64> {
    let (date, time) = match s.split_once(['T', ' ']) {
        Some((d, t)) => (d, Some(t)),
        None => (s, None),
    };
    let mut it = date.split('-');
    let y: i64 = it.next()?.parse().ok()?;
    let m: u32 = it.next()?.parse().ok()?;
    let d: u32 = it.next()?.parse().ok()?;
    if it.next().is_some() || !(1..=12).contains(&m) || !(1..=31).contains(&d) {
        return None;
    }
    let (mut hh, mut mm, mut ss) = (0u32, 0u32, 0u32);
    if let Some(t) = time {
        let mut tt = t.trim_end_matches('Z').split(':');
        hh = tt.next()?.parse().ok()?;
        mm = tt.next().unwrap_or("0").parse().ok()?;
        ss = tt
            .next()
            .unwrap_or("0")
            .split('.')
            .next()
            .unwrap_or("0")
            .parse()
            .ok()?;
        if hh > 23 || mm > 59 || ss > 60 {
            return None;
        }
    }
    Some(ymd_to_epoch(y, m, d, hh, mm, ss))
}

fn parse_rfc2822(s: &str) -> Option<i64> {
    // Drop an optional leading day-of-week ("Tue,").
    let s = match s.split_once(',') {
        Some((dow, rest)) if dow.len() <= 3 && dow.chars().all(|c| c.is_ascii_alphabetic()) => {
            rest.trim()
        }
        _ => s,
    };
    let parts: Vec<&str> = s.split_whitespace().collect();
    if parts.len() < 3 {
        return None;
    }
    let d: u32 = parts[0].parse().ok()?;
    let m = month_by_name(parts[1])?;
    let y: i64 = parts[2].parse().ok()?;
    let y = if y < 100 {
        1900 + y + if y < 70 { 100 } else { 0 }
    } else {
        y
    };
    if !(1..=31).contains(&d) {
        return None;
    }
    let (mut hh, mut mm, mut ss) = (0u32, 0u32, 0u32);
    if let Some(t) = parts.get(3) {
        let mut tt = t.split(':');
        hh = tt.next()?.parse().ok()?;
        mm = tt.next().unwrap_or("0").parse().ok()?;
        ss = tt.next().unwrap_or("0").parse().ok()?;
        if hh > 23 || mm > 59 || ss > 60 {
            return None;
        }
    }
    let mut epoch = ymd_to_epoch(y, m, d, hh, mm, ss);
    // Apply a numeric timezone offset like -0800 / +0130.
    if let Some(tz) = parts.get(4) {
        if let Some(stripped) = tz.strip_prefix(['-', '+']) {
            if stripped.len() == 4 && stripped.chars().all(|c| c.is_ascii_digit()) {
                let h: i64 = stripped[..2].parse().ok()?;
                let mi: i64 = stripped[2..].parse().ok()?;
                let off = h * 3600 + mi * 60;
                epoch += if tz.starts_with('-') { off } else { -off };
            }
        }
    }
    Some(epoch)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn epoch_reference_points() {
        assert_eq!(ymd_to_epoch(1970, 1, 1, 0, 0, 0), 0);
        assert_eq!(ymd_to_epoch(1970, 1, 2, 0, 0, 0), 86_400);
        assert_eq!(ymd_to_epoch(2000, 1, 1, 0, 0, 0), 946_684_800);
        assert_eq!(ymd_to_epoch(2005, 3, 15, 0, 0, 0), 1_110_844_800);
    }

    #[test]
    fn iso_formats() {
        assert_eq!(parse_date("2005-03-15"), Some(1_110_844_800));
        assert_eq!(
            parse_date("2005-03-15 10:00:00"),
            Some(1_110_844_800 + 36_000)
        );
        assert_eq!(
            parse_date("2005-03-15T10:00:00Z"),
            Some(1_110_844_800 + 36_000)
        );
        assert_eq!(parse_date("2005"), Some(ymd_to_epoch(2005, 1, 1, 0, 0, 0)));
        assert_eq!(parse_date("2005-13-01"), None);
        assert_eq!(parse_date("not a date"), None);
        assert_eq!(parse_date(""), None);
    }

    #[test]
    fn rfc2822_formats() {
        assert_eq!(
            parse_date("Tue, 15 Mar 2005 10:00:00 +0000"),
            Some(1_110_844_800 + 36_000)
        );
        // Negative offset means later UTC.
        assert_eq!(
            parse_date("15 Mar 2005 10:00:00 -0800"),
            Some(1_110_844_800 + 36_000 + 8 * 3600)
        );
        assert_eq!(parse_date("15 Mar 2005"), Some(1_110_844_800));
        // Two-digit years follow the mail convention.
        assert_eq!(
            parse_date("15 Mar 99"),
            Some(ymd_to_epoch(1999, 3, 15, 0, 0, 0))
        );
        assert_eq!(
            parse_date("15 Mar 05"),
            Some(ymd_to_epoch(2005, 3, 15, 0, 0, 0))
        );
    }

    #[test]
    fn leap_years() {
        assert_eq!(
            parse_date("2004-02-29"),
            Some(ymd_to_epoch(2004, 2, 29, 0, 0, 0))
        );
        assert_eq!(
            ymd_to_epoch(2004, 3, 1, 0, 0, 0) - ymd_to_epoch(2004, 2, 28, 0, 0, 0),
            2 * 86_400
        );
        assert_eq!(
            ymd_to_epoch(2005, 3, 1, 0, 0, 0) - ymd_to_epoch(2005, 2, 28, 0, 0, 0),
            86_400
        );
    }

    proptest! {
        #[test]
        fn never_panics(s in ".{0,40}") {
            let _ = parse_date(&s);
        }

        #[test]
        fn iso_roundtrip(y in 1970i64..2100, m in 1u32..=12, d in 1u32..=28) {
            let s = format!("{y:04}-{m:02}-{d:02}");
            let e = parse_date(&s).unwrap();
            prop_assert_eq!(e, ymd_to_epoch(y, m, d, 0, 0, 0));
            prop_assert_eq!(e % 86_400, 0);
        }

        #[test]
        fn dates_are_monotonic(y in 1970i64..2100, m in 1u32..=11, d in 1u32..=28) {
            prop_assert!(ymd_to_epoch(y, m, d, 0, 0, 0) < ymd_to_epoch(y, m + 1, d, 0, 0, 0));
            prop_assert!(ymd_to_epoch(y, m, d, 0, 0, 0) < ymd_to_epoch(y + 1, m, d, 0, 0, 0));
        }
    }
}
