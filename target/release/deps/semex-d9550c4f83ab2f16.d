/root/repo/target/release/deps/semex-d9550c4f83ab2f16.d: src/lib.rs

/root/repo/target/release/deps/semex-d9550c4f83ab2f16: src/lib.rs

src/lib.rs:
