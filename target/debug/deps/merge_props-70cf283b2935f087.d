/root/repo/target/debug/deps/merge_props-70cf283b2935f087.d: crates/store/tests/merge_props.rs

/root/repo/target/debug/deps/merge_props-70cf283b2935f087: crates/store/tests/merge_props.rs

crates/store/tests/merge_props.rs:
