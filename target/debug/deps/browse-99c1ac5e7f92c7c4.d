/root/repo/target/debug/deps/browse-99c1ac5e7f92c7c4.d: crates/bench/benches/browse.rs Cargo.toml

/root/repo/target/debug/deps/libbrowse-99c1ac5e7f92c7c4.rmeta: crates/bench/benches/browse.rs Cargo.toml

crates/bench/benches/browse.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
