/root/repo/target/debug/deps/semex_similarity-7641167d9d5a772f.d: crates/similarity/src/lib.rs crates/similarity/src/corpus.rs crates/similarity/src/edit.rs crates/similarity/src/email.rs crates/similarity/src/jaro.rs crates/similarity/src/name.rs crates/similarity/src/phonetic.rs crates/similarity/src/title.rs crates/similarity/src/tokens.rs crates/similarity/src/venue.rs Cargo.toml

/root/repo/target/debug/deps/libsemex_similarity-7641167d9d5a772f.rmeta: crates/similarity/src/lib.rs crates/similarity/src/corpus.rs crates/similarity/src/edit.rs crates/similarity/src/email.rs crates/similarity/src/jaro.rs crates/similarity/src/name.rs crates/similarity/src/phonetic.rs crates/similarity/src/title.rs crates/similarity/src/tokens.rs crates/similarity/src/venue.rs Cargo.toml

crates/similarity/src/lib.rs:
crates/similarity/src/corpus.rs:
crates/similarity/src/edit.rs:
crates/similarity/src/email.rs:
crates/similarity/src/jaro.rs:
crates/similarity/src/name.rs:
crates/similarity/src/phonetic.rs:
crates/similarity/src/title.rs:
crates/similarity/src/tokens.rs:
crates/similarity/src/venue.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
