//! The textual path syntax.
//!
//! ```text
//! Person("Dana Avery") <-Sender [date in 1100..1200] ->Recipient ->CoAuthor <-AuthoredBy
//! ```
//!
//! reads: from the person labelled "Dana Avery", to the messages they
//! sent (`<-Sender`: inverse hop), keep those in the date window, hop to
//! the people who received them, expand to their co-authors (a derived
//! association, inlined from the model's rule), and land on the
//! publications those co-authors wrote.
//!
//! Grammar (whitespace-separated steps after the start term):
//!
//! ```text
//! path   := start step*
//! start  := '*' | Class | Class '(' quoted ')' | 'o' digits
//! step   := ('->' | '<-') Name ['#' k] ['*' n]   hop (assoc or derived);
//!                                                '#k' bounds fan-out,
//!                                                '*n' repeats up to n deep
//!        |  ':' Class                            class constraint
//!        |  '[' attr ('=' | '~') value ']'       equality / substring
//!        |  '[' attr ('>=' | '<=') int ']'       half-open range
//!        |  '[' attr 'in' [int] '..' [int] ']'   inclusive range
//!        |  '(' steps ('|' steps)* ')' ['*' n]   union of branches
//!        |  '?(' steps ')'                       optional branch
//!        |  '{' steps '}' '*' n                  bounded closure
//! ```
//!
//! Values may be bare words or `"quoted strings"` (`\"` escapes).

use crate::plan::{PathQuery, Start};
use crate::step::{Dir, Filter, Step};
use semex_model::{PathExpr, PathStep};
use semex_store::Store;

/// A path text the parser cannot accept, with the byte offset it gave up
/// at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// What went wrong.
    pub message: String,
    /// Character offset into the query text.
    pub at: usize,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "path parse error at {}: {}", self.at, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parse a textual path query against a store's model. The result is
/// validated but not yet [optimized](PathQuery::optimize).
pub fn parse(store: &Store, text: &str) -> Result<PathQuery, ParseError> {
    let mut p = Parser {
        chars: text.chars().collect(),
        pos: 0,
        store,
    };
    p.skip_ws();
    let start = p.start()?;
    let steps = p.steps(&[])?;
    p.skip_ws();
    if p.pos < p.chars.len() {
        return Err(p.err(format!("unexpected {:?}", p.chars[p.pos])));
    }
    let plan = PathQuery::new(start, steps);
    plan.validate(store.model()).map_err(|e| ParseError {
        message: e.to_string(),
        at: 0,
    })?;
    Ok(plan)
}

struct Parser<'a> {
    chars: Vec<char>,
    pos: usize,
    store: &'a Store,
}

impl Parser<'_> {
    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            message: message.into(),
            at: self.pos,
        }
    }

    fn skip_ws(&mut self) {
        while self.peek().is_some_and(char::is_whitespace) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek();
        if c.is_some() {
            self.pos += 1;
        }
        c
    }

    fn eat(&mut self, c: char) -> bool {
        if self.peek() == Some(c) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, c: char) -> Result<(), ParseError> {
        if self.eat(c) {
            Ok(())
        } else {
            Err(self.err(format!("expected {c:?}")))
        }
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        let from = self.pos;
        while self.peek().is_some_and(|c| c.is_alphanumeric() || c == '_') {
            self.pos += 1;
        }
        if self.pos == from {
            return Err(self.err("expected a name"));
        }
        Ok(self.chars[from..self.pos].iter().collect())
    }

    fn number(&mut self) -> Result<usize, ParseError> {
        let from = self.pos;
        while self.peek().is_some_and(|c| c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.pos == from {
            return Err(self.err("expected a number"));
        }
        let text: String = self.chars[from..self.pos].iter().collect();
        text.parse().map_err(|_| self.err("number out of range"))
    }

    fn integer(&mut self) -> Result<i64, ParseError> {
        let neg = self.eat('-');
        let n = self.number()? as i64;
        Ok(if neg { -n } else { n })
    }

    fn quoted(&mut self) -> Result<String, ParseError> {
        self.expect('"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                Some('"') => return Ok(out),
                Some('\\') => match self.bump() {
                    Some(c) => out.push(c),
                    None => return Err(self.err("unterminated escape")),
                },
                Some(c) => out.push(c),
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    /// A filter value: quoted string or bare word (no whitespace / `]`).
    fn value(&mut self) -> Result<String, ParseError> {
        if self.peek() == Some('"') {
            return self.quoted();
        }
        let from = self.pos;
        while self.peek().is_some_and(|c| !c.is_whitespace() && c != ']') {
            self.pos += 1;
        }
        if self.pos == from {
            return Err(self.err("expected a value"));
        }
        Ok(self.chars[from..self.pos].iter().collect())
    }

    fn start(&mut self) -> Result<Start, ParseError> {
        if self.eat('*') {
            return Ok(Start::All);
        }
        let at = self.pos;
        let name = self
            .ident()
            .map_err(|_| self.err("expected a start term: '*', a class name, or an object id"))?;
        // `o42`-style raw object ids win over (nonexistent) classes named
        // like them.
        if let Some(digits) = name.strip_prefix('o') {
            if !digits.is_empty() && digits.chars().all(|c| c.is_ascii_digit()) {
                let id = digits
                    .parse::<u64>()
                    .map_err(|_| self.err("object id out of range"))?;
                let obj = semex_store::ObjectId(id);
                if self.store.object_raw(obj).is_none() {
                    return Err(ParseError {
                        message: format!("no object {name}"),
                        at,
                    });
                }
                return Ok(Start::Object(obj));
            }
        }
        let class = self.store.model().class(&name).ok_or_else(|| ParseError {
            message: format!("unknown class {name:?}"),
            at,
        })?;
        if self.eat('(') {
            let label = self.quoted()?;
            self.expect(')')?;
            return Ok(Start::Labeled(class, label));
        }
        Ok(Start::Class(class))
    }

    /// Parse steps until end of input or one of `stop`.
    fn steps(&mut self, stop: &[char]) -> Result<Vec<Step>, ParseError> {
        let mut out = Vec::new();
        loop {
            self.skip_ws();
            match self.peek() {
                None => return Ok(out),
                Some(c) if stop.contains(&c) => return Ok(out),
                Some(_) => out.extend(self.step()?),
            }
        }
    }

    /// One step; hops over derived associations may expand to several.
    fn step(&mut self) -> Result<Vec<Step>, ParseError> {
        match self.peek() {
            Some('-') | Some('<') => self.hop(),
            Some(':') => {
                self.pos += 1;
                let at = self.pos;
                let name = self.ident()?;
                let class = self.store.model().class(&name).ok_or_else(|| ParseError {
                    message: format!("unknown class {name:?}"),
                    at,
                })?;
                Ok(vec![Step::Class(class)])
            }
            Some('[') => self.filter(),
            Some('(') => {
                self.pos += 1;
                let mut branches = vec![self.steps(&['|', ')'])?];
                while self.eat('|') {
                    branches.push(self.steps(&['|', ')'])?);
                }
                self.expect(')')?;
                let step = Step::Union(branches);
                Ok(vec![self.maybe_repeat(step)?])
            }
            Some('?') => {
                self.pos += 1;
                self.expect('(')?;
                let branch = self.steps(&[')'])?;
                self.expect(')')?;
                Ok(vec![Step::Optional(branch)])
            }
            Some('{') => {
                self.pos += 1;
                let steps = self.steps(&['}'])?;
                self.expect('}')?;
                self.expect('*')?;
                let max_depth = self.number()?;
                Ok(vec![Step::Repeat { steps, max_depth }])
            }
            Some(c) => Err(self.err(format!("unexpected {c:?}"))),
            None => Err(self.err("expected a step")),
        }
    }

    fn hop(&mut self) -> Result<Vec<Step>, ParseError> {
        let dir = if self.eat('-') {
            self.expect('>')?;
            Dir::Forward
        } else {
            self.expect('<')?;
            self.expect('-')?;
            Dir::Inverse
        };
        let at = self.pos;
        let name = self.ident()?;
        let model = self.store.model();
        if let Some(assoc) = model.assoc(&name) {
            let fanout = if self.eat('#') {
                Some(self.number()?)
            } else {
                None
            };
            let step = Step::Hop { dir, assoc, fanout };
            return Ok(vec![self.maybe_repeat(step)?]);
        }
        if let Some(def) = model.derived(&name) {
            if self.peek() == Some('#') {
                return Err(
                    self.err("fan-out bounds apply to plain associations, not derived ones")
                );
            }
            let steps = compile_rule(&def.rule, dir);
            if self.eat('*') {
                let max_depth = self.number()?;
                return Ok(vec![Step::Repeat { steps, max_depth }]);
            }
            return Ok(steps);
        }
        Err(ParseError {
            message: format!("unknown association {name:?}"),
            at,
        })
    }

    /// `*n` closure sugar after a hop or union group.
    fn maybe_repeat(&mut self, step: Step) -> Result<Step, ParseError> {
        if self.eat('*') {
            let max_depth = self.number()?;
            return Ok(Step::Repeat {
                steps: vec![step],
                max_depth,
            });
        }
        Ok(step)
    }

    fn filter(&mut self) -> Result<Vec<Step>, ParseError> {
        self.expect('[')?;
        self.skip_ws();
        let at = self.pos;
        let name = self.ident()?;
        let attr = self.store.model().attr(&name).ok_or_else(|| ParseError {
            message: format!("unknown attribute {name:?}"),
            at,
        })?;
        self.skip_ws();
        let filter = match self.peek() {
            Some('=') => {
                self.pos += 1;
                Filter::AttrEq(attr, self.value()?)
            }
            Some('~') => {
                self.pos += 1;
                Filter::AttrContains(attr, self.value()?)
            }
            Some('>') => {
                self.pos += 1;
                self.expect('=')?;
                self.skip_ws();
                Filter::Range {
                    attr,
                    min: Some(self.integer()?),
                    max: None,
                }
            }
            Some('<') => {
                self.pos += 1;
                self.expect('=')?;
                self.skip_ws();
                Filter::Range {
                    attr,
                    min: None,
                    max: Some(self.integer()?),
                }
            }
            Some('i') => {
                self.expect('i')?;
                self.expect('n')?;
                self.skip_ws();
                let min = if self.peek() == Some('.') {
                    None
                } else {
                    Some(self.integer()?)
                };
                self.expect('.')?;
                self.expect('.')?;
                let max = if matches!(self.peek(), Some(c) if c == '-' || c.is_ascii_digit()) {
                    Some(self.integer()?)
                } else {
                    None
                };
                Filter::Range { attr, min, max }
            }
            _ => return Err(self.err("expected '=', '~', '>=', '<=' or 'in'")),
        };
        self.skip_ws();
        self.expect(']')?;
        Ok(vec![Step::Filter(filter)])
    }
}

/// Inline a derived association's rule as engine steps. `Dir::Inverse`
/// traverses the rule backwards (each path reversed, hops flipped).
fn compile_rule(rule: &PathExpr, dir: Dir) -> Vec<Step> {
    match rule {
        PathExpr::Path(path) => {
            let hop = |s: &PathStep| match (s, dir) {
                (PathStep::Forward(a), Dir::Forward) | (PathStep::Inverse(a), Dir::Inverse) => {
                    Step::forward(*a)
                }
                (PathStep::Inverse(a), Dir::Forward) | (PathStep::Forward(a), Dir::Inverse) => {
                    Step::inverse(*a)
                }
            };
            match dir {
                Dir::Forward => path.iter().map(hop).collect(),
                Dir::Inverse => path.iter().rev().map(hop).collect(),
            }
        }
        PathExpr::Union(alts) => vec![Step::Union(
            alts.iter().map(|alt| compile_rule(alt, dir)).collect(),
        )],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use semex_extract::{bibtex::extract_bibtex, ExtractContext};
    use semex_store::{SourceInfo, SourceKind};

    fn store() -> Store {
        let mut st = Store::with_builtin_model();
        let src = st.register_source(SourceInfo::new("t", SourceKind::Synthetic));
        let mut ctx = ExtractContext::new(&mut st, src);
        extract_bibtex(
            "@inproceedings{a, title={Paper One}, author={Ann Walker and Bob Fisher}, booktitle={SIGMOD}, year=2004}",
            &mut ctx,
        )
        .unwrap();
        st
    }

    #[test]
    fn parses_the_motivating_query() {
        let st = store();
        let plan = parse(
            &st,
            r#"Person("Ann Walker") <-Sender [date in 1100..1200] ->Recipient ->CoAuthor <-AuthoredBy"#,
        )
        .unwrap();
        // Start + 3 plain hops + filter + the CoAuthor rule inlined.
        assert!(matches!(plan.start, Start::Labeled(..)));
        assert!(plan.steps.len() >= 4);
        // Canonical encoding is stable under re-parse... of rendered ids;
        // spacing and sugar normalize away.
        let c = plan.canonical(st.model());
        assert!(c.starts_with(
            "pathq1 Person(\"Ann Walker\") <-Sender [date in 1100..1200] ->Recipient"
        ));
    }

    #[test]
    fn parses_every_step_form() {
        let st = store();
        for text in [
            "*",
            "Publication",
            "o0",
            "* :Person",
            "Publication ->AuthoredBy#3",
            "Publication ->Cites*5",
            "Publication (->AuthoredBy|->PublishedIn)",
            "Publication (->Cites)*2",
            "Publication ?(->PublishedIn)",
            "Publication {->Cites}*4",
            "Publication [year>=2004] [year<=2005] [title~paper] [title=\"Paper One\"] [year in 2004..]",
            "Person ->CoAuthor",
            "Person <-CoAuthor",
        ] {
            parse(&st, text).unwrap_or_else(|e| panic!("{text}: {e}"));
        }
    }

    #[test]
    fn hops_use_forward_names_in_both_directions() {
        // `AuthorOf` is only a display label; both directions of the hop
        // use the association's forward name.
        let st = store();
        assert!(parse(&st, "Person <-AuthoredBy").is_ok());
        assert!(parse(&st, "Person <-AuthorOf").is_err());
    }

    #[test]
    fn rejects_unknowns_with_positions() {
        let st = store();
        for (text, needle) in [
            ("Bogus", "unknown class"),
            ("Person ->Bogus", "unknown association"),
            ("Person [bogus=1]", "unknown attribute"),
            ("Person :Bogus", "unknown class"),
            ("o999999", "no object"),
            ("Person ->AuthoredBy#0", "fan-out"),
            ("Person {->CoAuthor}*0", "repeat depth"),
            ("Person ->", "name"),
            ("Person [year in ..", "expected ']'"),
            ("", "start term"),
            ("Person )", "unexpected"),
        ] {
            let err = parse(&st, text).unwrap_err();
            assert!(
                err.message.contains(needle),
                "{text}: got {:?}, wanted {needle:?}",
                err.message
            );
        }
    }
}
