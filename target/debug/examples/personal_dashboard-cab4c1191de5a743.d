/root/repo/target/debug/examples/personal_dashboard-cab4c1191de5a743.d: examples/personal_dashboard.rs Cargo.toml

/root/repo/target/debug/examples/libpersonal_dashboard-cab4c1191de5a743.rmeta: examples/personal_dashboard.rs Cargo.toml

examples/personal_dashboard.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
