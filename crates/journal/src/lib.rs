//! # semex-journal
//!
//! Durability for the SEMEX association database: an append-only,
//! checksummed write-ahead log of [`StoreEvent`]s with snapshot + replay
//! crash recovery and fold-into-snapshot compaction.
//!
//! ## Design
//!
//! The store records every mutation as a [`StoreEvent`]. A [`Journal`]
//! drains that buffer on [`commit`](Journal::commit) and appends one
//! length-prefixed, CRC32-checksummed record per event to the current
//! segment file, fsyncing once per commit. Segments rotate at a
//! configurable size.
//!
//! Recovery ([`recover`] / [`DurableStore::open`]) loads the newest
//! snapshot and replays its epoch's segments in order. A torn or corrupt
//! record does not fail recovery: replay stops there, the damaged tail is
//! truncated, and everything up to the damage point is recovered —
//! exactly the contract of a write-ahead log after a crash.
//!
//! Compaction ([`DurableStore::compact`]) folds the journal into a fresh
//! snapshot under the next *epoch* and deletes the old epoch's files. The
//! epoch lives in every file name and segment header, so a crash at any
//! point of compaction leaves at most stale files that recovery ignores.
//!
//! ```no_run
//! use semex_journal::{DurableStore, JournalConfig};
//! # fn main() -> Result<(), semex_journal::JournalError> {
//! let (mut durable, report) = DurableStore::open("space.journal", JournalConfig::default())?;
//! assert!(report.damage.is_none());
//! let person = durable.store().model().class(semex_model::names::class::PERSON).unwrap();
//! let alice = durable.store_mut().add_object(person);
//! durable.commit()?; // events are on disk once this returns
//! # Ok(()) }
//! ```
#![warn(missing_docs)]

mod crc32;
pub mod export;
pub mod io;
pub mod journal;
pub mod record;
pub mod segment;

pub use export::{
    export_bootstrap, export_tail, install_snapshot, read_ack_cursors, write_ack_cursors,
    ExportedBatch, JournalTail,
};
pub use io::{FaultIo, FaultPlan, JournalFile, JournalIo, RealIo};
pub use journal::{
    recover, recover_or_adopt, recover_or_adopt_with_io, recover_with_io, CompactionReport, Damage,
    DamageKind, ErrorClass, Journal, JournalConfig, JournalError, RecoveryReport,
};
pub use segment::SnapshotFormat;

use semex_store::{Store, StoreEvent};
use std::path::Path;
use std::sync::Arc;

/// A [`Store`] paired with its [`Journal`]: every mutation made through
/// [`store_mut`](DurableStore::store_mut) is buffered as events, and
/// [`commit`](DurableStore::commit) makes them durable.
#[derive(Debug)]
pub struct DurableStore {
    store: Store,
    journal: Journal,
}

impl DurableStore {
    /// Open (or initialize) the journal directory at `dir` and recover the
    /// store from snapshot + replay. Event recording is enabled on the
    /// returned store.
    pub fn open(
        dir: impl AsRef<Path>,
        config: JournalConfig,
    ) -> Result<(DurableStore, RecoveryReport), JournalError> {
        let (mut store, journal, report) = recover(dir.as_ref(), config)?;
        store.enable_events();
        Ok((DurableStore { store, journal }, report))
    }

    /// Like [`open`](DurableStore::open), but when the directory is empty
    /// it is initialized with `initial` (e.g. a store built by the
    /// pipeline) instead of an empty builtin-model store. When the
    /// directory already holds a journal, `initial` is ignored and the
    /// journaled state wins.
    pub fn open_with(
        dir: impl AsRef<Path>,
        config: JournalConfig,
        initial: Store,
    ) -> Result<(DurableStore, RecoveryReport), JournalError> {
        let (mut store, journal, report) = recover_or_adopt(dir.as_ref(), config, initial)?;
        store.enable_events();
        Ok((DurableStore { store, journal }, report))
    }

    /// Like [`open`](DurableStore::open), but performing all file access
    /// through an explicit [`JournalIo`] implementation — fault injection
    /// in tests, instrumentation in benchmarks.
    pub fn open_with_io(
        dir: impl AsRef<Path>,
        config: JournalConfig,
        io: Arc<dyn JournalIo>,
    ) -> Result<(DurableStore, RecoveryReport), JournalError> {
        let (mut store, journal, report) = recover_with_io(dir.as_ref(), config, io)?;
        store.enable_events();
        Ok((DurableStore { store, journal }, report))
    }

    /// Read access to the store.
    pub fn store(&self) -> &Store {
        &self.store
    }

    /// Mutable access to the store. Mutations are buffered as events;
    /// call [`commit`](DurableStore::commit) to make them durable.
    pub fn store_mut(&mut self) -> &mut Store {
        &mut self.store
    }

    /// The underlying journal.
    pub fn journal(&self) -> &Journal {
        &self.journal
    }

    /// Events buffered since the last commit.
    pub fn pending_events(&self) -> usize {
        self.store.pending_events()
    }

    /// Append all buffered events to the journal and fsync. Returns the
    /// number of events made durable.
    pub fn commit(&mut self) -> Result<usize, JournalError> {
        self.journal.commit(&mut self.store)
    }

    /// Commit any buffered events, then fold the whole journal into a new
    /// snapshot and delete the old epoch's files.
    pub fn compact(&mut self) -> Result<CompactionReport, JournalError> {
        self.commit()?;
        self.journal.compact(&self.store)
    }

    /// Split into the recovered store and journal.
    pub fn into_parts(self) -> (Store, Journal) {
        (self.store, self.journal)
    }
}

/// Re-exported for convenience: journal records are serialized store events.
pub type Event = StoreEvent;
