#![warn(missing_docs)]

//! Shared harness code for the SEMEX benchmarks and experiments: corpus
//! extraction, ground-truth labelling, and table formatting.
//!
//! The `experiments` binary in this crate regenerates every table and
//! figure of the evaluation (see `DESIGN.md` for the experiment index and
//! `EXPERIMENTS.md` for recorded results); the Criterion benches cover the
//! performance-sensitive paths (reconciliation, search, browsing,
//! extraction).

use semex_corpus::{EntityKind, GroundTruth, PersonalCorpus};
use semex_extract::{
    bibtex::extract_bibtex, email::extract_mbox, html::extract_html, ical::extract_ical,
    latex::extract_latex, vcard::extract_vcards, ExtractContext,
};
use semex_model::names::{attr, class};
use semex_store::{ObjectId, SourceInfo, SourceKind, Store};
use std::collections::HashMap;

/// Extract a rendered corpus directly from its in-memory files (no disk
/// round-trip): bibliographies first so LaTeX citations resolve, web pages
/// last so name-mention spotting sees every person. Each file registers
/// its own provenance source, like a real per-file desktop deployment.
pub fn extract_corpus(corpus: &PersonalCorpus) -> Store {
    let mut st = Store::with_builtin_model();
    let seed = st.register_source(SourceInfo::new("corpus", SourceKind::Synthetic));
    let mut sources: HashMap<&str, semex_store::SourceId> = HashMap::new();
    for (path, _) in &corpus.files {
        let kind = match path.rsplit('.').next().unwrap_or("") {
            "bib" => SourceKind::Bibliography,
            "mbox" | "eml" => SourceKind::Email,
            "vcf" => SourceKind::Contacts,
            "ics" => SourceKind::Calendar,
            "tex" => SourceKind::Latex,
            "html" | "htm" => SourceKind::FileSystem,
            _ => SourceKind::Synthetic,
        };
        sources.insert(
            path.as_str(),
            st.register_source(SourceInfo::new(path, kind)),
        );
    }
    let mut ctx = ExtractContext::new(&mut st, seed);
    for (path, content) in &corpus.files {
        if path.ends_with(".bib") {
            ctx.set_source(sources[path.as_str()]);
            extract_bibtex(content, &mut ctx).expect("generated bibtex parses");
        }
    }
    for (path, content) in &corpus.files {
        ctx.set_source(sources[path.as_str()]);
        if path.ends_with(".mbox") || path.ends_with(".eml") {
            extract_mbox(content, &mut ctx).expect("generated mbox parses");
        } else if path.ends_with(".vcf") {
            extract_vcards(content, &mut ctx).expect("generated vcards parse");
        } else if path.ends_with(".ics") {
            extract_ical(content, &mut ctx).expect("generated calendar parses");
        } else if path.ends_with(".tex") {
            extract_latex(content, &mut ctx).expect("generated latex parses");
        }
    }
    // Web pages last, so mention spotting sees every extracted person.
    for (path, content) in &corpus.files {
        if path.ends_with(".html") || path.ends_with(".htm") {
            ctx.set_source(sources[path.as_str()]);
            extract_html(content, &format!("file://{path}"), &mut ctx)
                .expect("generated html parses");
        }
    }
    st
}

/// Extract a standalone BibTeX string (used for the Cora corpus).
pub fn extract_bib_str(bib: &str) -> Store {
    let mut st = Store::with_builtin_model();
    let src = st.register_source(SourceInfo::new("cora", SourceKind::Bibliography));
    let mut ctx = ExtractContext::new(&mut st, src);
    extract_bibtex(bib, &mut ctx).expect("generated bibtex parses");
    st
}

/// Label every reconcilable reference with its true entity, encoded as
/// `kind_tag << 32 | entity_id`. References whose surface forms the oracle
/// does not know stay unlabelled (and are excluded from metrics).
pub fn label_references(store: &Store, truth: &GroundTruth) -> HashMap<ObjectId, u64> {
    let model = store.model();
    let a_name = model.attr(attr::NAME).expect("builtin");
    let a_email = model.attr(attr::EMAIL).expect("builtin");
    let a_title = model.attr(attr::TITLE).expect("builtin");
    let mut labels = HashMap::new();
    let kinds = [
        (class::PERSON, EntityKind::Person, 1u64),
        (class::PUBLICATION, EntityKind::Publication, 2),
        (class::VENUE, EntityKind::Venue, 3),
        (class::ORGANIZATION, EntityKind::Organization, 4),
    ];
    for (cname, kind, tag) in kinds {
        let cid = model.class(cname).expect("builtin");
        for obj in store.objects_of_class(cid) {
            let o = store.object(obj);
            let mut entity = None;
            if kind == EntityKind::Person {
                entity = o.strs(a_email).find_map(|e| truth.entity_of(kind, e));
            }
            if entity.is_none() {
                let a = if kind == EntityKind::Publication {
                    a_title
                } else {
                    a_name
                };
                entity = o.strs(a).find_map(|f| truth.entity_of(kind, f));
            }
            if let Some(e) = entity {
                labels.insert(obj, (tag << 32) | e as u64);
            }
        }
    }
    labels
}

/// Per-class labels for per-class metrics: keep only labels whose kind tag
/// matches.
pub fn labels_of_kind(labels: &HashMap<ObjectId, u64>, tag: u64) -> HashMap<ObjectId, u64> {
    labels
        .iter()
        .filter(|(_, &l)| l >> 32 == tag)
        .map(|(&o, &l)| (o, l))
        .collect()
}

/// Minimal aligned-column table printer for experiment output.
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// A table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        TextTable {
            header: header.iter().map(|s| (*s).to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header width).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::from("| ");
            for (c, w) in cells.iter().zip(widths) {
                line.push_str(&format!("{c:<w$} | "));
            }
            line.trim_end().to_owned()
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        out.push_str(&fmt_row(&sep, &widths));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use semex_corpus::{generate_personal, CorpusConfig};

    #[test]
    fn extraction_and_labels_cover_most_references() {
        let corpus = generate_personal(&CorpusConfig::tiny(5));
        let store = extract_corpus(&corpus);
        let labels = label_references(&store, &corpus.truth);
        let c_person = store.model().class(class::PERSON).unwrap();
        let persons = store.class_count(c_person);
        let person_labels = labels_of_kind(&labels, 1).len();
        assert!(persons > 0);
        assert!(
            person_labels as f64 >= persons as f64 * 0.9,
            "{person_labels}/{persons} labelled"
        );
    }

    #[test]
    fn table_renders_aligned() {
        let mut t = TextTable::new(&["variant", "f1"]);
        t.row(vec!["attr-only".into(), "0.90".into()]);
        t.row(vec!["full".into(), "0.95".into()]);
        let s = t.render();
        assert!(s.contains("| attr-only | 0.90 |"));
        assert_eq!(s.lines().count(), 4);
    }
}
