/root/repo/target/debug/deps/parallel_equiv-0b06ddbc5c628e8a.d: crates/recon/tests/parallel_equiv.rs

/root/repo/target/debug/deps/libparallel_equiv-0b06ddbc5c628e8a.rmeta: crates/recon/tests/parallel_equiv.rs

crates/recon/tests/parallel_equiv.rs:
