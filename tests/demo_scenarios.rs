//! The SIGMOD 2005 demonstration script, as an executable test: the three
//! scenarios the paper walks the audience through, in order, on a
//! generated personal information space.

mod common;

use semex::corpus::{generate_personal, CorpusConfig};
use semex::SemexBuilder;

#[test]
fn the_demo_script() {
    // Setup: SEMEX is pointed at the user's desktop.
    let corpus = generate_personal(&CorpusConfig::tiny(2005).scaled_size(1.5));
    let dir = std::env::temp_dir().join(format!("semex-demo-script-{}", std::process::id()));
    corpus.write_to(&dir).unwrap();
    let mut semex = SemexBuilder::new()
        .add_directory("desktop", &dir)
        .build()
        .unwrap();
    std::fs::remove_dir_all(&dir).ok();
    let recon = semex.report().recon.as_ref().unwrap();
    assert!(
        recon.merges > 0,
        "the audience first sees reconciliation consolidate the reference soup"
    );

    // ---------------------------------------------------------------
    // Scenario 1 — search lands on a single reconciled object.
    // ---------------------------------------------------------------
    let protagonist = &corpus.world.people[0];
    let hits = semex.search(&format!("class:Person {}", protagonist.canonical_name()), 5);
    assert!(!hits.is_empty(), "searching a person's name finds them");
    let person = hits[0].object;
    let view = semex.view(person);
    assert_eq!(view.class, "Person");
    assert!(
        !view.sources.is_empty(),
        "the object view shows where SEMEX knows this from"
    );

    // ---------------------------------------------------------------
    // Scenario 2 — browse by association from that object.
    // ---------------------------------------------------------------
    let browser = semex.browser();
    let neighborhood = browser.neighborhood_summary(person);
    assert!(
        !neighborhood.is_empty(),
        "every person in a personal space has associations"
    );
    // Derived associations evaluate on the fly.
    let coauthors = browser.derived_by_name(person, "CoAuthor").unwrap();
    let correspondents = browser.derived_by_name(person, "CorrespondedWith").unwrap();
    assert!(
        !coauthors.is_empty() || !correspondents.is_empty(),
        "the protagonist has co-authors or correspondents to click through"
    );

    // ---------------------------------------------------------------
    // Scenario 3 — a new source arrives and is integrated on the fly.
    // ---------------------------------------------------------------
    let known = &corpus.world.people[1];
    let csv = format!(
        "participant,mail\n{},{}\nBrand New Visitor,new@elsewhere.example\n",
        known.canonical_name(),
        known.emails[0]
    );
    let people_class = semex.store().model().class("Person").unwrap();
    let before = semex.store().class_count(people_class);
    let (confidence, report) = semex.integrate("workshop.csv", &csv).unwrap().unwrap();
    assert!(confidence > 0.5, "schema matched without user mapping");
    assert_eq!(report.created, 2);
    assert_eq!(
        report.merged_into_existing, 1,
        "the known participant folded into their existing object"
    );
    assert!(
        semex.store().class_count(people_class) <= before + 1,
        "at most the visitor is new"
    );
    assert_eq!(
        semex.search("class:Person visitor", 5).len(),
        1,
        "and the import is immediately searchable"
    );

    // Finale — the audience asks "where does SEMEX know that from?"
    let facts = semex.explain(person);
    assert!(!facts.is_empty(), "every fact carries provenance");
}
