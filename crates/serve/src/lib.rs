#![warn(missing_docs)]

//! `semex-serve`: a concurrent query service over a SEMEX platform.
//!
//! The desktop SEMEX of the paper is single-user; this crate makes one
//! platform instance serve many concurrent sessions with three ideas:
//!
//! 1. **Snapshot-isolated reads.** Reads never touch the live platform.
//!    The writer publishes immutable [`semex_core::Snapshot`]s behind an
//!    `Arc` (see [`SnapshotEngine`]); a reader pins one epoch per request
//!    and queries it lock-free, so searches and browses proceed at full
//!    parallelism while writes commit — and never observe a half-applied
//!    batch.
//! 2. **A serialized, coalescing write path.** All mutations funnel
//!    through one writer thread that owns the [`Master`]. Queued writes
//!    are drained in batches: N writes cost one index refresh, one journal
//!    fsync, and one snapshot publication. Acks carry the publication
//!    epoch and are sent only after the commit, so an acknowledged write
//!    is both immediately readable and crash-durable.
//! 3. **Admission control.** Bounded connection and write queues shed
//!    excess load with typed `overloaded` responses instead of stalling or
//!    growing without bound.
//!
//! The wire protocol ([`protocol`]) is length-prefixed JSON over TCP —
//! std-only, like the whole crate (the [`json`] module is a self-contained
//! codec). Start a server with [`serve`], talk to it with [`Client`] or
//! the `semex serve` / `semex client` CLI subcommands, and stop it with a
//! `shutdown` request or [`ServeHandle::shutdown`]; [`ServeHandle::join`]
//! returns every thread and hands back the final [`Master`] state.

pub mod json;
pub mod protocol;

mod client;
mod engine;
mod master;
mod server;
mod writer;

pub use client::Client;
pub use engine::{EpochSnapshot, SnapshotEngine};
pub use master::Master;
pub use server::{serve, ServeConfig, ServeHandle, ServeReport};
pub use writer::{Applied, WriteCommand, WriterReport};
