/root/repo/target/debug/deps/pipeline_e2e-cdec390fc47f96e6.d: tests/pipeline_e2e.rs tests/common/mod.rs Cargo.toml

/root/repo/target/debug/deps/libpipeline_e2e-cdec390fc47f96e6.rmeta: tests/pipeline_e2e.rs tests/common/mod.rs Cargo.toml

tests/pipeline_e2e.rs:
tests/common/mod.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
