/root/repo/target/release/deps/serde-7b99b9f9a3c46df7.d: third_party/serde/src/lib.rs

/root/repo/target/release/deps/libserde-7b99b9f9a3c46df7.rlib: third_party/serde/src/lib.rs

/root/repo/target/release/deps/libserde-7b99b9f9a3c46df7.rmeta: third_party/serde/src/lib.rs

third_party/serde/src/lib.rs:
