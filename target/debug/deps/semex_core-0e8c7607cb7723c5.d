/root/repo/target/debug/deps/semex_core-0e8c7607cb7723c5.d: crates/core/src/lib.rs crates/core/src/facade.rs crates/core/src/pipeline.rs Cargo.toml

/root/repo/target/debug/deps/libsemex_core-0e8c7607cb7723c5.rmeta: crates/core/src/lib.rs crates/core/src/facade.rs crates/core/src/pipeline.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/facade.rs:
crates/core/src/pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
