/root/repo/target/debug/deps/semex_bench-45c64d78bc3d44b4.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libsemex_bench-45c64d78bc3d44b4.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libsemex_bench-45c64d78bc3d44b4.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
