/root/repo/target/debug/deps/index_props-9bbddf4cc2b9cb3b.d: crates/index/tests/index_props.rs

/root/repo/target/debug/deps/libindex_props-9bbddf4cc2b9cb3b.rmeta: crates/index/tests/index_props.rs

crates/index/tests/index_props.rs:
