//! BibTeX bibliography extraction.
//!
//! A from-scratch BibTeX parser handling brace-delimited and quote-delimited
//! field values with arbitrary brace nesting, numeric values, `and`-separated
//! author lists in both `First Last` and `Last, First` forms, and the
//! `@string` / `@comment` / `@preamble` directives (skipped). Each entry
//! yields a `Publication` reference (title, year, pages), `Person`
//! references with `AuthoredBy` edges, and a `Venue` reference (from
//! `booktitle` or `journal`) with a `PublishedIn` edge. Entry keys are
//! registered with the context so LaTeX `\cite` commands can resolve to the
//! same publications.

use crate::{ExtractContext, ExtractError, ExtractStats};
use semex_model::names::assoc as assoc_names;
use semex_model::names::attr;
use semex_model::Value;

/// One parsed BibTeX entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Entry {
    /// Entry type, lowercase (`article`, `inproceedings`, …).
    pub kind: String,
    /// Citation key.
    pub key: String,
    /// `(field-name-lowercase, value)` pairs with delimiters stripped.
    pub fields: Vec<(String, String)>,
}

impl Entry {
    /// First value of a field (case-insensitive name).
    pub fn field(&self, name: &str) -> Option<&str> {
        self.fields
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Split an author field on top-level `" and "` separators.
pub fn split_authors(s: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut depth = 0i32;
    let chars: Vec<char> = s.chars().collect();
    let mut start = 0;
    let mut i = 0;
    while i < chars.len() {
        match chars[i] {
            '{' => depth += 1,
            '}' => depth -= 1,
            'a' | 'A' if depth == 0 => {
                // match " and " word boundary
                let is_boundary = i >= 1 && chars[i - 1].is_whitespace();
                if is_boundary
                    && i + 3 < chars.len()
                    && chars[i + 1].eq_ignore_ascii_case(&'n')
                    && chars[i + 2].eq_ignore_ascii_case(&'d')
                    && chars[i + 3].is_whitespace()
                {
                    let piece: String = chars[start..i - 1].iter().collect();
                    if !piece.trim().is_empty() {
                        out.push(clean_braces(piece.trim()));
                    }
                    i += 4;
                    start = i;
                    continue;
                }
            }
            _ => {}
        }
        i += 1;
    }
    let piece: String = chars[start..].iter().collect();
    if !piece.trim().is_empty() {
        out.push(clean_braces(piece.trim()));
    }
    out
}

/// Strip protective braces and collapse whitespace.
fn clean_braces(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        if c != '{' && c != '}' {
            out.push(c);
        }
    }
    out.split_whitespace().collect::<Vec<_>>().join(" ")
}

/// Normalize an author name to display order (`"Last, First"` → `"First
/// Last"`).
pub fn author_display(s: &str) -> String {
    match s.split_once(',') {
        Some((last, first)) => format!("{} {}", first.trim(), last.trim()),
        None => s.trim().to_owned(),
    }
}

struct Parser<'a> {
    input: &'a [u8],
    pos: usize,
    line: usize,
}

impl<'a> Parser<'a> {
    fn new(input: &'a str) -> Self {
        Parser {
            input: input.as_bytes(),
            pos: 0,
            line: 1,
        }
    }

    fn err(&self, reason: impl Into<String>) -> ExtractError {
        ExtractError::Malformed {
            format: "bibtex",
            line: Some(self.line),
            reason: reason.into(),
        }
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.input.get(self.pos).copied();
        if let Some(b'\n') = b {
            self.line += 1;
        }
        if b.is_some() {
            self.pos += 1;
        }
        b
    }

    fn peek(&self) -> Option<u8> {
        self.input.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b) if b.is_ascii_whitespace()) {
            self.bump();
        }
    }

    fn ident(&mut self) -> String {
        let start = self.pos;
        while matches!(self.peek(), Some(b) if b.is_ascii_alphanumeric() || b"_-:.+/'".contains(&b))
        {
            self.pos += 1;
        }
        String::from_utf8_lossy(&self.input[start..self.pos]).into_owned()
    }

    /// Read a `{...}`-balanced or `"..."` or bare value.
    fn value(&mut self) -> Result<String, ExtractError> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => {
                self.bump();
                let start = self.pos;
                let mut depth = 1;
                loop {
                    match self.bump() {
                        Some(b'{') => depth += 1,
                        Some(b'}') => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        Some(_) => {}
                        None => return Err(self.err("unterminated braced value")),
                    }
                }
                Ok(clean_braces(&String::from_utf8_lossy(
                    &self.input[start..self.pos - 1],
                )))
            }
            Some(b'"') => {
                self.bump();
                let start = self.pos;
                loop {
                    match self.bump() {
                        Some(b'"') => break,
                        Some(_) => {}
                        None => return Err(self.err("unterminated quoted value")),
                    }
                }
                Ok(clean_braces(&String::from_utf8_lossy(
                    &self.input[start..self.pos - 1],
                )))
            }
            Some(b) if b.is_ascii_alphanumeric() => Ok(self.ident()),
            _ => Err(self.err("expected a field value")),
        }
    }

    fn entry(&mut self) -> Result<Option<Entry>, ExtractError> {
        // Scan to the next '@'.
        while let Some(b) = self.peek() {
            if b == b'@' {
                break;
            }
            self.bump();
        }
        if self.peek().is_none() {
            return Ok(None);
        }
        self.bump(); // '@'
        let kind = self.ident().to_lowercase();
        if kind.is_empty() {
            return Err(self.err("missing entry type after '@'"));
        }
        self.skip_ws();
        // Directives without bodies we care about.
        if kind == "comment" || kind == "preamble" || kind == "string" {
            // Skip the balanced body if present.
            if matches!(self.peek(), Some(b'{') | Some(b'(')) {
                let open = self.bump().unwrap();
                let close = if open == b'{' { b'}' } else { b')' };
                let mut depth = 1;
                while depth > 0 {
                    match self.bump() {
                        Some(b) if b == open => depth += 1,
                        Some(b) if b == close => depth -= 1,
                        Some(_) => {}
                        None => return Err(self.err("unterminated directive")),
                    }
                }
            }
            return self.entry();
        }
        match self.peek() {
            Some(b'{') | Some(b'(') => {
                self.bump();
            }
            _ => return Err(self.err(format!("expected '{{' after @{kind}"))),
        }
        self.skip_ws();
        let key = self.ident();
        if key.is_empty() {
            return Err(self.err("missing citation key"));
        }
        let mut fields = Vec::new();
        loop {
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.bump();
                    self.skip_ws();
                }
                Some(b'}') | Some(b')') => {
                    self.bump();
                    break;
                }
                None => return Err(self.err("unterminated entry")),
                _ => {}
            }
            self.skip_ws();
            if matches!(self.peek(), Some(b'}') | Some(b')')) {
                self.bump();
                break;
            }
            let name = self.ident().to_lowercase();
            if name.is_empty() {
                return Err(self.err("expected a field name"));
            }
            self.skip_ws();
            if self.peek() != Some(b'=') {
                return Err(self.err(format!("expected '=' after field {name}")));
            }
            self.bump();
            let value = self.value()?;
            fields.push((name, value));
        }
        Ok(Some(Entry { kind, key, fields }))
    }
}

/// Parse all entries of a BibTeX file.
pub fn parse_bibtex(input: &str) -> Result<Vec<Entry>, ExtractError> {
    let mut p = Parser::new(input);
    let mut out = Vec::new();
    while let Some(e) = p.entry()? {
        out.push(e);
    }
    Ok(out)
}

/// Extract a BibTeX file into the context's store.
pub fn extract_bibtex(
    input: &str,
    ctx: &mut ExtractContext<'_>,
) -> Result<ExtractStats, ExtractError> {
    let before = ctx.stats;
    let a_year = ctx.attr(attr::YEAR);
    let a_pages = ctx.attr(attr::PAGES);

    for entry in parse_bibtex(input)? {
        let Some(title) = entry.field("title") else {
            ctx.stats.skipped += 1;
            continue;
        };
        ctx.stats.records += 1;
        let mut extra = Vec::new();
        if let Some(y) = entry.field("year").and_then(|y| y.parse::<i64>().ok()) {
            extra.push((a_year, Value::Int(y)));
        }
        if let Some(p) = entry.field("pages") {
            extra.push((a_pages, Value::from(p)));
        }
        let pubn = ctx.publication(title, &extra)?;
        ctx.register_bib_key(&entry.key, pubn);

        if let Some(authors) = entry.field("author") {
            for raw in split_authors(authors) {
                // Keep the raw surface form ("Last, First" stays as
                // written): normalizing here would silently pre-reconcile
                // name variants that the reconciliation engine is supposed
                // to handle (and be measured on).
                if let Some(p) = ctx.person(Some(&raw), None)? {
                    ctx.link_named(pubn, assoc_names::AUTHORED_BY, p)?;
                }
            }
        }
        let venue_name = entry.field("booktitle").or_else(|| entry.field("journal"));
        if let Some(v) = venue_name {
            if !v.trim().is_empty() {
                let venue = ctx.venue(v)?;
                ctx.link_named(pubn, assoc_names::PUBLISHED_IN, venue)?;
            }
        }
    }

    Ok(ExtractStats {
        records: ctx.stats.records - before.records,
        objects: ctx.stats.objects - before.objects,
        triples: ctx.stats.triples - before.triples,
        skipped: ctx.stats.skipped - before.skipped,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use semex_model::names::{assoc, class};
    use semex_store::{SourceInfo, SourceKind, Store};

    const SAMPLE: &str = r#"
% a comment line
@string{sigmod = "SIGMOD Conference"}

@inproceedings{dong05,
  title     = {Reference Reconciliation in Complex Information Spaces},
  author    = {Dong, Xin and Halevy, Alon and Madhavan, Jayant},
  booktitle = {Proceedings of the {ACM} {SIGMOD} Conference},
  year      = 2005,
  pages     = {85--96},
}

@article{carey95,
  title   = "Towards Heterogeneous Multimedia Information Systems",
  author  = {Michael J. Carey and Laura M. Haas},
  journal = {RIDE},
  year    = {1995}
}

@misc{nokey-title,
  author = {Somebody},
  year = 2001
}
"#;

    #[test]
    fn parse_entries() {
        let entries = parse_bibtex(SAMPLE).unwrap();
        assert_eq!(entries.len(), 3);
        assert_eq!(entries[0].kind, "inproceedings");
        assert_eq!(entries[0].key, "dong05");
        assert_eq!(
            entries[0].field("title"),
            Some("Reference Reconciliation in Complex Information Spaces")
        );
        assert_eq!(entries[0].field("year"), Some("2005"));
        assert_eq!(entries[0].field("pages"), Some("85--96"));
        assert_eq!(
            entries[0].field("booktitle"),
            Some("Proceedings of the ACM SIGMOD Conference")
        );
        assert_eq!(entries[1].field("journal"), Some("RIDE"));
    }

    #[test]
    fn author_splitting() {
        assert_eq!(
            split_authors("Dong, Xin and Halevy, Alon and Madhavan, Jayant"),
            vec!["Dong, Xin", "Halevy, Alon", "Madhavan, Jayant"]
        );
        assert_eq!(
            split_authors("Michael J. Carey and Laura M. Haas"),
            vec!["Michael J. Carey", "Laura M. Haas"]
        );
        // Braces protect an "and" inside a corporate author.
        assert_eq!(
            split_authors("{Barns and Noble Inc.} and Ann Smith"),
            vec!["Barns and Noble Inc.", "Ann Smith"]
        );
        assert_eq!(author_display("Dong, Xin"), "Xin Dong");
        assert_eq!(author_display("Xin Dong"), "Xin Dong");
    }

    #[test]
    fn extraction_builds_graph() {
        let mut st = Store::with_builtin_model();
        let src = st.register_source(SourceInfo::new("refs.bib", SourceKind::Bibliography));
        let mut ctx = ExtractContext::new(&mut st, src);
        let stats = extract_bibtex(SAMPLE, &mut ctx).unwrap();
        assert_eq!(stats.records, 2);
        assert_eq!(stats.skipped, 1); // the title-less @misc

        assert!(ctx.publication_by_key("dong05").is_some());
        assert!(ctx.publication_by_key("carey95").is_some());

        let model = st.model();
        assert_eq!(st.class_count(model.class(class::PUBLICATION).unwrap()), 2);
        assert_eq!(st.class_count(model.class(class::PERSON).unwrap()), 5);
        assert_eq!(st.class_count(model.class(class::VENUE).unwrap()), 2);
        assert_eq!(st.assoc_count(model.assoc(assoc::AUTHORED_BY).unwrap()), 5);
        assert_eq!(st.assoc_count(model.assoc(assoc::PUBLISHED_IN).unwrap()), 2);
    }

    #[test]
    fn malformed_inputs_error_with_line() {
        let err = parse_bibtex("@inproceedings{x, title = {unterminated").unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("bibtex"), "{msg}");
        assert!(parse_bibtex("@{nokind}").is_err());
        assert!(parse_bibtex("@article nokey").is_err());
        // Plain prose without '@' is fine (zero entries).
        assert!(parse_bibtex("no entries here").unwrap().is_empty());
    }

    #[test]
    fn paren_delimited_entries() {
        let entries = parse_bibtex("@article(k, title = {T}, year = 1999)").unwrap();
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].field("title"), Some("T"));
    }
}
