/root/repo/target/debug/deps/extract-45622a08dc0db181.d: crates/bench/benches/extract.rs

/root/repo/target/debug/deps/libextract-45622a08dc0db181.rmeta: crates/bench/benches/extract.rs

crates/bench/benches/extract.rs:
