//! The ground-truth oracle: surface form → true entity.

use std::collections::HashMap;

/// The kinds of reconcilable entities the generators label.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EntityKind {
    /// A real person.
    Person,
    /// A real publication.
    Publication,
    /// A publication venue.
    Venue,
    /// An organization.
    Organization,
}

/// Maps every surface form the generator emitted (name spelling, e-mail
/// address, title variant, …) to the id of the true entity it denotes.
///
/// The generator guarantees the map is *functional*: a form is never reused
/// for two different entities (colliding variants are rejected at generation
/// time), so evaluation can label extracted references unambiguously.
#[derive(Debug, Clone, Default)]
pub struct GroundTruth {
    forms: HashMap<(EntityKind, String), u32>,
    entity_counts: HashMap<EntityKind, u32>,
}

impl GroundTruth {
    /// An empty oracle.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record how many true entities of each kind exist.
    pub fn set_entity_count(&mut self, kind: EntityKind, count: u32) {
        self.entity_counts.insert(kind, count);
    }

    /// Number of true entities of a kind.
    pub fn entity_count(&self, kind: EntityKind) -> u32 {
        self.entity_counts.get(&kind).copied().unwrap_or(0)
    }

    /// Try to bind `form` (case-insensitive) to `entity`. Returns `false`
    /// when the form is already bound to a *different* entity — the caller
    /// must then pick another variant. Binding the same pair twice is fine.
    pub fn assign(&mut self, kind: EntityKind, form: &str, entity: u32) -> bool {
        let key = (kind, form.trim().to_lowercase());
        match self.forms.get(&key) {
            Some(&e) => e == entity,
            None => {
                self.forms.insert(key, entity);
                true
            }
        }
    }

    /// Whether a form is free or already owned by `entity`.
    pub fn available(&self, kind: EntityKind, form: &str, entity: u32) -> bool {
        match self.forms.get(&(kind, form.trim().to_lowercase())) {
            Some(&e) => e == entity,
            None => true,
        }
    }

    /// Resolve a surface form to its true entity.
    pub fn entity_of(&self, kind: EntityKind, form: &str) -> Option<u32> {
        self.forms.get(&(kind, form.trim().to_lowercase())).copied()
    }

    /// Number of recorded forms of a kind.
    pub fn form_count(&self, kind: EntityKind) -> usize {
        self.forms.keys().filter(|(k, _)| *k == kind).count()
    }

    /// Iterate all `(form, entity)` bindings of a kind.
    pub fn forms_of(&self, kind: EntityKind) -> impl Iterator<Item = (&str, u32)> {
        self.forms
            .iter()
            .filter(move |((k, _), _)| *k == kind)
            .map(|((_, f), &e)| (f.as_str(), e))
    }

    /// Merge another oracle into this one (panics on conflicting bindings —
    /// generators must share entity id spaces before merging).
    pub fn absorb(&mut self, other: GroundTruth) {
        for ((kind, form), entity) in other.forms {
            let ok = self.assign(kind, &form, entity);
            assert!(ok, "conflicting ground-truth binding for {form:?}");
        }
        for (kind, count) in other.entity_counts {
            let c = self.entity_counts.entry(kind).or_insert(0);
            *c = (*c).max(count);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assign_is_functional() {
        let mut t = GroundTruth::new();
        assert!(t.assign(EntityKind::Person, "Ann Smith", 1));
        assert!(t.assign(EntityKind::Person, "ann smith", 1), "idempotent");
        assert!(!t.assign(EntityKind::Person, "Ann Smith", 2), "collision");
        assert!(
            t.assign(EntityKind::Publication, "Ann Smith", 2),
            "kinds are separate"
        );
        assert_eq!(t.entity_of(EntityKind::Person, "ANN SMITH "), Some(1));
        assert_eq!(t.entity_of(EntityKind::Person, "nobody"), None);
        assert_eq!(t.form_count(EntityKind::Person), 1);
    }

    #[test]
    fn availability() {
        let mut t = GroundTruth::new();
        t.assign(EntityKind::Venue, "SIGMOD", 3);
        assert!(t.available(EntityKind::Venue, "sigmod", 3));
        assert!(!t.available(EntityKind::Venue, "sigmod", 4));
        assert!(t.available(EntityKind::Venue, "VLDB", 4));
    }

    #[test]
    fn entity_counts() {
        let mut t = GroundTruth::new();
        t.set_entity_count(EntityKind::Person, 42);
        assert_eq!(t.entity_count(EntityKind::Person), 42);
        assert_eq!(t.entity_count(EntityKind::Venue), 0);
    }
}
