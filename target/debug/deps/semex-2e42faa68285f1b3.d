/root/repo/target/debug/deps/semex-2e42faa68285f1b3.d: src/bin/semex.rs

/root/repo/target/debug/deps/semex-2e42faa68285f1b3: src/bin/semex.rs

src/bin/semex.rs:
