/root/repo/target/debug/deps/semex_bench-04a0cef0f4022502.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/semex_bench-04a0cef0f4022502: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
