#![warn(missing_docs)]

//! `semex-serve`: a concurrent, multi-tenant query service over SEMEX
//! personal spaces.
//!
//! The desktop SEMEX of the paper is single-user; this crate makes one
//! process serve many concurrent sessions — across thousands of personal
//! spaces — with four ideas:
//!
//! 1. **Snapshot-isolated reads.** Reads never touch a live platform.
//!    Each tenant's servicing writer publishes immutable
//!    [`semex_core::Snapshot`]s behind an `Arc` (see [`SnapshotEngine`]);
//!    a reader pins one epoch per request and queries it lock-free, so
//!    searches and browses proceed at full parallelism while writes
//!    commit — and never observe a half-applied batch.
//! 2. **Serialized, coalescing write paths.** Each tenant's mutations
//!    funnel through its bounded queue into a shared pool of writer
//!    workers; at most one worker services a tenant at a time, so each
//!    tenant keeps a serialized write path while independent tenants
//!    commit in parallel. Queued writes are drained in batches: N writes
//!    cost one index refresh, one journal fsync, and one snapshot
//!    publication. Acks carry the publication epoch and are sent only
//!    after the commit, so an acknowledged write is both immediately
//!    readable and crash-durable.
//! 3. **Multi-tenancy under a memory budget.** A
//!    [`TenantPool`](semex_tenant::TenantPool) maps tenant ids to
//!    journal directories, recovers cold tenants on first request, and
//!    evicts idle ones LRU-first when the resident set exceeds its
//!    budget — acked-durable-before-ack is what makes eviction safe.
//!    Requests address tenants via the `tenant` field on the request
//!    frame; an absent field means `"default"`, so pre-tenancy clients
//!    work unchanged.
//! 4. **Admission control.** Bounded connection, per-tenant in-flight,
//!    and per-tenant write queues shed excess load with typed
//!    `overloaded` responses instead of stalling or growing without
//!    bound; [`Client::request_with_retry`] turns those refusals into
//!    jittered, capped exponential backoff.
//! 5. **Epoch-keyed read caching.** With a cache budget configured
//!    ([`PoolConfig::cache_budget`] / [`ServeConfig::cache_budget`]),
//!    read answers are cached as encoded frame payloads keyed on
//!    `(tenant, epoch, canonical request)` — immutable snapshots make
//!    such entries *provably* fresh — and concurrent identical misses
//!    coalesce into one evaluation (see [`semex_cache`]). A cached server
//!    answers byte-identically to a cacheless one, epochs included.
//!
//! The wire protocol ([`protocol`]) is length-prefixed JSON over TCP —
//! std-only (the [`json`] module is a self-contained codec) — and
//! versioned: frames carry an optional `v` field, and a foreign version
//! is refused with a typed `unsupported_version` error. Start a
//! single-space server with [`serve`] or a multi-tenant one with
//! [`serve_tenants`], talk to it with [`Client`] or the `semex serve` /
//! `semex client` CLI subcommands, and stop it with a `shutdown` request
//! or [`ServeHandle::shutdown`]; [`ServeHandle::join`] returns every
//! thread and hands back the final state.

pub mod json;
pub mod protocol;

mod client;
mod role;
mod server;
mod writer;

pub use client::{Client, RetryPolicy};
pub use role::{CommitTap, ReplicaRole};
pub use semex_cache::{ReadCache, TenantCacheStats};
pub use semex_tenant::{
    EpochSnapshot, Master, PoolConfig, PoolReport, PoolSnapshot, SnapshotEngine, TenantId,
    TenantRegistry,
};
pub use server::{serve, serve_tenants, ReplicationSink, ServeConfig, ServeHandle, ServeReport};
pub use writer::{Applied, WriteCommand, WriterReport};
