/root/repo/target/debug/deps/recovery-08557fd2442ab121.d: crates/journal/tests/recovery.rs

/root/repo/target/debug/deps/librecovery-08557fd2442ab121.rmeta: crates/journal/tests/recovery.rs

crates/journal/tests/recovery.rs:
