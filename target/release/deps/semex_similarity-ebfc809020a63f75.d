/root/repo/target/release/deps/semex_similarity-ebfc809020a63f75.d: crates/similarity/src/lib.rs crates/similarity/src/corpus.rs crates/similarity/src/edit.rs crates/similarity/src/email.rs crates/similarity/src/jaro.rs crates/similarity/src/name.rs crates/similarity/src/phonetic.rs crates/similarity/src/title.rs crates/similarity/src/tokens.rs crates/similarity/src/venue.rs

/root/repo/target/release/deps/semex_similarity-ebfc809020a63f75: crates/similarity/src/lib.rs crates/similarity/src/corpus.rs crates/similarity/src/edit.rs crates/similarity/src/email.rs crates/similarity/src/jaro.rs crates/similarity/src/name.rs crates/similarity/src/phonetic.rs crates/similarity/src/title.rs crates/similarity/src/tokens.rs crates/similarity/src/venue.rs

crates/similarity/src/lib.rs:
crates/similarity/src/corpus.rs:
crates/similarity/src/edit.rs:
crates/similarity/src/email.rs:
crates/similarity/src/jaro.rs:
crates/similarity/src/name.rs:
crates/similarity/src/phonetic.rs:
crates/similarity/src/title.rs:
crates/similarity/src/tokens.rs:
crates/similarity/src/venue.rs:
