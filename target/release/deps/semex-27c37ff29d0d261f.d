/root/repo/target/release/deps/semex-27c37ff29d0d261f.d: src/bin/semex.rs

/root/repo/target/release/deps/semex-27c37ff29d0d261f: src/bin/semex.rs

src/bin/semex.rs:
