/root/repo/target/debug/deps/semex_model-a273bbacab1fd527.d: crates/model/src/lib.rs crates/model/src/attribute.rs crates/model/src/class.rs crates/model/src/derived.rs crates/model/src/model.rs crates/model/src/relation.rs crates/model/src/value.rs

/root/repo/target/debug/deps/libsemex_model-a273bbacab1fd527.rlib: crates/model/src/lib.rs crates/model/src/attribute.rs crates/model/src/class.rs crates/model/src/derived.rs crates/model/src/model.rs crates/model/src/relation.rs crates/model/src/value.rs

/root/repo/target/debug/deps/libsemex_model-a273bbacab1fd527.rmeta: crates/model/src/lib.rs crates/model/src/attribute.rs crates/model/src/class.rs crates/model/src/derived.rs crates/model/src/model.rs crates/model/src/relation.rs crates/model/src/value.rs

crates/model/src/lib.rs:
crates/model/src/attribute.rs:
crates/model/src/class.rs:
crates/model/src/derived.rs:
crates/model/src/model.rs:
crates/model/src/relation.rs:
crates/model/src/value.rs:
