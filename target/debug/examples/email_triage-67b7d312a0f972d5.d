/root/repo/target/debug/examples/email_triage-67b7d312a0f972d5.d: examples/email_triage.rs Cargo.toml

/root/repo/target/debug/examples/libemail_triage-67b7d312a0f972d5.rmeta: examples/email_triage.rs Cargo.toml

examples/email_triage.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
