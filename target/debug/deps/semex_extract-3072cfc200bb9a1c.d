/root/repo/target/debug/deps/semex_extract-3072cfc200bb9a1c.d: crates/extract/src/lib.rs crates/extract/src/bibtex.rs crates/extract/src/context.rs crates/extract/src/csv.rs crates/extract/src/date.rs crates/extract/src/email.rs crates/extract/src/fswalk.rs crates/extract/src/html.rs crates/extract/src/ical.rs crates/extract/src/latex.rs crates/extract/src/vcard.rs

/root/repo/target/debug/deps/libsemex_extract-3072cfc200bb9a1c.rmeta: crates/extract/src/lib.rs crates/extract/src/bibtex.rs crates/extract/src/context.rs crates/extract/src/csv.rs crates/extract/src/date.rs crates/extract/src/email.rs crates/extract/src/fswalk.rs crates/extract/src/html.rs crates/extract/src/ical.rs crates/extract/src/latex.rs crates/extract/src/vcard.rs

crates/extract/src/lib.rs:
crates/extract/src/bibtex.rs:
crates/extract/src/context.rs:
crates/extract/src/csv.rs:
crates/extract/src/date.rs:
crates/extract/src/email.rs:
crates/extract/src/fswalk.rs:
crates/extract/src/html.rs:
crates/extract/src/ical.rs:
crates/extract/src/latex.rs:
crates/extract/src/vcard.rs:
