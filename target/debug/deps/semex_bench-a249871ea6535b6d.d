/root/repo/target/debug/deps/semex_bench-a249871ea6535b6d.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libsemex_bench-a249871ea6535b6d.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
