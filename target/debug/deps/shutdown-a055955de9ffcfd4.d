/root/repo/target/debug/deps/shutdown-a055955de9ffcfd4.d: crates/serve/tests/shutdown.rs

/root/repo/target/debug/deps/shutdown-a055955de9ffcfd4: crates/serve/tests/shutdown.rs

crates/serve/tests/shutdown.rs:
