//! Provenance: where a fact came from.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a registered source.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct SourceId(pub u32);

impl fmt::Display for SourceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// The kind of personal-information source a fact was extracted from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SourceKind {
    /// An mbox mail archive or a single RFC-2822 message.
    Email,
    /// A vCard contact file.
    Contacts,
    /// An iCalendar file.
    Calendar,
    /// A BibTeX bibliography.
    Bibliography,
    /// A LaTeX document.
    Latex,
    /// A scanned file-system tree.
    FileSystem,
    /// A CSV / spreadsheet export.
    Spreadsheet,
    /// An external source imported through on-the-fly integration.
    External,
    /// Synthetic or programmatic input.
    Synthetic,
}

impl fmt::Display for SourceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            SourceKind::Email => "email",
            SourceKind::Contacts => "contacts",
            SourceKind::Calendar => "calendar",
            SourceKind::Bibliography => "bibliography",
            SourceKind::Latex => "latex",
            SourceKind::FileSystem => "filesystem",
            SourceKind::Spreadsheet => "spreadsheet",
            SourceKind::External => "external",
            SourceKind::Synthetic => "synthetic",
        };
        f.write_str(s)
    }
}

/// Metadata describing a registered source.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SourceInfo {
    /// Human-readable name ("inbox 2004", "dblp.bib", …).
    pub name: String,
    /// The kind of source.
    pub kind: SourceKind,
    /// Optional location (path, URL).
    pub location: Option<String>,
}

impl SourceInfo {
    /// A new source description.
    pub fn new(name: impl Into<String>, kind: SourceKind) -> Self {
        SourceInfo {
            name: name.into(),
            kind,
            location: None,
        }
    }

    /// Builder-style: attach a location.
    pub fn at(mut self, location: impl Into<String>) -> Self {
        self.location = Some(location.into());
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn source_info_builder() {
        let s = SourceInfo::new("inbox", SourceKind::Email).at("/mail/inbox.mbox");
        assert_eq!(s.name, "inbox");
        assert_eq!(s.kind, SourceKind::Email);
        assert_eq!(s.location.as_deref(), Some("/mail/inbox.mbox"));
        assert_eq!(SourceKind::Bibliography.to_string(), "bibliography");
    }
}
