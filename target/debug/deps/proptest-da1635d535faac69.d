/root/repo/target/debug/deps/proptest-da1635d535faac69.d: third_party/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-da1635d535faac69.rmeta: third_party/proptest/src/lib.rs

third_party/proptest/src/lib.rs:
