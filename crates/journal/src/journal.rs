//! The journal proper: appending, recovery, compaction.

use crate::record::{self, Decoded};
use crate::segment::{
    parse_segment_name, parse_snapshot_name, segment_file_name, snapshot_file_name, SegmentHeader,
    SEGMENT_HEADER_LEN,
};
use semex_store::{SnapshotError, Store, StoreEvent};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::fs::{self, File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

/// Errors raised by journal operations.
#[derive(Debug)]
pub enum JournalError {
    /// File I/O failure, with the path involved.
    Io {
        /// The file or directory being accessed.
        path: PathBuf,
        /// The underlying error.
        error: std::io::Error,
    },
    /// The snapshot inside the journal directory failed to load or save.
    Snapshot(SnapshotError),
    /// A store event failed to serialize (a bug, not a disk condition).
    Encode(serde_json::Error),
    /// The directory's files are not a usable journal (e.g. segments
    /// without any snapshot, or adopting into a non-empty directory).
    Invalid {
        /// The journal directory.
        dir: PathBuf,
        /// What is wrong with it.
        reason: String,
    },
}

impl JournalError {
    pub(crate) fn io(path: impl Into<PathBuf>, error: std::io::Error) -> Self {
        JournalError::Io {
            path: path.into(),
            error,
        }
    }
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JournalError::Io { path, error } => {
                write!(f, "journal I/O error on {}: {error}", path.display())
            }
            JournalError::Snapshot(e) => write!(f, "journal snapshot error: {e}"),
            JournalError::Encode(e) => write!(f, "journal event encoding error: {e}"),
            JournalError::Invalid { dir, reason } => {
                write!(f, "invalid journal directory {}: {reason}", dir.display())
            }
        }
    }
}

impl std::error::Error for JournalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            JournalError::Io { error, .. } => Some(error),
            JournalError::Snapshot(e) => Some(e),
            JournalError::Encode(e) => Some(e),
            JournalError::Invalid { .. } => None,
        }
    }
}

impl From<SnapshotError> for JournalError {
    fn from(e: SnapshotError) -> Self {
        JournalError::Snapshot(e)
    }
}

impl From<serde_json::Error> for JournalError {
    fn from(e: serde_json::Error) -> Self {
        JournalError::Encode(e)
    }
}

/// Journal tunables.
#[derive(Debug, Clone)]
pub struct JournalConfig {
    /// Rotate to a new segment once the current one reaches this many bytes.
    pub segment_max_bytes: u64,
    /// `fsync` segment data on every commit (and snapshots always). Disable
    /// only for throwaway stores and benchmarks.
    pub fsync: bool,
}

impl Default for JournalConfig {
    fn default() -> Self {
        JournalConfig {
            segment_max_bytes: 8 * 1024 * 1024,
            fsync: true,
        }
    }
}

/// Why replay stopped early.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DamageKind {
    /// The segment ends mid-record: the classic torn write of a crash.
    Torn,
    /// A record's checksum or length field is wrong, or its payload does
    /// not decode to an event.
    Corrupt,
    /// The segment file has no valid header.
    BadHeader,
    /// The segment's start sequence does not continue the log (duplicated,
    /// reordered or missing segment).
    SequenceMismatch,
    /// A decoded event did not apply cleanly to the recovering store.
    Apply,
}

/// Where and why replay stopped; everything before this point was recovered.
#[derive(Debug, Clone)]
pub struct Damage {
    /// The segment file in which damage was found.
    pub segment: PathBuf,
    /// Byte offset of the first damaged record within that segment.
    pub offset: u64,
    /// The kind of damage.
    pub kind: DamageKind,
}

/// What recovery did.
#[derive(Debug, Clone)]
pub struct RecoveryReport {
    /// The epoch whose snapshot seeded the store.
    pub epoch: u64,
    /// Global sequence number at the snapshot.
    pub base_seq: u64,
    /// Events replayed from the journal on top of the snapshot.
    pub events_applied: u64,
    /// Segment files that contributed replayed events.
    pub segments_replayed: usize,
    /// Damage that stopped replay, if any. The journal is physically
    /// repaired (damaged tail truncated, unreachable segments removed), so
    /// a subsequent recovery is clean.
    pub damage: Option<Damage>,
    /// True when the directory was empty and a fresh journal was initialized.
    pub initialized: bool,
}

/// What compaction did.
#[derive(Debug, Clone)]
pub struct CompactionReport {
    /// The new epoch.
    pub epoch: u64,
    /// Journaled events folded into the new snapshot (since the last one).
    pub folded_events: u64,
    /// Old files removed.
    pub removed_files: usize,
    /// Total size of the removed files in bytes.
    pub removed_bytes: u64,
}

/// First line of a snapshot file: journal bookkeeping for the store
/// snapshot that follows on the second line.
#[derive(Debug, Serialize, Deserialize)]
struct SnapshotMeta {
    /// Journal format version.
    journal_version: u32,
    /// Compaction epoch of this snapshot.
    epoch: u64,
    /// Global event sequence number the snapshot folds in.
    seq: u64,
}

/// An open, append-position segment file.
#[derive(Debug)]
struct OpenSegment {
    file: File,
    path: PathBuf,
    written: u64,
}

/// An append-only, checksummed write-ahead log of [`StoreEvent`]s.
///
/// The journal owns the files inside one directory (see the module docs of
/// [`crate::segment`] for the layout). It tracks the current epoch and the
/// global event sequence number; [`Journal::commit`] drains a recording
/// store's event buffer, appends one framed record per event, and fsyncs.
#[derive(Debug)]
pub struct Journal {
    dir: PathBuf,
    config: JournalConfig,
    epoch: u64,
    next_seq: u64,
    next_segment_index: u64,
    current: Option<OpenSegment>,
}

impl Journal {
    /// The journal directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The active configuration.
    pub fn config(&self) -> &JournalConfig {
        &self.config
    }

    /// The current compaction epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Global sequence number the next appended event will get.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Append a batch of events and make them durable (one fsync per call
    /// when the configuration asks for it). Returns the number appended.
    pub fn append_commit(&mut self, events: &[StoreEvent]) -> Result<usize, JournalError> {
        if events.is_empty() {
            return Ok(0);
        }
        let mut batch: Vec<u8> = Vec::new();
        for event in events {
            let payload = serde_json::to_vec(event)?;
            // Rotate between records, never mid-record.
            let segment_full = self
                .current
                .as_ref()
                .is_some_and(|s| s.written + batch.len() as u64 >= self.config.segment_max_bytes);
            if self.current.is_none() || segment_full {
                self.flush_batch(&mut batch)?;
                if segment_full {
                    self.finish_segment()?;
                }
                self.open_segment()?;
            }
            record::encode(&payload, &mut batch);
            self.next_seq += 1;
        }
        self.flush_batch(&mut batch)?;
        self.sync()?;
        Ok(events.len())
    }

    /// Drain a recording store's event buffer and append-commit it.
    pub fn commit(&mut self, store: &mut Store) -> Result<usize, JournalError> {
        let events = store.take_events();
        self.append_commit(&events)
    }

    /// Fsync the current segment (no-op when `fsync` is off or nothing is
    /// open).
    pub fn sync(&mut self) -> Result<(), JournalError> {
        if let Some(seg) = &mut self.current {
            if self.config.fsync {
                seg.file
                    .sync_data()
                    .map_err(|e| JournalError::io(&seg.path, e))?;
            }
        }
        Ok(())
    }

    /// Fold the journal into a fresh snapshot of `store` under `epoch + 1`
    /// and delete the files of the previous epoch. The store must have no
    /// undrained events (commit first); `store` must be the state produced
    /// by snapshot + all journaled events.
    pub fn compact(&mut self, store: &Store) -> Result<CompactionReport, JournalError> {
        let new_epoch = self.epoch + 1;
        write_snapshot(
            &self.dir,
            new_epoch,
            self.next_seq,
            store,
            self.config.fsync,
        )?;
        let folded = self.count_current_epoch_events();
        let (removed_files, removed_bytes) = self.remove_stale_epochs(new_epoch);
        self.epoch = new_epoch;
        self.next_segment_index = 0;
        self.current = None;
        Ok(CompactionReport {
            epoch: new_epoch,
            folded_events: folded,
            removed_files,
            removed_bytes,
        })
    }

    /// Sizes of the live journal files `(segment_count, segment_bytes)`.
    pub fn segment_usage(&self) -> (usize, u64) {
        let mut count = 0;
        let mut bytes = 0;
        if let Ok(entries) = fs::read_dir(&self.dir) {
            for entry in entries.flatten() {
                let name = entry.file_name();
                let Some(name) = name.to_str() else { continue };
                if let Some((epoch, _)) = parse_segment_name(name) {
                    if epoch == self.epoch {
                        count += 1;
                        bytes += entry.metadata().map(|m| m.len()).unwrap_or(0);
                    }
                }
            }
        }
        (count, bytes)
    }

    fn count_current_epoch_events(&self) -> u64 {
        // next_seq minus the base of the current snapshot; read it back
        // lazily (compaction is rare).
        let path = self.dir.join(snapshot_file_name(self.epoch));
        match read_snapshot_meta(&path) {
            Ok(meta) => self.next_seq.saturating_sub(meta.seq),
            Err(_) => 0,
        }
    }

    /// Write bytes buffered for the current segment.
    fn flush_batch(&mut self, batch: &mut Vec<u8>) -> Result<(), JournalError> {
        if batch.is_empty() {
            return Ok(());
        }
        let seg = self
            .current
            .as_mut()
            .expect("flush_batch only called with an open segment");
        seg.file
            .write_all(batch)
            .map_err(|e| JournalError::io(&seg.path, e))?;
        seg.written += batch.len() as u64;
        batch.clear();
        Ok(())
    }

    /// Close the current segment, fsyncing its tail.
    fn finish_segment(&mut self) -> Result<(), JournalError> {
        self.sync()?;
        self.current = None;
        Ok(())
    }

    /// Create the next segment file and write its header.
    fn open_segment(&mut self) -> Result<(), JournalError> {
        if self.current.is_some() {
            return Ok(());
        }
        let path = self
            .dir
            .join(segment_file_name(self.epoch, self.next_segment_index));
        let mut file = OpenOptions::new()
            .write(true)
            .create_new(true)
            .open(&path)
            .map_err(|e| JournalError::io(&path, e))?;
        let header = SegmentHeader {
            epoch: self.epoch,
            start_seq: self.next_seq,
        };
        file.write_all(&header.encode())
            .map_err(|e| JournalError::io(&path, e))?;
        if self.config.fsync {
            sync_dir(&self.dir)?;
        }
        self.next_segment_index += 1;
        self.current = Some(OpenSegment {
            file,
            path,
            written: SEGMENT_HEADER_LEN as u64,
        });
        Ok(())
    }

    /// Delete snapshots and segments older than `keep_epoch`, plus stray
    /// temporary files. Best-effort: failures are ignored (stale files are
    /// ignored by recovery anyway).
    fn remove_stale_epochs(&self, keep_epoch: u64) -> (usize, u64) {
        let mut removed = 0usize;
        let mut bytes = 0u64;
        let Ok(entries) = fs::read_dir(&self.dir) else {
            return (0, 0);
        };
        for entry in entries.flatten() {
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            let stale = match (parse_snapshot_name(name), parse_segment_name(name)) {
                (Some(epoch), _) => epoch < keep_epoch,
                (_, Some((epoch, _))) => epoch < keep_epoch,
                _ => name.ends_with(".tmp"),
            };
            if stale {
                let len = entry.metadata().map(|m| m.len()).unwrap_or(0);
                if fs::remove_file(entry.path()).is_ok() {
                    removed += 1;
                    bytes += len;
                }
            }
        }
        (removed, bytes)
    }
}

/// Atomically write the `epoch` snapshot of `store` (meta line + store
/// JSON) via a temp file and rename.
pub(crate) fn write_snapshot(
    dir: &Path,
    epoch: u64,
    seq: u64,
    store: &Store,
    fsync: bool,
) -> Result<(), JournalError> {
    let final_path = dir.join(snapshot_file_name(epoch));
    let tmp_path = dir.join(format!("{}.tmp", snapshot_file_name(epoch)));
    let meta = SnapshotMeta {
        journal_version: crate::segment::FORMAT_VERSION,
        epoch,
        seq,
    };
    {
        let mut f = File::create(&tmp_path).map_err(|e| JournalError::io(&tmp_path, e))?;
        let mut contents = serde_json::to_string(&meta)?;
        contents.push('\n');
        contents.push_str(&store.to_json());
        f.write_all(contents.as_bytes())
            .map_err(|e| JournalError::io(&tmp_path, e))?;
        if fsync {
            f.sync_all().map_err(|e| JournalError::io(&tmp_path, e))?;
        }
    }
    fs::rename(&tmp_path, &final_path).map_err(|e| JournalError::io(&final_path, e))?;
    if fsync {
        sync_dir(dir)?;
    }
    Ok(())
}

/// Read just the meta line of a snapshot file.
fn read_snapshot_meta(path: &Path) -> Result<SnapshotMeta, JournalError> {
    let contents = fs::read_to_string(path).map_err(|e| JournalError::io(path, e))?;
    let meta_line = contents.lines().next().unwrap_or("");
    Ok(serde_json::from_str(meta_line)?)
}

/// Load a snapshot file: meta line, then the store image.
fn read_snapshot(path: &Path) -> Result<(SnapshotMeta, Store), JournalError> {
    let contents = fs::read_to_string(path).map_err(|e| JournalError::io(path, e))?;
    let (meta_line, store_json) =
        contents
            .split_once('\n')
            .ok_or_else(|| JournalError::Invalid {
                dir: path.parent().unwrap_or(Path::new("")).to_path_buf(),
                reason: format!("snapshot {} has no meta line", path.display()),
            })?;
    let meta: SnapshotMeta = serde_json::from_str(meta_line)?;
    let store = Store::from_json(store_json)?;
    Ok((meta, store))
}

/// Fsync a directory so renames and creations inside it are durable.
fn sync_dir(dir: &Path) -> Result<(), JournalError> {
    let d = File::open(dir).map_err(|e| JournalError::io(dir, e))?;
    d.sync_all().map_err(|e| JournalError::io(dir, e))
}

/// Open a journal directory: load the newest snapshot, replay its epoch's
/// segments (truncating at the first torn or corrupt record), and return
/// the recovered store plus an append-ready journal.
///
/// An empty (or absent) directory is initialized with an empty
/// builtin-model store. Replay damage is *repaired*: the damaged segment is
/// truncated to its last valid record and unreachable later segments are
/// deleted, so the next recovery is clean and appends continue from the
/// recovered state.
pub fn recover(
    dir: &Path,
    config: JournalConfig,
) -> Result<(Store, Journal, RecoveryReport), JournalError> {
    recover_inner(dir, config, None)
}

/// [`recover`], but an empty directory is initialized with `initial`
/// instead of an empty builtin-model store.
pub fn recover_or_adopt(
    dir: &Path,
    config: JournalConfig,
    initial: Store,
) -> Result<(Store, Journal, RecoveryReport), JournalError> {
    recover_inner(dir, config, Some(initial))
}

fn recover_inner(
    dir: &Path,
    config: JournalConfig,
    initial: Option<Store>,
) -> Result<(Store, Journal, RecoveryReport), JournalError> {
    fs::create_dir_all(dir).map_err(|e| JournalError::io(dir, e))?;

    // Inventory the directory.
    let mut snapshot_epochs: Vec<u64> = Vec::new();
    let mut segments: Vec<(u64, u64)> = Vec::new();
    let entries = fs::read_dir(dir).map_err(|e| JournalError::io(dir, e))?;
    for entry in entries {
        let entry = entry.map_err(|e| JournalError::io(dir, e))?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some(epoch) = parse_snapshot_name(name) {
            snapshot_epochs.push(epoch);
        } else if let Some(key) = parse_segment_name(name) {
            segments.push(key);
        }
    }

    let Some(&epoch) = snapshot_epochs.iter().max() else {
        if !segments.is_empty() {
            return Err(JournalError::Invalid {
                dir: dir.to_path_buf(),
                reason: "journal segments present but no snapshot".into(),
            });
        }
        // Fresh directory: initialize epoch 0.
        let store = initial.unwrap_or_else(Store::with_builtin_model);
        write_snapshot(dir, 0, 0, &store, config.fsync)?;
        let journal = Journal {
            dir: dir.to_path_buf(),
            config,
            epoch: 0,
            next_seq: 0,
            next_segment_index: 0,
            current: None,
        };
        let report = RecoveryReport {
            epoch: 0,
            base_seq: 0,
            events_applied: 0,
            segments_replayed: 0,
            damage: None,
            initialized: true,
        };
        return Ok((store, journal, report));
    };

    let (meta, mut store) = read_snapshot(&dir.join(snapshot_file_name(epoch)))?;
    if meta.epoch != epoch {
        return Err(JournalError::Invalid {
            dir: dir.to_path_buf(),
            reason: format!(
                "snapshot file for epoch {epoch} records epoch {} inside",
                meta.epoch
            ),
        });
    }

    // Clean up files a crashed compaction left behind: older snapshots,
    // other-epoch segments, temp files. Best-effort.
    for e in &snapshot_epochs {
        if *e < epoch {
            fs::remove_file(dir.join(snapshot_file_name(*e))).ok();
        }
    }
    for (seg_epoch, index) in &segments {
        if *seg_epoch != epoch {
            fs::remove_file(dir.join(segment_file_name(*seg_epoch, *index))).ok();
        }
    }

    // Replay this epoch's segments in index order.
    let mut live: Vec<u64> = segments
        .iter()
        .filter(|(e, _)| *e == epoch)
        .map(|(_, i)| *i)
        .collect();
    live.sort_unstable();

    let mut report = RecoveryReport {
        epoch,
        base_seq: meta.seq,
        events_applied: 0,
        segments_replayed: 0,
        damage: None,
        initialized: false,
    };
    let mut expected_seq = meta.seq;
    let mut last_good_index: Option<u64> = None;

    'segments: for (pos, &index) in live.iter().enumerate() {
        let path = dir.join(segment_file_name(epoch, index));
        let mut bytes = Vec::new();
        File::open(&path)
            .and_then(|mut f| f.read_to_end(&mut bytes))
            .map_err(|e| JournalError::io(&path, e))?;

        let damage_kind = match SegmentHeader::decode(&bytes) {
            None => Some(DamageKind::BadHeader),
            Some(h) if h.epoch != epoch || h.start_seq != expected_seq => {
                Some(DamageKind::SequenceMismatch)
            }
            Some(_) => None,
        };
        if let Some(kind) = damage_kind {
            report.damage = Some(Damage {
                segment: path.clone(),
                offset: 0,
                kind,
            });
            // The whole segment (and everything after it) is unreachable.
            remove_segments(dir, epoch, &live[pos..]);
            break 'segments;
        }

        let mut offset = SEGMENT_HEADER_LEN;
        loop {
            match record::decode(&bytes[offset..]) {
                Decoded::End => break,
                Decoded::Record { payload, consumed } => {
                    let applied = serde_json::from_slice::<StoreEvent>(payload)
                        .map_err(|_| DamageKind::Corrupt)
                        .and_then(|event| store.apply_event(&event).map_err(|_| DamageKind::Apply));
                    match applied {
                        Ok(()) => {
                            offset += consumed;
                            expected_seq += 1;
                            report.events_applied += 1;
                        }
                        Err(kind) => {
                            report.damage = Some(Damage {
                                segment: path.clone(),
                                offset: offset as u64,
                                kind,
                            });
                            truncate_segment(&path, offset as u64);
                            remove_segments(dir, epoch, &live[pos + 1..]);
                            break 'segments;
                        }
                    }
                }
                torn_or_corrupt => {
                    let kind = if torn_or_corrupt == Decoded::Torn {
                        DamageKind::Torn
                    } else {
                        DamageKind::Corrupt
                    };
                    report.damage = Some(Damage {
                        segment: path.clone(),
                        offset: offset as u64,
                        kind,
                    });
                    truncate_segment(&path, offset as u64);
                    remove_segments(dir, epoch, &live[pos + 1..]);
                    break 'segments;
                }
            }
        }
        report.segments_replayed += 1;
        last_good_index = Some(index);
    }

    let next_segment_index = match report.damage {
        // After damage, the truncated segment keeps its index; appends go
        // to a fresh segment after it (or in its place if it was removed).
        Some(ref d) => match d.kind {
            DamageKind::BadHeader | DamageKind::SequenceMismatch => {
                parse_segment_name(d.segment.file_name().and_then(|n| n.to_str()).unwrap_or(""))
                    .map(|(_, i)| i)
                    .unwrap_or(0)
            }
            _ => parse_segment_name(d.segment.file_name().and_then(|n| n.to_str()).unwrap_or(""))
                .map(|(_, i)| i + 1)
                .unwrap_or(0),
        },
        None => last_good_index.map(|i| i + 1).unwrap_or(0),
    };

    let journal = Journal {
        dir: dir.to_path_buf(),
        config,
        epoch,
        next_seq: expected_seq,
        next_segment_index,
        current: None,
    };
    Ok((store, journal, report))
}

/// Truncate a damaged segment to its last valid record. Best-effort.
fn truncate_segment(path: &Path, len: u64) {
    if let Ok(f) = OpenOptions::new().write(true).open(path) {
        f.set_len(len).ok();
        f.sync_all().ok();
    }
}

/// Delete the given segment indexes of an epoch. Best-effort.
fn remove_segments(dir: &Path, epoch: u64, indexes: &[u64]) {
    for &i in indexes {
        fs::remove_file(dir.join(segment_file_name(epoch, i))).ok();
    }
}
