/root/repo/target/debug/deps/extract-2b05f81320303163.d: crates/bench/benches/extract.rs Cargo.toml

/root/repo/target/debug/deps/libextract-2b05f81320303163.rmeta: crates/bench/benches/extract.rs Cargo.toml

crates/bench/benches/extract.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
