//! Derived associations.
//!
//! SEMEX's browsing power comes from associations the user never extracted
//! directly: `CoAuthor` is derived by composing `AuthoredBy` backwards and
//! forwards through Publication instances. A [`DerivedDef`] names such an
//! association and gives the rule ([`PathExpr`]) that computes it; the
//! `semex-browse` crate evaluates rules against a store.

use crate::{AssocId, ClassId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// One navigation step inside a derived-association rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PathStep {
    /// Follow the association forwards: subject → object.
    Forward(AssocId),
    /// Follow the association backwards: object → subject.
    Inverse(AssocId),
}

impl PathStep {
    /// The association this step traverses.
    pub fn assoc(self) -> AssocId {
        match self {
            PathStep::Forward(a) | PathStep::Inverse(a) => a,
        }
    }
}

/// A rule computing a derived association.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PathExpr {
    /// A sequential composition of steps; the result relates the start of the
    /// first step to the end of the last step.
    Path(Vec<PathStep>),
    /// Union of alternative rules (deduplicated by the evaluator).
    Union(Vec<PathExpr>),
}

impl PathExpr {
    /// A single-path rule.
    pub fn path(steps: Vec<PathStep>) -> Self {
        PathExpr::Path(steps)
    }

    /// Convenience: the symmetric "share an object via `a`" pattern,
    /// `a ∘ a⁻¹` seen from the subject side — e.g. `CoAuthor` from
    /// `AuthoredBy` is `Inverse(AuthoredBy) ∘ Forward(AuthoredBy)` starting
    /// at a Person.
    pub fn share_subject(a: AssocId) -> Self {
        PathExpr::Path(vec![PathStep::Inverse(a), PathStep::Forward(a)])
    }

    /// All associations mentioned anywhere in the rule.
    pub fn assocs(&self) -> Vec<AssocId> {
        let mut out = Vec::new();
        self.collect_assocs(&mut out);
        out.sort_unstable();
        out.dedup();
        out
    }

    fn collect_assocs(&self, out: &mut Vec<AssocId>) {
        match self {
            PathExpr::Path(steps) => out.extend(steps.iter().map(|s| s.assoc())),
            PathExpr::Union(alts) => {
                for alt in alts {
                    alt.collect_assocs(out);
                }
            }
        }
    }

    /// The number of traversal steps in the longest path of the rule.
    pub fn depth(&self) -> usize {
        match self {
            PathExpr::Path(steps) => steps.len(),
            PathExpr::Union(alts) => alts.iter().map(|a| a.depth()).max().unwrap_or(0),
        }
    }
}

impl fmt::Display for PathExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PathExpr::Path(steps) => {
                for (i, s) in steps.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ∘ ")?;
                    }
                    match s {
                        PathStep::Forward(a) => write!(f, "{a}")?,
                        PathStep::Inverse(a) => write!(f, "{a}⁻¹")?,
                    }
                }
                Ok(())
            }
            PathExpr::Union(alts) => {
                for (i, a) in alts.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ∪ ")?;
                    }
                    write!(f, "({a})")?;
                }
                Ok(())
            }
        }
    }
}

/// A named derived association together with its computing rule.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DerivedDef {
    /// Unique name, e.g. `"CoAuthor"`.
    pub name: String,
    /// Class the derived association starts from.
    pub domain: ClassId,
    /// Class it lands on.
    pub range: ClassId,
    /// The computing rule.
    pub rule: PathExpr,
    /// Whether the relation is irreflexive (`x` never relates to itself) —
    /// true for `CoAuthor` and friends, where the evaluator drops self-loops.
    pub irreflexive: bool,
}

impl DerivedDef {
    /// A new derived association.
    pub fn new(name: impl Into<String>, domain: ClassId, range: ClassId, rule: PathExpr) -> Self {
        DerivedDef {
            name: name.into(),
            domain,
            range,
            rule,
            irreflexive: domain == range,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn share_subject_shape() {
        let a = AssocId(3);
        let e = PathExpr::share_subject(a);
        assert_eq!(
            e,
            PathExpr::Path(vec![PathStep::Inverse(a), PathStep::Forward(a)])
        );
        assert_eq!(e.depth(), 2);
        assert_eq!(e.assocs(), vec![a]);
    }

    #[test]
    fn union_collects_all_assocs() {
        let e = PathExpr::Union(vec![
            PathExpr::path(vec![
                PathStep::Forward(AssocId(1)),
                PathStep::Inverse(AssocId(2)),
            ]),
            PathExpr::path(vec![PathStep::Forward(AssocId(2))]),
        ]);
        assert_eq!(e.assocs(), vec![AssocId(1), AssocId(2)]);
        assert_eq!(e.depth(), 2);
    }

    #[test]
    fn display_renders_rules() {
        let e = PathExpr::share_subject(AssocId(0));
        assert_eq!(e.to_string(), "r0⁻¹ ∘ r0");
    }

    #[test]
    fn same_domain_range_defaults_irreflexive() {
        let d = DerivedDef::new(
            "CoAuthor",
            ClassId(0),
            ClassId(0),
            PathExpr::share_subject(AssocId(0)),
        );
        assert!(d.irreflexive);
        let d2 = DerivedDef::new(
            "CitedAuthor",
            ClassId(1),
            ClassId(0),
            PathExpr::path(vec![]),
        );
        assert!(!d2.irreflexive);
    }
}
