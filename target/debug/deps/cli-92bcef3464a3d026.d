/root/repo/target/debug/deps/cli-92bcef3464a3d026.d: tests/cli.rs Cargo.toml

/root/repo/target/debug/deps/libcli-92bcef3464a3d026.rmeta: tests/cli.rs Cargo.toml

tests/cli.rs:
Cargo.toml:

# env-dep:CARGO_BIN_EXE_semex=placeholder:semex
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
