/root/repo/target/debug/examples/quickstart-d5d1b35f94235ba0.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-d5d1b35f94235ba0: examples/quickstart.rs

examples/quickstart.rs:
