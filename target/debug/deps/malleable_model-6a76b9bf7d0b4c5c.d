/root/repo/target/debug/deps/malleable_model-6a76b9bf7d0b4c5c.d: tests/malleable_model.rs Cargo.toml

/root/repo/target/debug/deps/libmalleable_model-6a76b9bf7d0b4c5c.rmeta: tests/malleable_model.rs Cargo.toml

tests/malleable_model.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
