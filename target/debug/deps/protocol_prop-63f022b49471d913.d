/root/repo/target/debug/deps/protocol_prop-63f022b49471d913.d: crates/serve/tests/protocol_prop.rs Cargo.toml

/root/repo/target/debug/deps/libprotocol_prop-63f022b49471d913.rmeta: crates/serve/tests/protocol_prop.rs Cargo.toml

crates/serve/tests/protocol_prop.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
