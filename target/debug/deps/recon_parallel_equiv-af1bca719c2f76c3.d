/root/repo/target/debug/deps/recon_parallel_equiv-af1bca719c2f76c3.d: tests/recon_parallel_equiv.rs tests/common/mod.rs Cargo.toml

/root/repo/target/debug/deps/librecon_parallel_equiv-af1bca719c2f76c3.rmeta: tests/recon_parallel_equiv.rs tests/common/mod.rs Cargo.toml

tests/recon_parallel_equiv.rs:
tests/common/mod.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
