/root/repo/target/debug/examples/research_browser-cc975212d76e8bfd.d: examples/research_browser.rs

/root/repo/target/debug/examples/research_browser-cc975212d76e8bfd: examples/research_browser.rs

examples/research_browser.rs:
