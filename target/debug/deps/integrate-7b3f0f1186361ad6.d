/root/repo/target/debug/deps/integrate-7b3f0f1186361ad6.d: crates/bench/benches/integrate.rs Cargo.toml

/root/repo/target/debug/deps/libintegrate-7b3f0f1186361ad6.rmeta: crates/bench/benches/integrate.rs Cargo.toml

crates/bench/benches/integrate.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
