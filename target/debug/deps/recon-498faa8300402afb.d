/root/repo/target/debug/deps/recon-498faa8300402afb.d: crates/bench/benches/recon.rs Cargo.toml

/root/repo/target/debug/deps/librecon-498faa8300402afb.rmeta: crates/bench/benches/recon.rs Cargo.toml

crates/bench/benches/recon.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
