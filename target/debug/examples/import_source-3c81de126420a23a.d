/root/repo/target/debug/examples/import_source-3c81de126420a23a.d: examples/import_source.rs

/root/repo/target/debug/examples/import_source-3c81de126420a23a: examples/import_source.rs

examples/import_source.rs:
