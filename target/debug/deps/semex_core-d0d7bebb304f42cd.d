/root/repo/target/debug/deps/semex_core-d0d7bebb304f42cd.d: crates/core/src/lib.rs crates/core/src/facade.rs crates/core/src/pipeline.rs

/root/repo/target/debug/deps/libsemex_core-d0d7bebb304f42cd.rmeta: crates/core/src/lib.rs crates/core/src/facade.rs crates/core/src/pipeline.rs

crates/core/src/lib.rs:
crates/core/src/facade.rs:
crates/core/src/pipeline.rs:
