//! Quickstart: build a SEMEX platform from a handful of inline sources,
//! watch reference reconciliation consolidate duplicate references, and run
//! the three core interactions: keyword search, object inspection, and
//! association browsing.
//!
//! Run with `cargo run --example quickstart`.

use semex::SemexBuilder;

const BIBLIOGRAPHY: &str = r#"
@inproceedings{dhm05,
  title     = {Reference Reconciliation in Complex Information Spaces},
  author    = {Dong, Xin and Halevy, Alon and Madhavan, Jayant},
  booktitle = {ACM SIGMOD Conference},
  year      = 2005,
}
@inproceedings{dh05,
  title     = {A Platform for Personal Information Management and Integration},
  author    = {Xin Dong and Alon Halevy},
  booktitle = {CIDR},
  year      = 2005,
}
"#;

const INBOX: &str = "\
From quickstart 0
From: Xin Dong <luna@cs.example.edu>
To: \"Halevy, Alon\" <alon@cs.example.edu>
Subject: SIGMOD demo script
Date: 2005-03-15 09:30:00
Message-ID: <m1@example>
X-Attachment: demo-script.tex

Draft of the demo walkthrough attached. Can you check scenario 2?

From quickstart 1
From: alon@cs.example.edu
To: Xin Dong <luna@cs.example.edu>
Subject: Re: SIGMOD demo script
Date: 2005-03-15 11:02:00
Message-ID: <m2@example>
In-Reply-To: <m1@example>

Looks great. One suggestion on the reconciliation slide.
";

const CONTACTS: &str = "\
BEGIN:VCARD
VERSION:3.0
FN:Xin Luna Dong
N:Dong;Xin;
EMAIL;TYPE=work:luna@cs.example.edu
ORG:University of Washington
END:VCARD
BEGIN:VCARD
VERSION:3.0
FN:Alon Halevy
EMAIL:alon@cs.example.edu
ORG:University of Washington
END:VCARD
";

fn main() {
    // 1. Build: extract -> reconcile -> index.
    let semex = SemexBuilder::new()
        .add_bibtex("library.bib", BIBLIOGRAPHY)
        .add_mbox("inbox.mbox", INBOX)
        .add_vcards("addressbook.vcf", CONTACTS)
        .build()
        .expect("pipeline");

    let report = semex.report();
    println!("== build report ==");
    for (source, stats) in &report.extraction {
        println!(
            "  {source:<16} {:>3} records, {:>3} references, {:>3} links",
            stats.records, stats.objects, stats.triples
        );
    }
    if let Some(recon) = &report.recon {
        println!(
            "  reconciliation: {} references -> {} merges in {:?} ({} candidate pairs)",
            recon.refs, recon.merges, recon.elapsed, recon.candidates
        );
    }
    println!("\n== store ==\n{}", semex.stats().table());

    // 2. Search: object-centric keyword search.
    println!("== search \"reconciliation\" ==");
    for hit in semex.search("reconciliation", 5) {
        println!("  {:>6.2}  [{}] {}", hit.score, hit.class, hit.label);
    }

    // 3. Inspect: the reconciled Xin Dong object pools every surface form
    //    ("Dong, Xin" from BibTeX, "Xin Dong" from mail, "Xin Luna Dong"
    //    from the address book) with provenance.
    let dong = &semex.search("class:Person dong", 1)[0];
    println!("\n== object view ==\n{}", semex.view(dong.object));

    // 4. Browse by association, including derived associations.
    let browser = semex.browser();
    println!("== CoAuthor(Xin Dong) ==");
    for co in browser.derived_by_name(dong.object, "CoAuthor").unwrap() {
        println!("  {}", semex.store().label(co));
    }
    println!("== CorrespondedWith(Xin Dong) ==");
    for c in browser
        .derived_by_name(dong.object, "CorrespondedWith")
        .unwrap()
    {
        println!("  {}", semex.store().label(c));
    }
}
