/root/repo/target/debug/deps/durability-aecbe704765f1a20.d: tests/durability.rs Cargo.toml

/root/repo/target/debug/deps/libdurability-aecbe704765f1a20.rmeta: tests/durability.rs Cargo.toml

tests/durability.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
