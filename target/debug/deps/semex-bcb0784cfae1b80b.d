/root/repo/target/debug/deps/semex-bcb0784cfae1b80b.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libsemex-bcb0784cfae1b80b.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
