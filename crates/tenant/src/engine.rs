//! The epoch snapshot engine: reads run against immutable published
//! snapshots, never against the live master.
//!
//! The servicing writer is the only publisher. After applying a write batch
//! it clones the master's state into a [`Snapshot`](semex_core::Snapshot),
//! tags it with the next epoch number, and swaps it in behind an `Arc`.
//! Reader threads grab the current `Arc` under a briefly-held read lock and
//! then query entirely lock-free: a reader holding epoch N keeps a
//! consistent view of the whole platform (store *and* index) no matter how
//! many batches publish behind it, and two reads through the same grabbed
//! `Arc` can never observe different states — there is no torn epoch.
//!
//! Epochs are **event-sequence numbers**: each publication advances the
//! epoch by the number of store events the batch committed, so on a
//! journal-backed tenant the epoch always equals the journal's durable
//! sequence. That makes epochs survive eviction — a tenant recovered from
//! its journal reboots at exactly the epoch it was evicted at (see
//! [`SnapshotEngine::with_epoch`]), which is what lets the
//! eviction-equivalence suite demand byte-identical *epochs*, not just
//! results.

use semex_core::Snapshot;
use std::sync::{Arc, RwLock};

/// One published state: a consistent, immutable store+index pair tagged
/// with the epoch counter that identifies it on the wire.
#[derive(Debug)]
pub struct EpochSnapshot {
    /// Monotonic publication number (the boot state carries the durable
    /// event sequence recovered from the journal; 0 for a fresh space).
    pub epoch: u64,
    /// The state itself.
    pub snap: Snapshot,
}

/// Publishes [`EpochSnapshot`]s by atomic `Arc` swap.
///
/// `load` is wait-free in spirit: the read lock is held only for the
/// duration of an `Arc::clone`, so readers never wait on query work and the
/// writer never waits on readers (old epochs are freed by the last reader
/// dropping them).
#[derive(Debug)]
pub struct SnapshotEngine {
    current: RwLock<Arc<EpochSnapshot>>,
}

impl SnapshotEngine {
    /// Boot the engine with the initial state as epoch 0.
    pub fn new(initial: Snapshot) -> SnapshotEngine {
        SnapshotEngine::with_epoch(initial, 0)
    }

    /// Boot the engine at an explicit epoch — the tenant activation path
    /// seeds it with the journal's recovered event sequence so epochs are
    /// continuous across evict/reactivate cycles.
    pub fn with_epoch(initial: Snapshot, epoch: u64) -> SnapshotEngine {
        SnapshotEngine {
            current: RwLock::new(Arc::new(EpochSnapshot {
                epoch,
                snap: initial,
            })),
        }
    }

    /// The current snapshot. Cheap; call once per request and do all of the
    /// request's reads against the returned `Arc`.
    pub fn load(&self) -> Arc<EpochSnapshot> {
        Arc::clone(&self.current.read().expect("snapshot lock poisoned"))
    }

    /// The current epoch number.
    pub fn epoch(&self) -> u64 {
        self.current.read().expect("snapshot lock poisoned").epoch
    }

    /// Swap in a new state one epoch ahead, returning the new epoch.
    /// In-flight readers keep their old epoch alive until they drop it.
    pub fn publish(&self, snap: Snapshot) -> u64 {
        self.publish_advance(snap, 1)
    }

    /// Swap in a new state, advancing the epoch by `by` (the number of
    /// events the batch committed). `by == 0` republishes under the same
    /// epoch — legal only when the state did not change (zero events means
    /// zero store mutations), so readers still never see two states under
    /// one epoch.
    pub fn publish_advance(&self, snap: Snapshot, by: u64) -> u64 {
        let mut current = self.current.write().expect("snapshot lock poisoned");
        let epoch = current.epoch + by;
        *current = Arc::new(EpochSnapshot { epoch, snap });
        epoch
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use semex_core::SemexBuilder;

    #[test]
    fn epochs_are_monotonic_and_isolated() {
        let semex = SemexBuilder::new()
            .add_mbox("inbox", "From: a@b.c\nSubject: first\n\nhello")
            .build()
            .unwrap();
        let engine = SnapshotEngine::new(semex.snapshot());
        assert_eq!(engine.epoch(), 0);
        let held = engine.load();
        assert_eq!(engine.publish(semex.snapshot()), 1);
        assert_eq!(engine.publish(semex.snapshot()), 2);
        // The reader that grabbed epoch 0 still sees epoch 0.
        assert_eq!(held.epoch, 0);
        assert_eq!(engine.load().epoch, 2);
    }

    #[test]
    fn seeded_boot_and_event_count_advance() {
        let semex = SemexBuilder::new()
            .add_mbox("inbox", "From: a@b.c\nSubject: first\n\nhello")
            .build()
            .unwrap();
        let engine = SnapshotEngine::with_epoch(semex.snapshot(), 41);
        assert_eq!(engine.epoch(), 41);
        assert_eq!(engine.publish_advance(semex.snapshot(), 9), 50);
        assert_eq!(engine.publish_advance(semex.snapshot(), 0), 50);
    }
}
