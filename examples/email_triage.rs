//! E-mail triage: SEMEX as a mail-centric assistant.
//!
//! Builds the platform over a generated mail archive plus contacts and
//! bibliography, then answers the questions the PIM literature says people
//! actually ask of their inbox:
//!
//! * who do I correspond with the most (after reconciliation collapses
//!   their address aliases and name variants)?
//! * which threads are the longest?
//! * which messages carry attachments related to my papers?
//!
//! Run with `cargo run --release --example email_triage`.

use semex::corpus::{generate_personal, CorpusConfig};
use semex::SemexBuilder;
use std::collections::HashMap;

fn main() {
    let cfg = CorpusConfig {
        seed: 42,
        people: 50,
        organizations: 5,
        venues: 8,
        publications: 80,
        messages: 800,
        ..CorpusConfig::default()
    };
    let corpus = generate_personal(&cfg);
    let inbox = corpus
        .files
        .iter()
        .filter(|(p, _)| p.ends_with(".mbox"))
        .map(|(_, c)| c.as_str())
        .collect::<Vec<_>>()
        .join("");
    let contacts = &corpus
        .files
        .iter()
        .find(|(p, _)| p.ends_with(".vcf"))
        .unwrap()
        .1;
    let bib = &corpus
        .files
        .iter()
        .find(|(p, _)| p.ends_with(".bib"))
        .unwrap()
        .1;

    let semex = SemexBuilder::new()
        .add_mbox("mail", inbox)
        .add_vcards("contacts", contacts.clone())
        .add_bibtex("library", bib.clone())
        .build()
        .expect("pipeline");
    let store = semex.store();
    let model = store.model();

    let c_message = model.class("Message").unwrap();
    let c_person = model.class("Person").unwrap();
    let sender = model.assoc("Sender").unwrap();
    let recipient = model.assoc("Recipient").unwrap();
    let replied = model.assoc("RepliedTo").unwrap();
    let attached = model.assoc("AttachedTo").unwrap();

    println!(
        "mailbox: {} messages, {} reconciled people\n",
        store.class_count(c_message),
        store.class_count(c_person)
    );

    // Top correspondents: messages where the person is sender or recipient.
    let mut traffic: HashMap<_, usize> = HashMap::new();
    for m in store.objects_of_class(c_message) {
        for &p in store
            .neighbors(m, sender)
            .iter()
            .chain(store.neighbors(m, recipient))
        {
            *traffic.entry(p).or_insert(0) += 1;
        }
    }
    let mut ranked: Vec<_> = traffic.into_iter().collect();
    ranked.sort_by_key(|&(p, n)| (std::cmp::Reverse(n), p));
    println!("== top correspondents ==");
    for (p, n) in ranked.iter().take(8) {
        println!("  {n:>4} messages  {}", store.label(*p));
    }

    // Longest threads: walk RepliedTo chains back to the root.
    let mut depth: HashMap<_, usize> = HashMap::new();
    for m in store.objects_of_class(c_message) {
        let mut d = 0;
        let mut cur = m;
        while let Some(&parent) = store.neighbors(cur, replied).first() {
            d += 1;
            cur = parent;
            if d > 64 {
                break;
            }
        }
        let root = cur;
        let e = depth.entry(root).or_insert(0);
        *e = (*e).max(d + 1);
    }
    let mut threads: Vec<_> = depth.into_iter().filter(|&(_, d)| d > 1).collect();
    threads.sort_by_key(|&(m, d)| (std::cmp::Reverse(d), m));
    println!("\n== longest threads ==");
    for (root, d) in threads.iter().take(5) {
        println!("  {d:>2} messages  \"{}\"", store.label(*root));
    }

    // Messages with attachments, tied back to files.
    println!("\n== attachments ==");
    let mut shown = 0;
    for m in store.objects_of_class(c_message) {
        let files = store.inverse_neighbors(m, attached);
        if files.is_empty() {
            continue;
        }
        println!("  \"{}\"", store.label(m));
        for &f in files {
            println!("      📎 {}", store.label(f));
        }
        shown += 1;
        if shown == 5 {
            break;
        }
    }

    // And of course: search works over mail too.
    println!("\n== search \"class:Message deadline\" ==");
    for hit in semex.search("class:Message deadline", 5) {
        println!("  {:>6.2}  {}", hit.score, hit.label);
    }
}
