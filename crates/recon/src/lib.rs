#![warn(missing_docs)]

//! SEMEX **reference reconciliation** — the system's core technical
//! contribution (Dong, Halevy & Madhavan, SIGMOD 2005).
//!
//! Extraction produces many *references* to each real-world entity: the same
//! person appears as `"Michael J. Carey"`, `"Carey, M."` and
//! `mcarey@ibm.com`; the same paper under truncated and typo'd titles.
//! Reconciliation decides which references denote the same entity and merges
//! them, turning the reference soup into a clean object graph.
//!
//! The algorithm follows the paper:
//!
//! 1. **Blocking** ([`blocking`]) — cheap candidate keys (name Soundex,
//!    e-mail local parts, rare title tokens) bound the pair space.
//! 2. **Attribute similarity** ([`score`]) — per-class comparators over the
//!    references' attribute values.
//! 3. **Dependency graph & propagation** ([`reconcile`]) — the similarity of
//!    two references depends on the similarity of their *associated*
//!    references (the authors of two papers, the venue of two papers, the
//!    publications of two people). Merge decisions propagate through this
//!    graph via a worklist until a fixed point.
//! 4. **Reference enrichment** — merged references pool their attribute
//!    values, enabling matches impossible for either reference alone
//!    (`"M. Carey" + mcarey@ibm.com` merges with `"Michael Carey"` only
//!    after one of them acquires the e-mail).
//!
//! Ablation [`Variant`]s keep the interface constant so the evaluation can
//! compare like with like, exactly as the paper's experiment section does:
//! [`Variant::AttrOnly`], [`Variant::Context`], [`Variant::Propagation`]
//! and [`Variant::Full`].
//!
//! ```
//! use semex_extract::{bibtex::extract_bibtex, ExtractContext};
//! use semex_recon::{reconcile, ReconConfig, Variant};
//! use semex_store::{SourceInfo, SourceKind, Store};
//!
//! let mut store = Store::with_builtin_model();
//! let src = store.register_source(SourceInfo::new("bib", SourceKind::Bibliography));
//! let mut ctx = ExtractContext::new(&mut store, src);
//! extract_bibtex(
//!     "@inproceedings{a, title={One Topic}, author={Michael Carey}, booktitle={V}, year=2004}\n\
//!      @inproceedings{b, title={Other Topic}, author={Michael J. Carey}, booktitle={V}, year=2005}",
//!     &mut ctx,
//! ).unwrap();
//! let person = store.model().class("Person").unwrap();
//! assert_eq!(store.class_count(person), 2);
//!
//! let report = reconcile(&mut store, Variant::Full, &ReconConfig::sequential());
//! assert_eq!(report.merges, 1);
//! assert_eq!(store.class_count(person), 1);
//! ```

//! The propagation fixed point is computed **sharded**: [`shard`] splits
//! the reference graph into connected components closed under cluster
//! sharing and evidence flow, each component's worklist runs independently
//! (in parallel when [`ReconConfig::threads`] allows), and the per-shard
//! clusterings are stitched back together — with the hard guarantee that
//! any thread count produces byte-identical clusters and merges.

pub mod blocking;
mod config;
mod engine;
pub mod eval;
mod refs;
pub mod score;
pub mod shard;
mod union_find;
mod worklist;

pub use config::{ReconConfig, Variant};
pub use engine::{reconcile, reconcile_incremental, ReconReport};
pub use eval::{pair_metrics, Metrics};
pub use refs::{RefEntry, RefKind, RefTable};
pub use shard::{partition, Shard};
pub use union_find::UnionFind;
