#![warn(missing_docs)]

//! String, name and record similarity measures for SEMEX reference
//! reconciliation.
//!
//! Reconciliation compares *references* — small records of attribute values —
//! and needs robust, domain-aware comparators: person names appear as
//! `"Michael J. Carey"`, `"Carey, M."` and `"mike carey"`; venues as
//! `"Proceedings of SIGMOD"` and `"SIGMOD '05"`; titles with typos and
//! truncation. This crate provides:
//!
//! * classic character-level metrics — Levenshtein / Damerau edit distance
//!   (plain, bounded and normalized), Jaro and Jaro–Winkler;
//! * token-level metrics — Jaccard / Dice over token sets and n-grams,
//!   cosine over term-frequency vectors, IDF-weighted cosine backed by a
//!   [`CorpusStats`] document-frequency table, and the Monge–Elkan hybrid;
//! * a Soundex phonetic code;
//! * domain comparators — person-name parsing and compatibility
//!   ([`name`]), e-mail address comparison ([`email`]), publication-title
//!   similarity ([`title`]) and venue similarity with abbreviation handling
//!   ([`venue`]).
//!
//! All similarity functions return values in `[0, 1]`, are symmetric, and
//! score identical inputs as `1`.
//!
//! ```
//! use semex_similarity::name::name_similarity;
//! use semex_similarity::email::email_matches_name;
//!
//! assert!(name_similarity("Michael J. Carey", "Carey, Michael") > 0.9);
//! assert!(name_similarity("Mike Carey", "Michael Carey") > 0.8);
//! assert!(name_similarity("Michael Carey", "Alon Halevy") < 0.5);
//! assert!(email_matches_name("mcarey@ibm.com", "Michael Carey"));
//! ```

mod corpus;
mod edit;
pub mod email;
mod jaro;
pub mod name;
mod phonetic;
pub mod title;
mod tokens;
pub mod venue;

pub use corpus::CorpusStats;
pub use edit::{
    damerau_levenshtein, levenshtein, levenshtein_bounded, normalized_damerau,
    normalized_levenshtein,
};
pub use jaro::{jaro, jaro_winkler};
pub use phonetic::soundex;
pub use tokens::{
    cosine, dice, jaccard, lowercase_into, monge_elkan, ngrams, tf_idf_cosine, token_spans,
    tokenize, tokenize_lower,
};
