/root/repo/target/debug/deps/semex_model-9480220c8a4dc6a0.d: crates/model/src/lib.rs crates/model/src/attribute.rs crates/model/src/class.rs crates/model/src/derived.rs crates/model/src/model.rs crates/model/src/relation.rs crates/model/src/value.rs

/root/repo/target/debug/deps/libsemex_model-9480220c8a4dc6a0.rmeta: crates/model/src/lib.rs crates/model/src/attribute.rs crates/model/src/class.rs crates/model/src/derived.rs crates/model/src/model.rs crates/model/src/relation.rs crates/model/src/value.rs

crates/model/src/lib.rs:
crates/model/src/attribute.rs:
crates/model/src/class.rs:
crates/model/src/derived.rs:
crates/model/src/model.rs:
crates/model/src/relation.rs:
crates/model/src/value.rs:
