/root/repo/target/debug/deps/semex_tenant-58fe7614fb028fcf.d: crates/tenant/src/lib.rs crates/tenant/src/engine.rs crates/tenant/src/id.rs crates/tenant/src/master.rs crates/tenant/src/pool.rs crates/tenant/src/registry.rs

/root/repo/target/debug/deps/libsemex_tenant-58fe7614fb028fcf.rmeta: crates/tenant/src/lib.rs crates/tenant/src/engine.rs crates/tenant/src/id.rs crates/tenant/src/master.rs crates/tenant/src/pool.rs crates/tenant/src/registry.rs

crates/tenant/src/lib.rs:
crates/tenant/src/engine.rs:
crates/tenant/src/id.rs:
crates/tenant/src/master.rs:
crates/tenant/src/pool.rs:
crates/tenant/src/registry.rs:
