//! Property tests: store merge invariants under arbitrary merge sequences.
//!
//! Merging is the store primitive reconciliation rests on; these properties
//! guarantee the adjacency indexes never desynchronize no matter the merge
//! order.

use proptest::prelude::*;
use semex_model::names::{assoc, class};
use semex_model::Value;
use semex_store::{SourceInfo, SourceKind, Store};

fn build_store(
    people: usize,
    pubs: usize,
    edges: &[(usize, usize)],
) -> (
    Store,
    Vec<semex_store::ObjectId>,
    Vec<semex_store::ObjectId>,
) {
    let mut st = Store::with_builtin_model();
    let src = st.register_source(SourceInfo::new("t", SourceKind::Synthetic));
    let c_person = st.model().class(class::PERSON).unwrap();
    let c_pub = st.model().class(class::PUBLICATION).unwrap();
    let a_name = st.model().attr("name").unwrap();
    let authored = st.model().assoc(assoc::AUTHORED_BY).unwrap();
    let ps: Vec<_> = (0..people)
        .map(|i| {
            let p = st.add_object(c_person);
            st.add_attr(p, a_name, Value::from(format!("Person {i}").as_str()))
                .unwrap();
            p
        })
        .collect();
    let bs: Vec<_> = (0..pubs).map(|_| st.add_object(c_pub)).collect();
    for &(b, p) in edges {
        st.add_triple(bs[b % pubs], authored, ps[p % people], src)
            .unwrap();
    }
    (st, ps, bs)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn merge_sequences_preserve_invariants(
        edges in prop::collection::vec((0usize..6, 0usize..8), 1..24),
        merges in prop::collection::vec((0usize..8, 0usize..8), 0..10),
    ) {
        let (mut st, ps, bs) = build_store(8, 6, &edges);
        let authored = st.model().assoc(assoc::AUTHORED_BY).unwrap();
        let edges_before = st.assoc_count(authored);

        let mut applied = 0;
        for &(w, l) in &merges {
            if st.resolve(ps[w]) != st.resolve(ps[l]) {
                st.merge(ps[w], ps[l]).unwrap();
                applied += 1;
            }
        }

        // Live count bookkeeping.
        prop_assert_eq!(st.alias_count(), applied);
        prop_assert_eq!(st.object_count() + st.alias_count(), st.slot_count());

        // Resolution is idempotent and lands on a live object.
        for &p in &ps {
            let r = st.resolve(p);
            prop_assert_eq!(st.resolve(r), r);
            prop_assert!(!st.object(r).is_alias());
        }

        // Edges never increase under merging (dedup only shrinks).
        let edges_after = st.assoc_count(authored);
        prop_assert!(edges_after <= edges_before);

        // Forward/inverse adjacency stay exact mirrors.
        for &b in &bs {
            for &p in st.neighbors(b, authored) {
                prop_assert!(!st.object(p).is_alias(), "adjacency points at live objects");
                prop_assert!(st.inverse_neighbors(p, authored).contains(&st.resolve(b)));
            }
        }
        for &p in &ps {
            let r = st.resolve(p);
            for &b in st.inverse_neighbors(r, authored) {
                prop_assert!(st.neighbors(b, authored).contains(&r));
            }
        }

        // Snapshot round-trip preserves the merged state exactly.
        let st2 = Store::from_json(&st.to_json().unwrap()).unwrap();
        prop_assert_eq!(st2.object_count(), st.object_count());
        prop_assert_eq!(st2.assoc_count(authored), edges_after);
        for &p in &ps {
            prop_assert_eq!(st2.resolve(p), st.resolve(p));
        }
    }

    #[test]
    fn merged_attribute_pools_are_unions(
        names_a in prop::collection::vec("[A-Z][a-z]{1,6}", 1..4),
        names_b in prop::collection::vec("[A-Z][a-z]{1,6}", 1..4),
    ) {
        let mut st = Store::with_builtin_model();
        let c_person = st.model().class(class::PERSON).unwrap();
        let a_name = st.model().attr("name").unwrap();
        let a = st.add_object(c_person);
        let b = st.add_object(c_person);
        for n in &names_a {
            st.add_attr(a, a_name, Value::from(n.as_str())).unwrap();
        }
        for n in &names_b {
            st.add_attr(b, a_name, Value::from(n.as_str())).unwrap();
        }
        st.merge(a, b).unwrap();
        let pooled: std::collections::HashSet<String> =
            st.object(a).strs(a_name).map(str::to_owned).collect();
        let expected: std::collections::HashSet<String> =
            names_a.iter().chain(names_b.iter()).cloned().collect();
        prop_assert_eq!(pooled, expected);
    }
}
