/root/repo/target/release/deps/proptest-9117ba185a1f3a0d.d: third_party/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-9117ba185a1f3a0d.rlib: third_party/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-9117ba185a1f3a0d.rmeta: third_party/proptest/src/lib.rs

third_party/proptest/src/lib.rs:
