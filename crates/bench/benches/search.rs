//! Criterion bench backing experiment E6: index construction and query
//! latency of the object-centric keyword search.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use semex_bench::extract_corpus;
use semex_corpus::{generate_personal, CorpusConfig};
use semex_index::SearchIndex;
use semex_recon::{reconcile, ReconConfig, Variant};
use semex_store::Store;

fn reconciled_store(scale: f64) -> Store {
    let cfg = CorpusConfig {
        seed: 11,
        ..CorpusConfig::default()
    }
    .scaled_size(scale);
    let mut store = extract_corpus(&generate_personal(&cfg));
    reconcile(&mut store, Variant::Full, &ReconConfig::default());
    store
}

fn bench_build(c: &mut Criterion) {
    let store = reconciled_store(0.5);
    c.bench_function("index_build", |b| {
        b.iter(|| SearchIndex::build(&store));
    });
}

fn bench_queries(c: &mut Criterion) {
    let store = reconciled_store(0.5);
    let index = SearchIndex::build(&store);
    let mut group = c.benchmark_group("search_query");
    for (label, query) in [
        ("one_term", "reconciliation"),
        ("two_terms", "michael carey"),
        ("class_filtered", "class:Person michael carey"),
        ("email", "luna@cs.example.edu"),
        ("rare_miss", "zyzzyva quux"),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(label), &query, |b, q| {
            b.iter(|| index.search_str(&store, q, 10));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_build, bench_queries);
criterion_main!(benches);
