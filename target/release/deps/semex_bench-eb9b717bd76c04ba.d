/root/repo/target/release/deps/semex_bench-eb9b717bd76c04ba.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/semex_bench-eb9b717bd76c04ba: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
