/root/repo/target/release/deps/serde_derive-62e847904b5d9d7a.d: third_party/serde_derive/src/lib.rs

/root/repo/target/release/deps/libserde_derive-62e847904b5d9d7a.so: third_party/serde_derive/src/lib.rs

third_party/serde_derive/src/lib.rs:
