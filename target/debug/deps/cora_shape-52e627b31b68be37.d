/root/repo/target/debug/deps/cora_shape-52e627b31b68be37.d: tests/cora_shape.rs tests/common/mod.rs Cargo.toml

/root/repo/target/debug/deps/libcora_shape-52e627b31b68be37.rmeta: tests/cora_shape.rs tests/common/mod.rs Cargo.toml

tests/cora_shape.rs:
tests/common/mod.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
