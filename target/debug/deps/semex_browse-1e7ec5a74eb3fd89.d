/root/repo/target/debug/deps/semex_browse-1e7ec5a74eb3fd89.d: crates/browse/src/lib.rs crates/browse/src/analyze.rs crates/browse/src/pattern.rs Cargo.toml

/root/repo/target/debug/deps/libsemex_browse-1e7ec5a74eb3fd89.rmeta: crates/browse/src/lib.rs crates/browse/src/analyze.rs crates/browse/src/pattern.rs Cargo.toml

crates/browse/src/lib.rs:
crates/browse/src/analyze.rs:
crates/browse/src/pattern.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
