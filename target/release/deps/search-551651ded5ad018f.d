/root/repo/target/release/deps/search-551651ded5ad018f.d: crates/bench/benches/search.rs

/root/repo/target/release/deps/search-551651ded5ad018f: crates/bench/benches/search.rs

crates/bench/benches/search.rs:
