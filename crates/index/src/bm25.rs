//! BM25 scoring parameters and formula.

/// BM25 tunables.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bm25Params {
    /// Term-frequency saturation (classic default 1.2).
    pub k1: f64,
    /// Length normalization (classic default 0.75).
    pub b: f64,
    /// Score multiplier for objects matching *every* query term.
    pub all_terms_boost: f64,
}

impl Default for Bm25Params {
    fn default() -> Self {
        Bm25Params {
            k1: 1.2,
            b: 0.75,
            all_terms_boost: 1.5,
        }
    }
}

impl Bm25Params {
    /// The BM25 contribution of one term in one document.
    ///
    /// * `tf` — weighted term frequency in the document,
    /// * `df` — number of documents containing the term,
    /// * `n_docs` — corpus size,
    /// * `dl` / `avg_dl` — document length and corpus average.
    pub fn score(&self, tf: f64, df: usize, n_docs: usize, dl: f64, avg_dl: f64) -> f64 {
        if tf <= 0.0 || df == 0 || n_docs == 0 {
            return 0.0;
        }
        let idf = (((n_docs as f64 - df as f64 + 0.5) / (df as f64 + 0.5)) + 1.0).ln();
        let denom = tf + self.k1 * (1.0 - self.b + self.b * dl / avg_dl.max(1.0));
        idf * tf * (self.k1 + 1.0) / denom
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rarer_terms_score_higher() {
        let p = Bm25Params::default();
        let rare = p.score(1.0, 1, 1000, 10.0, 10.0);
        let common = p.score(1.0, 900, 1000, 10.0, 10.0);
        assert!(rare > common);
        assert!(common > 0.0, "idf stays positive via +1 smoothing");
    }

    #[test]
    fn tf_saturates() {
        let p = Bm25Params::default();
        let s1 = p.score(1.0, 10, 1000, 10.0, 10.0);
        let s2 = p.score(2.0, 10, 1000, 10.0, 10.0);
        let s10 = p.score(10.0, 10, 1000, 10.0, 10.0);
        assert!(s2 > s1);
        assert!(s10 < 10.0 * s1, "sub-linear in tf");
    }

    #[test]
    fn longer_docs_penalized() {
        let p = Bm25Params::default();
        let short = p.score(1.0, 10, 1000, 5.0, 10.0);
        let long = p.score(1.0, 10, 1000, 100.0, 10.0);
        assert!(short > long);
    }

    #[test]
    fn degenerate_inputs() {
        let p = Bm25Params::default();
        assert_eq!(p.score(0.0, 10, 100, 10.0, 10.0), 0.0);
        assert_eq!(p.score(1.0, 0, 100, 10.0, 10.0), 0.0);
        assert_eq!(p.score(1.0, 10, 0, 10.0, 10.0), 0.0);
    }
}
