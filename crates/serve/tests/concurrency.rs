//! Concurrency correctness: N reader clients hammer the server while a
//! writer client streams mutations through the serialized write path.
//!
//! Verified properties:
//! - **No torn epochs.** Every response names the epoch it was computed
//!   against, and all responses naming the same epoch — across all reader
//!   threads, the whole run — report identical store statistics. A read
//!   can never observe half of a write batch.
//! - **Monotonic epochs per connection.** A client never travels back in
//!   time.
//! - **Read-your-writes.** Every acked write carries the epoch it was
//!   published in; a search at-or-after that epoch finds it.
//! - **Serialized writes equal sequential replay.** After shutdown, the
//!   recorded command sequence applied to a fresh copy of the initial
//!   platform yields a canonically byte-identical store.

use semex_core::{Semex, SemexBuilder};
use semex_serve::json::Json;
use semex_serve::protocol::{IngestFormat, Request, Response};
use semex_serve::{serve, Client, Master, ServeConfig};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;

const READERS: usize = 4;
const WRITES: usize = 24;

fn demo() -> Semex {
    SemexBuilder::new()
        .add_bibtex(
            "library",
            "@inproceedings{d5, title={Reference Reconciliation in Complex Spaces}, \
             author={Dong, Xin and Halevy, Alon}, booktitle={SIGMOD}, year=2005}",
        )
        .add_mbox(
            "inbox",
            "From: Xin Dong <luna@cs.example.edu>\nTo: Alon Halevy <alon@cs.example.edu>\n\
             Subject: demo plan\n\nSee you Friday.",
        )
        .build()
        .unwrap()
}

/// A unique, purely alphabetic search token per write (digits could be
/// split off by the tokenizer and collide across writes).
fn token(i: usize) -> String {
    format!(
        "tok{}{}",
        char::from(b'a' + (i / 26) as u8),
        char::from(b'a' + (i % 26) as u8)
    )
}

/// Canonicalize a JSON document: same data → same bytes, regardless of
/// the key order HashMap-backed serializers happened to emit.
fn canon(text: &str) -> String {
    fn sort(v: &mut Json) {
        match v {
            Json::Arr(items) => items.iter_mut().for_each(sort),
            Json::Obj(fields) => {
                fields.iter_mut().for_each(|(_, v)| sort(v));
                fields.sort_by(|a, b| a.0.cmp(&b.0));
            }
            _ => {}
        }
    }
    let mut v = Json::parse(text).expect("store snapshots are valid JSON");
    sort(&mut v);
    v.encode()
}

#[test]
fn readers_never_observe_torn_epochs_and_writes_replay_sequentially() {
    let config = ServeConfig {
        threads: READERS + 1, // readers plus the writer client
        record_writes: true,
        ..ServeConfig::default()
    };
    let handle = serve(Master::Ephemeral(demo()), "127.0.0.1:0", config).unwrap();
    let addr = handle.addr();

    // The writer client: a stream of ingests, each a unique token.
    let writer = thread::spawn(move || {
        let mut client = Client::connect(addr).unwrap();
        let mut acked = Vec::new();
        for i in 0..WRITES {
            let response = client
                .request(&Request::Ingest {
                    format: IngestFormat::Mbox,
                    name: format!("w{i}"),
                    content: format!(
                        "From: w{i}@writes.example\nSubject: {}\n\nbody {i}",
                        token(i)
                    ),
                })
                .unwrap();
            match response {
                Response::Ingested { epoch, records, .. } => {
                    assert_eq!(records, 1);
                    assert!(epoch > 0, "acks carry the publication epoch");
                    // Read-your-writes: the ack's epoch (or later) serves
                    // the write on the very next request.
                    match client
                        .request(&Request::Search {
                            query: token(i),
                            k: 3,
                            exhaustive: false,
                        })
                        .unwrap()
                    {
                        Response::Hits {
                            epoch: read_epoch,
                            hits,
                        } => {
                            assert!(read_epoch >= epoch, "epochs are monotonic");
                            assert_eq!(hits.len(), 1, "acked write {i} must be found");
                        }
                        other => panic!("unexpected response: {other:?}"),
                    }
                    acked.push(epoch);
                }
                other => panic!("unexpected response: {other:?}"),
            }
        }
        acked
    });

    // Reader clients: record (epoch, stats) pairs as fast as they can.
    let done = Arc::new(AtomicBool::new(false));
    let readers: Vec<_> = (0..READERS)
        .map(|_| {
            let done = Arc::clone(&done);
            thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                let mut observed = Vec::new();
                let mut last_epoch = 0u64;
                while !done.load(Ordering::Relaxed) {
                    match client.request(&Request::Stats).unwrap() {
                        Response::Stats {
                            epoch,
                            objects,
                            aliases,
                            edges,
                            sources,
                            ..
                        } => {
                            assert!(epoch >= last_epoch, "no time travel on one connection");
                            last_epoch = epoch;
                            observed.push((epoch, (objects, aliases, edges, sources)));
                        }
                        other => panic!("unexpected response: {other:?}"),
                    }
                    // A search against (possibly) another snapshot load must
                    // also be internally consistent — exercised for panics
                    // and torn state, result content checked via epochs.
                    match client
                        .request(&Request::Search {
                            query: "reconciliation".into(),
                            k: 5,
                            exhaustive: false,
                        })
                        .unwrap()
                    {
                        Response::Hits { epoch, hits } => {
                            assert!(epoch >= last_epoch);
                            last_epoch = epoch;
                            assert_eq!(hits.len(), 1, "the seed publication is always there");
                        }
                        other => panic!("unexpected response: {other:?}"),
                    }
                }
                observed
            })
        })
        .collect();

    let acked = writer.join().unwrap();
    done.store(true, Ordering::Relaxed);
    let observations: Vec<_> = readers
        .into_iter()
        .flat_map(|r| r.join().unwrap())
        .collect();

    // Clean shutdown through the protocol.
    let mut client = Client::connect(addr).unwrap();
    assert!(matches!(
        client.request(&Request::Shutdown).unwrap(),
        Response::ShutdownAck { .. }
    ));
    drop(client);
    let report = handle.join();

    // Every write acked, none failed, and ack epochs never regress.
    assert_eq!(acked.len(), WRITES);
    assert!(acked.windows(2).all(|w| w[0] <= w[1]));
    assert_eq!(report.writer.writes_ok, WRITES as u64);
    assert_eq!(report.writer.writes_failed, 0);
    assert!(
        report.writer.batches as usize <= WRITES,
        "batches cannot outnumber writes"
    );

    // No torn epochs: one epoch, one state — across every reader thread.
    assert!(!observations.is_empty());
    let mut by_epoch: HashMap<u64, (usize, usize, usize, usize)> = HashMap::new();
    for (epoch, stats) in observations {
        match by_epoch.entry(epoch) {
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(stats);
            }
            std::collections::hash_map::Entry::Occupied(e) => {
                assert_eq!(
                    *e.get(),
                    stats,
                    "epoch {epoch} observed with two different states"
                );
            }
        }
    }

    // The served, concurrent history equals a sequential replay of the
    // recorded commands on a fresh copy of the initial platform.
    assert_eq!(report.writer.applied.len(), WRITES);
    let mut replay = demo();
    for cmd in &report.writer.applied {
        cmd.apply(&mut replay)
            .unwrap_or_else(|e| panic!("replay rejected {cmd:?}: {e:?}"));
    }
    replay.flush_index();
    let master = report
        .master
        .expect("single-tenant serve hands back its pinned master");
    assert_eq!(
        canon(&replay.store().to_json().unwrap()),
        canon(&master.semex().store().to_json().unwrap()),
        "post-shutdown store must be byte-identical to the sequential replay"
    );
    // And the final store really contains every acked token.
    let served = master.into_semex();
    for i in 0..WRITES {
        assert_eq!(served.search(&token(i), 3).len(), 1, "write {i}");
    }
}
