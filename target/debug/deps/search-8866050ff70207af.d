/root/repo/target/debug/deps/search-8866050ff70207af.d: crates/bench/benches/search.rs Cargo.toml

/root/repo/target/debug/deps/libsearch-8866050ff70207af.rmeta: crates/bench/benches/search.rs Cargo.toml

crates/bench/benches/search.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
