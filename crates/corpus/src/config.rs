//! Corpus generation parameters.

/// Noise knobs controlling how many surface variants each entity exhibits.
#[derive(Debug, Clone, PartialEq)]
pub struct NoiseConfig {
    /// Probability that a person mention uses a non-canonical form
    /// (initials, `Last, First`, nickname) instead of `First Last`.
    pub name_variant: f64,
    /// Probability that a mention's family name carries a typo
    /// (adjacent-character transposition or substitution).
    pub typo: f64,
    /// Probability that an e-mail mention uses the person's secondary
    /// address instead of the primary one.
    pub email_alias: f64,
    /// Probability that a rendered publication title drops or typos a word.
    pub title_noise: f64,
    /// Probability that a venue mention uses its abbreviation.
    pub venue_abbrev: f64,
}

impl Default for NoiseConfig {
    fn default() -> Self {
        NoiseConfig {
            name_variant: 0.45,
            typo: 0.06,
            email_alias: 0.25,
            title_noise: 0.12,
            venue_abbrev: 0.5,
        }
    }
}

impl NoiseConfig {
    /// A noise-free configuration (every mention canonical).
    pub fn none() -> Self {
        NoiseConfig {
            name_variant: 0.0,
            typo: 0.0,
            email_alias: 0.0,
            title_noise: 0.0,
            venue_abbrev: 0.0,
        }
    }

    /// Scale every probability by `f` (clamped to `[0, 1]`), for noise
    /// sweeps.
    pub fn scaled(&self, f: f64) -> Self {
        let c = |p: f64| (p * f).clamp(0.0, 1.0);
        NoiseConfig {
            name_variant: c(self.name_variant),
            typo: c(self.typo),
            email_alias: c(self.email_alias),
            title_noise: c(self.title_noise),
            venue_abbrev: c(self.venue_abbrev),
        }
    }
}

/// Size and noise parameters of a personal corpus.
#[derive(Debug, Clone, PartialEq)]
pub struct CorpusConfig {
    /// RNG seed; equal seeds produce byte-identical corpora.
    pub seed: u64,
    /// Distinct real people in the world.
    pub people: usize,
    /// Organizations people work for.
    pub organizations: usize,
    /// Publication venues.
    pub venues: usize,
    /// Publications (each authored by 1–4 people).
    pub publications: usize,
    /// E-mail messages in the mail archive.
    pub messages: usize,
    /// Fraction of people present in the vCard contact file.
    pub contacts_fraction: f64,
    /// Noise model.
    pub noise: NoiseConfig,
}

impl Default for CorpusConfig {
    fn default() -> Self {
        CorpusConfig {
            seed: 2005,
            people: 120,
            organizations: 12,
            venues: 15,
            publications: 260,
            messages: 1400,
            contacts_fraction: 0.4,
            noise: NoiseConfig::default(),
        }
    }
}

impl CorpusConfig {
    /// A small configuration for fast unit tests.
    pub fn tiny(seed: u64) -> Self {
        CorpusConfig {
            seed,
            people: 20,
            organizations: 3,
            venues: 4,
            publications: 25,
            messages: 80,
            contacts_fraction: 0.5,
            noise: NoiseConfig::default(),
        }
    }

    /// Scale the corpus size by roughly `f` (people, publications,
    /// messages), used for scalability sweeps.
    pub fn scaled_size(&self, f: f64) -> Self {
        let s = |n: usize| ((n as f64 * f).round() as usize).max(2);
        CorpusConfig {
            people: s(self.people),
            organizations: s(self.organizations).min(40),
            venues: s(self.venues).min(40),
            publications: s(self.publications),
            messages: s(self.messages),
            ..self.clone()
        }
    }
}

/// Parameters of the Cora-style citation corpus.
#[derive(Debug, Clone, PartialEq)]
pub struct CoraConfig {
    /// RNG seed.
    pub seed: u64,
    /// Underlying distinct papers.
    pub papers: usize,
    /// Distinct authors papers draw from.
    pub authors: usize,
    /// Distinct venues.
    pub venues: usize,
    /// Citation records per paper: uniform in `1..=max_citations_per_paper`.
    pub max_citations_per_paper: usize,
    /// Noise model applied to each citation record.
    pub noise: NoiseConfig,
}

impl Default for CoraConfig {
    fn default() -> Self {
        CoraConfig {
            seed: 1993,
            papers: 120,
            authors: 90,
            venues: 12,
            max_citations_per_paper: 5,
            noise: NoiseConfig {
                name_variant: 0.6,
                typo: 0.08,
                email_alias: 0.0,
                title_noise: 0.2,
                venue_abbrev: 0.6,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaling_clamps() {
        let n = NoiseConfig::default().scaled(10.0);
        assert!(n.name_variant <= 1.0 && n.typo <= 1.0);
        let z = NoiseConfig::default().scaled(0.0);
        assert_eq!(z, NoiseConfig::none());
    }

    #[test]
    fn size_scaling() {
        let c = CorpusConfig::default().scaled_size(2.0);
        assert_eq!(c.people, 240);
        assert_eq!(c.messages, 2800);
        let small = CorpusConfig::default().scaled_size(0.001);
        assert!(small.people >= 2);
    }
}
