/root/repo/target/debug/deps/semex_index-34369ed372497fc3.d: crates/index/src/lib.rs crates/index/src/bm25.rs crates/index/src/dict.rs crates/index/src/postings.rs crates/index/src/query.rs crates/index/src/search.rs crates/index/src/tokenizer.rs crates/index/src/topk.rs Cargo.toml

/root/repo/target/debug/deps/libsemex_index-34369ed372497fc3.rmeta: crates/index/src/lib.rs crates/index/src/bm25.rs crates/index/src/dict.rs crates/index/src/postings.rs crates/index/src/query.rs crates/index/src/search.rs crates/index/src/tokenizer.rs crates/index/src/topk.rs Cargo.toml

crates/index/src/lib.rs:
crates/index/src/bm25.rs:
crates/index/src/dict.rs:
crates/index/src/postings.rs:
crates/index/src/query.rs:
crates/index/src/search.rs:
crates/index/src/tokenizer.rs:
crates/index/src/topk.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
