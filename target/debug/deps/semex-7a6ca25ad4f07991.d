/root/repo/target/debug/deps/semex-7a6ca25ad4f07991.d: src/lib.rs

/root/repo/target/debug/deps/semex-7a6ca25ad4f07991: src/lib.rs

src/lib.rs:
