//! On-the-fly integration measured against ground truth: external rows
//! describing known entities must merge into their existing objects.

mod common;

use common::extract_corpus;
use semex::corpus::{generate_personal, CorpusConfig};
use semex::extract::csv::parse_csv;
use semex::integrate::{import, SchemaMatcher};
use semex::recon::{reconcile, ReconConfig, Variant};

#[test]
fn known_people_merge_unknown_people_do_not() {
    let corpus = generate_personal(&CorpusConfig::tiny(41));
    let mut store = extract_corpus(&corpus);
    reconcile(&mut store, Variant::Full, &ReconConfig::default());
    let people_before = store.class_count(store.model().class("Person").unwrap());

    let known = 8.min(corpus.world.people.len());
    let mut csv = String::from("participant,mail\n");
    for p in corpus.world.people.iter().take(known) {
        csv.push_str(&format!("{},{}\n", p.canonical_name(), p.emails[0]));
    }
    csv.push_str("Zz Visitor,zz@nowhere.example\n");
    let table = parse_csv(&csv).unwrap();

    let matcher = SchemaMatcher::new(&store);
    let mapping = matcher.match_table(&table).expect("mapping");
    assert_eq!(store.model().class_def(mapping.class).name, "Person");
    let report = import(&mut store, "ext", &table, &mapping, &ReconConfig::default()).unwrap();

    assert_eq!(report.created, known + 1);
    assert_eq!(report.merged_into_existing, known, "{report:?}");
    // Exactly one new person (the visitor). The count can even *drop*:
    // an imported canonical-name + primary-address row sometimes bridges
    // two not-yet-merged clusters of the same existing person.
    let people_after = store.class_count(store.model().class("Person").unwrap());
    assert!(
        people_after <= people_before + 1,
        "at most the visitor is new ({people_before} -> {people_after})"
    );
    let c_person = store.model().class("Person").unwrap();
    assert!(
        store
            .objects_of_class(c_person)
            .any(|p| store.label(p) == "Zz Visitor"),
        "the unknown visitor exists as a new object"
    );
}

#[test]
fn publications_import_by_title() {
    let corpus = generate_personal(&CorpusConfig::tiny(42));
    let mut store = extract_corpus(&corpus);
    reconcile(&mut store, Variant::Full, &ReconConfig::default());
    let pubs_before = store.class_count(store.model().class("Publication").unwrap());

    let mut csv = String::from("paper title,year\n");
    for p in corpus.world.pubs.iter().take(10) {
        csv.push_str(&format!("\"{}\",{}\n", p.title, p.year));
    }
    let table = parse_csv(&csv).unwrap();
    let matcher = SchemaMatcher::new(&store);
    let mapping = matcher.match_table(&table).expect("mapping");
    assert_eq!(store.model().class_def(mapping.class).name, "Publication");
    let report = import(
        &mut store,
        "reading",
        &table,
        &mapping,
        &ReconConfig::default(),
    )
    .unwrap();
    assert_eq!(report.merged_into_existing, 10, "{report:?}");
    let pubs_after = store.class_count(store.model().class("Publication").unwrap());
    assert_eq!(pubs_after, pubs_before);
}

#[test]
fn import_provenance_is_tracked() {
    let corpus = generate_personal(&CorpusConfig::tiny(43));
    let mut store = extract_corpus(&corpus);
    reconcile(&mut store, Variant::Full, &ReconConfig::default());

    let p0 = &corpus.world.people[0];
    let csv = format!("name,email\n{},{}\n", p0.canonical_name(), p0.emails[0]);
    let table = parse_csv(&csv).unwrap();
    let matcher = SchemaMatcher::new(&store);
    let mapping = matcher.match_table(&table).unwrap();
    let report = import(
        &mut store,
        "one-row",
        &table,
        &mapping,
        &ReconConfig::default(),
    )
    .unwrap();

    // The merged person's object carries the import source alongside its
    // original extraction source.
    let c_person = store.model().class("Person").unwrap();
    let merged = store
        .objects_of_class(c_person)
        .find(|&p| store.object(p).sources.contains(&report.source))
        .expect("an object carries the import's provenance");
    assert!(
        store.object(merged).sources.len() >= 2,
        "import + original extraction sources"
    );
}
