/root/repo/target/debug/deps/semex-d6152430f0a1f9b6.d: src/lib.rs

/root/repo/target/debug/deps/libsemex-d6152430f0a1f9b6.rlib: src/lib.rs

/root/repo/target/debug/deps/libsemex-d6152430f0a1f9b6.rmeta: src/lib.rs

src/lib.rs:
