//! Soundex phonetic coding.

/// American Soundex code of a word: an uppercase letter followed by three
/// digits (e.g. `"Robert"` → `"R163"`). Non-ASCII-alphabetic characters are
/// ignored; an input without any letter yields `None`.
pub fn soundex(word: &str) -> Option<String> {
    let letters: Vec<char> = word
        .chars()
        .filter(|c| c.is_ascii_alphabetic())
        .map(|c| c.to_ascii_uppercase())
        .collect();
    let first = *letters.first()?;

    fn code(c: char) -> u8 {
        match c {
            'B' | 'F' | 'P' | 'V' => 1,
            'C' | 'G' | 'J' | 'K' | 'Q' | 'S' | 'X' | 'Z' => 2,
            'D' | 'T' => 3,
            'L' => 4,
            'M' | 'N' => 5,
            'R' => 6,
            // H and W are skipped (transparent), vowels separate codes.
            _ => 0,
        }
    }

    let mut out = String::with_capacity(4);
    out.push(first);
    let mut last_code = code(first);
    for &c in &letters[1..] {
        if c == 'H' || c == 'W' {
            // Transparent: does not reset last_code, so identical codes
            // across H/W collapse ("Ashcraft" -> A261).
            continue;
        }
        let k = code(c);
        if k != 0 && k != last_code {
            out.push(char::from(b'0' + k));
            if out.len() == 4 {
                break;
            }
        }
        last_code = k;
    }
    while out.len() < 4 {
        out.push('0');
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn classic_codes() {
        assert_eq!(soundex("Robert").as_deref(), Some("R163"));
        assert_eq!(soundex("Rupert").as_deref(), Some("R163"));
        assert_eq!(soundex("Ashcraft").as_deref(), Some("A261"));
        assert_eq!(soundex("Ashcroft").as_deref(), Some("A261"));
        assert_eq!(soundex("Tymczak").as_deref(), Some("T522"));
        assert_eq!(soundex("Pfister").as_deref(), Some("P236"));
        assert_eq!(soundex("Honeyman").as_deref(), Some("H555"));
    }

    #[test]
    fn phonetic_variants_collide() {
        assert_eq!(soundex("Smith"), soundex("Smyth"));
        assert_eq!(soundex("Carey"), soundex("Cary"));
        assert_ne!(soundex("Halevy"), soundex("Madhavan"));
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(soundex(""), None);
        assert_eq!(soundex("123"), None);
        assert_eq!(soundex("a").as_deref(), Some("A000"));
        assert_eq!(
            soundex("  o'Neil  ").as_deref(),
            soundex("ONeil").as_deref()
        );
    }

    proptest! {
        #[test]
        fn code_shape(w in "[a-zA-Z]{1,12}") {
            let c = soundex(&w).unwrap();
            prop_assert_eq!(c.len(), 4);
            let mut chars = c.chars();
            prop_assert!(chars.next().unwrap().is_ascii_uppercase());
            prop_assert!(chars.all(|d| d.is_ascii_digit()));
        }

        #[test]
        fn case_insensitive(w in "[a-zA-Z]{1,12}") {
            prop_assert_eq!(soundex(&w), soundex(&w.to_uppercase()));
            prop_assert_eq!(soundex(&w), soundex(&w.to_lowercase()));
        }
    }
}
