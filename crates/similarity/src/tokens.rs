//! Token-level similarity: Jaccard, Dice, cosine, IDF-weighted cosine and
//! the Monge–Elkan hybrid.

use crate::CorpusStats;
use std::collections::{HashMap, HashSet};

/// Iterate over a string's alphanumeric token spans (Unicode-aware) without
/// allocating. [`tokenize`] is this plus an owned `String` per token; hot
/// paths (blocking-key generation) borrow the spans directly.
pub fn token_spans(s: &str) -> impl Iterator<Item = &str> {
    s.split(|c: char| !c.is_alphanumeric())
        .filter(|t| !t.is_empty())
}

/// Split a string into alphanumeric tokens (Unicode-aware), preserving case.
pub fn tokenize(s: &str) -> Vec<String> {
    token_spans(s).map(str::to_owned).collect()
}

/// Tokenize and lowercase.
pub fn tokenize_lower(s: &str) -> Vec<String> {
    tokenize(s).into_iter().map(|t| t.to_lowercase()).collect()
}

/// Lowercase `s` into a caller-provided buffer (cleared first), avoiding a
/// fresh allocation per call. Produces exactly [`str::to_lowercase`]'s
/// output, including the context-dependent Greek final-sigma mapping.
pub fn lowercase_into(s: &str, buf: &mut String) {
    buf.clear();
    if s.contains('\u{03A3}') {
        // 'Σ' is the only char whose lowercase depends on its position in
        // the word; defer to std for the rare string that contains it.
        buf.push_str(&s.to_lowercase());
    } else {
        buf.extend(s.chars().flat_map(char::to_lowercase));
    }
}

/// Character n-grams of a string (over Unicode scalars). Strings shorter
/// than `n` yield the whole string as a single gram.
pub fn ngrams(s: &str, n: usize) -> Vec<String> {
    assert!(n > 0, "n-gram size must be positive");
    let chars: Vec<char> = s.chars().collect();
    if chars.is_empty() {
        return Vec::new();
    }
    if chars.len() <= n {
        return vec![chars.into_iter().collect()];
    }
    chars.windows(n).map(|w| w.iter().collect()).collect()
}

/// Jaccard similarity of two token multisets (treated as sets).
pub fn jaccard<S: AsRef<str>>(a: &[S], b: &[S]) -> f64 {
    let sa: HashSet<&str> = a.iter().map(AsRef::as_ref).collect();
    let sb: HashSet<&str> = b.iter().map(AsRef::as_ref).collect();
    if sa.is_empty() && sb.is_empty() {
        return 1.0;
    }
    let inter = sa.intersection(&sb).count();
    let union = sa.union(&sb).count();
    inter as f64 / union as f64
}

/// Dice coefficient of two token sets.
pub fn dice<S: AsRef<str>>(a: &[S], b: &[S]) -> f64 {
    let sa: HashSet<&str> = a.iter().map(AsRef::as_ref).collect();
    let sb: HashSet<&str> = b.iter().map(AsRef::as_ref).collect();
    if sa.is_empty() && sb.is_empty() {
        return 1.0;
    }
    if sa.is_empty() || sb.is_empty() {
        return 0.0;
    }
    let inter = sa.intersection(&sb).count();
    2.0 * inter as f64 / (sa.len() + sb.len()) as f64
}

fn tf(tokens: &[impl AsRef<str>]) -> HashMap<&str, f64> {
    let mut m: HashMap<&str, f64> = HashMap::new();
    for t in tokens {
        *m.entry(t.as_ref()).or_insert(0.0) += 1.0;
    }
    m
}

/// Cosine similarity of the term-frequency vectors of two token lists.
pub fn cosine<S: AsRef<str>>(a: &[S], b: &[S]) -> f64 {
    let ta = tf(a);
    let tb = tf(b);
    if ta.is_empty() && tb.is_empty() {
        return 1.0;
    }
    if ta.is_empty() || tb.is_empty() {
        return 0.0;
    }
    let dot: f64 = ta
        .iter()
        .filter_map(|(t, &wa)| tb.get(t).map(|&wb| wa * wb))
        .sum();
    let na: f64 = ta.values().map(|w| w * w).sum::<f64>().sqrt();
    let nb: f64 = tb.values().map(|w| w * w).sum::<f64>().sqrt();
    dot / (na * nb)
}

/// IDF-weighted cosine: rare tokens (per `stats`) dominate the score, so
/// two titles sharing "reconciliation" match harder than two sharing "the".
pub fn tf_idf_cosine<S: AsRef<str>>(a: &[S], b: &[S], stats: &CorpusStats) -> f64 {
    let ta = tf(a);
    let tb = tf(b);
    if ta.is_empty() && tb.is_empty() {
        return 1.0;
    }
    if ta.is_empty() || tb.is_empty() {
        return 0.0;
    }
    let weigh = |m: &HashMap<&str, f64>| -> HashMap<String, f64> {
        m.iter()
            .map(|(t, &f)| ((*t).to_owned(), f * stats.idf(t)))
            .collect()
    };
    let wa = weigh(&ta);
    let wb = weigh(&tb);
    let dot: f64 = wa
        .iter()
        .filter_map(|(t, &x)| wb.get(t).map(|&y| x * y))
        .sum();
    let na: f64 = wa.values().map(|w| w * w).sum::<f64>().sqrt();
    let nb: f64 = wb.values().map(|w| w * w).sum::<f64>().sqrt();
    if na == 0.0 || nb == 0.0 {
        return 0.0;
    }
    dot / (na * nb)
}

/// Monge–Elkan similarity: each token of `a` is matched to its best-scoring
/// token of `b` under the `inner` metric, and the best scores are averaged.
/// Asymmetric by definition; this implementation symmetrizes by averaging
/// both directions.
pub fn monge_elkan<S: AsRef<str>>(a: &[S], b: &[S], inner: impl Fn(&str, &str) -> f64) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let dir = |xs: &[S], ys: &[S]| -> f64 {
        let total: f64 = xs
            .iter()
            .map(|x| {
                ys.iter()
                    .map(|y| inner(x.as_ref(), y.as_ref()))
                    .fold(0.0_f64, f64::max)
            })
            .sum();
        total / xs.len() as f64
    };
    (dir(a, b) + dir(b, a)) / 2.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jaro_winkler;
    use proptest::prelude::*;

    #[test]
    fn tokenizer_splits_on_non_alphanumeric() {
        assert_eq!(tokenize("Hello, world!"), vec!["Hello", "world"]);
        assert_eq!(
            tokenize_lower("Re: [PIM] v2.0"),
            vec!["re", "pim", "v2", "0"]
        );
        assert!(tokenize("   ").is_empty());
        assert_eq!(tokenize("a"), vec!["a"]);
    }

    #[test]
    fn spans_borrow_the_input() {
        let spans: Vec<&str> = token_spans("Hello, world!").collect();
        assert_eq!(spans, vec!["Hello", "world"]);
        assert_eq!(token_spans("   ").count(), 0);
    }

    #[test]
    fn lowercase_into_matches_std() {
        let mut buf = String::from("junk");
        for s in ["MiXeD CaSe", "ΟΔΥΣΣΕΥΣ", "İstanbul", ""] {
            lowercase_into(s, &mut buf);
            assert_eq!(buf, s.to_lowercase());
        }
    }

    #[test]
    fn ngram_windows() {
        assert_eq!(ngrams("abcd", 2), vec!["ab", "bc", "cd"]);
        assert_eq!(ngrams("ab", 3), vec!["ab"]);
        assert!(ngrams("", 2).is_empty());
    }

    #[test]
    #[should_panic(expected = "n-gram size must be positive")]
    fn zero_gram_panics() {
        ngrams("abc", 0);
    }

    #[test]
    fn set_metrics() {
        let a = tokenize_lower("data integration on the desktop");
        let b = tokenize_lower("desktop data integration");
        assert!(jaccard(&a, &b) > 0.5);
        assert!(dice(&a, &b) > jaccard(&a, &b));
        assert_eq!(jaccard(&a, &a), 1.0);
        let empty: Vec<String> = vec![];
        assert_eq!(jaccard(&empty, &empty), 1.0);
        assert_eq!(dice(&a, &empty), 0.0);
    }

    #[test]
    fn cosine_counts_frequencies() {
        let a = vec!["x", "x", "y"];
        let b = vec!["x", "y", "y"];
        let c = cosine(&a, &b);
        assert!(c > 0.7 && c < 1.0);
        assert!((cosine(&a, &a) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn idf_downweights_stopwords() {
        let mut stats = CorpusStats::new();
        for _ in 0..99 {
            stats.add_doc(["the", "of"].iter());
        }
        stats.add_doc(["the", "reconciliation"].iter());
        let a = vec!["the", "reconciliation"];
        let b = vec!["the", "integration"];
        let c = vec!["a", "reconciliation"];
        // Sharing only "the" scores lower than sharing "reconciliation".
        assert!(tf_idf_cosine(&a, &c, &stats) > tf_idf_cosine(&a, &b, &stats));
    }

    #[test]
    fn monge_elkan_tolerates_token_typos() {
        let a = vec!["michael", "carey"];
        let b = vec!["micheal", "carey"];
        let me = monge_elkan(&a, &b, jaro_winkler);
        assert!(me > 0.9, "got {me}");
        let far = monge_elkan(&a, &["zz"], jaro_winkler);
        assert!(far < 0.5);
    }

    proptest! {
        #[test]
        fn bounds(a in prop::collection::vec("[a-d]{1,4}", 0..6), b in prop::collection::vec("[a-d]{1,4}", 0..6)) {
            for v in [jaccard(&a, &b), dice(&a, &b), cosine(&a, &b), monge_elkan(&a, &b, jaro_winkler)] {
                prop_assert!((0.0..=1.0 + 1e-12).contains(&v), "out of range: {v}");
            }
        }

        #[test]
        fn symmetry(a in prop::collection::vec("[a-d]{1,4}", 0..6), b in prop::collection::vec("[a-d]{1,4}", 0..6)) {
            prop_assert!((jaccard(&a, &b) - jaccard(&b, &a)).abs() < 1e-12);
            prop_assert!((dice(&a, &b) - dice(&b, &a)).abs() < 1e-12);
            prop_assert!((cosine(&a, &b) - cosine(&b, &a)).abs() < 1e-12);
            prop_assert!((monge_elkan(&a, &b, jaro_winkler) - monge_elkan(&b, &a, jaro_winkler)).abs() < 1e-12);
        }

        #[test]
        fn identity(a in prop::collection::vec("[a-d]{1,4}", 1..6)) {
            prop_assert!((jaccard(&a, &a) - 1.0).abs() < 1e-12);
            prop_assert!((cosine(&a, &a) - 1.0).abs() < 1e-12);
            prop_assert!((monge_elkan(&a, &a, jaro_winkler) - 1.0).abs() < 1e-12);
        }

        #[test]
        fn tokenize_roundtrip_words(words in prop::collection::vec("[a-z]{1,8}", 0..8)) {
            let joined = words.join(" ");
            prop_assert_eq!(tokenize(&joined), words);
        }
    }
}
