//! Validated tenant identifiers.

use crate::TenantError;
use std::fmt;

/// Longest accepted tenant id.
const MAX_LEN: usize = 64;

/// A validated tenant identifier.
///
/// Ids double as on-disk directory names under the registry root, so the
/// alphabet is deliberately narrow: ASCII alphanumerics, `-`, and `_`, 1 to
/// 64 characters. Anything else — separators, `..`, empty strings, hidden
/// files — is rejected before it can touch the filesystem.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TenantId(String);

impl TenantId {
    /// The tenant a request without a `tenant` field is routed to.
    pub const DEFAULT: &'static str = "default";

    /// Validate and construct an id.
    pub fn new(name: &str) -> Result<TenantId, TenantError> {
        let invalid = |reason: &'static str| TenantError::InvalidId {
            name: name.to_string(),
            reason,
        };
        if name.is_empty() {
            return Err(invalid("empty"));
        }
        if name.len() > MAX_LEN {
            return Err(invalid("longer than 64 characters"));
        }
        if !name
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || b == b'-' || b == b'_')
        {
            return Err(invalid(
                "only ASCII letters, digits, '-' and '_' are allowed",
            ));
        }
        Ok(TenantId(name.to_string()))
    }

    /// The default tenant's id.
    pub fn default_tenant() -> TenantId {
        TenantId(TenantId::DEFAULT.to_string())
    }

    /// The id as a string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for TenantId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_and_invalid_ids() {
        for ok in ["default", "alice", "user-042", "A_b-9", &"x".repeat(64)] {
            assert!(TenantId::new(ok).is_ok(), "{ok:?} must be accepted");
        }
        for bad in [
            "",
            ".",
            "..",
            "a/b",
            "a\\b",
            "a b",
            "café",
            ".hidden",
            &"x".repeat(65),
        ] {
            assert!(TenantId::new(bad).is_err(), "{bad:?} must be rejected");
        }
    }

    #[test]
    fn default_is_valid() {
        assert_eq!(
            TenantId::new(TenantId::DEFAULT).unwrap(),
            TenantId::default_tenant()
        );
    }
}
