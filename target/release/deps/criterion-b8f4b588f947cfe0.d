/root/repo/target/release/deps/criterion-b8f4b588f947cfe0.d: third_party/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-b8f4b588f947cfe0.rlib: third_party/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-b8f4b588f947cfe0.rmeta: third_party/criterion/src/lib.rs

third_party/criterion/src/lib.rs:
