/root/repo/target/debug/deps/semex_serve-dcbf85ed8a98bb33.d: crates/serve/src/lib.rs crates/serve/src/json.rs crates/serve/src/protocol.rs crates/serve/src/client.rs crates/serve/src/server.rs crates/serve/src/writer.rs

/root/repo/target/debug/deps/libsemex_serve-dcbf85ed8a98bb33.rmeta: crates/serve/src/lib.rs crates/serve/src/json.rs crates/serve/src/protocol.rs crates/serve/src/client.rs crates/serve/src/server.rs crates/serve/src/writer.rs

crates/serve/src/lib.rs:
crates/serve/src/json.rs:
crates/serve/src/protocol.rs:
crates/serve/src/client.rs:
crates/serve/src/server.rs:
crates/serve/src/writer.rs:
