/root/repo/target/debug/deps/pipeline_e2e-e99917b787a01a84.d: tests/pipeline_e2e.rs tests/common/mod.rs

/root/repo/target/debug/deps/pipeline_e2e-e99917b787a01a84: tests/pipeline_e2e.rs tests/common/mod.rs

tests/pipeline_e2e.rs:
tests/common/mod.rs:
