//! End-to-end test of the `semex` CLI binary: demo-build a snapshot, then
//! exercise every read command against it.

use std::path::PathBuf;
use std::process::Command;

fn semex_bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_semex"))
}

fn run(args: &[&str]) -> (bool, String) {
    let out = semex_bin().args(args).output().expect("binary runs");
    let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
    let stderr = String::from_utf8_lossy(&out.stderr).into_owned();
    (out.status.success(), format!("{stdout}{stderr}"))
}

fn snapshot_path() -> PathBuf {
    std::env::temp_dir().join(format!("semex-cli-test-{}.json", std::process::id()))
}

#[test]
fn cli_full_session() {
    let snap = snapshot_path();
    let snap_str = snap.to_string_lossy().into_owned();

    // demo: build a snapshot from a small generated corpus.
    let (ok, out) = run(&["demo", "-o", &snap_str, "--seed", "41", "--scale", "0.12"]);
    assert!(ok, "{out}");
    assert!(out.contains("snapshot written"), "{out}");
    assert!(out.contains("reconciled"), "{out}");

    // stats
    let (ok, out) = run(&["stats", &snap_str]);
    assert!(ok, "{out}");
    assert!(out.contains("Person"), "{out}");
    assert!(out.contains("Message"), "{out}");

    // search
    let (ok, out) = run(&["search", &snap_str, "class:Person", "michael"]);
    assert!(ok, "{out}");
    assert!(
        out.contains("[Person]") || out.contains("no results"),
        "{out}"
    );

    // show + explain on whatever search surfaces.
    let (ok, out) = run(&["show", &snap_str, "class:Publication", "adaptive"]);
    assert!(ok, "{out}");
    assert!(out.contains("[Publication]"), "{out}");
    let (ok, out) = run(&["explain", &snap_str, "class:Publication", "adaptive"]);
    assert!(ok, "{out}");
    assert!(out.contains("facts about"), "{out}");

    // pattern query
    let (ok, out) = run(&["query", &snap_str, "?pub AuthoredBy ?p"]);
    assert!(ok, "{out}");
    assert!(out.contains("solution(s)"), "{out}");

    // importance ranking
    let (ok, out) = run(&["top", &snap_str]);
    assert!(ok, "{out}");
    assert!(out.contains("most important people"), "{out}");

    // analysis commands
    let (ok, out) = run(&["communities", &snap_str]);
    assert!(ok, "{out}");
    assert!(out.contains("CoAuthor communities"), "{out}");
    let (ok, out) = run(&["timeline", &snap_str, "class:Person", "michael"]);
    assert!(ok || out.contains("no such person"), "{out}");

    std::fs::remove_file(&snap).ok();
}

#[test]
fn cli_repl_session() {
    use std::io::Write;
    use std::process::Stdio;
    let snap = std::env::temp_dir().join(format!("semex-repl-test-{}.json", std::process::id()));
    let snap_str = snap.to_string_lossy().into_owned();
    let (ok, out) = run(&["demo", "-o", &snap_str, "--seed", "43", "--scale", "0.12"]);
    assert!(ok, "{out}");

    let mut child = semex_bin()
        .args(["repl", &snap_str])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .unwrap();
    child
        .stdin
        .as_mut()
        .unwrap()
        .write_all(b"help\ns class:Person michael\nb class:Person michael\nq ?pub AuthoredBy ?p\nbogus\nquit\n")
        .unwrap();
    let out = child.wait_with_output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("semex repl"), "{text}");
    assert!(text.contains("keyword search"), "help shown: {text}");
    assert!(text.contains("solution(s)"), "{text}");
    assert!(text.contains("unknown command"), "{text}");
    std::fs::remove_file(&snap).ok();
}

#[test]
fn cli_durable_session() {
    let dir = std::env::temp_dir().join(format!("semex-cli-journal-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let dir_str = dir.to_string_lossy().into_owned();

    // demo --durable: build into a journal directory instead of a snapshot.
    let (ok, out) = run(&[
        "demo",
        "--durable",
        "-o",
        &dir_str,
        "--seed",
        "47",
        "--scale",
        "0.12",
    ]);
    assert!(ok, "{out}");
    assert!(out.contains("journal initialized"), "{out}");
    assert!(dir.is_dir());
    assert!(
        std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .any(|e| e.file_name().to_string_lossy().starts_with("snapshot-")),
        "journal directory holds an epoch snapshot"
    );

    // Read commands accept the journal directory wherever a snapshot goes.
    let (ok, out) = run(&["stats", &dir_str]);
    assert!(ok, "{out}");
    assert!(out.contains("Person"), "{out}");
    let (ok, out) = run(&["search", &dir_str, "class:Publication", "adaptive"]);
    assert!(ok, "{out}");
    assert!(
        out.contains("[Publication]") || out.contains("no results"),
        "{out}"
    );

    // journal-compact folds the log into the next epoch.
    let (ok, out) = run(&["journal-compact", &dir_str]);
    assert!(ok, "{out}");
    assert!(out.contains("compacted into epoch 1"), "{out}");
    let (ok, out) = run(&["stats", &dir_str]);
    assert!(ok, "post-compaction open: {out}");
    assert!(out.contains("Person"), "{out}");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn cli_errors_cleanly() {
    let (ok, out) = run(&[]);
    assert!(!ok);
    assert!(out.contains("usage"), "{out}");

    let (ok, out) = run(&["bogus-command"]);
    assert!(!ok);
    assert!(out.contains("usage"), "{out}");

    let (ok, out) = run(&["stats", "/definitely/not/here.json"]);
    assert!(!ok);
    assert!(out.contains("cannot load snapshot"), "{out}");

    let (ok, out) = run(&["build", "/nope"]);
    assert!(!ok);
    assert!(out.contains("-o"), "{out}");
}
