//! The versioned little-endian binary snapshot format and its lazy reader.
//!
//! A binary store image is a fixed header, a fixed-width section table, and
//! a run of contiguous sections, each CRC-guarded:
//!
//! ```text
//! offset  size  field
//! 0       8     magic "SEMEXSNP"
//! 8       4     format version (u32 LE, currently 1)
//! 12      4     section count (u32 LE)
//! 16      24×n  section table: id u32 | offset u64 | len u64 | crc32 u32
//! 16+24n  4     header CRC32 (covers bytes 0 .. 16+24n)
//! ...           sections, contiguous, in table order
//! ```
//!
//! Sections (ids are stable; unknown ids are rejected):
//!
//! * `1 MODEL`   — the [`DomainModel`] as serde_json bytes (the model is an
//!   opaque, rarely-hot blob; its section CRC still guards it).
//! * `2 ARENA`   — deduplicated string arena: count, a fixed-width `u32`
//!   offset table, then the concatenated UTF-8 bytes. Every string in the
//!   image is a varint index into this arena.
//! * `3 OBJECTS` — count, a fixed-width `u32` offset table (one slot per
//!   object, enabling random access by dense id), then per-object records:
//!   class, merged-into, attrs (tagged values), sources — all varints.
//! * `4 TRIPLES` — count, then sequential records with the subject id
//!   zigzag-delta-encoded against the previous triple's subject.
//! * `5 SOURCES` — count, `u32` offset table, then name/kind/location.
//!
//! The total file length must equal the end of the last section — trailing
//! bytes are a typed error, not silently ignored. Decoding never panics:
//! every length, offset, tag and id is bounds-checked and every section is
//! CRC-verified *before* it is parsed, so truncation, bit flips and
//! reordering all surface as [`BinaryError`].
//!
//! [`SnapshotReader`] borrows the loaded buffer and resolves objects,
//! triples and sources on demand from the offset tables;
//! [`Store::from_binary`] drives it to materialize a heap store.

use crate::{Object, ObjectId, SourceId, SourceInfo, SourceKind, Store, Triple};
use semex_model::{AssocId, AttrId, ClassId, DomainModel, Value};
use std::fmt;

/// Magic bytes opening a binary store image.
pub const MAGIC: &[u8; 8] = b"SEMEXSNP";

/// Binary store format version.
pub const BINARY_VERSION: u32 = 1;

/// Size of the fixed part of the header (magic + version + section count).
const HEADER_FIXED: usize = 16;

/// Size of one section-table entry.
const SECTION_ENTRY: usize = 24;

const SEC_MODEL: u32 = 1;
const SEC_ARENA: u32 = 2;
const SEC_OBJECTS: u32 = 3;
const SEC_TRIPLES: u32 = 4;
const SEC_SOURCES: u32 = 5;

/// Typed decoding failures of the binary format. Decoding never panics and
/// never silently misreads: every malformed input maps to one of these.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BinaryError {
    /// The buffer ends before a required structure.
    Truncated {
        /// What was being read.
        what: &'static str,
    },
    /// The magic bytes are not this format's.
    BadMagic,
    /// The format version is one this build does not read.
    Version {
        /// Version found in the header.
        found: u32,
        /// Version this build reads.
        expected: u32,
    },
    /// A CRC32 check failed (header, or the named section).
    BadCrc {
        /// `"header"` or the section name.
        section: &'static str,
    },
    /// A section-table entry points outside the buffer, sections are not
    /// contiguous, or the file has trailing bytes.
    Bounds {
        /// The section name (or `"layout"` for whole-file layout errors).
        section: &'static str,
    },
    /// A section is present twice, missing, or has an unknown id.
    Sections {
        /// What is wrong.
        detail: &'static str,
    },
    /// A value inside a section is out of range (bad tag, dangling arena
    /// index, non-UTF-8 string, varint overflow, ...).
    Malformed {
        /// The section name.
        section: &'static str,
        /// What is wrong.
        detail: &'static str,
    },
}

impl fmt::Display for BinaryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BinaryError::Truncated { what } => write!(f, "binary snapshot truncated in {what}"),
            BinaryError::BadMagic => write!(f, "not a binary store snapshot (bad magic)"),
            BinaryError::Version { found, expected } => write!(
                f,
                "binary snapshot format version {found}, this build reads {expected}"
            ),
            BinaryError::BadCrc { section } => {
                write!(f, "binary snapshot CRC mismatch in {section}")
            }
            BinaryError::Bounds { section } => {
                write!(f, "binary snapshot section out of bounds: {section}")
            }
            BinaryError::Sections { detail } => {
                write!(f, "binary snapshot section table invalid: {detail}")
            }
            BinaryError::Malformed { section, detail } => {
                write!(f, "binary snapshot malformed in {section}: {detail}")
            }
        }
    }
}

impl std::error::Error for BinaryError {}

// ---------------------------------------------------------------- crc32 --

/// The reflected IEEE polynomial (same CRC the journal uses for records).
const POLY: u32 = 0xEDB8_8320;

/// Slice-by-8 lookup tables: `TABLES[0]` is the classic byte-at-a-time
/// table, `TABLES[k]` advances a byte `k` extra positions, so the hot loop
/// folds eight bytes per iteration — the CRC pass over a multi-megabyte
/// snapshot stays well under a millisecond on the cold-open path.
const TABLES: [[u32; 256]; 8] = {
    let mut tables = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        tables[0][i] = crc;
        i += 1;
    }
    let mut k = 1;
    while k < 8 {
        let mut i = 0;
        while i < 256 {
            let prev = tables[k - 1][i];
            tables[k][i] = (prev >> 8) ^ tables[0][(prev & 0xFF) as usize];
            i += 1;
        }
        k += 1;
    }
    tables
};

/// CRC-32 (IEEE) checksum of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    let mut chunks = bytes.chunks_exact(8);
    for c in chunks.by_ref() {
        let lo = u32::from_le_bytes(c[..4].try_into().unwrap()) ^ crc;
        let hi = u32::from_le_bytes(c[4..8].try_into().unwrap());
        crc = TABLES[7][(lo & 0xFF) as usize]
            ^ TABLES[6][((lo >> 8) & 0xFF) as usize]
            ^ TABLES[5][((lo >> 16) & 0xFF) as usize]
            ^ TABLES[4][(lo >> 24) as usize]
            ^ TABLES[3][(hi & 0xFF) as usize]
            ^ TABLES[2][((hi >> 8) & 0xFF) as usize]
            ^ TABLES[1][((hi >> 16) & 0xFF) as usize]
            ^ TABLES[0][(hi >> 24) as usize];
    }
    for &b in chunks.remainder() {
        crc = (crc >> 8) ^ TABLES[0][((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

// --------------------------------------------------------------- varints --

/// Append an LEB128 varint.
pub fn write_varint(mut v: u64, out: &mut Vec<u8>) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Zigzag-encode a signed value for varint storage.
pub fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Invert [`zigzag`].
pub fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// A bounds-checked cursor over a byte slice; every read is fallible.
#[derive(Debug, Clone, Copy)]
pub struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
    section: &'static str,
}

impl<'a> Cursor<'a> {
    /// A cursor over `buf`, attributing errors to `section`.
    pub fn new(buf: &'a [u8], section: &'static str) -> Self {
        Cursor {
            buf,
            pos: 0,
            section,
        }
    }

    /// Current position.
    pub fn pos(&self) -> usize {
        self.pos
    }

    /// Whether the cursor consumed the whole slice.
    pub fn at_end(&self) -> bool {
        self.pos == self.buf.len()
    }

    /// The bytes remaining past the current position.
    pub fn rest(&self) -> &'a [u8] {
        &self.buf[self.pos..]
    }

    /// Read `n` raw bytes.
    pub fn bytes(&mut self, n: usize) -> Result<&'a [u8], BinaryError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or(BinaryError::Truncated { what: self.section })?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    /// Read an LEB128 varint (at most 10 bytes; overlong encodings and
    /// values past `u64::MAX` are malformed).
    pub fn varint(&mut self) -> Result<u64, BinaryError> {
        let mut v: u64 = 0;
        let mut shift = 0u32;
        loop {
            let byte = *self
                .buf
                .get(self.pos)
                .ok_or(BinaryError::Truncated { what: self.section })?;
            self.pos += 1;
            if shift == 63 && byte > 1 {
                return Err(BinaryError::Malformed {
                    section: self.section,
                    detail: "varint overflow",
                });
            }
            v |= u64::from(byte & 0x7F) << shift;
            if byte & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
            if shift > 63 {
                return Err(BinaryError::Malformed {
                    section: self.section,
                    detail: "varint too long",
                });
            }
        }
    }

    /// Read a varint that must fit `usize`/`u32` index space.
    pub fn index(&mut self) -> Result<usize, BinaryError> {
        let v = self.varint()?;
        usize::try_from(v).map_err(|_| BinaryError::Malformed {
            section: self.section,
            detail: "index does not fit",
        })
    }

    /// Read a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, BinaryError> {
        Ok(u32::from_le_bytes(self.bytes(4)?.try_into().unwrap()))
    }

    /// Read a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, BinaryError> {
        Ok(u64::from_le_bytes(self.bytes(8)?.try_into().unwrap()))
    }

    /// Read a little-endian `f32`.
    pub fn f32(&mut self) -> Result<f32, BinaryError> {
        Ok(f32::from_le_bytes(self.bytes(4)?.try_into().unwrap()))
    }

    /// Read a little-endian `f64`.
    pub fn f64(&mut self) -> Result<f64, BinaryError> {
        Ok(f64::from_le_bytes(self.bytes(8)?.try_into().unwrap()))
    }

    /// Read one byte.
    pub fn u8(&mut self) -> Result<u8, BinaryError> {
        Ok(self.bytes(1)?[0])
    }
}

// -------------------------------------------------------------- sections --

/// Builds an image: fixed header, section table, contiguous CRC'd sections.
/// Shared by the store snapshot and the index sidecar formats.
pub struct SectionWriter {
    magic: &'static [u8; 8],
    version: u32,
    /// Extra fixed-width header fields after the version (e.g. the sidecar's
    /// epoch and sequence number), included in the header CRC.
    extra: Vec<u8>,
    sections: Vec<(u32, Vec<u8>)>,
}

impl SectionWriter {
    /// A writer for the given magic/version, with `extra` fixed header
    /// bytes between the version and the section count.
    pub fn new(magic: &'static [u8; 8], version: u32, extra: Vec<u8>) -> Self {
        SectionWriter {
            magic,
            version,
            extra,
            sections: Vec::new(),
        }
    }

    /// Append a section.
    pub fn section(&mut self, id: u32, payload: Vec<u8>) {
        self.sections.push((id, payload));
    }

    /// Serialize the image.
    pub fn finish(self) -> Vec<u8> {
        let n = self.sections.len();
        let header_len = HEADER_FIXED + self.extra.len() + n * SECTION_ENTRY;
        let mut out = Vec::with_capacity(
            header_len + 4 + self.sections.iter().map(|(_, p)| p.len()).sum::<usize>(),
        );
        out.extend_from_slice(self.magic);
        out.extend_from_slice(&self.version.to_le_bytes());
        out.extend_from_slice(&self.extra);
        out.extend_from_slice(&(n as u32).to_le_bytes());
        let mut offset = (header_len + 4) as u64;
        for (id, payload) in &self.sections {
            out.extend_from_slice(&id.to_le_bytes());
            out.extend_from_slice(&offset.to_le_bytes());
            out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
            out.extend_from_slice(&crc32(payload).to_le_bytes());
            offset += payload.len() as u64;
        }
        let header_crc = crc32(&out);
        out.extend_from_slice(&header_crc.to_le_bytes());
        for (_, payload) in &self.sections {
            out.extend_from_slice(payload);
        }
        out
    }
}

/// A parsed section table over a borrowed image: magic, version and header
/// CRC verified; each section's bytes are CRC-verified on access.
pub struct Sections<'a> {
    buf: &'a [u8],
    /// Extra fixed header bytes (between version and section count).
    extra: &'a [u8],
    /// `(id, offset, len)` in table order.
    table: Vec<(u32, usize, usize)>,
    crcs: Vec<u32>,
}

impl<'a> Sections<'a> {
    /// Parse and verify an image's header and section table. `extra_len`
    /// is the caller's fixed header size between version and section count.
    pub fn open(
        buf: &'a [u8],
        magic: &'static [u8; 8],
        version: u32,
        extra_len: usize,
    ) -> Result<Sections<'a>, BinaryError> {
        let mut c = Cursor::new(buf, "header");
        if c.bytes(8)? != magic {
            return Err(BinaryError::BadMagic);
        }
        let found = c.u32()?;
        if found != version {
            return Err(BinaryError::Version {
                found,
                expected: version,
            });
        }
        let extra = c.bytes(extra_len)?;
        let n = c.u32()? as usize;
        // A section table longer than the buffer itself is garbage; cap it
        // so `n` cannot drive a huge allocation.
        if n > buf.len() / SECTION_ENTRY + 1 {
            return Err(BinaryError::Truncated {
                what: "section table",
            });
        }
        let mut table = Vec::with_capacity(n);
        let mut crcs = Vec::with_capacity(n);
        for _ in 0..n {
            let id = c.u32()?;
            let offset = c.u64()?;
            let len = c.u64()?;
            let crc = c.u32()?;
            let offset =
                usize::try_from(offset).map_err(|_| BinaryError::Bounds { section: "layout" })?;
            let len =
                usize::try_from(len).map_err(|_| BinaryError::Bounds { section: "layout" })?;
            table.push((id, offset, len));
            crcs.push(crc);
        }
        let header_end = c.pos();
        let declared_crc = c.u32()?;
        if crc32(&buf[..header_end]) != declared_crc {
            return Err(BinaryError::BadCrc { section: "header" });
        }
        // Sections must be contiguous from the header end and cover the
        // buffer exactly: truncation and trailing garbage are both typed
        // errors, never silently tolerated.
        let mut expected = c.pos();
        for &(_, offset, len) in &table {
            if offset != expected {
                return Err(BinaryError::Bounds { section: "layout" });
            }
            expected = offset
                .checked_add(len)
                .ok_or(BinaryError::Bounds { section: "layout" })?;
        }
        if expected != buf.len() {
            return Err(if expected > buf.len() {
                BinaryError::Truncated { what: "sections" }
            } else {
                BinaryError::Bounds { section: "layout" }
            });
        }
        Ok(Sections {
            buf,
            extra,
            table,
            crcs,
        })
    }

    /// The extra fixed header bytes.
    pub fn extra(&self) -> &'a [u8] {
        self.extra
    }

    /// Fetch a section's bytes by id, verifying its CRC. `name` labels
    /// errors. Exactly one section of each expected id must be present.
    pub fn get(&self, id: u32, name: &'static str) -> Result<&'a [u8], BinaryError> {
        let mut found: Option<usize> = None;
        for (i, &(sid, _, _)) in self.table.iter().enumerate() {
            if sid == id {
                if found.is_some() {
                    return Err(BinaryError::Sections {
                        detail: "duplicate section",
                    });
                }
                found = Some(i);
            }
        }
        let i = found.ok_or(BinaryError::Sections {
            detail: "missing section",
        })?;
        let (_, offset, len) = self.table[i];
        let bytes = &self.buf[offset..offset + len];
        if crc32(bytes) != self.crcs[i] {
            return Err(BinaryError::BadCrc { section: name });
        }
        Ok(bytes)
    }

    /// Number of sections.
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// True when the image has no sections.
    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }
}

// ------------------------------------------------------------- the arena --

/// Deduplicating string-arena builder: count + `u32` offset table + blob.
pub struct ArenaWriter {
    offsets: Vec<u32>,
    blob: Vec<u8>,
    seen: std::collections::HashMap<String, u64>,
}

impl Default for ArenaWriter {
    fn default() -> Self {
        ArenaWriter::new()
    }
}

impl ArenaWriter {
    /// An empty arena.
    pub fn new() -> Self {
        ArenaWriter {
            offsets: Vec::new(),
            blob: Vec::new(),
            seen: std::collections::HashMap::new(),
        }
    }

    /// Intern a string, returning its arena index.
    pub fn intern(&mut self, s: &str) -> u64 {
        if let Some(&i) = self.seen.get(s) {
            return i;
        }
        let i = self.offsets.len() as u64;
        self.offsets
            .push(u32::try_from(self.blob.len()).expect("arena over 4 GiB"));
        self.blob.extend_from_slice(s.as_bytes());
        self.seen.insert(s.to_owned(), i);
        i
    }

    /// Serialize the arena section payload.
    pub fn finish(self) -> Vec<u8> {
        let mut out = Vec::with_capacity(8 + self.offsets.len() * 4 + self.blob.len());
        out.extend_from_slice(&(self.offsets.len() as u32).to_le_bytes());
        out.extend_from_slice(&(self.blob.len() as u32).to_le_bytes());
        for o in &self.offsets {
            out.extend_from_slice(&o.to_le_bytes());
        }
        out.extend_from_slice(&self.blob);
        out
    }
}

/// Borrowed view of a string arena: strings resolve on demand, straight
/// from the image buffer.
#[derive(Debug, Clone, Copy)]
pub struct ArenaReader<'a> {
    offsets: &'a [u8],
    blob: &'a [u8],
    count: usize,
    section: &'static str,
}

impl<'a> ArenaReader<'a> {
    /// Parse the arena section payload (offsets are validated lazily).
    pub fn open(bytes: &'a [u8], section: &'static str) -> Result<ArenaReader<'a>, BinaryError> {
        let mut c = Cursor::new(bytes, section);
        let count = c.u32()? as usize;
        let blob_len = c.u32()? as usize;
        let offsets = c.bytes(count.checked_mul(4).ok_or(BinaryError::Malformed {
            section,
            detail: "arena count overflow",
        })?)?;
        let blob = c.bytes(blob_len)?;
        if !c.at_end() {
            return Err(BinaryError::Malformed {
                section,
                detail: "trailing arena bytes",
            });
        }
        Ok(ArenaReader {
            offsets,
            blob,
            count,
            section,
        })
    }

    /// Number of interned strings.
    pub fn len(&self) -> usize {
        self.count
    }

    /// True when the arena is empty.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Resolve arena index `i` to its string, borrowing from the buffer.
    pub fn get(&self, i: u64) -> Result<&'a str, BinaryError> {
        let i =
            usize::try_from(i)
                .ok()
                .filter(|&i| i < self.count)
                .ok_or(BinaryError::Malformed {
                    section: self.section,
                    detail: "dangling arena index",
                })?;
        let at = |k: usize| -> usize {
            u32::from_le_bytes(self.offsets[k * 4..k * 4 + 4].try_into().unwrap()) as usize
        };
        let start = at(i);
        let end = if i + 1 < self.count {
            at(i + 1)
        } else {
            self.blob.len()
        };
        if start > end || end > self.blob.len() {
            return Err(BinaryError::Malformed {
                section: self.section,
                detail: "arena offsets not monotonic",
            });
        }
        std::str::from_utf8(&self.blob[start..end]).map_err(|_| BinaryError::Malformed {
            section: self.section,
            detail: "arena string is not UTF-8",
        })
    }
}

// ------------------------------------------------------ value encoding --

const VAL_STR: u8 = 0;
const VAL_INT: u8 = 1;
const VAL_FLOAT: u8 = 2;
const VAL_DATE: u8 = 3;
const VAL_BOOL: u8 = 4;

fn write_value(v: &Value, arena: &mut ArenaWriter, out: &mut Vec<u8>) {
    match v {
        Value::Str(s) => {
            out.push(VAL_STR);
            write_varint(arena.intern(s), out);
        }
        Value::Int(i) => {
            out.push(VAL_INT);
            write_varint(zigzag(*i), out);
        }
        Value::Float(x) => {
            out.push(VAL_FLOAT);
            out.extend_from_slice(&x.to_le_bytes());
        }
        Value::Date(d) => {
            out.push(VAL_DATE);
            write_varint(zigzag(*d), out);
        }
        Value::Bool(b) => {
            out.push(VAL_BOOL);
            out.push(u8::from(*b));
        }
    }
}

fn read_value(c: &mut Cursor<'_>, arena: &ArenaReader<'_>) -> Result<Value, BinaryError> {
    Ok(match c.u8()? {
        VAL_STR => Value::Str(arena.get(c.varint()?)?.to_owned()),
        VAL_INT => Value::Int(unzigzag(c.varint()?)),
        VAL_FLOAT => Value::Float(c.f64()?),
        VAL_DATE => Value::Date(unzigzag(c.varint()?)),
        VAL_BOOL => Value::Bool(match c.u8()? {
            0 => false,
            1 => true,
            _ => {
                return Err(BinaryError::Malformed {
                    section: "objects",
                    detail: "bad bool",
                })
            }
        }),
        _ => {
            return Err(BinaryError::Malformed {
                section: "objects",
                detail: "unknown value tag",
            })
        }
    })
}

fn kind_tag(kind: SourceKind) -> u8 {
    match kind {
        SourceKind::Email => 0,
        SourceKind::Contacts => 1,
        SourceKind::Calendar => 2,
        SourceKind::Bibliography => 3,
        SourceKind::Latex => 4,
        SourceKind::FileSystem => 5,
        SourceKind::Spreadsheet => 6,
        SourceKind::External => 7,
        SourceKind::Synthetic => 8,
    }
}

fn kind_from_tag(tag: u8) -> Result<SourceKind, BinaryError> {
    Ok(match tag {
        0 => SourceKind::Email,
        1 => SourceKind::Contacts,
        2 => SourceKind::Calendar,
        3 => SourceKind::Bibliography,
        4 => SourceKind::Latex,
        5 => SourceKind::FileSystem,
        6 => SourceKind::Spreadsheet,
        7 => SourceKind::External,
        8 => SourceKind::Synthetic,
        _ => {
            return Err(BinaryError::Malformed {
                section: "sources",
                detail: "unknown source kind",
            })
        }
    })
}

// ----------------------------------------------------------- the writer --

impl Store {
    /// Serialize the store to the versioned binary snapshot format.
    ///
    /// The only fallible step is serializing the domain model blob; the
    /// data sections cannot fail.
    pub fn to_binary(&self) -> Result<Vec<u8>, crate::SnapshotError> {
        let (model, objects, triples, sources) = self.parts();
        let model_bytes = serde_json::to_vec(model)?;

        let mut arena = ArenaWriter::new();

        // Objects: per-object records behind a fixed-width offset table.
        let mut obj_records: Vec<u8> = Vec::new();
        let mut obj_offsets: Vec<u32> = Vec::with_capacity(objects.len());
        for o in objects {
            obj_offsets.push(u32::try_from(obj_records.len()).expect("objects over 4 GiB"));
            write_varint(u64::from(o.class.0), &mut obj_records);
            write_varint(o.merged_into.map_or(0, |m| m.0 + 1), &mut obj_records);
            write_varint(o.attrs.len() as u64, &mut obj_records);
            for (a, v) in &o.attrs {
                write_varint(u64::from(a.0), &mut obj_records);
                write_value(v, &mut arena, &mut obj_records);
            }
            write_varint(o.sources.len() as u64, &mut obj_records);
            for s in &o.sources {
                write_varint(u64::from(s.0), &mut obj_records);
            }
        }
        let mut obj_section = Vec::with_capacity(4 + obj_offsets.len() * 4 + obj_records.len());
        obj_section.extend_from_slice(&(obj_offsets.len() as u32).to_le_bytes());
        for o in &obj_offsets {
            obj_section.extend_from_slice(&o.to_le_bytes());
        }
        obj_section.extend_from_slice(&obj_records);

        // Triples: sequential, subject delta-encoded.
        let mut tri_section = Vec::new();
        tri_section.extend_from_slice(&(triples.len() as u32).to_le_bytes());
        let mut prev_subject = 0i64;
        for t in triples {
            let s = t.subject.0 as i64;
            write_varint(zigzag(s - prev_subject), &mut tri_section);
            prev_subject = s;
            write_varint(u64::from(t.assoc.0), &mut tri_section);
            write_varint(t.object.0, &mut tri_section);
            write_varint(u64::from(t.source.0), &mut tri_section);
        }

        // Sources: offset table + name/kind/location.
        let mut src_records: Vec<u8> = Vec::new();
        let mut src_offsets: Vec<u32> = Vec::with_capacity(sources.len());
        for s in sources {
            src_offsets.push(u32::try_from(src_records.len()).expect("sources over 4 GiB"));
            write_varint(arena.intern(&s.name), &mut src_records);
            src_records.push(kind_tag(s.kind));
            match &s.location {
                None => src_records.push(0),
                Some(loc) => {
                    src_records.push(1);
                    write_varint(arena.intern(loc), &mut src_records);
                }
            }
        }
        let mut src_section = Vec::with_capacity(4 + src_offsets.len() * 4 + src_records.len());
        src_section.extend_from_slice(&(src_offsets.len() as u32).to_le_bytes());
        for o in &src_offsets {
            src_section.extend_from_slice(&o.to_le_bytes());
        }
        src_section.extend_from_slice(&src_records);

        let mut w = SectionWriter::new(MAGIC, BINARY_VERSION, Vec::new());
        w.section(SEC_MODEL, model_bytes);
        w.section(SEC_ARENA, arena.finish());
        w.section(SEC_OBJECTS, obj_section);
        w.section(SEC_TRIPLES, tri_section);
        w.section(SEC_SOURCES, src_section);
        Ok(w.finish())
    }

    /// Deserialize a binary snapshot produced by [`Store::to_binary`],
    /// rebuilding the adjacency indexes.
    pub fn from_binary(bytes: &[u8]) -> Result<Store, crate::SnapshotError> {
        let reader = SnapshotReader::open(bytes)?;
        Ok(reader.read_store()?)
    }
}

// ----------------------------------------------------------- the reader --

/// Lazy, borrowing view of a binary store image.
///
/// Opening verifies the header, section table and every section CRC, and
/// parses nothing else: objects, triples and sources resolve on demand from
/// the offset tables, straight out of the borrowed buffer. Use
/// [`SnapshotReader::read_store`] to materialize a full heap [`Store`].
pub struct SnapshotReader<'a> {
    model_bytes: &'a [u8],
    arena: ArenaReader<'a>,
    object_count: usize,
    object_offsets: &'a [u8],
    object_records: &'a [u8],
    triple_count: usize,
    triple_records: &'a [u8],
    source_count: usize,
    source_offsets: &'a [u8],
    source_records: &'a [u8],
}

impl<'a> SnapshotReader<'a> {
    /// Open an image: verify magic, version, header CRC, section layout and
    /// per-section CRCs. O(buffer) for the CRC pass, no materialization.
    pub fn open(buf: &'a [u8]) -> Result<SnapshotReader<'a>, BinaryError> {
        let sections = Sections::open(buf, MAGIC, BINARY_VERSION, 0)?;
        if sections.len() != 5 {
            return Err(BinaryError::Sections {
                detail: "expected exactly 5 sections",
            });
        }
        let model_bytes = sections.get(SEC_MODEL, "model")?;
        let arena = ArenaReader::open(sections.get(SEC_ARENA, "arena")?, "arena")?;

        let obj = sections.get(SEC_OBJECTS, "objects")?;
        let mut c = Cursor::new(obj, "objects");
        let object_count = c.u32()? as usize;
        let object_offsets =
            c.bytes(object_count.checked_mul(4).ok_or(BinaryError::Malformed {
                section: "objects",
                detail: "count overflow",
            })?)?;
        let object_records = &obj[c.pos()..];

        let tri = sections.get(SEC_TRIPLES, "triples")?;
        let mut c = Cursor::new(tri, "triples");
        let triple_count = c.u32()? as usize;
        let triple_records = &tri[c.pos()..];

        let src = sections.get(SEC_SOURCES, "sources")?;
        let mut c = Cursor::new(src, "sources");
        let source_count = c.u32()? as usize;
        let source_offsets =
            c.bytes(source_count.checked_mul(4).ok_or(BinaryError::Malformed {
                section: "sources",
                detail: "count overflow",
            })?)?;
        let source_records = &src[c.pos()..];

        Ok(SnapshotReader {
            model_bytes,
            arena,
            object_count,
            object_offsets,
            object_records,
            triple_count,
            triple_records,
            source_count,
            source_offsets,
            source_records,
        })
    }

    /// Number of object slots (aliases included).
    pub fn object_count(&self) -> usize {
        self.object_count
    }

    /// Number of triples.
    pub fn triple_count(&self) -> usize {
        self.triple_count
    }

    /// Number of registered sources.
    pub fn source_count(&self) -> usize {
        self.source_count
    }

    /// Parse the domain model blob (the one materializing accessor — the
    /// model is stored as an opaque serde_json section).
    pub fn read_model(&self) -> Result<DomainModel, BinaryError> {
        serde_json::from_slice(self.model_bytes).map_err(|_| BinaryError::Malformed {
            section: "model",
            detail: "model blob does not parse",
        })
    }

    fn record_at(
        &self,
        offsets: &'a [u8],
        records: &'a [u8],
        count: usize,
        i: usize,
        section: &'static str,
    ) -> Result<Cursor<'a>, BinaryError> {
        debug_assert!(i < count);
        let start = u32::from_le_bytes(offsets[i * 4..i * 4 + 4].try_into().unwrap()) as usize;
        if start > records.len() {
            return Err(BinaryError::Malformed {
                section,
                detail: "record offset out of bounds",
            });
        }
        let mut c = Cursor::new(records, section);
        c.pos = start;
        Ok(c)
    }

    /// Resolve object slot `i` on demand from its offset-table entry.
    pub fn object(&self, i: usize) -> Result<Object, BinaryError> {
        if i >= self.object_count {
            return Err(BinaryError::Malformed {
                section: "objects",
                detail: "object index out of range",
            });
        }
        let mut c = self.record_at(
            self.object_offsets,
            self.object_records,
            self.object_count,
            i,
            "objects",
        )?;
        let class = ClassId(
            u16::try_from(c.varint()?).map_err(|_| BinaryError::Malformed {
                section: "objects",
                detail: "class id does not fit",
            })?,
        );
        let merged = c.varint()?;
        let merged_into = if merged == 0 {
            None
        } else {
            Some(ObjectId(merged - 1))
        };
        let nattrs = c.index()?;
        if nattrs > self.object_records.len() {
            return Err(BinaryError::Malformed {
                section: "objects",
                detail: "attr count exceeds section",
            });
        }
        let mut attrs = Vec::with_capacity(nattrs);
        for _ in 0..nattrs {
            let a = AttrId(
                u16::try_from(c.varint()?).map_err(|_| BinaryError::Malformed {
                    section: "objects",
                    detail: "attr id does not fit",
                })?,
            );
            attrs.push((a, read_value(&mut c, &self.arena)?));
        }
        let nsources = c.index()?;
        if nsources > self.object_records.len() {
            return Err(BinaryError::Malformed {
                section: "objects",
                detail: "source count exceeds section",
            });
        }
        let mut srcs = Vec::with_capacity(nsources);
        for _ in 0..nsources {
            let s = u32::try_from(c.varint()?).map_err(|_| BinaryError::Malformed {
                section: "objects",
                detail: "source id does not fit",
            })?;
            srcs.push(SourceId(s));
        }
        Ok(Object {
            class,
            attrs,
            sources: srcs,
            merged_into,
        })
    }

    /// Iterate the triples, decoding each on demand from the buffer.
    pub fn triples(&self) -> TripleIter<'a> {
        TripleIter {
            cursor: Cursor::new(self.triple_records, "triples"),
            remaining: self.triple_count,
            prev_subject: 0,
        }
    }

    /// Resolve source `i` on demand.
    pub fn source(&self, i: usize) -> Result<SourceInfo, BinaryError> {
        if i >= self.source_count {
            return Err(BinaryError::Malformed {
                section: "sources",
                detail: "source index out of range",
            });
        }
        let mut c = self.record_at(
            self.source_offsets,
            self.source_records,
            self.source_count,
            i,
            "sources",
        )?;
        let name = self.arena.get(c.varint()?)?.to_owned();
        let kind = kind_from_tag(c.u8()?)?;
        let location = match c.u8()? {
            0 => None,
            1 => Some(self.arena.get(c.varint()?)?.to_owned()),
            _ => {
                return Err(BinaryError::Malformed {
                    section: "sources",
                    detail: "bad location tag",
                })
            }
        };
        Ok(SourceInfo {
            name,
            kind,
            location,
        })
    }

    /// Materialize the full heap [`Store`] (rebuilds adjacency indexes).
    pub fn read_store(&self) -> Result<Store, BinaryError> {
        let model = self.read_model()?;
        let mut objects = Vec::with_capacity(self.object_count);
        for i in 0..self.object_count {
            objects.push(self.object(i)?);
        }
        let mut triples = Vec::with_capacity(self.triple_count.min(1 << 24));
        for t in self.triples() {
            triples.push(t?);
        }
        let mut sources = Vec::with_capacity(self.source_count);
        for i in 0..self.source_count {
            sources.push(self.source(i)?);
        }
        // Ids inside records must stay inside the image's tables: a
        // snapshot can never reference objects or sources it does not
        // define (model ids are validated by `rebuild_indexes` growth).
        let nobj = objects.len() as u64;
        let nsrc = sources.len() as u64;
        let nclasses = model.class_count() as u64;
        let nassocs = model.assoc_count() as u64;
        let nattrs = model.attr_count() as u64;
        for o in &objects {
            if u64::from(o.class.0) >= nclasses
                || o.merged_into.is_some_and(|m| m.0 >= nobj)
                || o.sources.iter().any(|s| u64::from(s.0) >= nsrc)
                || o.attrs.iter().any(|(a, _)| u64::from(a.0) >= nattrs)
            {
                return Err(BinaryError::Malformed {
                    section: "objects",
                    detail: "dangling id",
                });
            }
        }
        for t in &triples {
            if t.subject.0 >= nobj
                || t.object.0 >= nobj
                || u64::from(t.assoc.0) >= nassocs
                || u64::from(t.source.0) >= nsrc
            {
                return Err(BinaryError::Malformed {
                    section: "triples",
                    detail: "dangling id",
                });
            }
        }
        Ok(Store::from_parts(model, objects, triples, sources))
    }
}

/// Lazy triple iterator over the triples section.
pub struct TripleIter<'a> {
    cursor: Cursor<'a>,
    remaining: usize,
    prev_subject: i64,
}

impl Iterator for TripleIter<'_> {
    type Item = Result<Triple, BinaryError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let mut step = || -> Result<Triple, BinaryError> {
            let delta = unzigzag(self.cursor.varint()?);
            let subject = self
                .prev_subject
                .checked_add(delta)
                .filter(|&s| s >= 0)
                .ok_or(BinaryError::Malformed {
                    section: "triples",
                    detail: "subject delta underflow",
                })?;
            self.prev_subject = subject;
            let assoc = AssocId(u16::try_from(self.cursor.varint()?).map_err(|_| {
                BinaryError::Malformed {
                    section: "triples",
                    detail: "assoc id does not fit",
                }
            })?);
            let object = ObjectId(self.cursor.varint()?);
            let source = SourceId(u32::try_from(self.cursor.varint()?).map_err(|_| {
                BinaryError::Malformed {
                    section: "triples",
                    detail: "source id does not fit",
                }
            })?);
            Ok(Triple {
                subject: ObjectId(subject as u64),
                assoc,
                object,
                source,
            })
        };
        let r = step();
        if r.is_err() {
            self.remaining = 0; // stop after the first error
        }
        Some(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use semex_model::names::{assoc, attr, class};

    fn sample_store() -> Store {
        let mut st = Store::with_builtin_model();
        let person = st.model().class(class::PERSON).unwrap();
        let publication = st.model().class(class::PUBLICATION).unwrap();
        let authored = st.model().assoc(assoc::AUTHORED_BY).unwrap();
        let name = st.model().attr(attr::NAME).unwrap();
        let title = st.model().attr(attr::TITLE).unwrap();
        let year = st.model().attr(attr::YEAR).unwrap();
        let src = st.register_source(SourceInfo::new("inbox", SourceKind::Email));
        let src2 = st
            .register_source(SourceInfo::new("library", SourceKind::Bibliography).at("~/refs.bib"));
        let ann = st.add_object(person);
        let dup = st.add_object(person);
        st.add_attr(ann, name, Value::from("Ann Smith")).unwrap();
        st.add_attr(dup, name, Value::from("A. Smith")).unwrap();
        st.add_source_to(ann, src);
        let paper = st.add_object(publication);
        st.add_attr(paper, title, Value::from("On Binary Snapshots"))
            .unwrap();
        st.add_attr(paper, year, Value::from(2005i64)).unwrap();
        st.add_triple(paper, authored, dup, src2).unwrap();
        st.merge(ann, dup).unwrap();
        st
    }

    #[test]
    fn round_trip_preserves_everything() {
        let st = sample_store();
        let bytes = st.to_binary().unwrap();
        let st2 = Store::from_binary(&bytes).unwrap();
        assert_eq!(st.to_json().unwrap(), st2.to_json().unwrap());
    }

    #[test]
    fn empty_store_round_trips() {
        let st = Store::with_builtin_model();
        let bytes = st.to_binary().unwrap();
        let st2 = Store::from_binary(&bytes).unwrap();
        assert_eq!(st.to_json().unwrap(), st2.to_json().unwrap());
    }

    #[test]
    fn binary_is_smaller_than_json() {
        let st = sample_store();
        assert!(st.to_binary().unwrap().len() < st.to_json().unwrap().len());
    }

    #[test]
    fn lazy_reader_resolves_without_materializing() {
        let st = sample_store();
        let bytes = st.to_binary().unwrap();
        let r = SnapshotReader::open(&bytes).unwrap();
        assert_eq!(r.object_count(), 3);
        assert_eq!(r.triple_count(), 1);
        assert_eq!(r.source_count(), 2);
        // Random access by slot, no scan.
        let o2 = r.object(2).unwrap();
        assert!(o2.merged_into.is_none());
        let o1 = r.object(1).unwrap();
        assert_eq!(o1.merged_into, Some(ObjectId(0)));
        let s1 = r.source(1).unwrap();
        assert_eq!(s1.name, "library");
        assert_eq!(s1.location.as_deref(), Some("~/refs.bib"));
        let t: Vec<_> = r.triples().collect::<Result<_, _>>().unwrap();
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn every_truncation_is_a_typed_error() {
        let bytes = sample_store().to_binary().unwrap();
        for cut in 0..bytes.len() {
            let r = SnapshotReader::open(&bytes[..cut]).map(|r| r.read_store());
            assert!(
                matches!(r, Err(_) | Ok(Err(_))),
                "truncation at {cut} was not rejected"
            );
        }
    }

    #[test]
    fn every_bit_flip_is_a_typed_error() {
        let bytes = sample_store().to_binary().unwrap();
        // Flip one bit per byte position; all must be caught by a CRC or a
        // structural check (nothing in the image is unguarded).
        for pos in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[pos] ^= 0x10;
            let r = SnapshotReader::open(&bad).map(|r| r.read_store());
            assert!(
                matches!(r, Err(_) | Ok(Err(_))),
                "bit flip at {pos} was not rejected"
            );
        }
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let mut bytes = sample_store().to_binary().unwrap();
        bytes.extend_from_slice(b"xx");
        assert!(matches!(
            SnapshotReader::open(&bytes),
            Err(BinaryError::Bounds { .. })
        ));
    }

    #[test]
    fn wrong_magic_and_version_are_distinct() {
        let bytes = sample_store().to_binary().unwrap();
        let mut wrong_magic = bytes.clone();
        wrong_magic[0] = b'X';
        assert_eq!(
            SnapshotReader::open(&wrong_magic).err(),
            Some(BinaryError::BadMagic)
        );
        // A future version must be refused *before* any CRC check, so the
        // error names the version, not a checksum.
        let mut wrong_version = bytes;
        wrong_version[8] = 99;
        assert!(matches!(
            SnapshotReader::open(&wrong_version).err(),
            Some(BinaryError::Version {
                found: 99,
                expected: BINARY_VERSION
            })
        ));
    }

    #[test]
    fn varint_round_trips() {
        for v in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            let mut out = Vec::new();
            write_varint(v, &mut out);
            let mut c = Cursor::new(&out, "test");
            assert_eq!(c.varint().unwrap(), v);
            assert!(c.at_end());
        }
        for v in [0i64, -1, 1, i64::MIN, i64::MAX, -123456] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }
}
