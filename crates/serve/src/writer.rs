//! The serialized write path: per-tenant single-writer servicing, batch
//! coalescing, one journal commit and one snapshot publication per batch.
//!
//! Every mutation funnels through its tenant's bounded queue in the
//! [`TenantPool`]; a small pool of writer workers drains whichever tenants
//! have work. The pool guarantees one worker per tenant at a time, so each
//! tenant still has a serialized write path, while independent tenants
//! commit in parallel. Within one servicing pass the batch is everything
//! already queued (up to `max_batch`): under write pressure a tenant's
//! queue naturally backs up while its previous batch commits, so N queued
//! writes cost **one** index refresh and **one** fsync instead of N —
//! without adding any artificial latency when the queue is idle.
//!
//! Acknowledgment order is the durability contract: apply → commit →
//! publish → reply. A client that has its ack (a) can read its own write
//! from the very next snapshot load, and (b) will find it after a crash
//! and [`semex_core::Semex::open_durable`] recovery — which is also what
//! makes tenant eviction safe. Jobs dequeued after shutdown began are
//! rejected with a typed `shutting_down` error — never silently dropped —
//! so a client always learns the fate of its write.

use crate::protocol::{ErrorKindWire, IngestFormat, Request, Response};
use crate::role::CommitTap;
use semex_core::{Semex, SemexError, SourceSpec};
use semex_store::ObjectId;
use semex_tenant::{Master, SnapshotEngine, TenantPool};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};

/// A mutation in queueable form. `Clone` so a recording server can return
/// the exact applied sequence for sequential-replay verification.
#[derive(Debug, Clone, PartialEq)]
pub enum WriteCommand {
    /// Ingest an inline source.
    Ingest {
        /// Source format.
        format: IngestFormat,
        /// Provenance name.
        name: String,
        /// The source text.
        content: String,
    },
    /// Integrate a CSV table.
    IntegrateCsv {
        /// Provenance name.
        name: String,
        /// The CSV text.
        csv: String,
    },
    /// Merge two objects on user say-so.
    AssertSame {
        /// One object id.
        a: u64,
        /// The other object id.
        b: u64,
    },
    /// Record a cannot-link constraint.
    AssertDistinct {
        /// One object id.
        a: u64,
        /// The other object id.
        b: u64,
    },
    /// Apply one replicated commit batch (follower mode only). Never
    /// built from a client request — the replication puller enqueues it
    /// directly, so replicated applies share the tenant's serialized
    /// write path with everything else.
    Replicate {
        /// Global sequence of the batch's first event; must equal the
        /// follower's durable head or the batch is refused as divergent.
        start_seq: u64,
        /// The batch's store events, one JSON document each (kept encoded
        /// so the command stays comparable and cheap to clone).
        events_json: Vec<String>,
    },
}

impl WriteCommand {
    /// Lift a write request into a command; `None` for read requests.
    pub fn from_request(req: &Request) -> Option<WriteCommand> {
        Some(match req {
            Request::Ingest {
                format,
                name,
                content,
            } => WriteCommand::Ingest {
                format: *format,
                name: name.clone(),
                content: content.clone(),
            },
            Request::IntegrateCsv { name, csv } => WriteCommand::IntegrateCsv {
                name: name.clone(),
                csv: csv.clone(),
            },
            Request::AssertSame { a, b } => WriteCommand::AssertSame { a: *a, b: *b },
            Request::AssertDistinct { a, b } => WriteCommand::AssertDistinct { a: *a, b: *b },
            _ => return None,
        })
    }

    /// Apply this command to a platform directly (the sequential-replay
    /// oracle the concurrency tests compare the served state against).
    /// Returns the success response minus its epoch.
    pub fn apply(&self, semex: &mut Semex) -> Result<Applied, Response> {
        match self {
            WriteCommand::Ingest {
                format,
                name,
                content,
            } => {
                let spec = match format {
                    IngestFormat::Mbox => SourceSpec::Mbox {
                        name: name.clone(),
                        content: content.clone(),
                    },
                    IngestFormat::Vcard => SourceSpec::Vcard {
                        name: name.clone(),
                        content: content.clone(),
                    },
                    IngestFormat::Bibtex => SourceSpec::Bibtex {
                        name: name.clone(),
                        content: content.clone(),
                    },
                    IngestFormat::Latex => SourceSpec::Latex {
                        name: name.clone(),
                        content: content.clone(),
                    },
                    IngestFormat::Ical => SourceSpec::Ical {
                        name: name.clone(),
                        content: content.clone(),
                    },
                };
                let stats = semex.ingest(spec).map_err(error_response)?;
                Ok(Applied::Ingested {
                    records: stats.records,
                    objects: stats.objects,
                    triples: stats.triples,
                })
            }
            WriteCommand::IntegrateCsv { name, csv } => {
                match semex.integrate(name, csv).map_err(error_response)? {
                    Some((score, report)) => Ok(Applied::Integrated {
                        matched: true,
                        score,
                        created: report.created,
                        merged: report.merged_into_existing,
                    }),
                    None => Ok(Applied::Integrated {
                        matched: false,
                        score: 0.0,
                        created: 0,
                        merged: 0,
                    }),
                }
            }
            WriteCommand::AssertSame { a, b } => {
                let (a, b) = (check_object(semex, *a)?, check_object(semex, *b)?);
                let merges = semex.store().resolve(a) != semex.store().resolve(b);
                semex.assert_same(a, b).map_err(error_response)?;
                Ok(Applied::Asserted { merged: merges })
            }
            WriteCommand::AssertDistinct { a, b } => {
                let (a, b) = (check_object(semex, *a)?, check_object(semex, *b)?);
                let accepted = semex.assert_distinct(a, b);
                Ok(Applied::Asserted { merged: accepted })
            }
            WriteCommand::Replicate { .. } => Err(Response::Error {
                kind: ErrorKindWire::BadRequest,
                message: "a replicated batch applies through a journal-backed master, \
                          not a bare platform"
                    .into(),
            }),
        }
    }
}

/// Apply a replicated batch through the master's journal-first path.
/// Returns the number of events applied (how far the publication epoch
/// advances beyond what [`Master::commit`] reports, since replicated
/// events are journaled and folded in directly rather than recorded as
/// local pending mutations).
fn apply_replicate(
    master: &mut Master,
    start_seq: u64,
    events_json: &[String],
) -> Result<u64, Response> {
    let mut events = Vec::with_capacity(events_json.len());
    for json in events_json {
        let event = serde_json::from_str(json).map_err(|e| Response::Error {
            kind: ErrorKindWire::BadRequest,
            message: format!("undecodable replicated event: {e}"),
        })?;
        events.push(event);
    }
    master
        .apply_replicated(start_seq, &events)
        .map(|_| events.len() as u64)
        .map_err(|e| Response::Error {
            kind: ErrorKindWire::Internal,
            message: format!("replicated batch refused: {e}"),
        })
}

/// A successfully applied write, waiting for its batch to commit so the
/// ack can carry the publication epoch.
#[derive(Debug)]
pub enum Applied {
    /// An ingest's extraction stats.
    Ingested {
        /// Input records consumed.
        records: usize,
        /// References created.
        objects: usize,
        /// Triples asserted.
        triples: usize,
    },
    /// A CSV integration's outcome.
    Integrated {
        /// Whether a usable mapping was found.
        matched: bool,
        /// Mapping quality.
        score: f64,
        /// References created.
        created: usize,
        /// References merged into existing objects.
        merged: usize,
    },
    /// An assertion's outcome.
    Asserted {
        /// See [`Response::Asserted`].
        merged: bool,
    },
    /// A replicated batch folded into the follower (the ack epoch is the
    /// follower's new durable head).
    Replicated,
}

impl Applied {
    fn into_response(self, epoch: u64) -> Response {
        match self {
            Applied::Ingested {
                records,
                objects,
                triples,
            } => Response::Ingested {
                epoch,
                records,
                objects,
                triples,
            },
            Applied::Integrated {
                matched,
                score,
                created,
                merged,
            } => Response::Integrated {
                epoch,
                matched,
                score,
                created,
                merged,
            },
            Applied::Asserted { merged } => Response::Asserted { epoch, merged },
            Applied::Replicated => Response::Replicated { epoch },
        }
    }
}

fn check_object(semex: &Semex, id: u64) -> Result<ObjectId, Response> {
    if (id as usize) < semex.store().slot_count() {
        Ok(ObjectId(id))
    } else {
        Err(Response::Error {
            kind: ErrorKindWire::BadRequest,
            message: format!("no such object: {id}"),
        })
    }
}

fn error_response(e: SemexError) -> Response {
    let kind = match &e {
        SemexError::Extract { .. } => ErrorKindWire::Extract,
        SemexError::Store(_) => ErrorKindWire::Store,
        SemexError::Degraded { .. } => ErrorKindWire::Degraded,
    };
    Response::Error {
        kind,
        message: e.to_string(),
    }
}

/// One queued write: the command plus the channel its ack goes back on.
pub(crate) struct WriteJob {
    pub cmd: WriteCommand,
    pub reply: mpsc::Sender<Response>,
}

/// What the writer thread did, returned by
/// [`ServeHandle::join`](crate::ServeHandle::join).
#[derive(Debug, Default)]
pub struct WriterReport {
    /// Commit+publish cycles (each one index refresh and one fsync).
    pub batches: u64,
    /// Writes applied, committed, and acked with an epoch.
    pub writes_ok: u64,
    /// Writes that failed to apply or whose batch failed to commit.
    pub writes_failed: u64,
    /// Writes rejected with `shutting_down` after shutdown began.
    pub writes_rejected: u64,
    /// The final published epoch.
    pub final_epoch: u64,
    /// The applied commands in order, when the server was configured with
    /// `record_writes` (for sequential-replay verification).
    pub applied: Vec<WriteCommand>,
}

/// Shared write-path counters, incremented by every writer worker and
/// folded into the [`WriterReport`] at shutdown.
#[derive(Debug, Default)]
pub(crate) struct WriterStats {
    pub batches: AtomicU64,
    pub writes_ok: AtomicU64,
    pub writes_failed: AtomicU64,
    pub writes_rejected: AtomicU64,
    /// Applied commands in order, when recording (single-tenant pools
    /// only; cross-tenant order would be meaningless).
    pub applied: Mutex<Vec<WriteCommand>>,
}

impl WriterStats {
    /// Reject a job with the typed shutting-down error (used both by
    /// workers draining after shutdown and by finalize-time leftovers).
    pub fn reject_shutting_down(&self, job: WriteJob) {
        self.writes_rejected.fetch_add(1, Ordering::Relaxed);
        let _ = job.reply.send(Response::Error {
            kind: ErrorKindWire::ShuttingDown,
            message: "server is shutting down; the write was not applied".into(),
        });
    }

    /// Fold the counters into a report (the final epoch is supplied by the
    /// pool, which knows every tenant's sealed state).
    pub fn take_report(&self, final_epoch: u64) -> WriterReport {
        WriterReport {
            batches: self.batches.load(Ordering::Relaxed),
            writes_ok: self.writes_ok.load(Ordering::Relaxed),
            writes_failed: self.writes_failed.load(Ordering::Relaxed),
            writes_rejected: self.writes_rejected.load(Ordering::Relaxed),
            final_epoch,
            applied: std::mem::take(&mut self.applied.lock().expect("stats lock poisoned")),
        }
    }
}

/// A writer worker's body: service dispatched tenants until the pool
/// closes and the dispatch backlog drains.
pub(crate) fn pool_worker(
    pool: Arc<TenantPool<WriteJob>>,
    stats: Arc<WriterStats>,
    stop: Arc<AtomicBool>,
    record_writes: bool,
    tap: Option<Arc<dyn CommitTap>>,
) {
    while let Some(tenant) = pool.next_dispatch() {
        pool.service(&tenant, |master, engine, batch| {
            service_batch(
                master,
                engine,
                batch,
                &stats,
                &stop,
                record_writes,
                tap.as_deref(),
            );
        });
        // Publication bumps the tenant's cache generation: results keyed
        // on older epochs become sweepable dead weight. This only takes
        // the cache's epoch-map lock — a write never waits on the LRU.
        if let Some(cache) = pool.read_cache() {
            cache.note_epoch(tenant.id().as_str(), tenant.engine().epoch());
        }
    }
}

/// Apply, commit, publish, and ack one tenant's batch — the durability
/// contract lives here. Runs with exclusive access to the tenant's master
/// (the pool guarantees one servicing worker per tenant at a time).
fn service_batch(
    master: &mut Master,
    engine: &SnapshotEngine,
    batch: Vec<WriteJob>,
    stats: &WriterStats,
    stop: &AtomicBool,
    record_writes: bool,
    tap: Option<&dyn CommitTap>,
) {
    let mut outcomes = Vec::with_capacity(batch.len());
    let mut replicated: u64 = 0;
    for job in batch {
        if stop.load(Ordering::SeqCst) {
            // Queued but unacked when shutdown began: reject, don't
            // drop — the client must learn its write did not happen.
            stats.reject_shutting_down(job);
            continue;
        }
        let outcome = match &job.cmd {
            WriteCommand::Replicate {
                start_seq,
                events_json,
            } => apply_replicate(master, *start_seq, events_json).map(|n| {
                replicated += n;
                Applied::Replicated
            }),
            _ => job.cmd.apply(master.semex_mut()),
        };
        if record_writes && outcome.is_ok() && !matches!(job.cmd, WriteCommand::Replicate { .. }) {
            stats
                .applied
                .lock()
                .expect("stats lock poisoned")
                .push(job.cmd.clone());
        }
        outcomes.push((job.reply, outcome));
    }
    if outcomes.is_empty() {
        return;
    }
    stats.batches.fetch_add(1, Ordering::Relaxed);
    let committed = master.commit();
    // A replicating primary announces the new durable head to its hub
    // *before* any ack is released; the hub blocks until the synchronous
    // follower set has it. A tap failure withholds the acks below — the
    // batch is durable locally but the client never saw an ack, so losing
    // it in a failover breaks no promise.
    let tap_err = match (&committed, tap) {
        (Ok(n), Some(tap)) if *n > 0 => tap.on_commit(master.boot_epoch()).err(),
        _ => None,
    };
    // Publish even on commit failure: readers must track the master's
    // in-memory state (which, degraded, still serves the un-durable
    // mutations — exactly the degraded-mode contract). A failed commit
    // advances the epoch by one so readers can still observe the changed
    // state under a fresh epoch. Replicated events are journaled outside
    // the commit's count, so they advance the epoch separately — keeping
    // a follower's epoch identical to the primary's at the same state.
    let epoch = match &committed {
        Ok(n) => engine.publish_advance(master.snapshot(), *n as u64 + replicated),
        Err(_) => engine.publish_advance(master.snapshot(), 1),
    };
    for (reply, outcome) in outcomes {
        let response = match (&committed, outcome) {
            (Ok(_), Ok(applied)) => match &tap_err {
                None => {
                    stats.writes_ok.fetch_add(1, Ordering::Relaxed);
                    applied.into_response(epoch)
                }
                Some(err) => {
                    stats.writes_failed.fetch_add(1, Ordering::Relaxed);
                    Response::Error {
                        kind: ErrorKindWire::Degraded,
                        message: format!(
                            "write journaled locally but not acknowledged by the \
                             replica set: {err}"
                        ),
                    }
                }
            },
            (Err(e), Ok(_)) => {
                stats.writes_failed.fetch_add(1, Ordering::Relaxed);
                Response::Error {
                    kind: ErrorKindWire::Degraded,
                    message: format!("applied but not durable — journal commit failed: {e}"),
                }
            }
            (_, Err(error)) => {
                stats.writes_failed.fetch_add(1, Ordering::Relaxed);
                error
            }
        };
        let _ = reply.send(response);
    }
}
