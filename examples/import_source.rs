//! On-the-fly integration: the SIGMOD'05 demo's third scenario.
//!
//! The user's SEMEX space already knows their contacts and papers. A new
//! external source arrives — a workshop attendee spreadsheet with its own
//! column headers. SEMEX matches the source's schema against the domain
//! model (name-based + instance-based matching), imports the rows, and
//! reference reconciliation folds the attendees into existing Person
//! objects where they denote people the user already knows.
//!
//! Run with `cargo run --example import_source`.

use semex::SemexBuilder;

const CONTACTS: &str = "\
BEGIN:VCARD
FN:Ann Walker
EMAIL:ann.walker@evergreen.example.edu
ORG:Evergreen University
END:VCARD
BEGIN:VCARD
FN:Bob Fisher
EMAIL:bfisher@cascade.example.edu
ORG:Cascade Labs
END:VCARD
BEGIN:VCARD
FN:Xin Dong
EMAIL:luna@cs.example.edu
END:VCARD
";

const BIB: &str = "@inproceedings{w1, title={Malleable Schemas for Personal Data}, author={Ann Walker and Xin Dong}, booktitle={WebDB}, year=2004}";

/// The external source: different headers, name variants, one unknown
/// person, one person identified only by a name variant.
const ATTENDEES_CSV: &str = "\
attendee,e-mail address,affiliation phone
\"Walker, Ann\",ann.walker@evergreen.example.edu,555-0170
Dong Xin,,555-0171
Carol Reyes,carol@pioneer.example.org,555-0172
Bob Fisher,bfisher@cascade.example.edu,555-0173
";

fn main() {
    let mut semex = SemexBuilder::new()
        .add_vcards("addressbook", CONTACTS)
        .add_bibtex("library", BIB)
        .build()
        .expect("pipeline");

    let c_person = semex.store().model().class("Person").unwrap();
    println!(
        "before import: {} people known\n",
        semex.store().class_count(c_person)
    );

    println!("== incoming source: attendees.csv ==\n{ATTENDEES_CSV}");
    let (mapping_score, report) = semex
        .integrate("attendees.csv", ATTENDEES_CSV)
        .expect("import accepted")
        .expect("schema matches the Person class");

    println!("schema mapping confidence: {mapping_score:.2}");
    println!(
        "imported {} rows -> {} references; {} merged into people already known, {} new",
        report.rows,
        report.created,
        report.merged_into_existing,
        report.created - report.merged_into_existing
    );

    println!(
        "\nafter import: {} people known\n",
        semex.store().class_count(c_person)
    );

    // Ann's record shows the imported phone number with provenance; the
    // import is searchable immediately.
    let ann = &semex.search("class:Person walker", 1)[0];
    println!("== Ann after the import ==\n{}", semex.view(ann.object));
    println!("== search \"carol\" (new from the import) ==");
    for hit in semex.search("carol", 3) {
        println!("  {:>6.2}  [{}] {}", hit.score, hit.class, hit.label);
    }
}
