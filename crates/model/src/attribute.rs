//! Attribute definitions.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of an attribute in a [`crate::DomainModel`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct AttrId(pub u16);

impl AttrId {
    /// The dense index of this attribute.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for AttrId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "a{}", self.0)
    }
}

/// The type an attribute's values are expected to have.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ValueKind {
    /// UTF-8 text.
    Str,
    /// Signed integer.
    Int,
    /// Floating point.
    Float,
    /// Epoch-seconds timestamp.
    Date,
    /// Boolean.
    Bool,
}

impl fmt::Display for ValueKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ValueKind::Str => "str",
            ValueKind::Int => "int",
            ValueKind::Float => "float",
            ValueKind::Date => "date",
            ValueKind::Bool => "bool",
        };
        f.write_str(s)
    }
}

/// Definition of an attribute: a globally unique name and an expected value
/// kind.
///
/// Attributes are global (not scoped to a class) so that schema matching and
/// keyword search can treat `name` uniformly whether it appears on a Person
/// or an Organization.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AttrDef {
    /// Unique attribute name, e.g. `"email"`.
    pub name: String,
    /// The expected value kind. Stores enforce this on insertion.
    pub kind: ValueKind,
    /// Whether the attribute's text should be fed to the keyword index.
    pub indexed: bool,
}

impl AttrDef {
    /// A new indexed attribute of the given kind.
    pub fn new(name: impl Into<String>, kind: ValueKind) -> Self {
        AttrDef {
            name: name.into(),
            kind,
            indexed: kind == ValueKind::Str,
        }
    }

    /// Builder-style: exclude the attribute from the keyword index (used for
    /// opaque identifiers such as `messageId`).
    pub fn unindexed(mut self) -> Self {
        self.indexed = false;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn string_attrs_indexed_by_default() {
        assert!(AttrDef::new("name", ValueKind::Str).indexed);
        assert!(!AttrDef::new("year", ValueKind::Int).indexed);
        assert!(
            !AttrDef::new("messageId", ValueKind::Str)
                .unindexed()
                .indexed
        );
    }

    #[test]
    fn kind_display() {
        assert_eq!(ValueKind::Str.to_string(), "str");
        assert_eq!(ValueKind::Date.to_string(), "date");
    }
}
