/root/repo/target/debug/deps/semex_integrate-427b326e2d420f05.d: crates/integrate/src/lib.rs crates/integrate/src/matcher.rs

/root/repo/target/debug/deps/libsemex_integrate-427b326e2d420f05.rmeta: crates/integrate/src/lib.rs crates/integrate/src/matcher.rs

crates/integrate/src/lib.rs:
crates/integrate/src/matcher.rs:
