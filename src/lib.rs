#![warn(missing_docs)]

//! Umbrella crate re-exporting the full SEMEX public API.
//!
//! SEMEX ("SEMantic EXplorer") is a platform for personal information
//! management and integration (Dong & Halevy, SIGMOD 2005). This crate is the
//! single entry point a downstream application needs: it re-exports the
//! domain model, the association database, extraction, reference
//! reconciliation, indexing, browsing, on-the-fly integration, and the
//! concurrent query service.

pub use semex_browse as browse;
pub use semex_core as core;
pub use semex_corpus as corpus;
pub use semex_extract as extract;
pub use semex_index as index;
pub use semex_integrate as integrate;
pub use semex_journal as journal;
pub use semex_model as model;
pub use semex_query as query;
pub use semex_recon as recon;
pub use semex_replica as replica;
pub use semex_serve as serve;
pub use semex_similarity as similarity;
pub use semex_store as store;

pub use semex_core::{
    DurableSemex, JournalConfig, Semex, SemexBuilder, SemexConfig, SnapshotFormat,
};
