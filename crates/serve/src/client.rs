//! A blocking client for the serve protocol: one request, one response,
//! over a persistent connection.

use crate::protocol::{read_response, write_request, FrameError, Request, Response};
use std::io::{self, ErrorKind};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// A connected client. Requests are answered in order on one connection;
/// open several clients for concurrency.
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connect with the default 30-second socket timeouts.
    pub fn connect(addr: SocketAddr) -> io::Result<Client> {
        Client::connect_timeout(addr, Duration::from_secs(30))
    }

    /// Connect with an explicit timeout applied to the connection attempt
    /// and to every subsequent read and write.
    pub fn connect_timeout(addr: SocketAddr, timeout: Duration) -> io::Result<Client> {
        let stream = TcpStream::connect_timeout(&addr, timeout)?;
        stream.set_read_timeout(Some(timeout))?;
        stream.set_write_timeout(Some(timeout))?;
        stream.set_nodelay(true)?;
        Ok(Client { stream })
    }

    /// Send one request and wait for its response. The server closing the
    /// connection instead of answering surfaces as an `UnexpectedEof` I/O
    /// error.
    pub fn request(&mut self, request: &Request) -> Result<Response, FrameError> {
        write_request(&mut self.stream, request)?;
        match read_response(&mut self.stream)? {
            Some(response) => Ok(response),
            None => Err(FrameError::Io(io::Error::new(
                ErrorKind::UnexpectedEof,
                "connection closed before a response arrived",
            ))),
        }
    }
}
