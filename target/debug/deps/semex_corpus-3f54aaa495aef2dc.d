/root/repo/target/debug/deps/semex_corpus-3f54aaa495aef2dc.d: crates/corpus/src/lib.rs crates/corpus/src/config.rs crates/corpus/src/cora.rs crates/corpus/src/names.rs crates/corpus/src/noise.rs crates/corpus/src/render.rs crates/corpus/src/truth.rs crates/corpus/src/world.rs Cargo.toml

/root/repo/target/debug/deps/libsemex_corpus-3f54aaa495aef2dc.rmeta: crates/corpus/src/lib.rs crates/corpus/src/config.rs crates/corpus/src/cora.rs crates/corpus/src/names.rs crates/corpus/src/noise.rs crates/corpus/src/render.rs crates/corpus/src/truth.rs crates/corpus/src/world.rs Cargo.toml

crates/corpus/src/lib.rs:
crates/corpus/src/config.rs:
crates/corpus/src/cora.rs:
crates/corpus/src/names.rs:
crates/corpus/src/noise.rs:
crates/corpus/src/render.rs:
crates/corpus/src/truth.rs:
crates/corpus/src/world.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
