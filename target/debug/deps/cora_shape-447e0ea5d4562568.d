/root/repo/target/debug/deps/cora_shape-447e0ea5d4562568.d: tests/cora_shape.rs tests/common/mod.rs

/root/repo/target/debug/deps/cora_shape-447e0ea5d4562568: tests/cora_shape.rs tests/common/mod.rs

tests/cora_shape.rs:
tests/common/mod.rs:
