/root/repo/target/debug/deps/semex_integrate-b1f47d3b99e76a21.d: crates/integrate/src/lib.rs crates/integrate/src/matcher.rs

/root/repo/target/debug/deps/semex_integrate-b1f47d3b99e76a21: crates/integrate/src/lib.rs crates/integrate/src/matcher.rs

crates/integrate/src/lib.rs:
crates/integrate/src/matcher.rs:
