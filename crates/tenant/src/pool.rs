//! The tenant pool: LRU activation and eviction of resident spaces under a
//! resident-memory budget, plus the shared write-dispatch machinery.
//!
//! A pool holds at most budget-many bytes (estimated — see
//! [`resident_cost`]) of resident tenants. A request for a non-resident
//! tenant recovers it from its journal directory (a *cold open*); when the
//! budget is exceeded, the least-recently-used idle tenant is *drained* —
//! batched index events flushed, journal committed, final snapshot
//! published — and dropped. Because every acked write was committed before
//! its ack, eviction never loses acknowledged data, and a reactivated
//! tenant serves byte-identical results and epochs.
//!
//! Writes are serialized **per tenant** but the pool is shared: each tenant
//! has a bounded job queue, and a tenant with queued jobs is dispatched to
//! exactly one pool worker at a time (`in_service`). One hot tenant can
//! therefore occupy at most one worker while its backlog sheds with typed
//! `overloaded` errors — it cannot starve the others.
//!
//! Lock order: the pool lock (`inner`) may take a tenant's `queue` lock;
//! `queue` holders never take `inner`. A tenant's `master` lock is never
//! acquired while holding `inner` (a worker holding `master` may briefly
//! take `inner` to update cost accounting).

use crate::engine::SnapshotEngine;
use crate::id::TenantId;
use crate::master::Master;
use crate::registry::TenantRegistry;
use crate::TenantError;
use semex_cache::{CacheConfig, ReadCache};
use semex_core::{JournalConfig, Semex, SemexConfig};
use semex_journal::JournalIo;
use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::time::Instant;

/// Pool tunables.
#[derive(Clone)]
pub struct PoolConfig {
    /// Resident-memory budget in estimated bytes (see [`resident_cost`]);
    /// `usize::MAX` disables eviction.
    pub memory_budget: usize,
    /// Bound on each tenant's write-job queue; beyond it, writes are shed.
    pub queue_depth: usize,
    /// Most jobs one [`TenantPool::service`] call drains into one batch.
    pub max_batch: usize,
    /// Cap on each tenant's concurrently executing requests; beyond it,
    /// requests are shed ([`TenantPool::admit`] returns `None`).
    pub max_inflight: usize,
    /// Whether activating a tenant with no journal directory provisions a
    /// fresh one (otherwise it is [`TenantError::Unknown`]).
    pub create_missing: bool,
    /// Platform configuration used for cold activations.
    pub semex: SemexConfig,
    /// Journal tunables used for cold activations.
    pub journal: JournalConfig,
    /// Journal I/O override for cold activations (fault injection and
    /// instrumentation; `None` uses the real filesystem).
    pub journal_io: Option<Arc<dyn JournalIo>>,
    /// Byte budget for the shared epoch-keyed read cache; `0` disables
    /// caching entirely. This budget is *in addition to* `memory_budget`
    /// (which bounds resident tenant state): the cache holds encoded
    /// response payloads, not snapshots, and is purged per tenant when
    /// the tenant itself is evicted.
    pub cache_budget: usize,
}

impl Default for PoolConfig {
    fn default() -> PoolConfig {
        PoolConfig {
            memory_budget: usize::MAX,
            queue_depth: 64,
            max_batch: 32,
            max_inflight: 256,
            create_missing: true,
            semex: SemexConfig::default(),
            journal: JournalConfig::default(),
            journal_io: None,
            cache_budget: 0,
        }
    }
}

impl fmt::Debug for PoolConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PoolConfig")
            .field("memory_budget", &self.memory_budget)
            .field("queue_depth", &self.queue_depth)
            .field("max_batch", &self.max_batch)
            .field("max_inflight", &self.max_inflight)
            .field("create_missing", &self.create_missing)
            .field("journal_io", &self.journal_io.is_some())
            .field("cache_budget", &self.cache_budget)
            .finish_non_exhaustive()
    }
}

/// Estimate one resident tenant's heap footprint in bytes, master plus its
/// currently published snapshot (the per-item constants fold the ×2 in).
///
/// There is no allocator hook, so this is deliberately a coarse model over
/// store and index cardinalities — good enough to *bound* the resident set,
/// not to meter it. The budget comparison uses these estimates on both
/// sides, so the bound is self-consistent.
pub fn resident_cost(semex: &Semex) -> usize {
    const TENANT_OVERHEAD: usize = 64 << 10;
    const PER_SLOT: usize = 600;
    const PER_EDGE: usize = 120;
    const PER_TERM: usize = 160;
    const PER_DOC: usize = 64;
    let store = semex.store();
    let index = semex.index();
    TENANT_OVERHEAD
        + store.slot_count() * PER_SLOT
        + store.edge_count() * PER_EDGE
        + index.term_count() * PER_TERM
        + index.doc_count() * PER_DOC
}

/// Per-tenant job queue state. `in_service` marks the tenant as dispatched
/// to (at most one) pool worker; `retired` marks it evicted — set only
/// while the queue is empty and not in service, so no queued job is ever
/// dropped by eviction.
struct JobQueue<J> {
    jobs: VecDeque<J>,
    in_service: bool,
    retired: bool,
}

/// One resident tenant: its snapshot engine (readers), master (servicing
/// worker) and bounded job queue.
pub struct Tenant<J> {
    id: TenantId,
    engine: SnapshotEngine,
    master: Mutex<Option<Master>>,
    queue: Mutex<JobQueue<J>>,
    inflight: AtomicUsize,
    cost: AtomicUsize,
    last_used: AtomicU64,
    pinned: bool,
}

impl<J> fmt::Debug for Tenant<J> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Tenant")
            .field("id", &self.id)
            .field("epoch", &self.engine.epoch())
            .field("cost", &self.cost.load(Ordering::Relaxed))
            .field("pinned", &self.pinned)
            .finish_non_exhaustive()
    }
}

impl<J> Tenant<J> {
    fn new(id: TenantId, mut master: Master, pinned: bool) -> Tenant<J> {
        master.semex_mut().set_index_batching(true);
        let engine = SnapshotEngine::with_epoch(master.snapshot(), master.boot_epoch());
        let cost = resident_cost(master.semex());
        Tenant {
            id,
            engine,
            master: Mutex::new(Some(master)),
            queue: Mutex::new(JobQueue {
                jobs: VecDeque::new(),
                in_service: false,
                retired: false,
            }),
            inflight: AtomicUsize::new(0),
            cost: AtomicUsize::new(cost),
            last_used: AtomicU64::new(0),
            pinned,
        }
    }

    /// The tenant's id.
    pub fn id(&self) -> &TenantId {
        &self.id
    }

    /// The tenant's snapshot engine (the read path).
    pub fn engine(&self) -> &SnapshotEngine {
        &self.engine
    }

    /// The tenant's current estimated resident bytes.
    pub fn cost(&self) -> usize {
        self.cost.load(Ordering::Relaxed)
    }
}

/// Holds one slot of a tenant's inflight-request budget; dropped when the
/// request finishes.
#[derive(Debug)]
pub struct InflightPermit<J> {
    tenant: Arc<Tenant<J>>,
}

impl<J> Drop for InflightPermit<J> {
    fn drop(&mut self) {
        self.tenant.inflight.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Why [`TenantPool::enqueue`] refused a job (the job comes back).
#[derive(Debug)]
pub enum EnqueueError<J> {
    /// The tenant's bounded queue is full — admission control shed the
    /// write; the client should back off and retry.
    Full(J),
    /// The tenant was evicted between activation and enqueue; re-activate
    /// (recovering it from the journal) and retry.
    Retired(J),
    /// The pool is shutting down; the write was not applied.
    ShuttingDown(J),
}

/// A gate other activators of the same tenant wait on while one performs
/// the cold open (so a thundering herd costs one recovery, not N).
#[derive(Default)]
struct Gate {
    done: Mutex<bool>,
    cv: Condvar,
}

impl Gate {
    fn wait(&self) {
        let mut done = self.done.lock().expect("gate lock poisoned");
        while !*done {
            done = self.cv.wait(done).expect("gate lock poisoned");
        }
    }

    fn open(&self) {
        *self.done.lock().expect("gate lock poisoned") = true;
        self.cv.notify_all();
    }
}

struct PoolInner<J> {
    resident: HashMap<TenantId, Arc<Tenant<J>>>,
    opening: HashMap<TenantId, Arc<Gate>>,
    clock: u64,
    resident_bytes: usize,
    closed: bool,
}

#[derive(Default)]
struct PoolStats {
    activations: AtomicU64,
    cold_opens: AtomicU64,
    evictions: AtomicU64,
    shed_inflight: AtomicU64,
    max_resident_tenants: AtomicUsize,
    max_resident_bytes: AtomicUsize,
    cold_open_us: Mutex<Vec<u64>>,
}

/// A point-in-time view of the pool (live metrics; see
/// [`TenantPool::snapshot_stats`]).
#[derive(Debug, Clone)]
pub struct PoolSnapshot {
    /// Resident tenants right now.
    pub resident_tenants: usize,
    /// Estimated resident bytes right now.
    pub resident_bytes: usize,
    /// The configured budget.
    pub memory_budget: usize,
    /// Successful activations so far (warm hits + cold opens).
    pub activations: u64,
    /// Cold opens (journal recoveries) so far.
    pub cold_opens: u64,
    /// Evictions so far.
    pub evictions: u64,
    /// Requests shed by the per-tenant inflight cap so far.
    pub shed_inflight: u64,
}

/// What the pool did over its lifetime, returned by
/// [`TenantPool::finalize`].
#[derive(Debug, Clone, Default)]
pub struct PoolReport {
    /// Successful activations (warm hits + cold opens).
    pub activations: u64,
    /// Cold opens (journal recoveries).
    pub cold_opens: u64,
    /// Evictions (drain + drop).
    pub evictions: u64,
    /// Requests shed by the per-tenant inflight cap.
    pub shed_inflight: u64,
    /// Most tenants resident at once.
    pub max_resident_tenants: usize,
    /// Highest estimated resident bytes observed.
    pub max_resident_bytes: usize,
    /// Tenants resident when the pool was finalized.
    pub resident_at_close: usize,
    /// Each cold open's duration in microseconds, in completion order.
    pub cold_open_us: Vec<u64>,
}

/// Everything [`TenantPool::finalize`] hands back.
#[derive(Debug)]
pub struct PoolFinal<J> {
    /// Lifetime metrics.
    pub report: PoolReport,
    /// Jobs still queued at finalize (only possible if workers stopped
    /// before draining); the caller owes each a typed rejection.
    pub leftovers: Vec<(TenantId, Vec<J>)>,
    /// The pinned master of a [`TenantPool::single`] pool, journal sealed.
    pub pinned: Option<Master>,
    /// The highest tenant epoch at finalize (the pinned tenant's, for a
    /// single-tenant pool).
    pub final_epoch: u64,
}

enum GatePlan {
    Wait(Arc<Gate>),
    Open(Arc<Gate>),
}

/// The pool itself, generic over the queued job type `J` (the serving
/// layer queues its write jobs; the pool never looks inside them).
pub struct TenantPool<J> {
    registry: Option<TenantRegistry>,
    config: PoolConfig,
    inner: Mutex<PoolInner<J>>,
    dispatch_tx: Mutex<Option<mpsc::Sender<Arc<Tenant<J>>>>>,
    dispatch_rx: Mutex<mpsc::Receiver<Arc<Tenant<J>>>>,
    stats: PoolStats,
    /// Shared epoch-keyed read cache (`None` when `cache_budget == 0`).
    /// One instance spans every tenant; a tenant's entries are purged when
    /// the tenant is evicted, and its epoch publications are recorded here
    /// so stale generations can be swept lazily.
    read_cache: Option<Arc<ReadCache>>,
}

impl<J> fmt::Debug for TenantPool<J> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let snapshot = self.snapshot_stats();
        f.debug_struct("TenantPool")
            .field("registry", &self.registry)
            .field("config", &self.config)
            .field("resident", &snapshot.resident_tenants)
            .field("resident_bytes", &snapshot.resident_bytes)
            .finish_non_exhaustive()
    }
}

impl<J> TenantPool<J> {
    fn with_parts(registry: Option<TenantRegistry>, config: PoolConfig) -> TenantPool<J> {
        let (tx, rx) = mpsc::channel();
        let read_cache = (config.cache_budget > 0).then(|| {
            Arc::new(ReadCache::new(CacheConfig {
                budget_bytes: config.cache_budget,
                ..CacheConfig::default()
            }))
        });
        TenantPool {
            registry,
            config,
            inner: Mutex::new(PoolInner {
                resident: HashMap::new(),
                opening: HashMap::new(),
                clock: 0,
                resident_bytes: 0,
                closed: false,
            }),
            dispatch_tx: Mutex::new(Some(tx)),
            dispatch_rx: Mutex::new(rx),
            stats: PoolStats::default(),
            read_cache,
        }
    }

    /// A registry-backed pool: tenants are recovered from (and provisioned
    /// under) the registry root on demand.
    pub fn with_registry(registry: TenantRegistry, config: PoolConfig) -> TenantPool<J> {
        TenantPool::with_parts(Some(registry), config)
    }

    /// A single-tenant pool around an existing master, pinned as the
    /// `"default"` tenant: never evicted, handed back by
    /// [`TenantPool::finalize`]. Requests naming any other tenant get
    /// [`TenantError::Unknown`]. This is how the pre-tenancy serving API is
    /// expressed on top of the pool.
    pub fn single(master: Master, config: PoolConfig) -> TenantPool<J> {
        let pool = TenantPool::with_parts(None, config);
        let tenant = Arc::new(Tenant::new(TenantId::default_tenant(), master, true));
        {
            let mut inner = pool.inner.lock().expect("pool lock poisoned");
            inner.resident_bytes = tenant.cost();
            inner.resident.insert(tenant.id.clone(), tenant);
        }
        pool.track_maxes();
        pool
    }

    /// The registry, if this pool has one.
    pub fn registry(&self) -> Option<&TenantRegistry> {
        self.registry.as_ref()
    }

    /// The pool configuration.
    pub fn config(&self) -> &PoolConfig {
        &self.config
    }

    /// The shared read cache, when caching is enabled.
    pub fn read_cache(&self) -> Option<&Arc<ReadCache>> {
        self.read_cache.as_ref()
    }

    /// Resolve `name` to a resident tenant: a warm hit just bumps the LRU
    /// clock; a miss recovers the tenant from its journal directory (one
    /// recovery even under a thundering herd), evicting least-recently-used
    /// idle tenants first if the budget demands it.
    pub fn activate(&self, name: &str) -> Result<Arc<Tenant<J>>, TenantError> {
        let id = TenantId::new(name)?;
        loop {
            let plan = {
                let mut inner = self.inner.lock().expect("pool lock poisoned");
                if inner.closed {
                    return Err(TenantError::ShuttingDown);
                }
                inner.clock += 1;
                let clock = inner.clock;
                if let Some(tenant) = inner.resident.get(&id) {
                    tenant.last_used.store(clock, Ordering::Relaxed);
                    self.stats.activations.fetch_add(1, Ordering::Relaxed);
                    return Ok(Arc::clone(tenant));
                }
                match inner.opening.get(&id) {
                    Some(gate) => GatePlan::Wait(Arc::clone(gate)),
                    None => {
                        if self.registry.is_none() {
                            return Err(TenantError::Unknown(id.to_string()));
                        }
                        let gate = Arc::new(Gate::default());
                        inner.opening.insert(id.clone(), Arc::clone(&gate));
                        GatePlan::Open(gate)
                    }
                }
            };
            match plan {
                GatePlan::Wait(gate) => gate.wait(), // then re-check the map
                GatePlan::Open(gate) => {
                    // Make room first so the cold open doesn't overshoot.
                    self.evict_to_fit(Some(&id));
                    let opened = self.open_cold(&id);
                    let result = {
                        let mut inner = self.inner.lock().expect("pool lock poisoned");
                        inner.opening.remove(&id);
                        match opened {
                            Ok(tenant) if inner.closed => {
                                drop(inner);
                                self.drain_evicted(&tenant);
                                Err(TenantError::ShuttingDown)
                            }
                            Ok(tenant) => {
                                inner.clock += 1;
                                tenant.last_used.store(inner.clock, Ordering::Relaxed);
                                inner.resident_bytes += tenant.cost();
                                inner.resident.insert(id.clone(), Arc::clone(&tenant));
                                self.stats.activations.fetch_add(1, Ordering::Relaxed);
                                Ok(tenant)
                            }
                            Err(e) => Err(e),
                        }
                    };
                    gate.open();
                    if result.is_ok() {
                        self.track_maxes();
                        // The opened tenant itself may have tipped the pool
                        // over budget.
                        self.evict_to_fit(Some(&id));
                    }
                    return result;
                }
            }
        }
    }

    fn open_cold(&self, id: &TenantId) -> Result<Arc<Tenant<J>>, TenantError> {
        let registry = self.registry.as_ref().expect("cold open without registry");
        let dir = registry.dir(id);
        if !dir.is_dir() {
            if !self.config.create_missing {
                return Err(TenantError::Unknown(id.to_string()));
            }
            std::fs::create_dir_all(&dir).map_err(TenantError::Io)?;
        }
        let started = Instant::now();
        let opened = match &self.config.journal_io {
            Some(io) => Semex::open_durable_io(
                &dir,
                self.config.semex.clone(),
                self.config.journal.clone(),
                Arc::clone(io),
            ),
            None => Semex::open_durable_with(
                &dir,
                self.config.semex.clone(),
                self.config.journal.clone(),
            ),
        };
        let (durable, _recovery) = opened.map_err(TenantError::Journal)?;
        let tenant = Arc::new(Tenant::new(id.clone(), Master::Durable(durable), false));
        self.stats.cold_opens.fetch_add(1, Ordering::Relaxed);
        self.stats
            .cold_open_us
            .lock()
            .expect("stats lock poisoned")
            .push(started.elapsed().as_micros() as u64);
        Ok(tenant)
    }

    /// Evict least-recently-used idle tenants until the pool fits its
    /// budget (or nothing evictable remains — pinned, in-service, queued-up
    /// and just-activated tenants are never victims, so the budget is a
    /// target, not a hard clamp).
    fn evict_to_fit(&self, exclude: Option<&TenantId>) {
        loop {
            let victim = {
                let mut inner = self.inner.lock().expect("pool lock poisoned");
                if inner.resident_bytes <= self.config.memory_budget {
                    return;
                }
                let mut best: Option<Arc<Tenant<J>>> = None;
                let mut best_used = u64::MAX;
                for tenant in inner.resident.values() {
                    if tenant.pinned || Some(&tenant.id) == exclude {
                        continue;
                    }
                    let used = tenant.last_used.load(Ordering::Relaxed);
                    if used >= best_used {
                        continue;
                    }
                    let queue = tenant.queue.lock().expect("queue lock poisoned");
                    if queue.in_service || !queue.jobs.is_empty() {
                        continue;
                    }
                    drop(queue);
                    best_used = used;
                    best = Some(Arc::clone(tenant));
                }
                let Some(victim) = best else { return };
                {
                    // Re-check under the queue lock and retire atomically:
                    // after this, enqueue refuses with `Retired` and the
                    // tenant can never pick up new work.
                    let mut queue = victim.queue.lock().expect("queue lock poisoned");
                    if queue.in_service || !queue.jobs.is_empty() {
                        continue; // became busy since the scan; rescan
                    }
                    queue.retired = true;
                }
                inner.resident.remove(&victim.id);
                inner.resident_bytes = inner.resident_bytes.saturating_sub(victim.cost());
                victim
            };
            self.drain_evicted(&victim);
            self.stats.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Drain an evicted tenant: flush batched index events and commit
    /// (usually a no-op — every acked batch already committed), publish the
    /// sealed state for any reader still holding the tenant, and drop the
    /// master. A degraded master's commit fails; its un-durable backlog is
    /// dropped with it, exactly the degraded-mode contract (those mutations
    /// were answered "applied but not durable").
    fn drain_evicted(&self, tenant: &Tenant<J>) {
        let mut guard = tenant.master.lock().expect("master lock poisoned");
        if let Some(master) = guard.as_mut() {
            if let Ok(n) = master.commit() {
                if n > 0 {
                    tenant.engine.publish_advance(master.snapshot(), n as u64);
                }
            }
        }
        *guard = None;
        drop(guard);
        // The tenant's cached results go with it: reactivation starts
        // cold. (Entries are epoch-keyed and thus never *wrong* to keep,
        // but an evicted tenant should not hold cache budget hostage.)
        if let Some(cache) = &self.read_cache {
            cache.purge_tenant(tenant.id.as_str());
        }
    }

    /// Take one slot of the tenant's inflight budget, or `None` when the
    /// tenant is at its cap (the request should be shed with a typed
    /// `overloaded` answer). Drop the permit when the request finishes.
    pub fn admit(&self, tenant: &Arc<Tenant<J>>) -> Option<InflightPermit<J>> {
        let cap = self.config.max_inflight.max(1);
        let prev = tenant.inflight.fetch_add(1, Ordering::Relaxed);
        if prev >= cap {
            tenant.inflight.fetch_sub(1, Ordering::Relaxed);
            self.stats.shed_inflight.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        Some(InflightPermit {
            tenant: Arc::clone(tenant),
        })
    }

    /// Queue a job on a tenant and make sure a pool worker will service it.
    /// The queue is bounded ([`PoolConfig::queue_depth`]); a full queue
    /// sheds the job back to the caller.
    pub fn enqueue(&self, tenant: &Arc<Tenant<J>>, job: J) -> Result<(), EnqueueError<J>> {
        let dispatch = {
            let mut queue = tenant.queue.lock().expect("queue lock poisoned");
            if queue.retired {
                return Err(EnqueueError::Retired(job));
            }
            if queue.jobs.len() >= self.config.queue_depth.max(1) {
                return Err(EnqueueError::Full(job));
            }
            queue.jobs.push_back(job);
            if queue.in_service {
                false
            } else {
                queue.in_service = true;
                true
            }
        };
        if dispatch && !self.send_dispatch(Arc::clone(tenant)) {
            // The dispatch channel is closed: the pool is shutting down and
            // no worker will ever service this queue again. Undo the
            // enqueue so the caller can answer the client. (Shutdown closes
            // the channel only after request intake stops, so the job we
            // pop is the one we pushed.)
            let mut queue = tenant.queue.lock().expect("queue lock poisoned");
            queue.in_service = false;
            let job = queue.jobs.pop_back().expect("job pushed above");
            return Err(EnqueueError::ShuttingDown(job));
        }
        Ok(())
    }

    fn send_dispatch(&self, tenant: Arc<Tenant<J>>) -> bool {
        match &*self.dispatch_tx.lock().expect("dispatch lock poisoned") {
            Some(tx) => tx.send(tenant).is_ok(),
            None => false,
        }
    }

    /// Block until a tenant needs servicing; `None` when the pool has
    /// closed and every pending dispatch is drained (the worker should
    /// exit). Pool workers loop over this.
    pub fn next_dispatch(&self) -> Option<Arc<Tenant<J>>> {
        let rx = self.dispatch_rx.lock().ok()?;
        rx.recv().ok()
    }

    /// Service one dispatched tenant: drain up to [`PoolConfig::max_batch`]
    /// queued jobs and hand them — with exclusive access to the tenant's
    /// [`Master`] and its [`SnapshotEngine`] — to `f`. Afterwards the
    /// tenant's cost accounting is refreshed, the tenant is re-dispatched
    /// if more jobs arrived meanwhile, and the pool is re-fit to its
    /// budget.
    pub fn service<F>(&self, tenant: &Arc<Tenant<J>>, f: F)
    where
        F: FnOnce(&mut Master, &SnapshotEngine, Vec<J>),
    {
        let mut guard = tenant.master.lock().expect("master lock poisoned");
        let batch: Vec<J> = {
            let mut queue = tenant.queue.lock().expect("queue lock poisoned");
            let take = queue.jobs.len().min(self.config.max_batch.max(1));
            queue.jobs.drain(..take).collect()
        };
        if let Some(master) = guard.as_mut() {
            if !batch.is_empty() {
                f(master, &tenant.engine, batch);
            }
            let cost = resident_cost(master.semex());
            self.update_cost(tenant, cost);
        }
        drop(guard);
        let redispatch = {
            let mut queue = tenant.queue.lock().expect("queue lock poisoned");
            if queue.jobs.is_empty() {
                queue.in_service = false;
                false
            } else {
                true // keep in_service: this tenant goes around again
            }
        };
        if redispatch && !self.send_dispatch(Arc::clone(tenant)) {
            tenant.queue.lock().expect("queue lock poisoned").in_service = false;
            // closing; finalize rejects leftovers
        }
        self.evict_to_fit(Some(&tenant.id));
        self.track_maxes();
    }

    fn update_cost(&self, tenant: &Tenant<J>, new_cost: usize) {
        let mut inner = self.inner.lock().expect("pool lock poisoned");
        let old = tenant.cost.swap(new_cost, Ordering::Relaxed);
        if inner.resident.contains_key(&tenant.id) {
            inner.resident_bytes = inner.resident_bytes.saturating_sub(old) + new_cost;
        }
    }

    fn track_maxes(&self) {
        let (tenants, bytes) = {
            let inner = self.inner.lock().expect("pool lock poisoned");
            (inner.resident.len(), inner.resident_bytes)
        };
        self.stats
            .max_resident_tenants
            .fetch_max(tenants, Ordering::Relaxed);
        self.stats
            .max_resident_bytes
            .fetch_max(bytes, Ordering::Relaxed);
    }

    /// The current epoch of `name`, if it is resident.
    pub fn epoch_of(&self, name: &str) -> Option<u64> {
        let id = TenantId::new(name).ok()?;
        let inner = self.inner.lock().expect("pool lock poisoned");
        inner.resident.get(&id).map(|t| t.engine.epoch())
    }

    /// Forcibly evict `name` now (operational hook; also what the eviction
    /// tests use). Returns `false` when the tenant is not resident, pinned,
    /// or currently busy (in service or with queued jobs).
    pub fn evict_now(&self, name: &str) -> bool {
        let Ok(id) = TenantId::new(name) else {
            return false;
        };
        let victim = {
            let mut inner = self.inner.lock().expect("pool lock poisoned");
            let Some(tenant) = inner.resident.get(&id) else {
                return false;
            };
            if tenant.pinned {
                return false;
            }
            {
                let mut queue = tenant.queue.lock().expect("queue lock poisoned");
                if queue.in_service || !queue.jobs.is_empty() {
                    return false;
                }
                queue.retired = true;
            }
            let tenant = inner.resident.remove(&id).expect("checked above");
            inner.resident_bytes = inner.resident_bytes.saturating_sub(tenant.cost());
            tenant
        };
        self.drain_evicted(&victim);
        self.stats.evictions.fetch_add(1, Ordering::Relaxed);
        true
    }

    /// Live metrics (cheap; safe to poll).
    pub fn snapshot_stats(&self) -> PoolSnapshot {
        let (resident_tenants, resident_bytes) = {
            let inner = self.inner.lock().expect("pool lock poisoned");
            (inner.resident.len(), inner.resident_bytes)
        };
        PoolSnapshot {
            resident_tenants,
            resident_bytes,
            memory_budget: self.config.memory_budget,
            activations: self.stats.activations.load(Ordering::Relaxed),
            cold_opens: self.stats.cold_opens.load(Ordering::Relaxed),
            evictions: self.stats.evictions.load(Ordering::Relaxed),
            shed_inflight: self.stats.shed_inflight.load(Ordering::Relaxed),
        }
    }

    /// Stop accepting activations and dispatches: the dispatch channel
    /// closes, so pool workers drain what is already queued and then see
    /// `None` from [`TenantPool::next_dispatch`]. Idempotent;
    /// [`TenantPool::finalize`] calls it.
    pub fn close(&self) {
        self.dispatch_tx
            .lock()
            .expect("dispatch lock poisoned")
            .take();
        self.inner.lock().expect("pool lock poisoned").closed = true;
    }

    /// Seal every resident tenant (leave index batching, commit, drop) and
    /// return the lifetime report, any jobs left unserviced, and the pinned
    /// master of a single-tenant pool. Call after the pool workers have
    /// exited.
    pub fn finalize(&self) -> PoolFinal<J> {
        self.close();
        let tenants: Vec<Arc<Tenant<J>>> = {
            let mut inner = self.inner.lock().expect("pool lock poisoned");
            inner.resident_bytes = 0;
            inner.resident.drain().map(|(_, t)| t).collect()
        };
        let resident_at_close = tenants.len();
        let mut leftovers = Vec::new();
        let mut pinned = None;
        let mut final_epoch = 0u64;
        for tenant in tenants {
            {
                let mut queue = tenant.queue.lock().expect("queue lock poisoned");
                queue.retired = true;
                let jobs: Vec<J> = queue.jobs.drain(..).collect();
                if !jobs.is_empty() {
                    leftovers.push((tenant.id.clone(), jobs));
                }
            }
            let mut guard = tenant.master.lock().expect("master lock poisoned");
            if let Some(mut master) = guard.take() {
                // Leaving batching mode is an implicit final flush; the
                // commit seals the journal at exactly the acked state.
                master.semex_mut().set_index_batching(false);
                let _ = master.commit();
                final_epoch = final_epoch.max(tenant.engine.epoch());
                if tenant.pinned {
                    pinned = Some(master);
                }
            }
        }
        let report = PoolReport {
            activations: self.stats.activations.load(Ordering::Relaxed),
            cold_opens: self.stats.cold_opens.load(Ordering::Relaxed),
            evictions: self.stats.evictions.load(Ordering::Relaxed),
            shed_inflight: self.stats.shed_inflight.load(Ordering::Relaxed),
            max_resident_tenants: self.stats.max_resident_tenants.load(Ordering::Relaxed),
            max_resident_bytes: self.stats.max_resident_bytes.load(Ordering::Relaxed),
            resident_at_close,
            cold_open_us: std::mem::take(
                &mut *self.stats.cold_open_us.lock().expect("stats lock poisoned"),
            ),
        };
        PoolFinal {
            report,
            leftovers,
            pinned,
            final_epoch,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use semex_core::SourceSpec;

    fn temp_root(tag: &str) -> std::path::PathBuf {
        let root = std::env::temp_dir().join(format!("semex-pool-{tag}-{}", std::process::id()));
        std::fs::remove_dir_all(&root).ok();
        root
    }

    fn fast_journal() -> JournalConfig {
        JournalConfig {
            fsync: false,
            ..JournalConfig::default()
        }
    }

    fn seed(pool: &TenantPool<()>, name: &str, token: &str) {
        let tenant = pool.activate(name).unwrap();
        let mut guard = tenant.master.lock().unwrap();
        let master = guard.as_mut().unwrap();
        master
            .semex_mut()
            .ingest(SourceSpec::Mbox {
                name: "inbox".into(),
                content: format!("From: {token}@example.com\nSubject: {token}\n\nbody"),
            })
            .unwrap();
        let n = master.commit().unwrap();
        tenant.engine.publish_advance(master.snapshot(), n as u64);
        drop(guard);
        pool.update_cost(
            &tenant,
            resident_cost(tenant.master.lock().unwrap().as_ref().unwrap().semex()),
        );
    }

    #[test]
    fn activation_is_lazy_and_lru_eviction_respects_budget() {
        let root = temp_root("lru");
        let registry = TenantRegistry::open(&root).unwrap();
        let pool: TenantPool<()> = TenantPool::with_registry(
            registry,
            PoolConfig {
                journal: fast_journal(),
                ..PoolConfig::default()
            },
        );
        for (name, token) in [
            ("alice", "apples"),
            ("bob", "bananas"),
            ("carol", "cherries"),
        ] {
            seed(&pool, name, token);
        }
        assert_eq!(pool.snapshot_stats().resident_tenants, 3);
        assert_eq!(pool.snapshot_stats().cold_opens, 3);

        // Shrink the budget to roughly one tenant and touch alice last:
        // re-fitting must evict the least-recently-used tenants, not her.
        let one = pool.activate("alice").unwrap().cost();
        let pool = TenantPool::<()> {
            config: PoolConfig {
                memory_budget: one + one / 2,
                journal: fast_journal(),
                ..PoolConfig::default()
            },
            ..pool
        };
        pool.activate("bob").unwrap();
        pool.activate("carol").unwrap();
        pool.activate("alice").unwrap();
        pool.evict_to_fit(None);
        let stats = pool.snapshot_stats();
        assert!(stats.evictions >= 2, "evictions: {}", stats.evictions);
        assert!(stats.resident_bytes <= pool.config.memory_budget);
        // Alice (most recently used) survived.
        assert!(pool.epoch_of("alice").is_some());

        // Evicted tenants come back from their journals with identical
        // state and epochs.
        let (bob_epoch_before, bob_hits_before) = {
            let t = pool.activate("bob").unwrap();
            let snap = t.engine().load();
            let hits = snap.snap.search("bananas", 10);
            assert!(!hits.is_empty(), "seeded token must be searchable");
            (snap.epoch, hits)
        };
        assert!(pool.evict_now("bob"));
        let t = pool.activate("bob").unwrap();
        let snap = t.engine().load();
        assert_eq!(snap.epoch, bob_epoch_before, "epochs survive eviction");
        assert_eq!(
            snap.snap.search("bananas", 10),
            bob_hits_before,
            "results survive eviction"
        );
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn single_pool_pins_and_returns_the_master() {
        let semex = semex_core::SemexBuilder::new()
            .add_mbox("inbox", "From: a@b.c\nSubject: pinned\n\nhello")
            .build()
            .unwrap();
        let pool: TenantPool<()> =
            TenantPool::single(Master::Ephemeral(semex), PoolConfig::default());
        let tenant = pool.activate(TenantId::DEFAULT).unwrap();
        assert_eq!(tenant.engine().load().snap.search("pinned", 3).len(), 1);
        assert!(matches!(
            pool.activate("other"),
            Err(TenantError::Unknown(_))
        ));
        assert!(
            !pool.evict_now(TenantId::DEFAULT),
            "pinned is not evictable"
        );
        let fin = pool.finalize();
        assert!(fin.pinned.is_some(), "the pinned master is handed back");
        assert!(matches!(
            pool.activate(TenantId::DEFAULT),
            Err(TenantError::ShuttingDown)
        ));
    }

    #[test]
    fn enqueue_bounds_and_retired_signalling() {
        let root = temp_root("queue");
        let registry = TenantRegistry::open(&root).unwrap();
        let pool: TenantPool<u32> = TenantPool::with_registry(
            registry,
            PoolConfig {
                queue_depth: 2,
                journal: fast_journal(),
                ..PoolConfig::default()
            },
        );
        let tenant = pool.activate("dave").unwrap();
        pool.enqueue(&tenant, 1).unwrap();
        pool.enqueue(&tenant, 2).unwrap();
        assert!(matches!(
            pool.enqueue(&tenant, 3),
            Err(EnqueueError::Full(3))
        ));
        // Busy tenants are not evictable.
        assert!(!pool.evict_now("dave"));
        // A worker drains the queue; then eviction works and enqueue on the
        // stale handle reports Retired.
        let dispatched = pool.next_dispatch().unwrap();
        assert_eq!(dispatched.id().as_str(), "dave");
        pool.service(&dispatched, |_master, _engine, batch| {
            assert_eq!(batch, vec![1, 2]);
        });
        assert!(pool.evict_now("dave"));
        assert!(matches!(
            pool.enqueue(&tenant, 4),
            Err(EnqueueError::Retired(4))
        ));
        std::fs::remove_dir_all(&root).ok();
    }
}
