/root/repo/target/debug/deps/roundtrip-d44627e17cc08a4a.d: crates/extract/tests/roundtrip.rs

/root/repo/target/debug/deps/libroundtrip-d44627e17cc08a4a.rmeta: crates/extract/tests/roundtrip.rs

crates/extract/tests/roundtrip.rs:
