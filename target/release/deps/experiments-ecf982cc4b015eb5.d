/root/repo/target/release/deps/experiments-ecf982cc4b015eb5.d: crates/bench/src/bin/experiments.rs

/root/repo/target/release/deps/experiments-ecf982cc4b015eb5: crates/bench/src/bin/experiments.rs

crates/bench/src/bin/experiments.rs:
