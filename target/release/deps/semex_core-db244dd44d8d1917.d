/root/repo/target/release/deps/semex_core-db244dd44d8d1917.d: crates/core/src/lib.rs crates/core/src/facade.rs crates/core/src/pipeline.rs

/root/repo/target/release/deps/libsemex_core-db244dd44d8d1917.rlib: crates/core/src/lib.rs crates/core/src/facade.rs crates/core/src/pipeline.rs

/root/repo/target/release/deps/libsemex_core-db244dd44d8d1917.rmeta: crates/core/src/lib.rs crates/core/src/facade.rs crates/core/src/pipeline.rs

crates/core/src/lib.rs:
crates/core/src/facade.rs:
crates/core/src/pipeline.rs:
