//! Dual-read equivalence: a space served from a binary snapshot (and its
//! index sidecar) must answer every query byte-identically to the same
//! space served from the JSON heap path, across commits, reopens, and
//! compactions — and the epochs must march in lockstep.

use semex::core::SourceSpec;
use semex::corpus::{generate_personal, CorpusConfig};
use semex::{JournalConfig, Semex, SemexBuilder, SemexConfig, SnapshotFormat};
use std::path::{Path, PathBuf};

fn scratch(tag: &str) -> PathBuf {
    // Tests in this binary run concurrently: a pid-keyed path alone would
    // let two tests clobber each other's directories.
    static NEXT: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);
    let n = NEXT.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let p = std::env::temp_dir().join(format!("semex-fmt-equiv-{tag}-{}-{n}", std::process::id()));
    std::fs::remove_dir_all(&p).ok();
    p
}

fn config(format: SnapshotFormat) -> JournalConfig {
    JournalConfig {
        fsync: false,
        snapshot_format: format,
        ..JournalConfig::default()
    }
}

/// Render the corpus exactly once per process: extraction records absolute
/// paths and file mtimes, so twins must be built from the *same* rendered
/// tree to be byte-identical.
fn corpus_dir() -> &'static Path {
    static DIR: std::sync::OnceLock<PathBuf> = std::sync::OnceLock::new();
    DIR.get_or_init(|| {
        let p = std::env::temp_dir().join(format!("semex-fmt-equiv-corpus-{}", std::process::id()));
        std::fs::remove_dir_all(&p).ok();
        generate_personal(&CorpusConfig::tiny(2005))
            .write_to(&p)
            .unwrap();
        p
    })
}

fn built() -> Semex {
    SemexBuilder::new()
        .add_directory("demo", corpus_dir())
        .build()
        .unwrap()
}

const QUERIES: [&str; 6] = [
    "garcia",
    "class:Person data",
    "class:Publication integration",
    "semex personal information",
    "class:Message meeting",
    "nothingmatchesthis",
];

/// Full-precision rendering: hits must be *byte*-identical, scores included.
fn results(semex: &Semex, query: &str) -> Vec<String> {
    semex
        .search(query, 10)
        .into_iter()
        .map(|h| format!("{}|{}|{}|{}", h.object.0, h.label, h.class, h.score))
        .collect()
}

fn assert_equiv(a: &Semex, b: &Semex, at: &str) {
    for q in QUERIES {
        assert_eq!(results(a, q), results(b, q), "{at}: query {q:?}");
    }
    assert_eq!(
        a.store().to_json().unwrap(),
        b.store().to_json().unwrap(),
        "{at}: store state"
    );
}

fn sidecar_files(dir: &Path) -> Vec<String> {
    let mut v: Vec<String> = std::fs::read_dir(dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .filter_map(|e| e.file_name().to_str().map(str::to_owned))
        .filter(|n| n.starts_with("index-") && n.ends_with(".idx"))
        .collect();
    v.sort();
    v
}

#[test]
fn binary_and_json_twins_stay_byte_identical() {
    let json_dir = scratch("twin-json");
    let bin_dir = scratch("twin-bin");
    let semex = built();
    let twin = built();

    // Seed twin journals, one per format.
    let d_json = semex
        .into_durable(&json_dir, config(SnapshotFormat::Json))
        .unwrap();
    let d_bin = twin
        .into_durable(&bin_dir, config(SnapshotFormat::Binary))
        .unwrap();
    assert_eq!(d_json.journal().epoch(), d_bin.journal().epoch());
    assert_equiv(&d_json, &d_bin, "after init");
    assert_eq!(
        sidecar_files(&bin_dir),
        vec!["index-0000000000.idx".to_string()],
        "binary init writes the index sidecar"
    );
    assert!(
        sidecar_files(&json_dir).is_empty(),
        "the JSON path has no sidecar"
    );
    drop(d_json);
    drop(d_bin);

    // Cold reopen: JSON recovers via the heap decode + index rebuild;
    // binary maps the snapshot and restores the sidecar. Same answers.
    let (mut d_json, r1) = Semex::open_durable_with(
        &json_dir,
        SemexConfig::default(),
        config(SnapshotFormat::Json),
    )
    .unwrap();
    let (mut d_bin, r2) = Semex::open_durable_with(
        &bin_dir,
        SemexConfig::default(),
        config(SnapshotFormat::Binary),
    )
    .unwrap();
    assert_eq!(r1.epoch, r2.epoch);
    assert_equiv(&d_json, &d_bin, "after cold reopen");

    // Identical writes on both twins, committed.
    let vcf = "BEGIN:VCARD\nFN:Nova Garcia\nEMAIL:nova@example.edu\nEND:VCARD\n";
    for d in [&mut d_json, &mut d_bin] {
        d.ingest(SourceSpec::Vcard {
            name: "late-contacts".into(),
            content: vcf.into(),
        })
        .unwrap();
        d.commit().unwrap();
    }
    assert_equiv(&d_json, &d_bin, "after identical writes");
    drop(d_json);
    drop(d_bin);

    // Reopen again: binary's sidecar is now *behind* the journal tail, so
    // the restore must fold the replayed events in — still identical.
    let (mut d_json, _) = Semex::open_durable_with(
        &json_dir,
        SemexConfig::default(),
        config(SnapshotFormat::Json),
    )
    .unwrap();
    let (mut d_bin, _) = Semex::open_durable_with(
        &bin_dir,
        SemexConfig::default(),
        config(SnapshotFormat::Binary),
    )
    .unwrap();
    assert_equiv(&d_json, &d_bin, "after reopen with journal tail");

    // Compaction advances the epochs in lockstep and re-stamps the sidecar.
    let c1 = d_json.compact().unwrap();
    let c2 = d_bin.compact().unwrap();
    assert_eq!(c1.epoch, c2.epoch);
    assert_eq!(d_json.journal().epoch(), d_bin.journal().epoch());
    assert_equiv(&d_json, &d_bin, "after compaction");
    assert_eq!(
        sidecar_files(&bin_dir),
        vec![format!("index-{:010}.idx", c2.epoch)],
        "compaction replaces the sidecar"
    );
    drop(d_json);
    drop(d_bin);

    let (d_json, _) = Semex::open_durable_with(
        &json_dir,
        SemexConfig::default(),
        config(SnapshotFormat::Json),
    )
    .unwrap();
    let (d_bin, _) = Semex::open_durable_with(
        &bin_dir,
        SemexConfig::default(),
        config(SnapshotFormat::Binary),
    )
    .unwrap();
    assert_equiv(&d_json, &d_bin, "after post-compaction reopen");

    std::fs::remove_dir_all(&json_dir).ok();
    std::fs::remove_dir_all(&bin_dir).ok();
}

#[test]
fn sidecar_restore_equals_index_rebuild() {
    let dir = scratch("restore-vs-rebuild");
    let semex = built();
    let d = semex
        .into_durable(&dir, config(SnapshotFormat::Binary))
        .unwrap();
    drop(d);

    // Opening the same binary space with the JSON config still reads the
    // binary snapshot but skips the sidecar, forcing a full index rebuild:
    // the restored index must be indistinguishable from the rebuilt one.
    let (restored, _) =
        Semex::open_durable_with(&dir, SemexConfig::default(), config(SnapshotFormat::Binary))
            .unwrap();
    let (rebuilt, _) =
        Semex::open_durable_with(&dir, SemexConfig::default(), config(SnapshotFormat::Json))
            .unwrap();
    assert_equiv(&restored, &rebuilt, "sidecar restore vs rebuild");
    drop(rebuilt);

    // A stale (deleted) sidecar is only advisory: the open falls back to a
    // rebuild and answers identically.
    let side = dir.join("index-0000000000.idx");
    assert!(side.exists());
    std::fs::remove_file(&side).unwrap();
    let (fallback, _) =
        Semex::open_durable_with(&dir, SemexConfig::default(), config(SnapshotFormat::Binary))
            .unwrap();
    assert_equiv(&restored, &fallback, "missing sidecar falls back");

    // A corrupted sidecar must never poison the open either.
    let bytes = {
        let d2 = fallback;
        // The fallback open rebuilt and re-wrote the sidecar; corrupt it.
        drop(d2);
        let mut b = std::fs::read(&side).unwrap();
        let mid = b.len() / 2;
        b[mid] ^= 0xFF;
        b
    };
    std::fs::write(&side, &bytes).unwrap();
    let (corrupted, _) =
        Semex::open_durable_with(&dir, SemexConfig::default(), config(SnapshotFormat::Binary))
            .unwrap();
    assert_equiv(&restored, &corrupted, "corrupt sidecar falls back");

    std::fs::remove_dir_all(&dir).ok();
}
