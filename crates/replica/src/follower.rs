//! The follower side: bootstrap, the pull loop, and promotion.
//!
//! A follower bootstraps by asking the primary for the journal from
//! sequence 0; if the primary compacted past that, the first frame is a
//! snapshot, installed into the follower's (empty) journal directory with
//! [`semex_journal::install_snapshot`] — after which the ordinary
//! recovery path opens it like any other journal. From then on the
//! follower pulls sealed commit batches in lock-step, applies each
//! through its own journal-first write path (an [`ApplySink`]), and acks
//! its new durable head. Disconnects are retried with capped, jittered
//! exponential backoff; a typed [`ReplicaFrame::Diverged`] is fatal.
//!
//! Promotion is a wait-for-durable-prefix handshake: stop the pull loop,
//! finish applying the frame already in flight, and only then start
//! accepting writes — so every batch the old primary shipped (and
//! therefore every write it acked synchronously) is in the new primary.

use semex_serve::protocol::{
    read_replica_frame, write_replica_request, FrameError, ReplicaFrame, ReplicaRequest,
};
use semex_serve::{ReplicaRole, ReplicationSink};
use semex_store::Store;
use std::io;
use std::net::{SocketAddr, TcpStream};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, SystemTime, UNIX_EPOCH};

/// Where a replicated batch lands on the follower. The serve stack's
/// implementation is [`ServeSink`]; tests drive a bare
/// [`semex_core::DurableSemex`] directly.
pub trait ApplySink: Send + Sync {
    /// The follower's durable head (next expected sequence).
    fn head(&self) -> u64;
    /// Apply one batch starting at `start_seq`; returns the new durable
    /// head. Must refuse a batch that does not continue the journal.
    fn apply(&self, start_seq: u64, events_json: Vec<String>) -> Result<u64, String>;
    /// Install a snapshot image mid-stream. Only meaningful for sinks
    /// whose journal is empty; the default refuses.
    fn install(&self, base_seq: u64, store_json: &str) -> Result<(), String> {
        let _ = (base_seq, store_json);
        Err("this follower cannot install a snapshot mid-stream".into())
    }
}

/// The serve-stack sink: batches go through the pool's serialized write
/// path, so replicated applies and reads coexist under the usual
/// snapshot-isolation rules.
#[derive(Debug, Clone)]
pub struct ServeSink {
    sink: ReplicationSink,
    tenant: String,
}

impl ServeSink {
    /// A sink applying to `tenant` through `sink`.
    pub fn new(sink: ReplicationSink, tenant: impl Into<String>) -> ServeSink {
        ServeSink {
            sink,
            tenant: tenant.into(),
        }
    }
}

impl ApplySink for ServeSink {
    fn head(&self) -> u64 {
        self.sink.epoch_of(&self.tenant).unwrap_or(0)
    }

    fn apply(&self, start_seq: u64, events_json: Vec<String>) -> Result<u64, String> {
        self.sink.apply(&self.tenant, start_seq, events_json)
    }
}

/// Reconnect policy for the pull loop: capped exponential backoff with
/// jitter, and a bound on consecutive failed connects.
#[derive(Debug, Clone)]
pub struct PullBackoff {
    /// Backoff before the first reconnect.
    pub base: Duration,
    /// Upper bound on any single backoff sleep.
    pub cap: Duration,
    /// Consecutive failed connects before the puller gives up (`None`
    /// retries forever — the production default; a follower outliving its
    /// primary is exactly the failover scenario).
    pub max_retries: Option<u32>,
}

impl Default for PullBackoff {
    fn default() -> PullBackoff {
        PullBackoff {
            base: Duration::from_millis(10),
            cap: Duration::from_secs(2),
            max_retries: None,
        }
    }
}

impl PullBackoff {
    /// The jittered sleep before retry `attempt` (0-based): a uniform-ish
    /// draw from the upper half of the capped exponential delay, the same
    /// no-RNG spread the serve client uses.
    fn delay(&self, attempt: u32) -> Duration {
        let exp = self.base.saturating_mul(1u32 << attempt.min(16));
        let delay = exp.min(self.cap);
        let nanos = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.subsec_nanos())
            .unwrap_or(0) as u64;
        let half = delay.as_nanos().max(2) as u64 / 2;
        Duration::from_nanos(half + nanos % half)
    }
}

/// How often the blocking frame read times out to poll the stop flag —
/// the bound on how long promotion waits for an idle stream.
const POLL_TIMEOUT: Duration = Duration::from_millis(100);

/// A running pull loop. Stop it with [`Puller::stop`] (graceful drain) or
/// promote through [`Puller::into_promote_hook`].
pub struct Puller {
    stop: Arc<AtomicBool>,
    sink: Arc<dyn ApplySink>,
    thread: Option<JoinHandle<Result<(), String>>>,
}

impl std::fmt::Debug for Puller {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Puller")
            .field("stopped", &self.stop.load(Ordering::SeqCst))
            .finish_non_exhaustive()
    }
}

impl Puller {
    /// Start pulling from `primary` into `sink`, identifying as `name`.
    /// When `role` is given, every batch's announced head updates it (so
    /// the serving read path can enforce its lag bound).
    pub fn start(
        primary: SocketAddr,
        name: impl Into<String>,
        sink: Arc<dyn ApplySink>,
        role: Option<Arc<ReplicaRole>>,
        backoff: PullBackoff,
    ) -> io::Result<Puller> {
        let stop = Arc::new(AtomicBool::new(false));
        let thread_stop = Arc::clone(&stop);
        let thread_sink = Arc::clone(&sink);
        let name = name.into();
        let thread = std::thread::Builder::new()
            .name("semex-replica-puller".into())
            .spawn(move || {
                pull_loop(
                    primary,
                    &name,
                    &thread_sink,
                    role.as_deref(),
                    &backoff,
                    &thread_stop,
                )
            })?;
        Ok(Puller {
            stop,
            sink,
            thread: Some(thread),
        })
    }

    /// Signal the pull loop to stop after the frame currently in flight.
    pub fn stop(&self) {
        self.stop.store(true, Ordering::SeqCst);
    }

    /// Stop and join; the follower's final durable head, plus the loop's
    /// verdict (an `Err` is a divergence or local apply failure — the
    /// stream was already dead when the join happened).
    pub fn join(mut self) -> (u64, Result<(), String>) {
        self.stop();
        let verdict = match self.thread.take() {
            Some(thread) => thread
                .join()
                .unwrap_or_else(|_| Err("pull loop panicked".into())),
            None => Ok(()),
        };
        (self.sink.head(), verdict)
    }

    /// Package this puller as a [`ReplicaRole`] promotion hook: stop
    /// pulling, finish the in-flight frame, answer the final durable
    /// head. Install it with [`ReplicaRole::set_promote_hook`].
    pub fn into_promote_hook(self) -> Box<dyn FnOnce() -> u64 + Send> {
        Box::new(move || self.join().0)
    }
}

impl Drop for Puller {
    fn drop(&mut self) {
        self.stop();
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

fn pull_loop(
    primary: SocketAddr,
    name: &str,
    sink: &Arc<dyn ApplySink>,
    role: Option<&ReplicaRole>,
    backoff: &PullBackoff,
    stop: &AtomicBool,
) -> Result<(), String> {
    let mut attempt = 0u32;
    while !stop.load(Ordering::SeqCst) {
        let stream = match connect(primary) {
            Ok(stream) => stream,
            Err(e) => {
                if let Some(max) = backoff.max_retries {
                    if attempt >= max {
                        return Err(format!("primary unreachable after {attempt} retries: {e}"));
                    }
                }
                interruptible_sleep(backoff.delay(attempt), stop);
                attempt = attempt.saturating_add(1);
                continue;
            }
        };
        attempt = 0;
        match pull_stream(stream, name, sink, role, stop) {
            StreamEnd::Fatal(e) => return Err(e),
            StreamEnd::Reconnect => {
                interruptible_sleep(backoff.delay(attempt), stop);
                attempt = attempt.saturating_add(1);
            }
            StreamEnd::Stopped => break,
        }
    }
    Ok(())
}

/// Why one connection's pull ended.
enum StreamEnd {
    /// Transient: disconnect, drain, timeout churn — reconnect.
    Reconnect,
    /// The stop flag: promotion or shutdown.
    Stopped,
    /// Divergence or a local apply failure; retrying cannot help.
    Fatal(String),
}

fn connect(primary: SocketAddr) -> io::Result<TcpStream> {
    let stream = TcpStream::connect_timeout(&primary, Duration::from_secs(5))?;
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(POLL_TIMEOUT))?;
    stream.set_write_timeout(Some(Duration::from_secs(30)))?;
    Ok(stream)
}

fn interruptible_sleep(total: Duration, stop: &AtomicBool) {
    let start = std::time::Instant::now();
    while start.elapsed() < total && !stop.load(Ordering::SeqCst) {
        std::thread::sleep(Duration::from_millis(5).min(total));
    }
}

fn pull_stream(
    mut stream: TcpStream,
    name: &str,
    sink: &Arc<dyn ApplySink>,
    role: Option<&ReplicaRole>,
    stop: &AtomicBool,
) -> StreamEnd {
    let hello = ReplicaRequest::Hello {
        follower: name.to_string(),
        have_seq: sink.head(),
        // By the time the pull loop runs, the follower holds a journal
        // (bootstrap installed one, or the directory already had state).
        fresh: false,
    };
    if write_replica_request(&mut stream, &hello).is_err() {
        return StreamEnd::Reconnect;
    }
    loop {
        if stop.load(Ordering::SeqCst) {
            return StreamEnd::Stopped;
        }
        let frame = match read_replica_frame(&mut stream) {
            Ok(Some(frame)) => frame,
            Ok(None) => return StreamEnd::Reconnect, // primary hung up
            Err(FrameError::Io(e)) if is_poll_timeout(&e) => continue,
            Err(_) => return StreamEnd::Reconnect,
        };
        match frame {
            ReplicaFrame::Snapshot {
                base_seq,
                store_json,
            } => {
                if let Err(e) = sink.install(base_seq, &store_json) {
                    return StreamEnd::Fatal(format!(
                        "primary shipped a snapshot at {base_seq} this follower cannot \
                         take: {e}"
                    ));
                }
            }
            ReplicaFrame::Batch {
                start_seq,
                head,
                events_json,
            } => {
                if let Some(role) = role {
                    role.note_primary_head(head);
                }
                let seq = match sink.apply(start_seq, events_json) {
                    Ok(seq) => seq,
                    Err(e) => {
                        if stop.load(Ordering::SeqCst) {
                            // Local shutdown raced the apply; not a
                            // replication failure.
                            return StreamEnd::Stopped;
                        }
                        return StreamEnd::Fatal(e);
                    }
                };
                if write_replica_request(&mut stream, &ReplicaRequest::Ack { seq }).is_err() {
                    return StreamEnd::Reconnect;
                }
            }
            ReplicaFrame::Diverged { reason } => {
                return StreamEnd::Fatal(format!("primary refused this follower: {reason}"))
            }
            ReplicaFrame::End { .. } => return StreamEnd::Reconnect,
        }
    }
}

fn is_poll_timeout(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

/// What [`bootstrap`] found and did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Bootstrap {
    /// The directory already holds a journal; normal pull will catch up
    /// the tail.
    Existing,
    /// The primary's journal still starts at 0; nothing to install.
    FromScratch,
    /// A snapshot image was installed at this base sequence.
    Installed(u64),
}

/// Prepare `dir` to follow `primary`: if the directory holds no journal
/// yet, ask the primary for the stream from 0 and install the snapshot
/// frame, if one arrives, with [`semex_journal::install_snapshot`]. After
/// this, opening `dir` through the ordinary recovery path yields a
/// platform at the primary's compacted base, and the pull loop ships the
/// journal tail on top — snapshot + tail catch-up, same as local
/// recovery.
pub fn bootstrap(primary: SocketAddr, dir: &Path) -> Result<Bootstrap, String> {
    if has_journal(dir) {
        return Ok(Bootstrap::Existing);
    }
    let mut stream = TcpStream::connect_timeout(&primary, Duration::from_secs(5))
        .map_err(|e| format!("cannot reach primary {primary}: {e}"))?;
    // A primary with an empty journal has nothing to send a from-0 hello;
    // a bounded read distinguishes "nothing yet" from a dead primary.
    let _ = stream.set_read_timeout(Some(Duration::from_secs(3)));
    let _ = stream.set_nodelay(true);
    write_replica_request(
        &mut stream,
        &ReplicaRequest::Hello {
            follower: "bootstrap".into(),
            have_seq: 0,
            // No journal here at all — the primary must lead with its
            // base snapshot even if that snapshot sits at sequence 0 (a
            // journal born from a pre-populated store keeps the whole
            // store there, where no batch can reproduce it).
            fresh: true,
        },
    )
    .map_err(|e| format!("bootstrap hello failed: {e}"))?;
    match read_replica_frame(&mut stream) {
        Ok(Some(ReplicaFrame::Snapshot {
            base_seq,
            store_json,
        })) => {
            let store = Store::from_json(&store_json)
                .map_err(|e| format!("primary shipped an undecodable snapshot: {e}"))?;
            semex_journal::install_snapshot(dir, base_seq, &store)
                .map_err(|e| format!("cannot install snapshot at {base_seq}: {e}"))?;
            Ok(Bootstrap::Installed(base_seq))
        }
        Ok(Some(ReplicaFrame::Batch { .. })) => Ok(Bootstrap::FromScratch),
        Ok(Some(ReplicaFrame::End { reason })) => Err(format!("primary is draining: {reason}")),
        Ok(Some(ReplicaFrame::Diverged { reason })) => {
            Err(format!("primary refused bootstrap: {reason}"))
        }
        Ok(None) => Err("primary hung up during bootstrap".into()),
        // Silence means the primary's journal is empty (or still entirely
        // un-compacted and idle): start from scratch, the pull loop will
        // ship whatever appears.
        Err(e) if e.is_timeout() => Ok(Bootstrap::FromScratch),
        Err(e) => Err(format!("bootstrap stream failed: {e}")),
    }
    // The probe connection drops here; the primary cleans it up and the
    // real pull loop reconnects with the installed position.
}

/// Whether `dir` already holds journal state (a snapshot or a segment).
fn has_journal(dir: &Path) -> bool {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return false;
    };
    entries.filter_map(|e| e.ok()).any(|e| {
        let name = e.file_name();
        let name = name.to_string_lossy();
        name.starts_with("wal-") || name.starts_with("snapshot-")
    })
}
