//! CRC-32 (IEEE 802.3, polynomial `0xEDB88320`), hand-rolled so the journal
//! adds no dependencies. Slice-by-8 table-driven: eight bytes per step, so
//! checksumming a multi-megabyte snapshot costs a fraction of a millisecond
//! on the cold-open path instead of dominating it.

/// The reflected IEEE polynomial.
const POLY: u32 = 0xEDB8_8320;

/// Eight 256-entry lookup tables, computed at compile time. `TABLES[0]` is
/// the classic byte-at-a-time table; `TABLES[k]` advances a byte `k` extra
/// positions, letting eight bytes fold in per iteration.
const TABLES: [[u32; 256]; 8] = {
    let mut tables = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        tables[0][i] = crc;
        i += 1;
    }
    let mut k = 1;
    while k < 8 {
        let mut i = 0;
        while i < 256 {
            let prev = tables[k - 1][i];
            tables[k][i] = (prev >> 8) ^ tables[0][(prev & 0xFF) as usize];
            i += 1;
        }
        k += 1;
    }
    tables
};

/// CRC-32 checksum of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    let mut chunks = bytes.chunks_exact(8);
    for c in chunks.by_ref() {
        let lo = u32::from_le_bytes(c[..4].try_into().unwrap()) ^ crc;
        let hi = u32::from_le_bytes(c[4..8].try_into().unwrap());
        crc = TABLES[7][(lo & 0xFF) as usize]
            ^ TABLES[6][((lo >> 8) & 0xFF) as usize]
            ^ TABLES[5][((lo >> 16) & 0xFF) as usize]
            ^ TABLES[4][(lo >> 24) as usize]
            ^ TABLES[3][(hi & 0xFF) as usize]
            ^ TABLES[2][((hi >> 8) & 0xFF) as usize]
            ^ TABLES[1][((hi >> 16) & 0xFF) as usize]
            ^ TABLES[0][(hi >> 24) as usize];
    }
    for &b in chunks.remainder() {
        crc = (crc >> 8) ^ TABLES[0][((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The standard CRC-32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn sensitive_to_single_bit_flips() {
        let base = crc32(b"semex journal record");
        let mut flipped = b"semex journal record".to_vec();
        flipped[7] ^= 0x01;
        assert_ne!(crc32(&flipped), base);
    }

    #[test]
    fn sliced_path_matches_byte_at_a_time() {
        // Cross-check every length 0..64 so the 8-byte fast path and the
        // remainder loop agree with the reference definition.
        let reference = |bytes: &[u8]| -> u32 {
            let mut crc = 0xFFFF_FFFFu32;
            for &b in bytes {
                crc = (crc >> 8) ^ TABLES[0][((crc ^ b as u32) & 0xFF) as usize];
            }
            !crc
        };
        let data: Vec<u8> = (0..64u8)
            .map(|i| i.wrapping_mul(37).wrapping_add(11))
            .collect();
        for len in 0..=data.len() {
            assert_eq!(crc32(&data[..len]), reference(&data[..len]), "len {len}");
        }
    }
}
