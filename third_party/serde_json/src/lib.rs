//! Offline stand-in for `serde_json`: serializes the vendored `serde`
//! crate's [`Content`](serde::Content) data model to JSON text and parses
//! it back. Covers exactly the workspace's usage: `to_string`,
//! `to_string_pretty`, `to_vec`, `from_str`, `from_slice`, the [`json!`]
//! macro, [`Value`], and [`Error`].
//!
//! Map keys from `HashMap`s serialize sorted (see the serde stand-in), so
//! equal values always encode byte-identically.

use serde::{Content, Deserialize, Serialize};
use std::fmt;

/// A dynamically-typed JSON value.
pub type Value = Content;

/// A JSON (de)serialization error.
#[derive(Debug, Clone)]
pub struct Error(String);

impl Error {
    fn new(msg: impl Into<String>) -> Error {
        Error(msg.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Error {
        Error(e.0)
    }
}

/// Serialize `value` to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_content(&mut out, &value.to_content(), None, 0);
    Ok(out)
}

/// Serialize `value` to an indented JSON string.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_content(&mut out, &value.to_content(), Some(2), 0);
    Ok(out)
}

/// Serialize `value` to compact JSON bytes.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    Ok(to_string(value)?.into_bytes())
}

/// Parse a value from JSON text. Trailing non-whitespace is an error.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let content = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at offset {}",
            p.pos
        )));
    }
    Ok(T::from_content(&content)?)
}

/// Parse a value from JSON bytes.
pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T, Error> {
    let s = std::str::from_utf8(bytes).map_err(|e| Error::new(format!("invalid UTF-8: {e}")))?;
    from_str(s)
}

/// Build a [`Value`] from JSON-ish syntax. Keys are string literals;
/// values are JSON literals, arrays, objects, or any Rust expression
/// convertible into a [`Value`].
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($elem:tt),* $(,)? ]) => {
        $crate::Value::Seq(vec![ $( $crate::json!($elem) ),* ])
    };
    ({ $($entries:tt)* }) => {
        $crate::json_object!(@obj [] $($entries)*)
    };
    ($other:expr) => { $crate::Value::from($other) };
}

/// Object-entry muncher behind [`json!`]: values may be nested objects,
/// `null`, or arbitrary multi-token Rust expressions ending at the next
/// top-level comma.
#[doc(hidden)]
#[macro_export]
macro_rules! json_object {
    // All entries consumed: build the map.
    (@obj [$(($k:literal, $v:expr))*]) => {
        $crate::Value::Map(vec![ $( ($k.to_string(), $v) ),* ])
    };
    // Next entry: shift to value munching.
    (@obj [$($done:tt)*] $key:literal : $($rest:tt)*) => {
        $crate::json_object!(@val [$($done)*] $key [] $($rest)*)
    };
    // Nested object value (must be the first token of the value).
    (@val [$($done:tt)*] $key:literal [] { $($inner:tt)* } , $($rest:tt)*) => {
        $crate::json_object!(@obj [$($done)* ($key, $crate::json!({ $($inner)* }))] $($rest)*)
    };
    (@val [$($done:tt)*] $key:literal [] { $($inner:tt)* }) => {
        $crate::json_object!(@obj [$($done)* ($key, $crate::json!({ $($inner)* }))])
    };
    // `null` value.
    (@val [$($done:tt)*] $key:literal [] null , $($rest:tt)*) => {
        $crate::json_object!(@obj [$($done)* ($key, $crate::Value::Null)] $($rest)*)
    };
    (@val [$($done:tt)*] $key:literal [] null) => {
        $crate::json_object!(@obj [$($done)* ($key, $crate::Value::Null)])
    };
    // A top-level comma (or running out of tokens) ends the value.
    (@val [$($done:tt)*] $key:literal [$($v:tt)+] , $($rest:tt)*) => {
        $crate::json_object!(@obj [$($done)* ($key, $crate::Value::from($($v)+))] $($rest)*)
    };
    (@val [$($done:tt)*] $key:literal [$($v:tt)+]) => {
        $crate::json_object!(@obj [$($done)* ($key, $crate::Value::from($($v)+))])
    };
    // Otherwise keep accumulating value tokens.
    (@val [$($done:tt)*] $key:literal [$($v:tt)*] $next:tt $($rest:tt)*) => {
        $crate::json_object!(@val [$($done)*] $key [$($v)* $next] $($rest)*)
    };
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let s = format!("{v}");
        out.push_str(&s);
        // Keep the float type recognizable on re-parse.
        if !s.contains(['.', 'e', 'E']) {
            out.push_str(".0");
        }
    } else {
        out.push_str("null");
    }
}

fn write_content(out: &mut String, c: &Content, indent: Option<usize>, depth: usize) {
    let (nl, pad, pad_in) = match indent {
        Some(w) => ("\n", " ".repeat(w * depth), " ".repeat(w * (depth + 1))),
        None => ("", String::new(), String::new()),
    };
    match c {
        Content::Null => out.push_str("null"),
        Content::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Content::U64(v) => out.push_str(&v.to_string()),
        Content::I64(v) => out.push_str(&v.to_string()),
        Content::F64(v) => write_f64(out, *v),
        Content::Str(s) => write_escaped(out, s),
        Content::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(nl);
                out.push_str(&pad_in);
                write_content(out, item, indent, depth + 1);
            }
            out.push_str(nl);
            out.push_str(&pad);
            out.push(']');
        }
        Content::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(nl);
                out.push_str(&pad_in);
                write_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_content(out, v, indent, depth + 1);
            }
            out.push_str(nl);
            out.push_str(&pad);
            out.push('}');
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected {:?} at offset {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_word(&mut self, word: &str) -> bool {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Content, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_word("null") => Ok(Content::Null),
            Some(b't') if self.eat_word("true") => Ok(Content::Bool(true)),
            Some(b'f') if self.eat_word("false") => Ok(Content::Bool(false)),
            Some(b'"') => self.string().map(Content::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Content::Seq(items));
                }
                loop {
                    items.push(self.value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Content::Seq(items));
                        }
                        _ => return Err(Error::new(format!("bad array at offset {}", self.pos))),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Content::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    entries.push((key, self.value()?));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Content::Map(entries));
                        }
                        _ => return Err(Error::new(format!("bad object at offset {}", self.pos))),
                    }
                }
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(Error::new(format!(
                "unexpected value at offset {}",
                self.pos
            ))),
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while self.pos < self.bytes.len()
                && self.bytes[self.pos] != b'"'
                && self.bytes[self.pos] != b'\\'
            {
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|e| Error::new(format!("invalid UTF-8 in string: {e}")))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                if !(self.eat_word("\\u")) {
                                    return Err(Error::new("unpaired surrogate"));
                                }
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(Error::new("invalid low surrogate"));
                                }
                                let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid surrogate pair"))?
                            } else {
                                char::from_u32(hi)
                                    .ok_or_else(|| Error::new("invalid \\u escape"))?
                            };
                            out.push(c);
                        }
                        other => {
                            return Err(Error::new(format!("unknown escape \\{}", other as char)))
                        }
                    }
                }
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(Error::new("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| Error::new("bad \\u escape"))?;
        self.pos += 4;
        u32::from_str_radix(s, 16).map_err(|_| Error::new("bad \\u escape"))
    }

    fn number(&mut self) -> Result<Content, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if float {
            text.parse::<f64>()
                .map(Content::F64)
                .map_err(|_| Error::new(format!("bad number {text:?}")))
        } else if text.starts_with('-') {
            match text.parse::<i64>() {
                Ok(v) => Ok(Content::I64(v)),
                Err(_) => text
                    .parse::<f64>()
                    .map(Content::F64)
                    .map_err(|_| Error::new(format!("bad number {text:?}"))),
            }
        } else {
            match text.parse::<u64>() {
                Ok(v) => Ok(Content::U64(v)),
                Err(_) => text
                    .parse::<f64>()
                    .map(Content::F64)
                    .map_err(|_| Error::new(format!("bad number {text:?}"))),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrip() {
        for json in [
            "null",
            "true",
            "0",
            "42",
            "-7",
            "1.5",
            "\"hi\\n\"",
            "[]",
            "{}",
        ] {
            let v: Value = from_str(json).unwrap();
            assert_eq!(to_string(&v).unwrap(), json.replace("1.5", "1.5"));
        }
    }

    #[test]
    fn nested_roundtrip_and_unicode() {
        let json = r#"{"a":[1,2.5,"π \"q\" \\"],"b":{"c":null,"d":false}}"#;
        let v: Value = from_str(json).unwrap();
        let back = to_string(&v).unwrap();
        let v2: Value = from_str(&back).unwrap();
        assert_eq!(v, v2);
    }

    #[test]
    fn surrogate_pairs_parse() {
        let v: String = from_str(r#""🦀""#).unwrap();
        assert_eq!(v, "🦀");
    }

    #[test]
    fn json_macro_builds_objects() {
        let count = 3u64;
        let v = json!({ "name": "e2", "count": count, "items": vec![json!(1), json!("x")] });
        let text = to_string(&v).unwrap();
        assert_eq!(text, r#"{"name":"e2","count":3,"items":[1,"x"]}"#);
    }
}
