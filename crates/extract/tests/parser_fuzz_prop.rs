//! Robustness properties for the text-format extractors: arbitrary bytes,
//! hostile near-miss syntax, and truncated valid documents must never
//! panic the email / vCard / iCalendar parsers, and whatever they do
//! extract must stay bounded by the input size (no runaway object
//! creation from pathological input).

use proptest::prelude::*;
use semex_extract::{
    email::extract_mbox, ical::extract_ical, vcard::extract_vcards, ExtractContext, ExtractStats,
};
use semex_store::{SourceInfo, SourceKind, Store};

type Extractor =
    fn(&str, &mut ExtractContext<'_>) -> Result<ExtractStats, semex_extract::ExtractError>;

const PARSERS: [(&str, Extractor); 3] = [
    ("mbox", extract_mbox as Extractor),
    ("vcard", extract_vcards as Extractor),
    ("ical", extract_ical as Extractor),
];

/// Run one extractor over one input against a fresh store; assert the
/// no-panic and bounded-output contracts.
fn check(name: &str, parse: Extractor, input: &str) -> Result<(), TestCaseError> {
    let mut store = Store::with_builtin_model();
    let sid = store.register_source(SourceInfo::new("fuzz", SourceKind::Synthetic));
    let slots_before = store.slot_count();
    let mut ctx = ExtractContext::new(&mut store, sid);
    // Err is acceptable (malformed input); panicking or unbounded output
    // is not.
    let result = parse(input, &mut ctx);
    let created = store.slot_count() - slots_before;
    // Every extracted reference needs at least a couple of input bytes
    // (a header line, a property line); a generous linear bound catches
    // quadratic or looping extraction.
    let bound = input.len() + 8;
    prop_assert!(
        created <= bound,
        "{name}: {created} objects from {} input bytes",
        input.len()
    );
    if let Ok(stats) = result {
        prop_assert!(
            stats.objects <= bound,
            "{name}: stats.objects {}",
            stats.objects
        );
        prop_assert!(
            stats.records <= bound,
            "{name}: stats.records {}",
            stats.records
        );
        prop_assert!(
            stats.triples <= 4 * bound,
            "{name}: stats.triples {}",
            stats.triples
        );
    }
    Ok(())
}

/// An ASCII mbox + vCard + iCal document soup whose prefixes are the
/// truncation corpus: every format boundary (headers, BEGIN/END blocks,
/// folded lines) appears somewhere.
fn valid_corpus() -> String {
    concat!(
        "From fuzz Mon Jan  1 00:00:00 2001\n",
        "From: Ann Smith <ann@example.org>\n",
        "To: Bo Chen <bo@example.org>, carol@example.net\n",
        "Subject: quarterly planning\n",
        "Message-ID: <m1@example.org>\n",
        "Date: Mon, 1 Jan 2001 10:00:00 +0000\n",
        "\n",
        "body text\n",
        "From fuzz Mon Jan  1 00:00:01 2001\n",
        "From: bo@example.org\n",
        "In-Reply-To: <m1@example.org>\n",
        "Subject: Re: quarterly planning\n",
        "\n",
        "reply\n",
        "BEGIN:VCARD\n",
        "VERSION:3.0\n",
        "FN:Ann Smith\n",
        "EMAIL;TYPE=work:ann@example.org\n",
        "ORG:Evergreen University\n",
        "TEL:+1 555 0100\n",
        "END:VCARD\n",
        "BEGIN:VCALENDAR\n",
        "BEGIN:VEVENT\n",
        "SUMMARY:planning meeting\n",
        "DTSTART:20010101T100000Z\n",
        "ATTENDEE;CN=Ann Smith:mailto:ann@example.org\n",
        "END:VEVENT\n",
        "END:VCALENDAR\n",
    )
    .to_owned()
}

proptest! {
    /// Arbitrary bytes (decoded lossily) never panic any parser and never
    /// produce unbounded output.
    #[test]
    fn arbitrary_bytes_never_panic(bytes in prop::collection::vec(any::<u8>(), 0..1024)) {
        let input = String::from_utf8_lossy(&bytes);
        for (name, parse) in PARSERS {
            check(name, parse, &input)?;
        }
    }

    /// Near-miss structured text — the characters the formats are built
    /// from, recombined arbitrarily — never panics any parser.
    #[test]
    fn hostile_structured_text_never_panics(
        input in "[A-Za-z0-9:;=@<>,.\\\\\"\\n\\r\\t -]{0,512}",
    ) {
        for (name, parse) in PARSERS {
            check(name, parse, &input)?;
        }
    }

    /// Every truncation of a valid multi-format document parses without
    /// panicking, with bounded output — the shape half-written or
    /// half-synced source files have after a crash.
    #[test]
    fn truncated_valid_input_never_panics(cut in 0usize..620) {
        let corpus = valid_corpus();
        let cut = cut.min(corpus.len());
        let input = &corpus[..cut]; // ASCII-only, so any cut is a char boundary
        for (name, parse) in PARSERS {
            check(name, parse, input)?;
        }
    }
}
