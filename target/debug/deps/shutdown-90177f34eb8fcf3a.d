/root/repo/target/debug/deps/shutdown-90177f34eb8fcf3a.d: crates/serve/tests/shutdown.rs

/root/repo/target/debug/deps/libshutdown-90177f34eb8fcf3a.rmeta: crates/serve/tests/shutdown.rs

crates/serve/tests/shutdown.rs:
