#![warn(missing_docs)]

//! The SEMEX platform: the public API a downstream application uses.
//!
//! [`Semex`] wires the subsystems into the pipeline the paper describes:
//!
//! ```text
//! sources ──extract──► association DB ──reconcile──► clean object graph
//!                                             │
//!                        keyword index ◄──index┘
//! ```
//!
//! Build a platform with [`SemexBuilder`]: register personal-information
//! sources (mbox archives, vCard files, BibTeX bibliographies, LaTeX
//! sources, whole directory trees), then [`SemexBuilder::build`] extracts
//! everything, runs reference reconciliation, and indexes the resulting
//! objects. The built [`Semex`] answers keyword [`Semex::search`], exposes a
//! [`semex_browse::Browser`] for association navigation, folds external
//! tables in on the fly ([`Semex::integrate`]) and snapshots to disk.
//!
//! ```
//! use semex_core::SemexBuilder;
//!
//! let semex = SemexBuilder::new()
//!     .add_bibtex("library", "@inproceedings{d5, title={Reference Reconciliation}, \
//!                  author={Dong, Xin and Halevy, Alon}, booktitle={SIGMOD}, year=2005}")
//!     .add_mbox("inbox", "From: Xin Dong <luna@cs.example.edu>\nTo: alon@cs.example.edu\n\
//!                Subject: demo\n\ndraft attached")
//!     .build()
//!     .expect("pipeline");
//! let hits = semex.search("reconciliation", 10);
//! assert!(!hits.is_empty());
//! ```

mod facade;
mod pipeline;

pub use facade::{DurableSemex, ObjectView, SearchResult, Semex, Snapshot};
pub use pipeline::{BuildReport, SemexBuilder, SemexConfig, SemexError, SourceSpec};
pub use semex_journal::{
    CompactionReport, JournalConfig, JournalError, RecoveryReport, SnapshotFormat,
};
