/root/repo/target/debug/deps/fault_sweep-372d39a9a6361b61.d: crates/journal/tests/fault_sweep.rs

/root/repo/target/debug/deps/libfault_sweep-372d39a9a6361b61.rmeta: crates/journal/tests/fault_sweep.rs

crates/journal/tests/fault_sweep.rs:
