//! Criterion bench backing experiment E7: association browsing operations.

use criterion::{criterion_group, criterion_main, Criterion};
use semex_bench::extract_corpus;
use semex_browse::pattern::{query, Pattern, Term};
use semex_browse::Browser;
use semex_corpus::{generate_personal, CorpusConfig};
use semex_model::names::{assoc, class, derived};
use semex_recon::{reconcile, ReconConfig, Variant};
use semex_store::{ObjectId, Store};

fn store() -> Store {
    let cfg = CorpusConfig {
        seed: 13,
        ..CorpusConfig::default()
    }
    .scaled_size(0.5);
    let mut store = extract_corpus(&generate_personal(&cfg));
    reconcile(&mut store, Variant::Full, &ReconConfig::default());
    store
}

fn people(store: &Store, n: usize) -> Vec<ObjectId> {
    let c = store.model().class(class::PERSON).unwrap();
    store.objects_of_class(c).take(n).collect()
}

fn bench_neighborhood(c: &mut Criterion) {
    let store = store();
    let ppl = people(&store, 50);
    let browser = Browser::new(&store);
    c.bench_function("browse_neighborhood", |b| {
        b.iter(|| {
            let mut total = 0;
            for &p in &ppl {
                total += browser.neighborhood(p).len();
            }
            total
        });
    });
}

fn bench_derived(c: &mut Criterion) {
    let store = store();
    let ppl = people(&store, 50);
    let browser = Browser::new(&store);
    for name in [derived::CO_AUTHOR, derived::CORRESPONDED_WITH] {
        c.bench_function(format!("browse_derived_{name}"), |b| {
            b.iter(|| {
                let mut total = 0;
                for &p in &ppl {
                    total += browser.derived_by_name(p, name).unwrap().len();
                }
                total
            });
        });
    }
}

fn bench_path(c: &mut Criterion) {
    let store = store();
    let ppl = people(&store, 20);
    let browser = Browser::new(&store);
    c.bench_function("browse_path_between", |b| {
        b.iter(|| {
            let mut found = 0;
            for w in ppl.windows(2) {
                if browser.path_between(w[0], w[1], 4).is_some() {
                    found += 1;
                }
            }
            found
        });
    });
}

fn bench_pattern_query(c: &mut Criterion) {
    let store = store();
    let authored = store.model().assoc(assoc::AUTHORED_BY).unwrap();
    let published = store.model().assoc(assoc::PUBLISHED_IN).unwrap();
    c.bench_function("browse_pattern_author_venue_join", |b| {
        b.iter(|| {
            query(
                &store,
                &[
                    Pattern::new(Term::var("pub"), authored, Term::var("p")),
                    Pattern::new(Term::var("pub"), published, Term::var("v")),
                ],
            )
            .len()
        });
    });
}

criterion_group!(
    benches,
    bench_neighborhood,
    bench_derived,
    bench_path,
    bench_pattern_query
);
criterion_main!(benches);
