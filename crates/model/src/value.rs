//! Attribute values.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A scalar attribute value.
///
/// Associations (references between objects) are *not* values: they are
/// first-class edges in the association database. Values carry only scalar
/// payloads attached to an object.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Value {
    /// UTF-8 text (names, titles, bodies, …).
    Str(String),
    /// Signed integer (years, page counts, …).
    Int(i64),
    /// Floating point (scores, sizes, …).
    Float(f64),
    /// A timestamp in seconds since the Unix epoch.
    Date(i64),
    /// Boolean flag.
    Bool(bool),
}

impl Value {
    /// Text content if this is a [`Value::Str`].
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Integer content if this is a [`Value::Int`].
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Float content if this is a [`Value::Float`].
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Epoch seconds if this is a [`Value::Date`].
    pub fn as_date(&self) -> Option<i64> {
        match self {
            Value::Date(d) => Some(*d),
            _ => None,
        }
    }

    /// Boolean content if this is a [`Value::Bool`].
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The [`super::ValueKind`] of this value.
    pub fn kind(&self) -> super::ValueKind {
        use super::ValueKind;
        match self {
            Value::Str(_) => ValueKind::Str,
            Value::Int(_) => ValueKind::Int,
            Value::Float(_) => ValueKind::Float,
            Value::Date(_) => ValueKind::Date,
            Value::Bool(_) => ValueKind::Bool,
        }
    }

    /// Canonical textual rendering, used for indexing and display.
    pub fn render(&self) -> String {
        self.to_string()
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Str(s) => f.write_str(s),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Date(d) => write!(f, "@{d}"),
            Value::Bool(b) => write!(f, "{b}"),
        }
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_owned())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s)
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

impl From<f64> for Value {
    fn from(f: f64) -> Self {
        Value::Float(f)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_match_variants() {
        assert_eq!(Value::from("x").as_str(), Some("x"));
        assert_eq!(Value::from(3i64).as_int(), Some(3));
        assert_eq!(Value::from(2.5).as_float(), Some(2.5));
        assert_eq!(Value::Date(99).as_date(), Some(99));
        assert_eq!(Value::from(true).as_bool(), Some(true));
        assert_eq!(Value::from("x").as_int(), None);
        assert_eq!(Value::from(3i64).as_str(), None);
    }

    #[test]
    fn display_is_stable() {
        assert_eq!(Value::from("hello").to_string(), "hello");
        assert_eq!(Value::from(42i64).to_string(), "42");
        assert_eq!(Value::Date(7).to_string(), "@7");
        assert_eq!(Value::from(false).to_string(), "false");
    }

    #[test]
    fn kind_roundtrip() {
        use crate::ValueKind;
        assert_eq!(Value::from("a").kind(), ValueKind::Str);
        assert_eq!(Value::from(1i64).kind(), ValueKind::Int);
        assert_eq!(Value::from(1.0).kind(), ValueKind::Float);
        assert_eq!(Value::Date(0).kind(), ValueKind::Date);
        assert_eq!(Value::from(true).kind(), ValueKind::Bool);
    }
}
