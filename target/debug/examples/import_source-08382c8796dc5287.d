/root/repo/target/debug/examples/import_source-08382c8796dc5287.d: examples/import_source.rs

/root/repo/target/debug/examples/import_source-08382c8796dc5287: examples/import_source.rs

examples/import_source.rs:
