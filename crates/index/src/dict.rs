//! Term interning: tokens ↔ dense `u32` term ids.

use std::collections::HashMap;

/// A term dictionary mapping tokens to dense `u32` term ids.
///
/// Ids are handed out in first-encounter order and never reused, so they
/// double as indices into the index's flat per-term posting arrays: the
/// query path hashes each query term exactly once and then works with
/// integers. Shard dictionaries built by parallel workers merge into a
/// global one by interning their terms in local-id order, which reproduces
/// the sequential assignment exactly (see `SearchIndex::build_threaded`).
#[derive(Debug, Clone, Default)]
pub struct TermDict {
    ids: HashMap<String, u32>,
    terms: Vec<String>,
}

impl TermDict {
    /// An empty dictionary.
    pub fn new() -> Self {
        TermDict::default()
    }

    /// An empty dictionary pre-sized for `n` terms — sidecar restore knows
    /// the exact count up front and skips every rehash on the way there.
    pub fn with_capacity(n: usize) -> Self {
        TermDict {
            ids: HashMap::with_capacity(n),
            terms: Vec::with_capacity(n),
        }
    }

    /// Intern a term, returning its dense id (allocating the next id when
    /// the term is new). The hit path allocates nothing.
    pub fn intern(&mut self, term: &str) -> u32 {
        if let Some(&id) = self.ids.get(term) {
            return id;
        }
        let id = u32::try_from(self.terms.len()).expect("term id space exceeded");
        self.ids.insert(term.to_owned(), id);
        self.terms.push(term.to_owned());
        id
    }

    /// The id of a term, if it has ever been interned.
    pub fn lookup(&self, term: &str) -> Option<u32> {
        self.ids.get(term).copied()
    }

    /// The term behind an id. Panics on an id this dictionary never issued.
    pub fn term(&self, id: u32) -> &str {
        &self.terms[id as usize]
    }

    /// Number of interned terms (dead terms included — interning is
    /// append-only; liveness lives in the posting lists).
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// True when no term was ever interned.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_dense_and_stable() {
        let mut d = TermDict::new();
        assert!(d.is_empty());
        let a = d.intern("alpha");
        let b = d.intern("beta");
        assert_eq!((a, b), (0, 1));
        assert_eq!(d.intern("alpha"), a, "re-interning returns the same id");
        assert_eq!(d.len(), 2);
        assert_eq!(d.term(a), "alpha");
        assert_eq!(d.lookup("beta"), Some(b));
        assert_eq!(d.lookup("gamma"), None);
    }
}
