//! E-mail address comparison.
//!
//! E-mail addresses are near-keys for people, but the same person often has
//! several (`luna@cs.example.edu`, `xdong@example.com`) and variants of one
//! (dots, plus-tags, case). This module normalizes addresses and scores
//! pairs, and can test whether an address plausibly belongs to a person
//! name (`mcarey@…` vs `Michael Carey`).

use crate::jaro_winkler;
use crate::name::PersonName;

/// An e-mail address split into normalized local part and domain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EmailAddr {
    /// Local part, lowercased, with plus-tag stripped (`a+b@x` → `a`).
    pub local: String,
    /// Domain, lowercased.
    pub domain: String,
}

impl EmailAddr {
    /// Parse and normalize. Returns `None` without exactly one `@` or with
    /// an empty side.
    pub fn parse(s: &str) -> Option<EmailAddr> {
        let s = s.trim().trim_matches(|c| c == '<' || c == '>');
        let (local, domain) = s.split_once('@')?;
        if local.is_empty() || domain.is_empty() || domain.contains('@') {
            return None;
        }
        let local = local.to_lowercase();
        let local = local
            .split_once('+')
            .map(|(l, _)| l.to_owned())
            .unwrap_or(local);
        Some(EmailAddr {
            local,
            domain: domain.to_lowercase(),
        })
    }

    /// Canonical `local@domain` rendering.
    pub fn canonical(&self) -> String {
        format!("{}@{}", self.local, self.domain)
    }
}

/// Similarity of two address strings in `[0, 1]`.
///
/// Identical canonical addresses score 1; same local part on different
/// domains scores 0.8 (a person moving institutions); similar local parts on
/// the same domain score by local-part Jaro–Winkler, scaled to at most 0.7;
/// everything else scores 0.
pub fn email_similarity(a: &str, b: &str) -> f64 {
    let (Some(ea), Some(eb)) = (EmailAddr::parse(a), EmailAddr::parse(b)) else {
        return 0.0;
    };
    if ea == eb {
        return 1.0;
    }
    if ea.local == eb.local {
        return 0.8;
    }
    if ea.domain == eb.domain {
        let jw = jaro_winkler(&ea.local, &eb.local);
        if jw >= 0.85 {
            return 0.7 * jw;
        }
    }
    0.0
}

/// Whether an address's local part is plausibly derived from a person name:
/// `mcarey`, `michael.carey`, `carey`, `michaelc`, `mjcarey`, …
pub fn email_matches_name(addr: &str, name: &str) -> bool {
    email_matches_parsed_name(addr, &PersonName::parse(name))
}

/// [`email_matches_name`] against an already-parsed name (hot loops parse
/// names once and reuse them).
pub fn email_matches_parsed_name(addr: &str, n: &PersonName) -> bool {
    let Some(e) = EmailAddr::parse(addr) else {
        return false;
    };
    let local: String = e.local.chars().filter(|c| c.is_alphanumeric()).collect();
    if local.is_empty() {
        return false;
    }
    let first = n.first.clone().unwrap_or_default();
    let last = n.last.clone().unwrap_or_default();
    if first.is_empty() && last.is_empty() {
        return false;
    }
    let fi: String = first.chars().take(1).collect();
    let li: String = last.chars().take(1).collect();
    let mid: String = n.middle.iter().filter_map(|m| m.chars().next()).collect();
    let candidates = [
        format!("{first}{last}"),
        format!("{last}{first}"),
        format!("{fi}{last}"),
        format!("{first}{li}"),
        format!("{fi}{mid}{last}"),
        last.clone(),
        first.clone(),
    ];
    candidates
        .iter()
        .filter(|c| c.len() >= 3)
        .any(|c| *c == local)
        || (!last.is_empty() && last.len() >= 4 && local.contains(&last))
        || (!first.is_empty() && first.len() >= 4 && local.contains(&first))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn parse_normalizes() {
        let e = EmailAddr::parse("  <Luna+lists@CS.Example.EDU> ").unwrap();
        assert_eq!(e.local, "luna");
        assert_eq!(e.domain, "cs.example.edu");
        assert_eq!(e.canonical(), "luna@cs.example.edu");
        assert!(EmailAddr::parse("no-at-sign").is_none());
        assert!(EmailAddr::parse("@x.com").is_none());
        assert!(EmailAddr::parse("a@").is_none());
        assert!(EmailAddr::parse("a@b@c").is_none());
    }

    #[test]
    fn similarity_tiers() {
        assert_eq!(email_similarity("Luna@x.edu", "luna@x.edu"), 1.0);
        assert_eq!(email_similarity("luna@x.edu", "luna@y.com"), 0.8);
        let near = email_similarity("mcarey@x.edu", "mcary@x.edu");
        assert!(near > 0.5 && near < 0.8, "{near}");
        assert_eq!(email_similarity("alice@x.edu", "bob@x.edu"), 0.0);
        assert_eq!(email_similarity("garbage", "alice@x.edu"), 0.0);
    }

    #[test]
    fn name_derivation() {
        assert!(email_matches_name("mcarey@ibm.com", "Michael Carey"));
        assert!(email_matches_name("michael.carey@ibm.com", "Michael Carey"));
        assert!(email_matches_name("carey@ibm.com", "Michael Carey"));
        assert!(email_matches_name("mjcarey@ibm.com", "Michael J. Carey"));
        assert!(!email_matches_name("halevy@cs.edu", "Michael Carey"));
        assert!(!email_matches_name("xy@cs.edu", "Michael Carey"));
        assert!(!email_matches_name("not-an-email", "Michael Carey"));
    }

    proptest! {
        #[test]
        fn similarity_bounds(a in "[a-z]{1,8}@[a-z]{1,8}\\.(com|edu)", b in "[a-z]{1,8}@[a-z]{1,8}\\.(com|edu)") {
            let s = email_similarity(&a, &b);
            prop_assert!((0.0..=1.0).contains(&s));
            prop_assert!((s - email_similarity(&b, &a)).abs() < 1e-12);
        }

        #[test]
        fn parse_never_panics(s in ".{0,30}") {
            let _ = EmailAddr::parse(&s);
        }

        #[test]
        fn self_similarity(a in "[a-z]{1,8}@[a-z]{1,8}\\.com") {
            prop_assert_eq!(email_similarity(&a, &a), 1.0);
        }
    }
}
