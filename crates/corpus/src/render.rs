//! Rendering a [`World`] into the personal-corpus file tree.

use crate::names::{BODY_SENTENCES, SUBJECT_WORDS};
use crate::noise::{name_variants, typo};
use crate::truth::{EntityKind, GroundTruth};
use crate::world::World;
use crate::CorpusConfig;
use rand::rngs::StdRng;
use rand::Rng;
use std::path::Path;

/// A rendered personal corpus: relative paths + file contents, the ground
/// truth oracle, and the world it was rendered from.
#[derive(Debug, Clone)]
pub struct PersonalCorpus {
    /// `(relative path, content)` pairs in deterministic order.
    pub files: Vec<(String, String)>,
    /// Surface-form → entity oracle.
    pub truth: GroundTruth,
    /// The underlying world.
    pub world: World,
}

impl PersonalCorpus {
    /// Write the corpus under `dir` (creating directories as needed).
    pub fn write_to(&self, dir: &Path) -> std::io::Result<()> {
        for (rel, content) in &self.files {
            let path = dir.join(rel);
            if let Some(parent) = path.parent() {
                std::fs::create_dir_all(parent)?;
            }
            std::fs::write(path, content)?;
        }
        Ok(())
    }

    /// Total size of the rendered corpus in bytes.
    pub fn byte_size(&self) -> usize {
        self.files.iter().map(|(_, c)| c.len()).sum()
    }
}

/// Pick a surface name form for a person mention, register it with the
/// oracle, and return it. Falls back through the variant list — ending at
/// the globally unique canonical form — whenever a variant collides with a
/// form already owned by another person.
fn person_form(
    world: &World,
    truth: &mut GroundTruth,
    cfg: &CorpusConfig,
    person: usize,
    rng: &mut StdRng,
) -> String {
    let p = &world.people[person];
    let canonical = p.canonical_name();
    let mut chosen = canonical.clone();
    if rng.gen_bool(cfg.noise.name_variant) {
        let variants = name_variants(&p.first, p.middle.as_deref(), &p.last);
        let pick = variants[rng.gen_range(0..variants.len())].clone();
        chosen = pick;
    }
    if rng.gen_bool(cfg.noise.typo) {
        let t = typo(&p.last, rng);
        if t != p.last {
            chosen = chosen.replace(&p.last, &t);
        }
    }
    if truth.assign(EntityKind::Person, &chosen, p.id) {
        return chosen;
    }
    // Collision with another person's form: use the canonical name, which is
    // unique by construction.
    let ok = truth.assign(EntityKind::Person, &canonical, p.id);
    debug_assert!(ok, "canonical names are unique");
    canonical
}

/// Pick and register an e-mail address for a person mention.
fn person_email(
    world: &World,
    truth: &mut GroundTruth,
    cfg: &CorpusConfig,
    person: usize,
    rng: &mut StdRng,
) -> String {
    let p = &world.people[person];
    let addr = if p.emails.len() > 1 && rng.gen_bool(cfg.noise.email_alias) {
        p.emails[1].clone()
    } else {
        p.emails[0].clone()
    };
    let ok = truth.assign(EntityKind::Person, &addr, p.id);
    debug_assert!(ok, "e-mail addresses are unique per person");
    addr
}

/// Pick and register a title form for a publication mention.
fn title_form(
    world: &World,
    truth: &mut GroundTruth,
    cfg: &CorpusConfig,
    pubn: usize,
    rng: &mut StdRng,
) -> String {
    let p = &world.pubs[pubn];
    let mut chosen = p.title.clone();
    if rng.gen_bool(cfg.noise.title_noise) {
        let words: Vec<&str> = p.title.split_whitespace().collect();
        if words.len() > 3 {
            match rng.gen_range(0..2) {
                0 => {
                    // Drop a non-leading word.
                    let drop = rng.gen_range(1..words.len());
                    let kept: Vec<&str> = words
                        .iter()
                        .enumerate()
                        .filter(|(i, _)| *i != drop)
                        .map(|(_, w)| *w)
                        .collect();
                    chosen = kept.join(" ");
                }
                _ => {
                    // Typo a non-leading word.
                    let at = rng.gen_range(1..words.len());
                    let mut out: Vec<String> = words.iter().map(|w| (*w).to_owned()).collect();
                    out[at] = typo(&out[at], rng);
                    chosen = out.join(" ");
                }
            }
        }
    }
    if truth.assign(EntityKind::Publication, &chosen, p.id) {
        return chosen;
    }
    let ok = truth.assign(EntityKind::Publication, &p.title, p.id);
    debug_assert!(ok, "canonical titles are unique");
    p.title.clone()
}

/// Pick and register a venue form (full name or abbreviation).
fn venue_form(
    world: &World,
    truth: &mut GroundTruth,
    cfg: &CorpusConfig,
    venue: usize,
    rng: &mut StdRng,
) -> String {
    let v = &world.venues[venue];
    let chosen = if rng.gen_bool(cfg.noise.venue_abbrev) {
        v.abbrev.clone()
    } else {
        v.name.clone()
    };
    if truth.assign(EntityKind::Venue, &chosen, v.id) {
        return chosen;
    }
    let ok = truth.assign(EntityKind::Venue, &v.name, v.id);
    debug_assert!(ok, "canonical venue names are unique");
    v.name.clone()
}

/// Render the world into files + ground truth.
pub fn render(cfg: &CorpusConfig, world: &World, rng: &mut StdRng) -> PersonalCorpus {
    let mut truth = GroundTruth::new();
    truth.set_entity_count(EntityKind::Person, world.people.len() as u32);
    truth.set_entity_count(EntityKind::Publication, world.pubs.len() as u32);
    truth.set_entity_count(EntityKind::Venue, world.venues.len() as u32);
    truth.set_entity_count(EntityKind::Organization, world.orgs.len() as u32);
    for o in &world.orgs {
        let ok = truth.assign(EntityKind::Organization, &o.name, o.id);
        debug_assert!(ok);
    }

    let mut files = Vec::new();
    files.push((
        "papers/library.bib".to_owned(),
        render_bibtex(cfg, world, &mut truth, rng),
    ));
    let (inbox, archive) = render_mbox(cfg, world, &mut truth, rng);
    files.push(("mail/inbox.mbox".to_owned(), inbox));
    files.push(("mail/archive.mbox".to_owned(), archive));
    files.push((
        "contacts/addressbook.vcf".to_owned(),
        render_vcards(cfg, world, &mut truth, rng),
    ));
    for (i, content) in render_latex(cfg, world, &mut truth, rng)
        .into_iter()
        .enumerate()
    {
        files.push((format!("papers/drafts/draft{i}.tex"), content));
    }
    files.push((
        "calendar/events.ics".to_owned(),
        render_ics(cfg, world, &mut truth, rng),
    ));
    for (i, content) in render_home_pages(cfg, world, &mut truth, rng)
        .into_iter()
        .enumerate()
    {
        files.push((format!("web/cache/home{i}.html"), content));
    }
    files.push((
        "notes/people.txt".to_owned(),
        render_notes(world, &mut truth, rng),
    ));

    PersonalCorpus {
        files,
        truth,
        world: world.clone(),
    }
}

fn render_bibtex(
    cfg: &CorpusConfig,
    world: &World,
    truth: &mut GroundTruth,
    rng: &mut StdRng,
) -> String {
    let mut out = String::from("% synthetic personal bibliography\n");
    for (i, p) in world.pubs.iter().enumerate() {
        let title = title_form(world, truth, cfg, i, rng);
        let authors: Vec<String> = p
            .authors
            .iter()
            .map(|&a| {
                let form = person_form(world, truth, cfg, a, rng);
                // BibTeX prefers "Last, First"; emit the form as-is when it
                // already contains a comma.
                form
            })
            .collect();
        let venue = venue_form(world, truth, cfg, p.venue, rng);
        out.push_str(&format!(
            "@inproceedings{{pub{i},\n  title = {{{title}}},\n  author = {{{}}},\n  booktitle = {{{venue}}},\n  year = {{{}}},\n  pages = {{{}--{}}}\n}}\n\n",
            authors.join(" and "),
            p.year,
            rng.gen_range(1..400),
            rng.gen_range(400..800),
        ));
    }
    out
}

fn render_mbox(
    cfg: &CorpusConfig,
    world: &World,
    truth: &mut GroundTruth,
    rng: &mut StdRng,
) -> (String, String) {
    let mut inbox = String::new();
    let mut archive = String::new();
    let mut prev_ids: Vec<(String, String)> = Vec::new(); // (message-id, subject)
    let mut date = 1_075_000_000i64; // late Jan 2004
    for i in 0..cfg.messages {
        date += rng.gen_range(600..40_000i64);
        let sender = rng.gen_range(0..world.people.len());
        let colleagues = world.colleagues(sender);
        let mut recipients = Vec::new();
        let recip_count = rng.gen_range(1..=3usize);
        for _ in 0..recip_count {
            let r = if !colleagues.is_empty() && rng.gen_bool(0.6) {
                colleagues[rng.gen_range(0..colleagues.len())]
            } else {
                rng.gen_range(0..world.people.len())
            };
            if r != sender && !recipients.contains(&r) {
                recipients.push(r);
            }
        }
        if recipients.is_empty() {
            recipients.push((sender + 1) % world.people.len());
        }
        let cc: Option<usize> = rng
            .gen_bool(0.25)
            .then(|| rng.gen_range(0..world.people.len()));

        let mut msg = String::new();
        msg.push_str(&format!("From corpus {i}\n"));
        // Sender header: usually name + address, sometimes bare address.
        let s_email = person_email(world, truth, cfg, sender, rng);
        if rng.gen_bool(0.6) {
            let s_name = person_form(world, truth, cfg, sender, rng);
            msg.push_str(&format!("From: {s_name} <{s_email}>\n"));
        } else {
            msg.push_str(&format!("From: {s_email}\n"));
        }
        let to_parts: Vec<String> = recipients
            .iter()
            .map(|&r| {
                let e = person_email(world, truth, cfg, r, rng);
                if rng.gen_bool(0.55) {
                    let n = person_form(world, truth, cfg, r, rng);
                    if n.contains(',') {
                        format!("\"{n}\" <{e}>")
                    } else {
                        format!("{n} <{e}>")
                    }
                } else {
                    e
                }
            })
            .collect();
        msg.push_str(&format!("To: {}\n", to_parts.join(", ")));
        if let Some(c) = cc {
            let e = person_email(world, truth, cfg, c, rng);
            msg.push_str(&format!("Cc: {e}\n"));
        }

        // Subject: fresh, or a reply to a previous message.
        let reply_to = (!prev_ids.is_empty() && rng.gen_bool(0.3))
            .then(|| prev_ids[rng.gen_range(0..prev_ids.len())].clone());
        let subject = match &reply_to {
            Some((_, s)) => format!("Re: {}", s.strip_prefix("Re: ").unwrap_or(s)),
            None if rng.gen_bool(0.2) => {
                // Reference a publication title (ties mail to papers).
                let p = rng.gen_range(0..world.pubs.len());
                let t: Vec<&str> = world.pubs[p].title.split_whitespace().take(4).collect();
                format!("about {}", t.join(" "))
            }
            None => {
                let w1 = SUBJECT_WORDS[rng.gen_range(0..SUBJECT_WORDS.len())];
                let w2 = SUBJECT_WORDS[rng.gen_range(0..SUBJECT_WORDS.len())];
                format!("{w1} {w2}")
            }
        };
        msg.push_str(&format!("Subject: {subject}\n"));

        // Date in RFC form.
        let days = date / 86_400;
        let secs = date % 86_400;
        // Render via a simple civil conversion (inverse of extract's parser
        // is unnecessary: we emit ISO in a Date header the parser accepts).
        msg.push_str(&format!("Date: {}\n", iso_date(days, secs),));
        let mid = format!("msg{i}@corpus.example");
        msg.push_str(&format!("Message-ID: <{mid}>\n"));
        if let Some((parent, _)) = &reply_to {
            msg.push_str(&format!("In-Reply-To: <{parent}>\n"));
        }
        if rng.gen_bool(0.15) {
            let p = rng.gen_range(0..world.pubs.len());
            msg.push_str(&format!("X-Attachment: draft-pub{p}.tex\n"));
        }
        msg.push('\n');
        let s1 = BODY_SENTENCES[rng.gen_range(0..BODY_SENTENCES.len())];
        let s2 = BODY_SENTENCES[rng.gen_range(0..BODY_SENTENCES.len())];
        msg.push_str(&format!("{s1} {s2}\n\n"));

        prev_ids.push((mid, subject));
        if prev_ids.len() > 40 {
            prev_ids.remove(0);
        }
        if i % 2 == 0 {
            inbox.push_str(&msg);
        } else {
            archive.push_str(&msg);
        }
    }
    (inbox, archive)
}

/// ISO date string from days-since-epoch + seconds-of-day (civil algorithm).
fn iso_date(days: i64, secs: i64) -> String {
    // Howard Hinnant's civil_from_days.
    let z = days + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = (z - era * 146_097) as u64;
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe as i64 + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let m = if mp < 10 { mp + 3 } else { mp - 9 };
    let y = if m <= 2 { y + 1 } else { y };
    format!(
        "{:04}-{:02}-{:02} {:02}:{:02}:{:02}",
        y,
        m,
        d,
        secs / 3600,
        (secs % 3600) / 60,
        secs % 60
    )
}

fn render_vcards(
    cfg: &CorpusConfig,
    world: &World,
    truth: &mut GroundTruth,
    rng: &mut StdRng,
) -> String {
    let mut out = String::new();
    let count = ((world.people.len() as f64) * cfg.contacts_fraction).round() as usize;
    for i in 0..count.min(world.people.len()) {
        let p = &world.people[i];
        let name = person_form(world, truth, cfg, i, rng);
        let email = person_email(world, truth, cfg, i, rng);
        out.push_str("BEGIN:VCARD\nVERSION:3.0\n");
        out.push_str(&format!("FN:{name}\n"));
        out.push_str(&format!(
            "N:{};{};{}\n",
            p.last,
            p.first,
            p.middle.as_deref().unwrap_or("")
        ));
        out.push_str(&format!("EMAIL;TYPE=work:{email}\n"));
        if p.emails.len() > 1 && rng.gen_bool(0.5) {
            let alias = person_email(world, truth, cfg, i, rng);
            if alias != email {
                out.push_str(&format!("EMAIL;TYPE=home:{alias}\n"));
            }
        }
        out.push_str(&format!(
            "TEL;TYPE=cell:+1-555-{:04}\n",
            rng.gen_range(0..10_000)
        ));
        let org = &world.orgs[p.org];
        out.push_str(&format!("ORG:{}\n", org.name));
        out.push_str("END:VCARD\n");
    }
    out
}

fn render_latex(
    cfg: &CorpusConfig,
    world: &World,
    truth: &mut GroundTruth,
    rng: &mut StdRng,
) -> Vec<String> {
    let drafts = (world.pubs.len() / 12).max(1);
    let mut out = Vec::with_capacity(drafts);
    for _ in 0..drafts {
        let pi = rng.gen_range(0..world.pubs.len());
        let p = &world.pubs[pi];
        let title = title_form(world, truth, cfg, pi, rng);
        let authors: Vec<String> = p
            .authors
            .iter()
            .map(|&a| person_form(world, truth, cfg, a, rng))
            .collect();
        let mut tex = String::from("\\documentclass{article}\n");
        tex.push_str(&format!("\\title{{{title}}}\n"));
        tex.push_str(&format!("\\author{{{}}}\n", authors.join(" \\and ")));
        tex.push_str("\\begin{document}\n\\maketitle\n");
        let mut cite_keys: Vec<String> = p.cites.iter().map(|c| format!("pub{c}")).collect();
        for _ in 0..rng.gen_range(0..3usize) {
            cite_keys.push(format!("pub{}", rng.gen_range(0..world.pubs.len())));
        }
        if !cite_keys.is_empty() {
            tex.push_str(&format!(
                "Prior work \\cite{{{}}} applies.\n",
                cite_keys.join(",")
            ));
        }
        tex.push_str("\\bibliography{library}\n\\end{document}\n");
        out.push(tex);
    }
    out
}

fn render_ics(
    cfg: &CorpusConfig,
    world: &World,
    truth: &mut GroundTruth,
    rng: &mut StdRng,
) -> String {
    let mut out = String::from("BEGIN:VCALENDAR\nVERSION:2.0\n");
    let events = (cfg.messages / 20).max(2);
    let mut day = 0i64;
    for i in 0..events {
        day += rng.gen_range(0..3i64);
        let organizer = rng.gen_range(0..world.people.len());
        let colleagues = world.colleagues(organizer);
        let mut attendees = Vec::new();
        for _ in 0..rng.gen_range(1..=4usize) {
            let a = if !colleagues.is_empty() && rng.gen_bool(0.7) {
                colleagues[rng.gen_range(0..colleagues.len())]
            } else {
                rng.gen_range(0..world.people.len())
            };
            if a != organizer && !attendees.contains(&a) {
                attendees.push(a);
            }
        }
        let w1 = SUBJECT_WORDS[rng.gen_range(0..SUBJECT_WORDS.len())];
        let w2 = SUBJECT_WORDS[rng.gen_range(0..SUBJECT_WORDS.len())];
        out.push_str("BEGIN:VEVENT\n");
        out.push_str(&format!("UID:event{i}@corpus.example\n"));
        out.push_str(&format!("SUMMARY:{w1} {w2}\n"));
        // Spread through 2004; hours 9-16.
        let d = 1 + (day % 28) as u32;
        let m = 1 + ((day / 28) % 12) as u32;
        out.push_str(&format!(
            "DTSTART:2004{m:02}{d:02}T{:02}0000Z\n",
            9 + rng.gen_range(0..8)
        ));
        if rng.gen_bool(0.5) {
            out.push_str(&format!("LOCATION:Room {}\n", rng.gen_range(100..500)));
        }
        let o_name = person_form(world, truth, cfg, organizer, rng);
        let o_mail = person_email(world, truth, cfg, organizer, rng);
        out.push_str(&format!("ORGANIZER;CN={o_name}:mailto:{o_mail}\n"));
        for &a in &attendees {
            let mail = person_email(world, truth, cfg, a, rng);
            if rng.gen_bool(0.7) {
                let name = person_form(world, truth, cfg, a, rng);
                out.push_str(&format!("ATTENDEE;CN=\"{name}\":mailto:{mail}\n"));
            } else {
                out.push_str(&format!("ATTENDEE:mailto:{mail}\n"));
            }
        }
        out.push_str("END:VEVENT\n");
    }
    out.push_str("END:VCALENDAR\n");
    out
}

/// Cached author home pages: title + owner's address + mailto links to
/// co-authors + publication titles in the visible text.
fn render_home_pages(
    cfg: &CorpusConfig,
    world: &World,
    truth: &mut GroundTruth,
    rng: &mut StdRng,
) -> Vec<String> {
    let count = (world.people.len() / 8).max(1);
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        let owner = rng.gen_range(0..world.people.len());
        let name = person_form(world, truth, cfg, owner, rng);
        let email = person_email(world, truth, cfg, owner, rng);
        let mut html = String::from("<html><head>");
        html.push_str(&format!("<title>{name}</title></head><body>\n"));
        html.push_str(&format!("<h1>{name}</h1>\n"));
        html.push_str(&format!(
            "<p>Contact: <a href=\"mailto:{email}\">{email}</a></p>\n<ul>\n"
        ));
        // The owner's publications with mailto links to co-authors.
        let pubs: Vec<usize> = world
            .pubs
            .iter()
            .enumerate()
            .filter(|(_, p)| p.authors.contains(&owner))
            .map(|(i, _)| i)
            .collect();
        for &pi in pubs.iter().take(6) {
            let title = title_form(world, truth, cfg, pi, rng);
            html.push_str(&format!("<li>{title}"));
            for &a in &world.pubs[pi].authors {
                if a != owner && rng.gen_bool(0.5) {
                    let co_name = person_form(world, truth, cfg, a, rng);
                    let co_mail = person_email(world, truth, cfg, a, rng);
                    html.push_str(&format!(" with <a href=\"mailto:{co_mail}\">{co_name}</a>"));
                }
            }
            html.push_str("</li>\n");
        }
        html.push_str("</ul>\n<p>Hosted at <a href=\"https://www.example.edu/dept\">the department</a>.</p>\n");
        html.push_str("</body></html>\n");
        out.push(html);
    }
    out
}

fn render_notes(world: &World, truth: &mut GroundTruth, rng: &mut StdRng) -> String {
    let mut out = String::from("people to follow up with:\n");
    for _ in 0..8.min(world.people.len()) {
        let i = rng.gen_range(0..world.people.len());
        let p = &world.people[i];
        let name = p.canonical_name();
        let ok = truth.assign(EntityKind::Person, &name, p.id);
        debug_assert!(ok);
        out.push_str(&format!("- {name}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate_personal;

    #[test]
    fn corpus_renders_all_file_kinds() {
        let corpus = generate_personal(&CorpusConfig::tiny(11));
        let paths: Vec<&str> = corpus.files.iter().map(|(p, _)| p.as_str()).collect();
        assert!(paths.contains(&"papers/library.bib"));
        assert!(paths.contains(&"mail/inbox.mbox"));
        assert!(paths.contains(&"mail/archive.mbox"));
        assert!(paths.contains(&"contacts/addressbook.vcf"));
        assert!(paths.contains(&"calendar/events.ics"));
        assert!(paths.iter().any(|p| p.starts_with("web/cache/")));
        assert!(paths.contains(&"notes/people.txt"));
        assert!(paths.iter().any(|p| p.starts_with("papers/drafts/")));
        assert!(corpus.byte_size() > 5_000);
    }

    #[test]
    fn truth_labels_every_person_form() {
        let corpus = generate_personal(&CorpusConfig::tiny(12));
        // Every canonical name and every e-mail must be resolvable.
        for p in &corpus.world.people {
            if let Some(id) = corpus
                .truth
                .entity_of(EntityKind::Person, &p.canonical_name())
            {
                assert_eq!(id, p.id);
            }
            for e in &p.emails {
                if let Some(id) = corpus.truth.entity_of(EntityKind::Person, e) {
                    assert_eq!(id, p.id);
                }
            }
        }
        assert!(corpus.truth.form_count(EntityKind::Person) >= corpus.world.people.len());
        assert!(corpus.truth.form_count(EntityKind::Publication) >= corpus.world.pubs.len());
    }

    #[test]
    fn determinism() {
        let a = generate_personal(&CorpusConfig::tiny(99));
        let b = generate_personal(&CorpusConfig::tiny(99));
        assert_eq!(a.files, b.files);
        let c = generate_personal(&CorpusConfig::tiny(100));
        assert_ne!(a.files, c.files, "different seeds differ");
    }

    #[test]
    fn write_to_disk_roundtrip() {
        let corpus = generate_personal(&CorpusConfig::tiny(13));
        let dir = std::env::temp_dir().join(format!("semex-corpus-{}", std::process::id()));
        corpus.write_to(&dir).unwrap();
        let bib = std::fs::read_to_string(dir.join("papers/library.bib")).unwrap();
        assert!(bib.contains("@inproceedings"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn iso_date_is_valid() {
        assert_eq!(iso_date(0, 0), "1970-01-01 00:00:00");
        assert_eq!(iso_date(12_857, 3_661), "2005-03-15 01:01:01");
    }
}
