/root/repo/target/debug/deps/incremental_recon-f0b80275daf82ae3.d: tests/incremental_recon.rs tests/common/mod.rs

/root/repo/target/debug/deps/incremental_recon-f0b80275daf82ae3: tests/incremental_recon.rs tests/common/mod.rs

tests/incremental_recon.rs:
tests/common/mod.rs:
