//! Eviction correctness: evicting a tenant and recovering it from its
//! journal must be *observationally invisible* — byte-identical query
//! results AND epochs versus a twin tenant that was never evicted. Also
//! covers the degraded case: a tenant evicted while it carries an
//! un-durable write backlog (journal commits failing) comes back at
//! exactly its durable prefix.

use semex_core::{JournalConfig, SnapshotFormat};
use semex_journal::{FaultIo, FaultPlan};
use semex_serve::protocol::{IngestFormat, Request, Response};
use semex_serve::{serve_tenants, Client, PoolConfig, ServeConfig, ServeHandle, TenantRegistry};
use std::path::PathBuf;
use std::sync::Arc;

fn temp_root(tag: &str) -> PathBuf {
    let root = std::env::temp_dir().join(format!("semex-serve-equiv-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&root).ok();
    root
}

fn start(root: &PathBuf, pool: PoolConfig) -> ServeHandle {
    let registry = TenantRegistry::open(root).expect("registry root");
    serve_tenants(registry, "127.0.0.1:0", ServeConfig::default(), pool).expect("bind")
}

/// Evict with a bounded spin: an eviction requested right after a write's
/// ack can race the writer worker still clearing the tenant's in-service
/// flag (the ack is sent before the servicing pass fully unwinds).
fn evict_soon(handle: &ServeHandle, name: &str) -> bool {
    for _ in 0..2000 {
        if handle.evict_tenant(name) {
            return true;
        }
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
    false
}

fn ingest(token: &str) -> Request {
    Request::Ingest {
        format: IngestFormat::Mbox,
        name: "inbox".into(),
        content: format!("From: {token}@example.com\nSubject: {token}\n\nbody about {token}"),
    }
}

/// The full observable surface of a tenant, epochs included: stats, a
/// keyword search per token, and a pattern query.
fn observe(client: &mut Client, tokens: &[&str]) -> Vec<Response> {
    let mut out = vec![client.request(&Request::Stats).unwrap()];
    for token in tokens {
        out.push(
            client
                .request(&Request::Search {
                    query: token.to_string(),
                    k: 10,
                    exhaustive: false,
                })
                .unwrap(),
        );
        out.push(
            client
                .request(&Request::Query {
                    pattern: "?m MentionsPerson ?p".into(),
                })
                .unwrap(),
        );
    }
    out
}

fn twin_equiv(format: SnapshotFormat, tag: &str) {
    let root = temp_root(tag);
    let handle = start(
        &root,
        PoolConfig {
            journal: JournalConfig {
                fsync: false,
                snapshot_format: format,
                ..JournalConfig::default()
            },
            ..PoolConfig::default()
        },
    );
    let addr = handle.addr();
    let mut stayer = Client::connect(addr).unwrap().with_tenant("stayer");
    let mut mover = Client::connect(addr).unwrap().with_tenant("mover");
    let tokens = ["apples", "bananas", "cherries"];

    // Identical write histories, with the mover evicted after every write
    // — including once mid-history, so recovery feeds later writes.
    for (i, token) in tokens.iter().enumerate() {
        let a = stayer.request(&ingest(token)).unwrap();
        let b = mover.request(&ingest(token)).unwrap();
        assert_eq!(a, b, "acks must match (epochs included) at write {i}");
        assert!(matches!(a, Response::Ingested { .. }));
        assert!(evict_soon(&handle, "mover"), "evict after write {i}");
        assert!(!handle.evict_tenant("mover"), "already evicted");
    }

    // Every observable answer — results, counts, and epochs — matches.
    assert_eq!(
        observe(&mut stayer, &tokens),
        observe(&mut mover, &tokens),
        "evict/reactivate must be observationally invisible"
    );

    // Close the connections before joining, or the workers sit out the
    // idle-read timeout on these still-open sockets.
    drop((stayer, mover));
    let report = handle.join();
    assert!(report.tenants.evictions >= 3, "{:?}", report.tenants);
    assert!(report.tenants.cold_opens >= 3, "{:?}", report.tenants);
}

#[test]
fn evicted_tenant_is_indistinguishable_from_its_never_evicted_twin() {
    twin_equiv(SnapshotFormat::Json, "twin");
}

/// Same invariant when cold reactivation goes through the binary snapshot
/// and the index sidecar instead of the JSON heap decode + rebuild.
#[test]
fn evicted_tenant_is_indistinguishable_under_binary_snapshots() {
    twin_equiv(SnapshotFormat::Binary, "twin-bin");
}

#[test]
fn degraded_tenant_evicted_mid_backlog_recovers_its_durable_prefix() {
    let root = temp_root("degraded");
    let fault = FaultIo::new(FaultPlan::None);
    let handle = start(
        &root,
        PoolConfig {
            journal: JournalConfig {
                fsync: false,
                ..JournalConfig::default()
            },
            journal_io: Some(Arc::new(fault.clone())),
            ..PoolConfig::default()
        },
    );
    let addr = handle.addr();
    let mut twin = Client::connect(addr).unwrap().with_tenant("twin");
    let mut victim = Client::connect(addr).unwrap().with_tenant("victim");

    // Durable prefix: one committed write each.
    assert!(matches!(
        twin.request(&ingest("durabletoken")).unwrap(),
        Response::Ingested { .. }
    ));
    assert!(matches!(
        victim.request(&ingest("durabletoken")).unwrap(),
        Response::Ingested { .. }
    ));

    // The disk fills: the victim's next write applies in memory but its
    // commit fails, so the ack is the typed degraded answer.
    fault.set_plan(FaultPlan::DiskFull {
        at: fault.op_count(),
    });
    match victim.request(&ingest("ghosttoken")).unwrap() {
        Response::Error { kind, message } => {
            assert_eq!(kind, semex_serve::protocol::ErrorKindWire::Degraded);
            assert!(message.contains("not durable"), "{message}");
        }
        other => panic!("expected degraded error, got {other:?}"),
    }
    // Degraded reads still serve the un-durable state…
    match victim
        .request(&Request::Search {
            query: "ghosttoken".into(),
            k: 10,
            exhaustive: false,
        })
        .unwrap()
    {
        Response::Hits { hits, .. } => assert!(!hits.is_empty(), "degraded state must serve"),
        other => panic!("{other:?}"),
    }

    // …until the tenant is evicted mid-backlog: the un-durable mutations
    // go with it (their writer was told "not durable"), and recovery —
    // disk space restored — reboots at exactly the durable prefix.
    assert!(evict_soon(&handle, "victim"), "evict while degraded");
    fault.clear_faults();

    assert_eq!(
        observe(&mut twin, &["durabletoken", "ghosttoken"]),
        observe(&mut victim, &["durabletoken", "ghosttoken"]),
        "recovered victim must equal the twin that never saw the ghost write"
    );
    drop((twin, victim));
    handle.join();
}
