//! Plan execution: batched, optionally parallel frontier expansion with
//! deterministic results and cursor pagination.
//!
//! The frontier invariant — sorted, deduplicated, alias-resolved — is
//! restored after every step, which makes results a pure function of
//! `(snapshot, plan)`: the same plan at the same epoch yields the same
//! object sequence at **any** thread count. Pagination exploits exactly
//! that: a page is a slice of the deterministic result order, and the
//! cursor records where the slice ended.

use crate::cursor::{Cursor, CursorError};
use crate::plan::{PathQuery, Start};
use crate::step::{Dir, Filter, Step};
use semex_model::Value;
use semex_store::{ObjectId, Store};

/// Frontiers below this size expand sequentially even when more threads
/// are available: spawning costs more than the scan it saves.
pub const PAR_MIN_FRONTIER: usize = 256;

/// Execution knobs.
#[derive(Debug, Clone, Copy)]
pub struct ExecConfig {
    /// Worker threads for frontier expansion (1 = sequential).
    pub threads: usize,
    /// Cap on the cumulative number of neighbour expansions a single
    /// query may perform; exceeding it aborts with [`ExecError::Budget`]
    /// instead of letting one explosive plan monopolise a worker.
    pub node_budget: usize,
}

impl Default for ExecConfig {
    fn default() -> Self {
        ExecConfig {
            threads: 1,
            node_budget: 8_000_000,
        }
    }
}

/// Execution failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// The plan expanded more nodes than the configured budget allows.
    Budget {
        /// The budget that was exhausted.
        budget: usize,
    },
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::Budget { budget } => {
                write!(
                    f,
                    "query expanded more than {budget} nodes; add filters or fan-out bounds"
                )
            }
        }
    }
}

impl std::error::Error for ExecError {}

/// One page of results plus the cursor to fetch the next.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PageOut {
    /// The page's objects, in the engine's deterministic order.
    pub items: Vec<ObjectId>,
    /// Size of the full (unpaginated) result set.
    pub total: usize,
    /// Cursor for the next page; `None` when this page ends the set.
    pub next: Option<Cursor>,
}

/// Run a plan to completion, returning the full result frontier in the
/// engine's deterministic order (ascending object id).
pub fn run(store: &Store, plan: &PathQuery, cfg: &ExecConfig) -> Result<Vec<ObjectId>, ExecError> {
    let mut budget = cfg.node_budget;
    let frontier = seed(store, &plan.start);
    eval_steps(store, frontier, &plan.steps, cfg, &mut budget)
}

/// Run a plan and slice one page out of its deterministic result order.
///
/// `after` resumes from a cursor minted by an earlier page at the same
/// `epoch`; the returned page is byte-identical to the corresponding
/// slice of an unpaginated run. Errors distinguish a foreign cursor
/// ([`CursorError::PlanMismatch`]), an advanced snapshot
/// ([`CursorError::Expired`]) and an exhausted node budget.
pub fn run_page(
    store: &Store,
    plan: &PathQuery,
    cfg: &ExecConfig,
    epoch: u64,
    page_size: usize,
    after: Option<&Cursor>,
) -> Result<PageOut, PageError> {
    let fingerprint = plan.fingerprint(store.model());
    if let Some(c) = after {
        c.check(fingerprint, epoch).map_err(PageError::Cursor)?;
    }
    let all = run(store, plan, cfg).map_err(PageError::Exec)?;
    let skip = match after {
        Some(c) => all.partition_point(|&o| o.0 <= c.pos),
        None => 0,
    };
    let page_size = page_size.max(1);
    let end = (skip + page_size).min(all.len());
    let items: Vec<ObjectId> = all[skip..end].to_vec();
    let next = (end < all.len()).then(|| Cursor {
        epoch,
        plan: fingerprint,
        pos: items.last().map_or(0, |o| o.0),
    });
    Ok(PageOut {
        items,
        total: all.len(),
        next,
    })
}

/// Pagination failure: cursor trouble or execution trouble.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PageError {
    /// The cursor was malformed, foreign, or expired.
    Cursor(CursorError),
    /// The underlying run failed.
    Exec(ExecError),
}

impl std::fmt::Display for PageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PageError::Cursor(e) => e.fmt(f),
            PageError::Exec(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for PageError {}

/// Seed the first frontier from a start spec (sorted, deduped, resolved).
fn seed(store: &Store, start: &Start) -> Vec<ObjectId> {
    let mut out: Vec<ObjectId> = match start {
        Start::All => store.objects().map(|o| store.resolve(o)).collect(),
        Start::Class(c) => store
            .objects_of_class(*c)
            .map(|o| store.resolve(o))
            .collect(),
        Start::Labeled(c, label) => store
            .find_by_label(*c, label)
            .map(|o| store.resolve(o))
            .collect(),
        Start::Object(o) => match store.object_raw(*o) {
            Some(_) => vec![store.resolve(*o)],
            None => Vec::new(),
        },
    };
    out.sort_unstable();
    out.dedup();
    out
}

/// Apply a step sequence to a frontier, restoring the invariant after
/// each step.
fn eval_steps(
    store: &Store,
    mut frontier: Vec<ObjectId>,
    steps: &[Step],
    cfg: &ExecConfig,
    budget: &mut usize,
) -> Result<Vec<ObjectId>, ExecError> {
    for step in steps {
        if frontier.is_empty() {
            return Ok(frontier);
        }
        frontier = eval_step(store, frontier, step, cfg, budget)?;
    }
    Ok(frontier)
}

fn eval_step(
    store: &Store,
    frontier: Vec<ObjectId>,
    step: &Step,
    cfg: &ExecConfig,
    budget: &mut usize,
) -> Result<Vec<ObjectId>, ExecError> {
    match step {
        Step::Hop { dir, assoc, fanout } => {
            let mut out = expand_hop(store, &frontier, *dir, *assoc, *fanout, cfg.threads);
            charge(budget, out.len(), cfg)?;
            out.sort_unstable();
            out.dedup();
            Ok(out)
        }
        Step::Class(c) => {
            let mut frontier = frontier;
            frontier.retain(|&o| store.class_of(o) == *c);
            Ok(frontier)
        }
        Step::Filter(f) => {
            let mut frontier = frontier;
            frontier.retain(|&o| eval_filter(store, o, f));
            Ok(frontier)
        }
        Step::Union(branches) => {
            let mut out = Vec::new();
            for branch in branches {
                out.extend(eval_steps(store, frontier.clone(), branch, cfg, budget)?);
            }
            out.sort_unstable();
            out.dedup();
            Ok(out)
        }
        Step::Optional(branch) => {
            let mut out = eval_steps(store, frontier.clone(), branch, cfg, budget)?;
            out.extend(frontier);
            out.sort_unstable();
            out.dedup();
            Ok(out)
        }
        Step::Repeat { steps, max_depth } => {
            // Breadth-first closure with a visited-set cycle guard: each
            // object is expanded at most once, so cycles terminate and the
            // work is bounded by the reachable set, not the depth.
            let mut visited = frontier.clone();
            let mut layer = frontier;
            let mut out = Vec::new();
            for _ in 0..*max_depth {
                let produced = eval_steps(store, layer, steps, cfg, budget)?;
                let mut fresh: Vec<ObjectId> = produced
                    .into_iter()
                    .filter(|o| visited.binary_search(o).is_err())
                    .collect();
                fresh.sort_unstable();
                fresh.dedup();
                if fresh.is_empty() {
                    break;
                }
                for &o in &fresh {
                    let at = visited.binary_search(&o).unwrap_err();
                    visited.insert(at, o);
                }
                out.extend_from_slice(&fresh);
                layer = fresh;
            }
            out.sort_unstable();
            Ok(out)
        }
    }
}

fn charge(budget: &mut usize, produced: usize, cfg: &ExecConfig) -> Result<(), ExecError> {
    if produced > *budget {
        return Err(ExecError::Budget {
            budget: cfg.node_budget,
        });
    }
    *budget -= produced;
    Ok(())
}

/// Expand one hop over the whole frontier, splitting large frontiers
/// across scoped worker threads. Chunks are concatenated in frontier
/// order and the caller sorts + dedups, so the result is independent of
/// the thread count.
pub(crate) fn expand_hop(
    store: &Store,
    frontier: &[ObjectId],
    dir: Dir,
    assoc: semex_model::AssocId,
    fanout: Option<usize>,
    threads: usize,
) -> Vec<ObjectId> {
    let expand_into = |src: ObjectId, out: &mut Vec<ObjectId>| {
        let neighbors = match dir {
            Dir::Forward => store.neighbors(src, assoc),
            Dir::Inverse => store.inverse_neighbors(src, assoc),
        };
        let take = fanout.unwrap_or(neighbors.len()).min(neighbors.len());
        out.extend(neighbors[..take].iter().map(|&t| store.resolve(t)));
    };
    if threads <= 1 || frontier.len() < PAR_MIN_FRONTIER {
        let mut out = Vec::new();
        for &src in frontier {
            expand_into(src, &mut out);
        }
        return out;
    }
    let chunk = frontier.len().div_ceil(threads);
    let expand_into = &expand_into;
    let parts: Vec<Vec<ObjectId>> = std::thread::scope(|scope| {
        let handles: Vec<_> = frontier
            .chunks(chunk)
            .map(|part| {
                scope.spawn(move || {
                    let mut out = Vec::new();
                    for &src in part {
                        expand_into(src, &mut out);
                    }
                    out
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let mut out = Vec::with_capacity(parts.iter().map(Vec::len).sum());
    for part in parts {
        out.extend(part);
    }
    out
}

/// Evaluate an attribute predicate against one object.
fn eval_filter(store: &Store, obj: ObjectId, filter: &Filter) -> bool {
    let object = store.object(obj);
    match filter {
        Filter::AttrEq(attr, want) => object.values(*attr).any(|v| match v.as_str() {
            Some(s) => s == want,
            None => v.to_string() == *want,
        }),
        Filter::AttrContains(attr, needle) => {
            let needle = needle.to_lowercase();
            object.values(*attr).any(|v| match v.as_str() {
                Some(s) => s.to_lowercase().contains(&needle),
                None => v.to_string().to_lowercase().contains(&needle),
            })
        }
        Filter::Range { attr, min, max } => object.values(*attr).any(|v| {
            let n = match v {
                Value::Int(i) => *i,
                Value::Date(d) => *d,
                _ => return false,
            };
            min.is_none_or(|m| n >= m) && max.is_none_or(|m| n <= m)
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::Start;
    use semex_extract::{bibtex::extract_bibtex, ExtractContext};
    use semex_model::names::{assoc, attr, class};
    use semex_store::{SourceInfo, SourceKind};

    fn store() -> Store {
        let mut st = Store::with_builtin_model();
        let src = st.register_source(SourceInfo::new("t", SourceKind::Synthetic));
        let mut ctx = ExtractContext::new(&mut st, src);
        extract_bibtex(
            "@inproceedings{a, title={Paper One}, author={Ann Walker and Bob Fisher}, booktitle={SIGMOD}, year=2004}\n\
             @inproceedings{b, title={Paper Two}, author={Ann Walker}, booktitle={SIGMOD}, year=2005}\n\
             @inproceedings{c, title={Paper Three}, author={Bob Fisher}, booktitle={VLDB}, year=2005}",
            &mut ctx,
        )
        .unwrap();
        st
    }

    fn ids(st: &Store, labels: &[&str]) -> Vec<ObjectId> {
        let mut out: Vec<ObjectId> = st
            .objects()
            .filter(|&o| labels.contains(&st.label(o).as_str()))
            .collect();
        out.sort_unstable();
        out
    }

    #[test]
    fn hop_filter_and_class_compose() {
        let st = store();
        let m = st.model();
        let person = m.class(class::PERSON).unwrap();
        let authored = m.assoc(assoc::AUTHORED_BY).unwrap();
        let year = m.attr(attr::YEAR).unwrap();
        // Papers from 2005 by anyone, then their authors.
        let plan = PathQuery::new(
            Start::Class(m.class(class::PUBLICATION).unwrap()),
            vec![
                Step::Filter(Filter::Range {
                    attr: year,
                    min: Some(2005),
                    max: Some(2005),
                }),
                Step::forward(authored),
                Step::Class(person),
            ],
        );
        let got = run(&st, &plan, &ExecConfig::default()).unwrap();
        assert_eq!(got, ids(&st, &["Ann Walker", "Bob Fisher"]));
    }

    #[test]
    fn fanout_bounds_expansion() {
        let st = store();
        let m = st.model();
        let authored = m.assoc(assoc::AUTHORED_BY).unwrap();
        let paper_one = ids(&st, &["Paper One"])[0];
        let plan = PathQuery::new(
            Start::Object(paper_one),
            vec![Step::Hop {
                dir: Dir::Forward,
                assoc: authored,
                fanout: Some(1),
            }],
        );
        let got = run(&st, &plan, &ExecConfig::default()).unwrap();
        assert_eq!(got.len(), 1, "two authors bounded to one");
    }

    #[test]
    fn union_and_optional() {
        let st = store();
        let m = st.model();
        let authored = m.assoc(assoc::AUTHORED_BY).unwrap();
        let published = m.assoc(assoc::PUBLISHED_IN).unwrap();
        let paper_one = ids(&st, &["Paper One"])[0];
        let union = PathQuery::new(
            Start::Object(paper_one),
            vec![Step::Union(vec![
                vec![Step::forward(authored)],
                vec![Step::forward(published)],
            ])],
        );
        let got = run(&st, &union, &ExecConfig::default()).unwrap();
        assert_eq!(got, ids(&st, &["Ann Walker", "Bob Fisher", "SIGMOD"]));

        let optional = PathQuery::new(
            Start::Object(paper_one),
            vec![Step::Optional(vec![Step::forward(published)])],
        );
        let got = run(&st, &optional, &ExecConfig::default()).unwrap();
        let mut want = ids(&st, &["Paper One", "SIGMOD"]);
        want.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    fn repeat_closure_guards_cycles() {
        let mut st = Store::with_builtin_model();
        let src = st.register_source(SourceInfo::new("t", SourceKind::Synthetic));
        let c_pub = st.model().class(class::PUBLICATION).unwrap();
        let cites = st.model().assoc(assoc::CITES).unwrap();
        let papers: Vec<ObjectId> = (0..4).map(|_| st.add_object(c_pub)).collect();
        // A ring: p0 -> p1 -> p2 -> p3 -> p0.
        for i in 0..4 {
            st.add_triple(papers[i], cites, papers[(i + 1) % 4], src)
                .unwrap();
        }
        let plan = PathQuery::new(
            Start::Object(papers[0]),
            vec![Step::Repeat {
                steps: vec![Step::forward(cites)],
                max_depth: 50,
            }],
        );
        let got = run(&st, &plan, &ExecConfig::default()).unwrap();
        // Reaches p1, p2, p3; the guard stops the ring from looping and
        // the start is not re-emitted.
        assert_eq!(got, vec![papers[1], papers[2], papers[3]]);
    }

    #[test]
    fn budget_aborts_explosive_plans() {
        let st = store();
        let m = st.model();
        let authored = m.assoc(assoc::AUTHORED_BY).unwrap();
        let plan = PathQuery::new(
            Start::Class(m.class(class::PUBLICATION).unwrap()),
            vec![Step::forward(authored)],
        );
        let cfg = ExecConfig {
            threads: 1,
            node_budget: 1,
        };
        assert!(matches!(
            run(&st, &plan, &cfg),
            Err(ExecError::Budget { budget: 1 })
        ));
    }

    #[test]
    fn pagination_stitches_to_full_run() {
        let st = store();
        let m = st.model();
        let person = m.class(class::PERSON).unwrap();
        let plan = PathQuery::new(Start::Class(person), vec![]);
        let cfg = ExecConfig::default();
        let all = run(&st, &plan, &cfg).unwrap();
        let mut stitched = Vec::new();
        let mut cursor: Option<Cursor> = None;
        loop {
            let page = run_page(&st, &plan, &cfg, 7, 1, cursor.as_ref()).unwrap();
            assert_eq!(page.total, all.len());
            stitched.extend(page.items);
            match page.next {
                Some(c) => cursor = Some(c),
                None => break,
            }
        }
        assert_eq!(stitched, all);
        // Replaying the first page at the same epoch is identical.
        let again = run_page(&st, &plan, &cfg, 7, 1, None).unwrap();
        assert_eq!(again.items, all[..1].to_vec());
        // A cursor from another epoch is refused as expired.
        let stale = Cursor {
            epoch: 6,
            plan: plan.fingerprint(m),
            pos: 0,
        };
        assert!(matches!(
            run_page(&st, &plan, &cfg, 7, 1, Some(&stale)),
            Err(PageError::Cursor(CursorError::Expired {
                cursor: 6,
                current: 7
            }))
        ));
        // A cursor from another plan is refused as foreign.
        let foreign = Cursor {
            epoch: 7,
            plan: 123,
            pos: 0,
        };
        assert!(matches!(
            run_page(&st, &plan, &cfg, 7, 1, Some(&foreign)),
            Err(PageError::Cursor(CursorError::PlanMismatch))
        ));
    }
}
