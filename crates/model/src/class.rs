//! Class definitions.

use crate::AttrId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a class in a [`crate::DomainModel`].
///
/// Ids are dense indices assigned at registration time and are stable for the
/// lifetime of the model (classes are never removed, only added — the model
/// is malleable by extension).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Serialize, Deserialize,
)]
pub struct ClassId(pub u16);

impl ClassId {
    /// The dense index of this class.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ClassId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// Definition of a class: its name and the attributes instances of the class
/// are expected to carry.
///
/// The attribute list is advisory (SEMEX is open-world: extraction may attach
/// any attribute to any instance), but it drives schema matching during
/// on-the-fly integration and the display order in browsers.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClassDef {
    /// Unique class name, e.g. `"Person"`.
    pub name: String,
    /// Declared attributes in display order.
    pub attrs: Vec<AttrId>,
    /// The attribute whose value labels an instance in listings (usually
    /// `name`, `title` or `subject`).
    pub label_attr: Option<AttrId>,
    /// True for the classes whose instances denote real-world entities that
    /// reference reconciliation should consolidate (Person, Publication,
    /// Venue, Organization). Structural classes (Message, File, …) have
    /// system-assigned identity and are not reconciled by similarity.
    pub reconcilable: bool,
}

impl ClassDef {
    /// Create a class definition with no declared attributes.
    pub fn new(name: impl Into<String>) -> Self {
        ClassDef {
            name: name.into(),
            attrs: Vec::new(),
            label_attr: None,
            reconcilable: false,
        }
    }

    /// Builder-style: declare attributes.
    pub fn with_attrs(mut self, attrs: Vec<AttrId>) -> Self {
        self.attrs = attrs;
        self
    }

    /// Builder-style: set the labelling attribute.
    pub fn with_label(mut self, attr: AttrId) -> Self {
        self.label_attr = Some(attr);
        self
    }

    /// Builder-style: mark the class as subject to reference reconciliation.
    pub fn reconcilable(mut self) -> Self {
        self.reconcilable = true;
        self
    }

    /// Whether the class declares the given attribute.
    pub fn declares(&self, attr: AttrId) -> bool {
        self.attrs.contains(&attr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_sets_fields() {
        let a = AttrId(0);
        let b = AttrId(1);
        let c = ClassDef::new("Person")
            .with_attrs(vec![a, b])
            .with_label(a)
            .reconcilable();
        assert_eq!(c.name, "Person");
        assert!(c.declares(a));
        assert!(c.declares(b));
        assert!(!c.declares(AttrId(9)));
        assert_eq!(c.label_attr, Some(a));
        assert!(c.reconcilable);
    }

    #[test]
    fn class_id_display() {
        assert_eq!(ClassId(4).to_string(), "c4");
        assert_eq!(ClassId(4).index(), 4);
    }
}
