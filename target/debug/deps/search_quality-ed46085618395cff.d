/root/repo/target/debug/deps/search_quality-ed46085618395cff.d: tests/search_quality.rs tests/common/mod.rs

/root/repo/target/debug/deps/libsearch_quality-ed46085618395cff.rmeta: tests/search_quality.rs tests/common/mod.rs

tests/search_quality.rs:
tests/common/mod.rs:
