//! Path-query plans: start set + step sequence, validation, a
//! most-bound-first planner pass, and the canonical encoding that keys
//! caches and fingerprints cursors.

use crate::step::{Dir, Filter, Step};
use semex_model::DomainModel;
use semex_store::ObjectId;

/// Maximum `Repeat` depth a plan may request.
pub const MAX_REPEAT_DEPTH: usize = 64;
/// Maximum nesting depth of structured steps (union/optional/repeat).
pub const MAX_NESTING: usize = 16;

/// How a path query seeds its first frontier.
#[derive(Debug, Clone, PartialEq)]
pub enum Start {
    /// Every live object in the store.
    All,
    /// Every live instance of a class.
    Class(semex_model::ClassId),
    /// Instances of a class whose display label equals the string exactly.
    Labeled(semex_model::ClassId, String),
    /// One specific object.
    Object(ObjectId),
}

/// A complete path query: a start set and a sequence of steps.
#[derive(Debug, Clone, PartialEq)]
pub struct PathQuery {
    /// Seed of the traversal.
    pub start: Start,
    /// Steps applied left to right.
    pub steps: Vec<Step>,
}

/// A plan that fails structural validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanError {
    /// A class id is outside the domain model.
    UnknownClass(u16),
    /// An association id is outside the domain model.
    UnknownAssoc(u16),
    /// An attribute id is outside the domain model.
    UnknownAttr(u16),
    /// A hop requested a fan-out bound of zero.
    ZeroFanout,
    /// A union step with no branches.
    EmptyUnion,
    /// A repeat depth of zero or beyond [`MAX_REPEAT_DEPTH`].
    BadRepeatDepth(usize),
    /// Structured steps nested beyond [`MAX_NESTING`].
    TooDeep,
}

impl std::fmt::Display for PlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanError::UnknownClass(c) => write!(f, "plan references unknown class id c{c}"),
            PlanError::UnknownAssoc(a) => write!(f, "plan references unknown association id r{a}"),
            PlanError::UnknownAttr(a) => write!(f, "plan references unknown attribute id a{a}"),
            PlanError::ZeroFanout => write!(f, "hop fan-out bound must be at least 1"),
            PlanError::EmptyUnion => write!(f, "union step has no branches"),
            PlanError::BadRepeatDepth(d) => {
                write!(f, "repeat depth {d} outside 1..={MAX_REPEAT_DEPTH}")
            }
            PlanError::TooDeep => write!(f, "steps nested deeper than {MAX_NESTING}"),
        }
    }
}

impl std::error::Error for PlanError {}

impl PathQuery {
    /// A new plan.
    pub fn new(start: Start, steps: Vec<Step>) -> Self {
        PathQuery { start, steps }
    }

    /// Check every id against the model and every bound for sanity.
    pub fn validate(&self, model: &DomainModel) -> Result<(), PlanError> {
        match &self.start {
            Start::Class(c) | Start::Labeled(c, _) => check_class(model, *c)?,
            Start::All | Start::Object(_) => {}
        }
        validate_steps(model, &self.steps, 0)
    }

    /// The planner pass. Reorders each maximal run of frontier-narrowing
    /// steps (class constraints and filters commute with each other, never
    /// with hops) so the most-bound — cheapest, most selective — check
    /// runs first: class membership (an id comparison) before numeric
    /// ranges before string equality before substring scans. Also fuses a
    /// leading class constraint into an unbound start, so `* :Person …`
    /// seeds from the Person extent instead of scanning every object.
    /// Semantics are unchanged: set intersection commutes.
    pub fn optimize(mut self) -> PathQuery {
        if let (Start::All, Some(Step::Class(c))) = (&self.start, self.steps.first()) {
            self.start = Start::Class(*c);
            self.steps.remove(0);
        }
        order_narrowing_runs(&mut self.steps);
        self
    }

    /// Canonical textual encoding of the plan. Two plans answering
    /// identically at an epoch encode identically (modulo planner-visible
    /// rewrites), so this string keys the read cache and is hashed into
    /// cursors. Uses model names, so it is stable across model growth.
    pub fn canonical(&self, model: &DomainModel) -> String {
        let mut out = String::from("pathq1 ");
        match &self.start {
            Start::All => out.push('*'),
            Start::Class(c) => out.push_str(&model.class_def(*c).name),
            Start::Labeled(c, label) => {
                out.push_str(&model.class_def(*c).name);
                out.push_str("(\"");
                escape_into(label, &mut out);
                out.push_str("\")");
            }
            Start::Object(o) => out.push_str(&o.to_string()),
        }
        encode_steps(model, &self.steps, &mut out);
        out
    }

    /// 64-bit FNV-1a fingerprint of the canonical encoding; cursors carry
    /// it so a cursor is only ever replayed against the plan that minted
    /// it.
    pub fn fingerprint(&self, model: &DomainModel) -> u64 {
        fnv1a(self.canonical(model).as_bytes())
    }
}

/// FNV-1a over a byte string.
pub(crate) fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn check_class(model: &DomainModel, c: semex_model::ClassId) -> Result<(), PlanError> {
    if c.index() >= model.class_count() {
        return Err(PlanError::UnknownClass(c.0));
    }
    Ok(())
}

fn validate_steps(model: &DomainModel, steps: &[Step], depth: usize) -> Result<(), PlanError> {
    if depth > MAX_NESTING {
        return Err(PlanError::TooDeep);
    }
    for step in steps {
        match step {
            Step::Hop { assoc, fanout, .. } => {
                if assoc.index() >= model.assoc_count() {
                    return Err(PlanError::UnknownAssoc(assoc.0));
                }
                if *fanout == Some(0) {
                    return Err(PlanError::ZeroFanout);
                }
            }
            Step::Class(c) => check_class(model, *c)?,
            Step::Filter(f) => {
                let attr = match f {
                    Filter::AttrEq(a, _) | Filter::AttrContains(a, _) => *a,
                    Filter::Range { attr, .. } => *attr,
                };
                if attr.index() >= model.attr_count() {
                    return Err(PlanError::UnknownAttr(attr.0));
                }
            }
            Step::Union(branches) => {
                if branches.is_empty() {
                    return Err(PlanError::EmptyUnion);
                }
                for b in branches {
                    validate_steps(model, b, depth + 1)?;
                }
            }
            Step::Optional(branch) => validate_steps(model, branch, depth + 1)?,
            Step::Repeat { steps, max_depth } => {
                if *max_depth == 0 || *max_depth > MAX_REPEAT_DEPTH {
                    return Err(PlanError::BadRepeatDepth(*max_depth));
                }
                validate_steps(model, steps, depth + 1)?;
            }
        }
    }
    Ok(())
}

/// Selectivity rank of a narrowing step (lower runs first).
fn narrowing_rank(step: &Step) -> Option<u8> {
    match step {
        Step::Class(_) => Some(0),
        Step::Filter(Filter::Range { .. }) => Some(1),
        Step::Filter(Filter::AttrEq(..)) => Some(2),
        Step::Filter(Filter::AttrContains(..)) => Some(3),
        _ => None,
    }
}

fn order_narrowing_runs(steps: &mut [Step]) {
    let mut i = 0;
    while i < steps.len() {
        match &mut steps[i] {
            Step::Union(branches) => {
                for b in branches {
                    order_narrowing_runs(b);
                }
            }
            Step::Optional(branch) => order_narrowing_runs(branch),
            Step::Repeat { steps, .. } => order_narrowing_runs(steps),
            _ => {}
        }
        if narrowing_rank(&steps[i]).is_none() {
            i += 1;
            continue;
        }
        let mut j = i;
        while j < steps.len() && narrowing_rank(&steps[j]).is_some() {
            j += 1;
        }
        // Stable sort keeps the written order among equally-ranked checks.
        steps[i..j].sort_by_key(|s| narrowing_rank(s).unwrap_or(u8::MAX));
        i = j;
    }
}

fn escape_into(s: &str, out: &mut String) {
    for c in s.chars() {
        if c == '"' || c == '\\' {
            out.push('\\');
        }
        out.push(c);
    }
}

fn encode_steps(model: &DomainModel, steps: &[Step], out: &mut String) {
    for step in steps {
        out.push(' ');
        encode_step(model, step, out);
    }
}

fn encode_step(model: &DomainModel, step: &Step, out: &mut String) {
    match step {
        Step::Hop { dir, assoc, fanout } => {
            out.push_str(match dir {
                Dir::Forward => "->",
                Dir::Inverse => "<-",
            });
            out.push_str(&model.assoc_def(*assoc).name);
            if let Some(k) = fanout {
                out.push('#');
                out.push_str(&k.to_string());
            }
        }
        Step::Class(c) => {
            out.push(':');
            out.push_str(&model.class_def(*c).name);
        }
        Step::Filter(f) => {
            out.push('[');
            match f {
                Filter::AttrEq(a, v) => {
                    out.push_str(&model.attr_def(*a).name);
                    out.push_str("=\"");
                    escape_into(v, out);
                    out.push('"');
                }
                Filter::AttrContains(a, v) => {
                    out.push_str(&model.attr_def(*a).name);
                    out.push_str("~\"");
                    escape_into(v, out);
                    out.push('"');
                }
                Filter::Range { attr, min, max } => {
                    out.push_str(&model.attr_def(*attr).name);
                    out.push_str(" in ");
                    if let Some(m) = min {
                        out.push_str(&m.to_string());
                    }
                    out.push_str("..");
                    if let Some(m) = max {
                        out.push_str(&m.to_string());
                    }
                }
            }
            out.push(']');
        }
        Step::Union(branches) => {
            out.push('(');
            for (i, b) in branches.iter().enumerate() {
                if i > 0 {
                    out.push('|');
                }
                encode_branch(model, b, out);
            }
            out.push(')');
        }
        Step::Optional(branch) => {
            out.push_str("?(");
            encode_branch(model, branch, out);
            out.push(')');
        }
        Step::Repeat { steps, max_depth } => {
            out.push('{');
            encode_branch(model, steps, out);
            out.push_str("}*");
            out.push_str(&max_depth.to_string());
        }
    }
}

fn encode_branch(model: &DomainModel, steps: &[Step], out: &mut String) {
    for (i, step) in steps.iter().enumerate() {
        if i > 0 {
            out.push(' ');
        }
        encode_step(model, step, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use semex_model::names::{assoc, attr, class};
    use semex_model::{AssocId, AttrId, ClassId};

    fn model() -> DomainModel {
        DomainModel::builtin()
    }

    #[test]
    fn canonical_is_deterministic_and_readable() {
        let m = model();
        let person = m.class(class::PERSON).unwrap();
        let sender = m.assoc(assoc::SENDER).unwrap();
        let date = m.attr(attr::DATE).unwrap();
        let plan = PathQuery::new(
            Start::Labeled(person, "Ann \"A\" Walker".into()),
            vec![
                Step::Hop {
                    dir: Dir::Inverse,
                    assoc: sender,
                    fanout: Some(8),
                },
                Step::Filter(Filter::Range {
                    attr: date,
                    min: Some(100),
                    max: None,
                }),
            ],
        );
        let c = plan.canonical(&m);
        assert_eq!(
            c,
            "pathq1 Person(\"Ann \\\"A\\\" Walker\") <-Sender#8 [date in 100..]"
        );
        assert_eq!(plan.canonical(&m), c);
        assert_eq!(
            plan.fingerprint(&m),
            PathQuery::new(plan.start.clone(), plan.steps.clone()).fingerprint(&m)
        );
    }

    #[test]
    fn optimize_fuses_start_and_orders_filters() {
        let m = model();
        let person = m.class(class::PERSON).unwrap();
        let name = m.attr(attr::NAME).unwrap();
        let plan = PathQuery::new(
            Start::All,
            vec![
                Step::Class(person),
                Step::Filter(Filter::AttrContains(name, "ann".into())),
                Step::Filter(Filter::AttrEq(name, "Ann".into())),
            ],
        )
        .optimize();
        assert_eq!(plan.start, Start::Class(person));
        // Equality check ordered before the substring scan.
        assert!(matches!(
            plan.steps.as_slice(),
            [
                Step::Filter(Filter::AttrEq(..)),
                Step::Filter(Filter::AttrContains(..))
            ]
        ));
    }

    #[test]
    fn validate_rejects_bad_plans() {
        let m = model();
        let bad_assoc = PathQuery::new(Start::All, vec![Step::forward(AssocId(u16::MAX))]);
        assert_eq!(
            bad_assoc.validate(&m),
            Err(PlanError::UnknownAssoc(u16::MAX))
        );
        let bad_class = PathQuery::new(Start::Class(ClassId(u16::MAX)), vec![]);
        assert_eq!(
            bad_class.validate(&m),
            Err(PlanError::UnknownClass(u16::MAX))
        );
        let zero = PathQuery::new(
            Start::All,
            vec![Step::Hop {
                dir: Dir::Forward,
                assoc: AssocId(0),
                fanout: Some(0),
            }],
        );
        assert_eq!(zero.validate(&m), Err(PlanError::ZeroFanout));
        let deep_repeat = PathQuery::new(
            Start::All,
            vec![Step::Repeat {
                steps: vec![Step::forward(AssocId(0))],
                max_depth: MAX_REPEAT_DEPTH + 1,
            }],
        );
        assert!(matches!(
            deep_repeat.validate(&m),
            Err(PlanError::BadRepeatDepth(_))
        ));
        let bad_attr = PathQuery::new(
            Start::All,
            vec![Step::Filter(Filter::AttrEq(AttrId(u16::MAX), "x".into()))],
        );
        assert_eq!(bad_attr.validate(&m), Err(PlanError::UnknownAttr(u16::MAX)));
        let empty_union = PathQuery::new(Start::All, vec![Step::Union(vec![])]);
        assert_eq!(empty_union.validate(&m), Err(PlanError::EmptyUnion));
    }
}
