//! Criterion bench backing experiment E8: schema matching and import
//! throughput for on-the-fly integration.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use semex_bench::extract_corpus;
use semex_corpus::{generate_personal, CorpusConfig};
use semex_extract::csv::{parse_csv, Table};
use semex_integrate::{import, SchemaMatcher};
use semex_recon::{reconcile, ReconConfig, Variant};
use semex_store::Store;

fn base_store() -> Store {
    let cfg = CorpusConfig {
        seed: 17,
        ..CorpusConfig::default()
    }
    .scaled_size(0.5);
    let mut store = extract_corpus(&generate_personal(&cfg));
    reconcile(&mut store, Variant::Full, &ReconConfig::default());
    store
}

fn attendee_table(rows: usize) -> Table {
    let cfg = CorpusConfig {
        seed: 17,
        ..CorpusConfig::default()
    }
    .scaled_size(0.5);
    let corpus = generate_personal(&cfg);
    let mut csv = String::from("attendee,e-mail address\n");
    for p in corpus.world.people.iter().cycle().take(rows) {
        csv.push_str(&format!("{},{}\n", p.canonical_name(), p.emails[0]));
    }
    parse_csv(&csv).unwrap()
}

fn bench_matcher(c: &mut Criterion) {
    let store = base_store();
    let table = attendee_table(40);
    let mut group = c.benchmark_group("integrate");
    group.bench_function("matcher_build", |b| {
        b.iter(|| SchemaMatcher::new(&store));
    });
    let matcher = SchemaMatcher::new(&store);
    group.bench_function("match_table", |b| {
        b.iter(|| matcher.match_table(&table));
    });
    group.finish();
}

fn bench_import(c: &mut Criterion) {
    let store = base_store();
    let mut group = c.benchmark_group("integrate_import");
    group.sample_size(10);
    for rows in [10usize, 40] {
        let table = attendee_table(rows);
        let mapping = SchemaMatcher::new(&store).match_table(&table).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(rows), &table, |b, table| {
            b.iter(|| {
                let mut s = store.clone();
                import(&mut s, "bench", table, &mapping, &ReconConfig::sequential()).unwrap()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_matcher, bench_import);
criterion_main!(benches);
