/root/repo/target/release/deps/semex_browse-c2b5092643c62de2.d: crates/browse/src/lib.rs crates/browse/src/analyze.rs crates/browse/src/pattern.rs

/root/repo/target/release/deps/libsemex_browse-c2b5092643c62de2.rlib: crates/browse/src/lib.rs crates/browse/src/analyze.rs crates/browse/src/pattern.rs

/root/repo/target/release/deps/libsemex_browse-c2b5092643c62de2.rmeta: crates/browse/src/lib.rs crates/browse/src/analyze.rs crates/browse/src/pattern.rs

crates/browse/src/lib.rs:
crates/browse/src/analyze.rs:
crates/browse/src/pattern.rs:
