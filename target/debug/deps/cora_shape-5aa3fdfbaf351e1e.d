/root/repo/target/debug/deps/cora_shape-5aa3fdfbaf351e1e.d: tests/cora_shape.rs tests/common/mod.rs

/root/repo/target/debug/deps/libcora_shape-5aa3fdfbaf351e1e.rmeta: tests/cora_shape.rs tests/common/mod.rs

tests/cora_shape.rs:
tests/common/mod.rs:
