/root/repo/target/debug/examples/personal_dashboard-98d4c0f883c6a00c.d: examples/personal_dashboard.rs

/root/repo/target/debug/examples/libpersonal_dashboard-98d4c0f883c6a00c.rmeta: examples/personal_dashboard.rs

examples/personal_dashboard.rs:
