/root/repo/target/release/deps/semex_serve-076a0674e4c244e8.d: crates/serve/src/lib.rs crates/serve/src/json.rs crates/serve/src/protocol.rs crates/serve/src/client.rs crates/serve/src/server.rs crates/serve/src/writer.rs

/root/repo/target/release/deps/semex_serve-076a0674e4c244e8: crates/serve/src/lib.rs crates/serve/src/json.rs crates/serve/src/protocol.rs crates/serve/src/client.rs crates/serve/src/server.rs crates/serve/src/writer.rs

crates/serve/src/lib.rs:
crates/serve/src/json.rs:
crates/serve/src/protocol.rs:
crates/serve/src/client.rs:
crates/serve/src/server.rs:
crates/serve/src/writer.rs:
