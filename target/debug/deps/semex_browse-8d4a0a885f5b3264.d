/root/repo/target/debug/deps/semex_browse-8d4a0a885f5b3264.d: crates/browse/src/lib.rs crates/browse/src/analyze.rs crates/browse/src/pattern.rs

/root/repo/target/debug/deps/semex_browse-8d4a0a885f5b3264: crates/browse/src/lib.rs crates/browse/src/analyze.rs crates/browse/src/pattern.rs

crates/browse/src/lib.rs:
crates/browse/src/analyze.rs:
crates/browse/src/pattern.rs:
