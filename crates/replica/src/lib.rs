#![warn(missing_docs)]

//! `semex-replica`: physical replication for the SEMEX serving stack —
//! journal shipping, read replicas, and no-lost-acks failover.
//!
//! The journal is already the primary's crash-durability mechanism; this
//! crate makes it the replication log too. A primary runs a
//! [`ReplicationHub`] next to its serve stack: followers connect, say
//! which sequence they hold, and the hub ships the journal to them
//! straight from disk — a snapshot frame when compaction removed the
//! follower's position, then sealed commit batches in lock-step. A
//! follower applies every batch through its **own** journal-first write
//! path, so its directory is an ordinary journal: recovery, compaction,
//! and inspection tools all work on it, and a follower serving reads at
//! epoch E is byte-identical to the primary at epoch E.
//!
//! Three guarantees, and where they come from:
//!
//! 1. **No client-acked write is ever lost by failover.** The hub is the
//!    serve stack's [`CommitTap`](semex_serve::CommitTap): after a batch
//!    commits, the writer blocks until every connected follower acked the
//!    new head *before* any client ack is released. Promote any follower
//!    after a primary crash and every acked write is in it.
//! 2. **Bounded staleness, typed.** A follower's serve stack carries a
//!    [`ReplicaRole`]: writes answer
//!    `not_primary`, reads lagging beyond `--max-lag` answer
//!    `stale_replica` — stale data is refused, never silently served.
//! 3. **Promotion is a wait-for-durable-prefix handshake.** The pull loop
//!    stops, the in-flight batch finishes applying, and only then does
//!    the follower accept writes — at an epoch every surviving acked
//!    write is below.
//!
//! The crash sweep in `tests/cluster_sweep.rs` proves guarantee 1 the
//! hard way: the primary is killed at *every* journal I/O operation and
//! *every* replication send point, a follower is promoted, and the
//! promoted state must contain every acked write and match the primary's
//! state byte-for-byte at the promoted epoch.

mod follower;
mod hub;

pub use follower::{bootstrap, ApplySink, Bootstrap, PullBackoff, Puller, ServeSink};
pub use hub::{HubConfig, ReplicationHub, SendGate};

use semex_core::{Semex, SemexConfig};
use semex_journal::JournalConfig;
use semex_serve::{serve, Master, ReplicaRole, ServeConfig, ServeHandle, TenantId};
use std::net::SocketAddr;
use std::path::Path;
use std::sync::Arc;

/// A follower's running pieces: the read-serving stack and its role
/// (promote with a `promote` request, or [`ReplicaRole::promote`]).
#[derive(Debug)]
pub struct Follower {
    /// The serving stack (reads only, until promotion).
    pub serve: ServeHandle,
    /// The role gate shared with the serve stack.
    pub role: Arc<ReplicaRole>,
}

/// Stand up a complete follower: bootstrap `dir` from the primary
/// (snapshot + journal tail catch-up), recover a durable master from it,
/// serve reads on `addr` under a follower role with the given lag bound,
/// and start the pull loop — with the promotion handshake pre-installed,
/// so a `promote` request (or a direct [`ReplicaRole::promote`]) flips
/// this process to primary without losing the in-flight batch.
pub fn follow(
    primary: SocketAddr,
    dir: &Path,
    addr: impl std::net::ToSocketAddrs,
    mut config: ServeConfig,
    journal_config: JournalConfig,
    max_lag: u64,
    name: impl Into<String>,
) -> Result<Follower, String> {
    bootstrap(primary, dir)?;
    let (durable, _report) = Semex::open_durable_with(dir, SemexConfig::default(), journal_config)
        .map_err(|e| format!("cannot open follower journal: {e}"))?;
    let role = Arc::new(ReplicaRole::follower(max_lag));
    config.role = Some(Arc::clone(&role));
    let serve = serve(Master::Durable(durable), addr, config)
        .map_err(|e| format!("cannot serve follower: {e}"))?;
    let sink = Arc::new(ServeSink::new(serve.replication_sink(), TenantId::DEFAULT));
    let puller = Puller::start(
        primary,
        name,
        sink,
        Some(Arc::clone(&role)),
        PullBackoff::default(),
    )
    .map_err(|e| format!("cannot start pull loop: {e}"))?;
    role.set_promote_hook(puller.into_promote_hook());
    Ok(Follower { serve, role })
}

/// Attach a replication hub to a primary's serve configuration: start
/// the hub on `listen` shipping the journal under `dir` (with
/// `boot_head` as the initial durable head) and install it as the
/// config's commit tap, so client acks wait for the connected follower
/// set. Returns the hub; serve with the modified config afterward.
pub fn replicate(
    dir: &Path,
    boot_head: u64,
    listen: impl std::net::ToSocketAddrs,
    config: &mut ServeConfig,
    hub_config: HubConfig,
) -> std::io::Result<Arc<ReplicationHub>> {
    let hub = ReplicationHub::start(dir.to_path_buf(), listen, boot_head, hub_config)?;
    config.commit_tap = Some(Arc::clone(&hub) as Arc<dyn semex_serve::CommitTap>);
    Ok(hub)
}
