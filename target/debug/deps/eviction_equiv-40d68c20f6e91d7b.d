/root/repo/target/debug/deps/eviction_equiv-40d68c20f6e91d7b.d: crates/serve/tests/eviction_equiv.rs Cargo.toml

/root/repo/target/debug/deps/libeviction_equiv-40d68c20f6e91d7b.rmeta: crates/serve/tests/eviction_equiv.rs Cargo.toml

crates/serve/tests/eviction_equiv.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
