/root/repo/target/debug/deps/framing_prop-bd5d965fac1f21a0.d: crates/journal/tests/framing_prop.rs

/root/repo/target/debug/deps/libframing_prop-bd5d965fac1f21a0.rmeta: crates/journal/tests/framing_prop.rs

crates/journal/tests/framing_prop.rs:
