/root/repo/target/debug/deps/malleable_model-74cbc3a61a52011d.d: tests/malleable_model.rs

/root/repo/target/debug/deps/malleable_model-74cbc3a61a52011d: tests/malleable_model.rs

tests/malleable_model.rs:
