//! Engine-side evaluation of the legacy triple-pattern surface.
//!
//! The serve layer's `Request::Query` (and the `semex query` command)
//! speak conjunctive triple patterns ([`semex_browse::pattern`]). This
//! module evaluates them on the path engine's traversal core: every
//! candidate enumeration is a one-object `expand_hop` call — the same
//! primitive path plans execute — with a most-bound-first pattern order
//! and a binding *stack* (push to bind, truncate to undo) instead of
//! hash-map snapshots. Output is bit-identical to
//! [`semex_browse::pattern::query`]; `query_equiv_prop.rs` pins that.

use crate::exec::expand_hop;
use crate::step::Dir;
use semex_browse::pattern::{parse_patterns, Binding, ParseError, Pattern, Term};
use semex_store::{ObjectId, Store};

/// Evaluate a conjunctive pattern query, returning all variable bindings,
/// deduplicated and deterministically ordered — the same contract (and
/// answers) as [`semex_browse::pattern::query`].
pub fn query(store: &Store, patterns: &[Pattern]) -> Vec<Binding> {
    let mut results = Vec::new();
    let mut stack: Vec<(String, ObjectId)> = Vec::new();
    let mut used = vec![false; patterns.len()];
    solve(store, patterns, &mut used, &mut stack, &mut results);
    results.sort_by_key(|b| {
        let mut items: Vec<(&String, &ObjectId)> = b.iter().collect();
        items.sort();
        items
            .into_iter()
            .map(|(k, v)| format!("{k}={v};"))
            .collect::<String>()
    });
    results.dedup();
    results
}

/// Parse and run a textual pattern query in one call.
pub fn query_str(store: &Store, text: &str) -> Result<Vec<Binding>, ParseError> {
    Ok(query(store, &parse_patterns(store, text)?))
}

fn lookup(stack: &[(String, ObjectId)], name: &str) -> Option<ObjectId> {
    stack.iter().rev().find(|(n, _)| n == name).map(|&(_, v)| v)
}

/// The value a term denotes under the current stack, alias-resolved.
fn term_value(store: &Store, term: &Term, stack: &[(String, ObjectId)]) -> Option<ObjectId> {
    match term {
        Term::Const(o) => Some(store.resolve(*o)),
        Term::Var(v) => lookup(stack, v),
    }
}

fn boundness(store: &Store, p: &Pattern, stack: &[(String, ObjectId)]) -> u32 {
    u32::from(term_value(store, &p.subject, stack).is_some())
        + u32::from(term_value(store, &p.object, stack).is_some())
}

fn solve(
    store: &Store,
    patterns: &[Pattern],
    used: &mut [bool],
    stack: &mut Vec<(String, ObjectId)>,
    results: &mut Vec<Binding>,
) {
    // Most-bound-first: constants and already-bound variables make the
    // candidate set a (near-)point lookup instead of a scan.
    let next = (0..patterns.len())
        .filter(|&i| !used[i])
        .max_by_key(|&i| boundness(store, &patterns[i], stack));
    let Some(i) = next else {
        results.push(stack.iter().cloned().collect());
        return;
    };
    used[i] = true;
    let p = &patterns[i];
    let s = term_value(store, &p.subject, stack);
    let o = term_value(store, &p.object, stack);
    // Both positions naming the same still-unbound variable force a
    // self-loop; the guard keeps revisited variables (e.g. a variable
    // re-reached through an inverse hop) from enumerating pairs that a
    // later bind check would reject anyway.
    let self_loop = match (&p.subject, &p.object) {
        (Term::Var(a), Term::Var(b)) => a == b,
        _ => false,
    };

    let candidates: Vec<(ObjectId, ObjectId)> = match (s, o) {
        (Some(s), Some(o)) => {
            if expand_hop(store, &[s], Dir::Forward, p.assoc, None, 1).contains(&o) {
                vec![(s, o)]
            } else {
                Vec::new()
            }
        }
        (Some(s), None) => expand_hop(store, &[s], Dir::Forward, p.assoc, None, 1)
            .into_iter()
            .filter(|&t| !self_loop || t == s)
            .map(|t| (s, t))
            .collect(),
        (None, Some(o)) => expand_hop(store, &[o], Dir::Inverse, p.assoc, None, 1)
            .into_iter()
            .filter(|&t| !self_loop || t == o)
            .map(|t| (t, o))
            .collect(),
        (None, None) => {
            let domain = store.model().assoc_def(p.assoc).domain;
            let mut out = Vec::new();
            for s in store.objects_of_class(domain) {
                let s = store.resolve(s);
                for t in expand_hop(store, &[s], Dir::Forward, p.assoc, None, 1) {
                    if !self_loop || t == s {
                        out.push((s, t));
                    }
                }
            }
            out
        }
    };

    for (sv, ov) in candidates {
        let depth = stack.len();
        let mut ok = true;
        for (term, value) in [(&p.subject, sv), (&p.object, ov)] {
            if let Term::Var(name) = term {
                let value = store.resolve(value);
                match lookup(stack, name) {
                    Some(bound) if bound != value => {
                        ok = false;
                        break;
                    }
                    Some(_) => {}
                    None => stack.push((name.clone(), value)),
                }
            }
        }
        if ok {
            solve(store, patterns, used, stack, results);
        }
        stack.truncate(depth);
    }
    used[i] = false;
}

#[cfg(test)]
mod tests {
    use super::*;
    use semex_browse::pattern;
    use semex_extract::{bibtex::extract_bibtex, ExtractContext};
    use semex_store::{SourceInfo, SourceKind};

    fn store() -> Store {
        let mut st = Store::with_builtin_model();
        let src = st.register_source(SourceInfo::new("t", SourceKind::Synthetic));
        let mut ctx = ExtractContext::new(&mut st, src);
        extract_bibtex(
            "@inproceedings{a, title={Paper One}, author={Ann Walker and Bob Fisher}, booktitle={SIGMOD}, year=2004}\n\
             @inproceedings{b, title={Paper Two}, author={Ann Walker}, booktitle={SIGMOD}, year=2005}\n\
             @inproceedings{c, title={Paper Three}, author={Bob Fisher}, booktitle={VLDB}, year=2005}",
            &mut ctx,
        )
        .unwrap();
        st
    }

    #[test]
    fn matches_browse_pattern_answers() {
        let st = store();
        for text in [
            r#"?pub AuthoredBy ?p . ?pub PublishedIn "SIGMOD""#,
            "?pub AuthoredBy ?x . ?pub AuthoredBy ?y",
            "?a AuthoredBy ?b",
            "?m RepliedTo ?m",
            "",
        ] {
            let engine = query_str(&st, text).unwrap();
            let legacy = pattern::query_str(&st, text).unwrap();
            assert_eq!(engine, legacy, "{text}");
        }
    }

    #[test]
    fn parse_errors_pass_through() {
        let st = store();
        assert!(matches!(
            query_str(&st, "?a Bogus ?b"),
            Err(ParseError::UnknownAssoc(_))
        ));
    }
}
