//! The per-shard propagation worklist.
//!
//! [`run_shard`] replays the engine's dependency-graph fixed point over one
//! [`Shard`](crate::shard::Shard): a FIFO of candidate evaluations with
//! merge-triggered re-activation, a shard-local union-find and members
//! table, and a pooled-attribute-score memo. Scoring is abstracted behind
//! [`Oracle`] so the worklist can be driven by the real reference table or
//! by a test double.
//!
//! Local state is index-mapped: shard references get dense local indices in
//! ascending global order, and the local union-find mirrors exactly the
//! global one restricted to the shard (same operation order, same sizes,
//! same union-by-size tie-breaks), so a sequential run over shards in order
//! is operation-for-operation the same computation the unsharded engine
//! performed — and a parallel run over the same shards is byte-identical to
//! the sequential one, because shards share no state at all.

use crate::shard::Shard;
use crate::UnionFind;
use std::collections::{HashMap, VecDeque};

/// Scoring and graph callbacks the worklist needs from the engine.
///
/// `root_of` in [`Oracle::evidence`] maps a *global* reference index to an
/// opaque cluster token: two references get the same token iff they are
/// currently clustered together. Out-of-shard references (which, by the
/// partition closure, evidence never actually consults) map to a singleton
/// token derived from the reference itself.
pub(crate) trait Oracle {
    /// Singleton-pool attribute score of candidate `ci` (global index).
    fn base(&self, ci: u32) -> f64;
    /// Pooled attribute score of candidate `ci` over the two clusters'
    /// member lists (global reference indices, in merge order).
    fn pooled_attr(&self, ci: u32, ma: &[u32], mb: &[u32]) -> f64;
    /// Association evidence for the pair `(a, b)` under the clustering
    /// described by `root_of`.
    fn evidence(&self, a: u32, b: u32, root_of: &mut dyn FnMut(u32) -> u64) -> f64;
    /// Combine an attribute score with association evidence.
    fn combine(&self, attr: f64, ev: f64) -> f64;
    /// Merge threshold.
    fn threshold(&self) -> f64;
    /// Whether clusters pool attributes (reference enrichment).
    fn enrich(&self) -> bool;
    /// Every evidence neighbour of global reference `r`, any channel.
    fn neighbors(&self, r: u32, sink: &mut dyn FnMut(u32));
}

/// What one shard's worklist produced.
pub(crate) struct ShardOutcome {
    /// Candidate evaluations, including re-runs.
    pub iterations: usize,
    /// Pooled-score memo hits (evaluations that skipped pooling + scoring).
    pub memo_hits: usize,
    /// Multi-member clusters, as ascending global reference indices.
    pub clusters: Vec<Vec<u32>>,
}

/// Token for a reference outside the shard: high bit tags it so it can
/// never collide with a local root (which is bounded by the shard size).
fn foreign_token(g: u32) -> u64 {
    (1u64 << 32) | g as u64
}

/// Run the propagation worklist over one shard. `pairs` is the global
/// candidate list (the shard selects into it); `must` and `cannot` are the
/// resolved global constraint pairs — pairs not fully inside the shard are
/// ignored (the partition puts both endpoints of every effective constraint
/// in the same component; a cannot-link spanning two shards can never veto
/// a merge, since merges never cross shards).
pub(crate) fn run_shard<O: Oracle>(
    shard: &Shard,
    pairs: &[(u32, u32)],
    must: &[(u32, u32)],
    cannot: &[(u32, u32)],
    oracle: &O,
) -> ShardOutcome {
    let m = shard.refs.len();
    let k = shard.pairs.len();
    let pos: HashMap<u32, u32> = shard
        .refs
        .iter()
        .enumerate()
        .map(|(i, &g)| (g, i as u32))
        .collect();
    let local = |g: u32| -> Option<usize> { pos.get(&g).map(|&l| l as usize) };

    let mut uf = UnionFind::new(m);
    // Members hold *global* indices so pooled scoring needs no translation;
    // merge order (root keeps its list, loser's list is appended) matches
    // the unsharded engine exactly.
    let mut members: Vec<Vec<u32>> = shard.refs.iter().map(|&g| vec![g]).collect();

    // Cluster-version counters for the memo: bumped whenever a cluster's
    // member list changes, so a memoized score is valid iff both endpoint
    // roots still carry the version it was computed under.
    let mut version: Vec<u32> = vec![0; m];
    let mut next_version: u32 = 0;

    // Seed must-link pairs in configuration order, replicating the global
    // engine's members motion.
    for &(ga, gb) in must {
        let (Some(la), Some(lb)) = (local(ga), local(gb)) else {
            continue;
        };
        let (ra, rb) = (uf.find(la), uf.find(lb));
        if ra != rb {
            uf.union(ra, rb);
            let root = uf.find(ra);
            let other = if root == ra { rb } else { ra };
            let moved = std::mem::take(&mut members[other]);
            members[root].extend(moved);
            next_version += 1;
            version[root] = next_version;
        }
    }

    // Constraint pairs with both endpoints in the shard, as local indices.
    let cannot_local: Vec<(usize, usize)> = cannot
        .iter()
        .filter_map(|&(x, y)| Some((local(x)?, local(y)?)))
        .collect();
    let allowed = |uf: &mut UnionFind, a: usize, b: usize| -> bool {
        if cannot_local.is_empty() {
            return true;
        }
        let (ra, rb) = (uf.find(a), uf.find(b));
        for &(x, y) in &cannot_local {
            let (rx, ry) = (uf.find(x), uf.find(y));
            if (rx == ra && ry == rb) || (rx == rb && ry == ra) {
                return false;
            }
        }
        true
    };

    // Local incidence: shard ref → shard-local candidate queue ids, in
    // ascending global candidate order (shard.pairs is ascending).
    let mut incident: Vec<Vec<u32>> = vec![Vec::new(); m];
    for (qi, &ci) in shard.pairs.iter().enumerate() {
        let (a, b) = pairs[ci as usize];
        incident[local(a).expect("candidate endpoint in shard")].push(qi as u32);
        incident[local(b).expect("candidate endpoint in shard")].push(qi as u32);
    }

    let mut queue: VecDeque<u32> = (0..k as u32).collect();
    let mut queued = vec![true; k];
    let mut decided = vec![false; k];
    // Memo entries: (root_a, version_a, root_b, version_b, score).
    type MemoEntry = (u32, u32, u32, u32, f64);
    let mut memo: Vec<Option<MemoEntry>> = vec![None; k];
    let cap = k.saturating_mul(64).max(1024);
    let mut iterations = 0usize;
    let mut memo_hits = 0usize;

    while let Some(qi) = queue.pop_front() {
        let qi = qi as usize;
        queued[qi] = false;
        if decided[qi] {
            continue;
        }
        iterations += 1;
        if iterations > cap {
            break; // safety valve; monotone merging makes this unreachable in practice
        }
        let ci = shard.pairs[qi];
        let (a, b) = pairs[ci as usize];
        let (la, lb) = (
            local(a).expect("candidate endpoint in shard"),
            local(b).expect("candidate endpoint in shard"),
        );
        if uf.same(la, lb) {
            decided[qi] = true;
            continue;
        }
        let attr = if oracle.enrich() {
            let (ra, rb) = (uf.find(la), uf.find(lb));
            let key = (ra as u32, version[ra], rb as u32, version[rb]);
            match memo[qi] {
                Some((ka, va, kb, vb, s)) if (ka, va, kb, vb) == key => {
                    memo_hits += 1;
                    s
                }
                _ => {
                    let s = oracle.pooled_attr(ci, &members[ra], &members[rb]);
                    memo[qi] = Some((key.0, key.1, key.2, key.3, s));
                    s
                }
            }
        } else {
            oracle.base(ci)
        };
        let ev = oracle.evidence(a, b, &mut |g| match pos.get(&g) {
            Some(&lg) => uf.find_const(lg as usize) as u64,
            None => foreign_token(g),
        });
        let combined = oracle.combine(attr, ev);
        if combined < oracle.threshold() {
            continue; // may be re-activated by a future merge
        }
        if !allowed(&mut uf, la, lb) {
            decided[qi] = true; // permanently vetoed
            continue;
        }
        // Merge the clusters.
        let (ra, rb) = (uf.find(la), uf.find(lb));
        uf.union(la, lb);
        let root = uf.find(la);
        let other = if root == ra { rb } else { ra };
        let moved = std::mem::take(&mut members[other]);
        members[root].extend(moved);
        next_version += 1;
        version[root] = next_version;
        decided[qi] = true;

        // Re-activate candidates whose evidence (or pool) changed:
        // everything incident to the merged references' neighbours, and —
        // under enrichment — to the merged cluster itself.
        let mut touched: Vec<u32> = Vec::new();
        for &r in [a, b].iter() {
            oracle.neighbors(r, &mut |g| touched.push(g));
        }
        if oracle.enrich() {
            touched.extend(members[root].iter().copied());
        }
        touched.sort_unstable();
        touched.dedup();
        for t in touched {
            let Some(lt) = local(t) else {
                continue; // cross-shard neighbour: its shard owns those pairs
            };
            for &cid in &incident[lt] {
                if !queued[cid as usize] && !decided[cid as usize] {
                    queued[cid as usize] = true;
                    queue.push_back(cid);
                }
            }
        }
    }

    let clusters = uf
        .clusters()
        .into_iter()
        .filter(|c| c.len() >= 2)
        .map(|c| c.into_iter().map(|li| shard.refs[li]).collect())
        .collect();
    ShardOutcome {
        iterations,
        memo_hits,
        clusters,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// An oracle over an explicit score table and neighbour graph. When
    /// `evidence_if_same` maps a candidate pair to a reference pair, the
    /// candidate gains evidence 1.0 once that reference pair shares a
    /// cluster token — enough to model propagation chains without a
    /// reference table.
    struct FixedOracle {
        base: Vec<f64>,
        evidence_if_same: HashMap<(u32, u32), (u32, u32)>,
        neighbors: Vec<Vec<u32>>,
        threshold: f64,
        enrich: bool,
    }

    impl FixedOracle {
        fn plain(base: Vec<f64>, neighbors: Vec<Vec<u32>>, enrich: bool) -> FixedOracle {
            FixedOracle {
                base,
                evidence_if_same: HashMap::new(),
                neighbors,
                threshold: 0.82,
                enrich,
            }
        }
    }

    impl Oracle for FixedOracle {
        fn base(&self, ci: u32) -> f64 {
            self.base[ci as usize]
        }
        fn pooled_attr(&self, ci: u32, _ma: &[u32], _mb: &[u32]) -> f64 {
            self.base[ci as usize]
        }
        fn evidence(&self, a: u32, b: u32, root_of: &mut dyn FnMut(u32) -> u64) -> f64 {
            match self.evidence_if_same.get(&(a, b)) {
                Some(&(x, y)) if root_of(x) == root_of(y) => 1.0,
                _ => 0.0,
            }
        }
        fn combine(&self, attr: f64, ev: f64) -> f64 {
            (attr + ev).clamp(0.0, 1.0)
        }
        fn threshold(&self) -> f64 {
            self.threshold
        }
        fn enrich(&self) -> bool {
            self.enrich
        }
        fn neighbors(&self, r: u32, sink: &mut dyn FnMut(u32)) {
            for &n in &self.neighbors[r as usize] {
                sink(n);
            }
        }
    }

    fn shard_over(n: usize, pairs: &[(u32, u32)]) -> Shard {
        Shard {
            refs: (0..n as u32).collect(),
            pairs: (0..pairs.len() as u32).collect(),
        }
    }

    #[test]
    fn conclusive_pairs_merge_and_chain() {
        // 0-1 conclusive, 1-2 conclusive: one cluster of three.
        let pairs = [(0, 1), (1, 2)];
        let oracle = FixedOracle::plain(vec![0.9, 0.9], vec![vec![], vec![], vec![]], false);
        let out = run_shard(&shard_over(3, &pairs), &pairs, &[], &[], &oracle);
        assert_eq!(out.clusters, vec![vec![0, 1, 2]]);
        assert_eq!(out.iterations, 2);
    }

    #[test]
    fn below_threshold_pairs_stay_apart() {
        let pairs = [(0, 1)];
        let oracle = FixedOracle::plain(vec![0.5], vec![vec![], vec![]], false);
        let out = run_shard(&shard_over(2, &pairs), &pairs, &[], &[], &oracle);
        assert!(out.clusters.is_empty());
    }

    #[test]
    fn merges_reactivate_and_chain_through_evidence() {
        // Pair (0,1) is ambiguous alone but conclusive once 2 and 3 merge;
        // the 2-3 merge touches neighbour 0 and re-activates it.
        let pairs = [(0, 1), (2, 3)];
        let mut oracle = FixedOracle::plain(
            vec![0.7, 0.9],
            vec![vec![2], vec![3], vec![0], vec![1]],
            false,
        );
        oracle.evidence_if_same.insert((0, 1), (2, 3));
        let out = run_shard(&shard_over(4, &pairs), &pairs, &[], &[], &oracle);
        assert_eq!(out.clusters, vec![vec![0, 1], vec![2, 3]]);
        assert!(out.iterations >= 3, "pair (0,1) must be re-evaluated");
    }

    #[test]
    fn cannot_link_vetoes_and_must_link_seeds() {
        let pairs = [(0, 1), (2, 3)];
        let oracle =
            FixedOracle::plain(vec![0.9, 0.1], vec![vec![], vec![], vec![], vec![]], false);
        let out = run_shard(
            &shard_over(4, &pairs),
            &pairs,
            &[(2, 3)],
            &[(0, 1)],
            &oracle,
        );
        // 0-1 scores high but is vetoed; 2-3 scores low but is seeded.
        assert_eq!(out.clusters, vec![vec![2, 3]]);
    }

    #[test]
    fn memo_skips_unchanged_rescores() {
        // Pair (0,1) is below threshold; merging (2,3) re-activates it via
        // the neighbour graph but changes neither of its clusters, so the
        // second evaluation is a memo hit.
        let pairs = [(0, 1), (2, 3)];
        let oracle = FixedOracle::plain(
            vec![0.5, 0.9],
            // 2's merge touches neighbour 0, re-activating pair (0,1).
            vec![vec![], vec![], vec![0], vec![]],
            true,
        );
        let out = run_shard(&shard_over(4, &pairs), &pairs, &[], &[], &oracle);
        assert_eq!(out.clusters, vec![vec![2, 3]]);
        assert!(out.iterations >= 3, "pair (0,1) re-evaluated");
        assert_eq!(out.memo_hits, 1, "unchanged clusters skip rescoring");
    }

    #[test]
    fn out_of_shard_constraints_are_ignored() {
        let pairs = [(0, 1)];
        let oracle = FixedOracle::plain(vec![0.9], vec![vec![], vec![]], false);
        // Constraints naming references 7/8 (not in the shard) are no-ops.
        let out = run_shard(
            &shard_over(2, &pairs),
            &pairs,
            &[(7, 8)],
            &[(0, 7)],
            &oracle,
        );
        assert_eq!(out.clusters, vec![vec![0, 1]]);
    }
}
