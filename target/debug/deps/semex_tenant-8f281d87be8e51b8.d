/root/repo/target/debug/deps/semex_tenant-8f281d87be8e51b8.d: crates/tenant/src/lib.rs crates/tenant/src/engine.rs crates/tenant/src/id.rs crates/tenant/src/master.rs crates/tenant/src/pool.rs crates/tenant/src/registry.rs

/root/repo/target/debug/deps/libsemex_tenant-8f281d87be8e51b8.rlib: crates/tenant/src/lib.rs crates/tenant/src/engine.rs crates/tenant/src/id.rs crates/tenant/src/master.rs crates/tenant/src/pool.rs crates/tenant/src/registry.rs

/root/repo/target/debug/deps/libsemex_tenant-8f281d87be8e51b8.rmeta: crates/tenant/src/lib.rs crates/tenant/src/engine.rs crates/tenant/src/id.rs crates/tenant/src/master.rs crates/tenant/src/pool.rs crates/tenant/src/registry.rs

crates/tenant/src/lib.rs:
crates/tenant/src/engine.rs:
crates/tenant/src/id.rs:
crates/tenant/src/master.rs:
crates/tenant/src/pool.rs:
crates/tenant/src/registry.rs:
