/root/repo/target/debug/deps/concurrency-9cf699caea8cf624.d: crates/serve/tests/concurrency.rs

/root/repo/target/debug/deps/concurrency-9cf699caea8cf624: crates/serve/tests/concurrency.rs

crates/serve/tests/concurrency.rs:
