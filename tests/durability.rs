//! Durability integration tests over the public `semex` API:
//! `save_compacted` → `load` query equivalence, and the journal-backed
//! `open_durable` crash-recovery path end to end.

use semex::{JournalConfig, Semex, SemexBuilder, SemexConfig};
use std::path::PathBuf;

const BIB: &str = "@inproceedings{d5, title={Reference Reconciliation in Complex Spaces}, author={Dong, Xin and Halevy, Alon}, booktitle={SIGMOD}, year=2005}\n@inproceedings{p2, title={Personal Information Management with SEMEX}, author={Cai, Yuhan and Dong, Xin and Halevy, Alon and Liu, Jing and Madhavan, Jayant}, booktitle={SIGMOD}, year=2005}";
const MBOX: &str = "From: Xin Dong <luna@cs.example.edu>\nTo: Alon Halevy <alon@cs.example.edu>\nSubject: demo plan for the sigmod session\nMessage-ID: <m1@x>\n\nSee you Friday.\n";
const VCF: &str =
    "BEGIN:VCARD\nFN:Xin Dong\nEMAIL:luna@cs.example.edu\nORG:Evergreen University\nEND:VCARD\n";

fn built() -> Semex {
    SemexBuilder::new()
        .add_bibtex("library", BIB)
        .add_mbox("inbox", MBOX)
        .add_vcards("contacts", VCF)
        .build()
        .unwrap()
}

fn scratch(tag: &str) -> PathBuf {
    let p = std::env::temp_dir().join(format!("semex-durability-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&p).ok();
    std::fs::remove_file(&p).ok();
    p
}

/// `(label, class)` pairs for a query — ids differ across compaction, so
/// equivalence is judged on rendered results.
fn results(semex: &Semex, query: &str) -> Vec<(String, String)> {
    semex
        .search(query, 10)
        .into_iter()
        .map(|h| (h.label, h.class))
        .collect()
}

/// Sorted outgoing/incoming link renderings of a query's top hit.
fn browse_links(semex: &Semex, query: &str) -> Vec<String> {
    let hit = semex
        .search(query, 1)
        .into_iter()
        .next()
        .expect("a top hit");
    let mut links: Vec<String> = semex
        .view(hit.object)
        .links
        .iter()
        .map(|l| format!("{} -> {}", l.label, l.target_label))
        .collect();
    links.sort();
    links
}

#[test]
fn save_compacted_then_load_answers_queries_identically() {
    let semex = built();
    let path = scratch("compacted");
    semex.save_compacted(&path).unwrap();
    let restored = Semex::load(&path, SemexConfig::default()).unwrap();

    assert!(restored.report().restored);
    assert_eq!(
        restored.store().object_count(),
        semex.store().object_count()
    );
    assert_eq!(
        restored.store().alias_count(),
        0,
        "compaction drops alias slots"
    );

    for query in [
        "reconciliation",
        "semex",
        "class:Person dong",
        "class:Person halevy",
        "class:Publication personal",
        "class:Message demo",
        "evergreen",
    ] {
        assert_eq!(
            results(&restored, query),
            results(&semex, query),
            "query {query:?}"
        );
    }
    for query in ["class:Person dong", "class:Publication reconciliation"] {
        assert_eq!(
            browse_links(&restored, query),
            browse_links(&semex, query),
            "browse around top hit of {query:?}"
        );
    }
    // Derived associations survive too: Dong's co-authors read the same.
    let dong = restored.search("class:Person dong", 1)[0].object;
    let mut coauthors: Vec<String> = restored
        .browser()
        .derived_by_name(dong, "CoAuthor")
        .unwrap()
        .into_iter()
        .map(|o| restored.store().label(o))
        .collect();
    coauthors.sort();
    let dong_live = semex.search("class:Person dong", 1)[0].object;
    let mut coauthors_live: Vec<String> = semex
        .browser()
        .derived_by_name(dong_live, "CoAuthor")
        .unwrap()
        .into_iter()
        .map(|o| semex.store().label(o))
        .collect();
    coauthors_live.sort();
    assert_eq!(coauthors, coauthors_live);
    std::fs::remove_file(&path).ok();
}

#[test]
fn open_durable_recovers_committed_work_and_drops_uncommitted() {
    let dir = scratch("journal");
    let cfg = JournalConfig {
        fsync: false,
        ..JournalConfig::default()
    };

    // Session 1: start an empty durable space, ingest the library and
    // commit; then ingest the inbox but "crash" before committing.
    let (mut durable, report) =
        Semex::open_durable_with(&dir, SemexConfig::default(), cfg.clone()).unwrap();
    assert!(report.initialized);
    durable
        .ingest(semex::core::SourceSpec::Bibtex {
            name: "library".into(),
            content: BIB.into(),
        })
        .unwrap();
    durable.commit().unwrap();
    let committed_results = results(&durable, "class:Publication reconciliation");
    assert_eq!(committed_results.len(), 1);
    durable
        .ingest(semex::core::SourceSpec::Mbox {
            name: "inbox".into(),
            content: MBOX.into(),
        })
        .unwrap();
    assert!(durable.pending_events() > 0);
    assert!(!results(&durable, "class:Message demo").is_empty());
    drop(durable); // crash: the inbox ingest was never committed

    // Session 2: recovery yields exactly the committed state.
    let (reopened, report) =
        Semex::open_durable_with(&dir, SemexConfig::default(), cfg.clone()).unwrap();
    assert!(!report.initialized);
    assert!(report.damage.is_none(), "{report:?}");
    assert_eq!(
        results(&reopened, "class:Publication reconciliation"),
        committed_results
    );
    assert!(
        results(&reopened, "class:Message demo").is_empty(),
        "uncommitted ingest must not survive the crash"
    );

    // Re-ingest the inbox, commit, compact, and reopen once more.
    let mut reopened = reopened;
    reopened
        .ingest(semex::core::SourceSpec::Mbox {
            name: "inbox".into(),
            content: MBOX.into(),
        })
        .unwrap();
    reopened.commit().unwrap();
    let compaction = reopened.compact().unwrap();
    assert_eq!(compaction.epoch, 1);
    let full_results = results(&reopened, "class:Message demo");
    assert_eq!(full_results.len(), 1);
    drop(reopened);

    let (last, report) = Semex::open_durable_with(&dir, SemexConfig::default(), cfg).unwrap();
    assert!(report.damage.is_none(), "{report:?}");
    assert_eq!(report.epoch, 1);
    assert_eq!(report.events_applied, 0, "compaction folded the log away");
    assert_eq!(results(&last, "class:Message demo"), full_results);
    std::fs::remove_dir_all(&dir).ok();
}
