/root/repo/target/debug/deps/semex_store-d827709a677894f0.d: crates/store/src/lib.rs crates/store/src/events.rs crates/store/src/object.rs crates/store/src/provenance.rs crates/store/src/snapshot.rs crates/store/src/stats.rs crates/store/src/store.rs crates/store/src/triple.rs

/root/repo/target/debug/deps/libsemex_store-d827709a677894f0.rlib: crates/store/src/lib.rs crates/store/src/events.rs crates/store/src/object.rs crates/store/src/provenance.rs crates/store/src/snapshot.rs crates/store/src/stats.rs crates/store/src/store.rs crates/store/src/triple.rs

/root/repo/target/debug/deps/libsemex_store-d827709a677894f0.rmeta: crates/store/src/lib.rs crates/store/src/events.rs crates/store/src/object.rs crates/store/src/provenance.rs crates/store/src/snapshot.rs crates/store/src/stats.rs crates/store/src/store.rs crates/store/src/triple.rs

crates/store/src/lib.rs:
crates/store/src/events.rs:
crates/store/src/object.rs:
crates/store/src/provenance.rs:
crates/store/src/snapshot.rs:
crates/store/src/stats.rs:
crates/store/src/store.rs:
crates/store/src/triple.rs:
