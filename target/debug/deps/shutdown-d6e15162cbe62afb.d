/root/repo/target/debug/deps/shutdown-d6e15162cbe62afb.d: crates/serve/tests/shutdown.rs Cargo.toml

/root/repo/target/debug/deps/libshutdown-d6e15162cbe62afb.rmeta: crates/serve/tests/shutdown.rs Cargo.toml

crates/serve/tests/shutdown.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
