(function() {
    const implementors = Object.fromEntries([["semex_core",[["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/ops/deref/trait.DerefMut.html\" title=\"trait core::ops::deref::DerefMut\">DerefMut</a> for <a class=\"struct\" href=\"semex_core/struct.DurableSemex.html\" title=\"struct semex_core::DurableSemex\">DurableSemex</a>",0]]]]);
    if (window.register_implementors) {
        window.register_implementors(implementors);
    } else {
        window.pending_implementors = implementors;
    }
})()
//{"start":59,"fragment_lengths":[307]}