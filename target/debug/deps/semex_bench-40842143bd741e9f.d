/root/repo/target/debug/deps/semex_bench-40842143bd741e9f.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libsemex_bench-40842143bd741e9f.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
