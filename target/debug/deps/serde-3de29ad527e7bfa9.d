/root/repo/target/debug/deps/serde-3de29ad527e7bfa9.d: third_party/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-3de29ad527e7bfa9.rlib: third_party/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-3de29ad527e7bfa9.rmeta: third_party/serde/src/lib.rs

third_party/serde/src/lib.rs:
