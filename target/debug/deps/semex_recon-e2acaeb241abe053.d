/root/repo/target/debug/deps/semex_recon-e2acaeb241abe053.d: crates/recon/src/lib.rs crates/recon/src/blocking.rs crates/recon/src/config.rs crates/recon/src/engine.rs crates/recon/src/eval.rs crates/recon/src/refs.rs crates/recon/src/score.rs crates/recon/src/shard.rs crates/recon/src/union_find.rs crates/recon/src/worklist.rs

/root/repo/target/debug/deps/libsemex_recon-e2acaeb241abe053.rmeta: crates/recon/src/lib.rs crates/recon/src/blocking.rs crates/recon/src/config.rs crates/recon/src/engine.rs crates/recon/src/eval.rs crates/recon/src/refs.rs crates/recon/src/score.rs crates/recon/src/shard.rs crates/recon/src/union_find.rs crates/recon/src/worklist.rs

crates/recon/src/lib.rs:
crates/recon/src/blocking.rs:
crates/recon/src/config.rs:
crates/recon/src/engine.rs:
crates/recon/src/eval.rs:
crates/recon/src/refs.rs:
crates/recon/src/score.rs:
crates/recon/src/shard.rs:
crates/recon/src/union_find.rs:
crates/recon/src/worklist.rs:
