/root/repo/target/debug/deps/semex_integrate-b2613f094212f33d.d: crates/integrate/src/lib.rs crates/integrate/src/matcher.rs

/root/repo/target/debug/deps/libsemex_integrate-b2613f094212f33d.rmeta: crates/integrate/src/lib.rs crates/integrate/src/matcher.rs

crates/integrate/src/lib.rs:
crates/integrate/src/matcher.rs:
