/root/repo/target/debug/deps/pipeline_e2e-303c3ace8fb4982e.d: tests/pipeline_e2e.rs tests/common/mod.rs

/root/repo/target/debug/deps/pipeline_e2e-303c3ace8fb4982e: tests/pipeline_e2e.rs tests/common/mod.rs

tests/pipeline_e2e.rs:
tests/common/mod.rs:
