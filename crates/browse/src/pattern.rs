//! Triple-pattern queries with variable joins.
//!
//! A query is a conjunction of patterns over the association graph:
//!
//! ```text
//! (?p  AuthoredBy⁻¹ ?pub)   — ?p wrote ?pub
//! (?pub PublishedIn ?v)     — ?pub appeared at ?v
//! ```
//!
//! Variables bind objects; constants pin them. Evaluation is a simple
//! backtracking join that picks, at each step, the most-bound remaining
//! pattern (constants and already-bound variables first).

use semex_model::AssocId;
use semex_store::{ObjectId, Store};
use std::collections::HashMap;

/// A subject or object position in a pattern.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Term {
    /// A named variable (`?p`).
    Var(String),
    /// A fixed object.
    Const(ObjectId),
}

impl Term {
    /// Shorthand for a variable term.
    pub fn var(name: &str) -> Term {
        Term::Var(name.to_owned())
    }
}

/// One triple pattern: `subject --assoc--> object`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pattern {
    /// Subject position.
    pub subject: Term,
    /// The association to traverse.
    pub assoc: AssocId,
    /// Object position.
    pub object: Term,
}

impl Pattern {
    /// A new pattern.
    pub fn new(subject: Term, assoc: AssocId, object: Term) -> Self {
        Pattern {
            subject,
            assoc,
            object,
        }
    }
}

/// A variable binding set for one solution.
pub type Binding = HashMap<String, ObjectId>;

/// The in-flight binding environment: a stack of `(variable, value)`
/// frames. Binding pushes, backtracking truncates — no per-step map
/// clones or removals, and the join never hashes. Values are stored
/// alias-resolved, so lookups compare ids directly.
type Stack = Vec<(String, ObjectId)>;

fn lookup(stack: &[(String, ObjectId)], name: &str) -> Option<ObjectId> {
    stack.iter().rev().find(|(n, _)| n == name).map(|&(_, v)| v)
}

fn resolve(store: &Store, term: &Term, stack: &[(String, ObjectId)]) -> Option<ObjectId> {
    match term {
        Term::Const(o) => Some(store.resolve(*o)),
        Term::Var(v) => lookup(stack, v),
    }
}

/// How bound a pattern is under the current bindings (higher = cheaper).
fn boundness(store: &Store, p: &Pattern, stack: &[(String, ObjectId)]) -> u32 {
    u32::from(resolve(store, &p.subject, stack).is_some())
        + u32::from(resolve(store, &p.object, stack).is_some())
}

/// Evaluate a conjunctive pattern query, returning all variable bindings.
/// Solutions are deduplicated and returned in a deterministic order.
pub fn query(store: &Store, patterns: &[Pattern]) -> Vec<Binding> {
    let mut results = Vec::new();
    let mut stack = Stack::new();
    let mut used = vec![false; patterns.len()];
    solve(store, patterns, &mut used, &mut stack, &mut results);
    // Deterministic order: sort by the rendered binding.
    results.sort_by_key(|b| {
        let mut items: Vec<(&String, &ObjectId)> = b.iter().collect();
        items.sort();
        items
            .into_iter()
            .map(|(k, v)| format!("{k}={v};"))
            .collect::<String>()
    });
    results.dedup();
    results
}

fn solve(
    store: &Store,
    patterns: &[Pattern],
    used: &mut [bool],
    stack: &mut Stack,
    results: &mut Vec<Binding>,
) {
    // Pick the most-bound unused pattern.
    let next = (0..patterns.len())
        .filter(|&i| !used[i])
        .max_by_key(|&i| boundness(store, &patterns[i], stack));
    let Some(i) = next else {
        results.push(stack.iter().cloned().collect());
        return;
    };
    used[i] = true;
    let p = &patterns[i];
    let s = resolve(store, &p.subject, stack);
    let o = resolve(store, &p.object, stack);
    // Cycle guard: a pattern whose subject and object name the same
    // (still-unbound) variable — a variable revisited within one clause,
    // e.g. after returning to it through an inverse hop — can only match
    // self-loops. Enumerating only those keeps the revisit from fanning
    // out into pairs the bind check below would reject one by one.
    let self_loop = match (&p.subject, &p.object) {
        (Term::Var(a), Term::Var(b)) => a == b,
        _ => false,
    };

    // Enumerate matching (subject, object) pairs for this pattern.
    let candidates: Vec<(ObjectId, ObjectId)> = match (s, o) {
        (Some(s), Some(o)) => {
            if store.neighbors(s, p.assoc).contains(&o) {
                vec![(s, o)]
            } else {
                Vec::new()
            }
        }
        (Some(s), None) => store
            .neighbors(s, p.assoc)
            .iter()
            .filter(|&&t| !self_loop || t == s)
            .map(|&t| (s, t))
            .collect(),
        (None, Some(o)) => store
            .inverse_neighbors(o, p.assoc)
            .iter()
            .filter(|&&t| !self_loop || t == o)
            .map(|&t| (t, o))
            .collect(),
        (None, None) => {
            // Unbound pattern: enumerate every instance of the domain class.
            let domain = store.model().assoc_def(p.assoc).domain;
            let mut out = Vec::new();
            for s in store.objects_of_class(domain) {
                let s = store.resolve(s);
                for &t in store.neighbors(s, p.assoc) {
                    if !self_loop || t == s {
                        out.push((s, t));
                    }
                }
            }
            out
        }
    };

    for (sv, ov) in candidates {
        let depth = stack.len();
        let mut ok = true;
        for (term, value) in [(&p.subject, sv), (&p.object, ov)] {
            if let Term::Var(name) = term {
                let value = store.resolve(value);
                match lookup(stack, name) {
                    Some(bound) if bound != value => {
                        ok = false;
                        break;
                    }
                    Some(_) => {}
                    None => stack.push((name.clone(), value)),
                }
            }
        }
        if ok {
            solve(store, patterns, used, stack, results);
        }
        stack.truncate(depth);
    }
    used[i] = false;
}

/// Errors from the textual query parser.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// A clause did not have the `subject Assoc object` shape.
    BadClause(String),
    /// The association name is not in the domain model.
    UnknownAssoc(String),
    /// A quoted label matched no object (or a raw `oN` id was out of range).
    UnknownObject(String),
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::BadClause(c) => write!(f, "bad clause (want `subj Assoc obj`): {c:?}"),
            ParseError::UnknownAssoc(a) => write!(f, "unknown association: {a:?}"),
            ParseError::UnknownObject(o) => write!(f, "no object matches {o:?}"),
        }
    }
}

impl std::error::Error for ParseError {}

/// Split a query text into clauses on `.` and `;` (outside quotes).
fn clauses(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    let mut in_quote = false;
    for c in text.chars() {
        match c {
            '"' => {
                in_quote = !in_quote;
                cur.push(c);
            }
            '.' | ';' if !in_quote => {
                if !cur.trim().is_empty() {
                    out.push(std::mem::take(&mut cur));
                }
            }
            _ => cur.push(c),
        }
    }
    if !cur.trim().is_empty() {
        out.push(cur);
    }
    out
}

/// Split one clause into three fields, keeping quoted strings intact.
fn fields(clause: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    let mut in_quote = false;
    for c in clause.chars() {
        match c {
            '"' => {
                in_quote = !in_quote;
                cur.push(c);
            }
            c if c.is_whitespace() && !in_quote => {
                if !cur.is_empty() {
                    out.push(std::mem::take(&mut cur));
                }
            }
            _ => cur.push(c),
        }
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

fn term(store: &Store, token: &str) -> Result<Term, ParseError> {
    if let Some(var) = token.strip_prefix('?') {
        if !var.is_empty() {
            return Ok(Term::var(var));
        }
    }
    if let Some(id) = token.strip_prefix('o').and_then(|n| n.parse::<u64>().ok()) {
        let obj = ObjectId(id);
        if store.object_raw(obj).is_none() {
            return Err(ParseError::UnknownObject(token.to_owned()));
        }
        return Ok(Term::Const(obj));
    }
    if token.starts_with('"') && token.ends_with('"') && token.len() >= 2 {
        let label = &token[1..token.len() - 1];
        let found = store.objects().find(|&o| store.label(o) == label);
        return match found {
            Some(o) => Ok(Term::Const(o)),
            None => Err(ParseError::UnknownObject(label.to_owned())),
        };
    }
    Err(ParseError::BadClause(token.to_owned()))
}

/// Parse a textual conjunctive query into patterns:
///
/// ```text
/// ?pub AuthoredBy ?p . ?pub PublishedIn "SIGMOD"
/// ```
///
/// Subjects/objects are `?variables`, raw ids (`o42`) or `"exact labels"`;
/// clauses are separated by `.` or `;`. Association names are the domain
/// model's (forward direction).
pub fn parse_patterns(store: &Store, text: &str) -> Result<Vec<Pattern>, ParseError> {
    let mut out = Vec::new();
    for clause in clauses(text) {
        let f = fields(&clause);
        let [s, a, o] = f.as_slice() else {
            return Err(ParseError::BadClause(clause.trim().to_owned()));
        };
        let assoc = store
            .model()
            .assoc(a)
            .ok_or_else(|| ParseError::UnknownAssoc(a.clone()))?;
        out.push(Pattern::new(term(store, s)?, assoc, term(store, o)?));
    }
    Ok(out)
}

/// Parse and run a textual query in one call.
pub fn query_str(store: &Store, text: &str) -> Result<Vec<Binding>, ParseError> {
    Ok(query(store, &parse_patterns(store, text)?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use semex_extract::{bibtex::extract_bibtex, ExtractContext};
    use semex_model::names::{assoc, class};
    use semex_store::{SourceInfo, SourceKind};

    fn store() -> Store {
        let mut st = Store::with_builtin_model();
        let src = st.register_source(SourceInfo::new("t", SourceKind::Synthetic));
        let mut ctx = ExtractContext::new(&mut st, src);
        extract_bibtex(
            "@inproceedings{a, title={Paper One}, author={Ann Walker and Bob Fisher}, booktitle={SIGMOD}, year=2004}\n\
             @inproceedings{b, title={Paper Two}, author={Ann Walker}, booktitle={SIGMOD}, year=2005}\n\
             @inproceedings{c, title={Paper Three}, author={Bob Fisher}, booktitle={VLDB}, year=2005}",
            &mut ctx,
        )
        .unwrap();
        st
    }

    #[test]
    fn join_authors_with_venues() {
        let st = store();
        let authored = st.model().assoc(assoc::AUTHORED_BY).unwrap();
        let published = st.model().assoc(assoc::PUBLISHED_IN).unwrap();
        // Who published at SIGMOD? (?pub AuthoredBy ?p), (?pub PublishedIn sigmod)
        let c_venue = st.model().class(class::VENUE).unwrap();
        let sigmod = st
            .objects_of_class(c_venue)
            .find(|&v| st.label(v) == "SIGMOD")
            .unwrap();
        let solutions = query(
            &st,
            &[
                Pattern::new(Term::var("pub"), authored, Term::var("p")),
                Pattern::new(Term::var("pub"), published, Term::Const(sigmod)),
            ],
        );
        let people: std::collections::HashSet<String> =
            solutions.iter().map(|b| st.label(b["p"])).collect();
        assert_eq!(people.len(), 2, "Ann and Bob both published at SIGMOD");
        // Three (pub, person) pairs: PaperOne×2 authors + PaperTwo×1.
        assert_eq!(solutions.len(), 3);
    }

    #[test]
    fn shared_variable_joins() {
        let st = store();
        let authored = st.model().assoc(assoc::AUTHORED_BY).unwrap();
        // Co-author pairs: (?pub AuthoredBy ?x), (?pub AuthoredBy ?y).
        let solutions = query(
            &st,
            &[
                Pattern::new(Term::var("pub"), authored, Term::var("x")),
                Pattern::new(Term::var("pub"), authored, Term::var("y")),
            ],
        );
        // Paper One yields 2x2, Papers Two/Three 1 each → 6 bindings.
        assert_eq!(solutions.len(), 6);
        let crossed = solutions.iter().filter(|b| b["x"] != b["y"]).count();
        assert_eq!(crossed, 2, "Ann-Bob both ways");
    }

    #[test]
    fn fully_bound_pattern_checks_edges() {
        let st = store();
        let authored = st.model().assoc(assoc::AUTHORED_BY).unwrap();
        let c_pub = st.model().class(class::PUBLICATION).unwrap();
        let c_person = st.model().class(class::PERSON).unwrap();
        let paper_one = st
            .objects_of_class(c_pub)
            .find(|&p| st.label(p) == "Paper One")
            .unwrap();
        let ann = st
            .objects_of_class(c_person)
            .find(|&p| st.label(p) == "Ann Walker")
            .unwrap();
        let sols = query(
            &st,
            &[Pattern::new(
                Term::Const(paper_one),
                authored,
                Term::Const(ann),
            )],
        );
        assert_eq!(sols.len(), 1);
        assert!(sols[0].is_empty(), "no variables to bind");
        // Negative case.
        let paper_three = st
            .objects_of_class(c_pub)
            .find(|&p| st.label(p) == "Paper Three")
            .unwrap();
        let sols = query(
            &st,
            &[Pattern::new(
                Term::Const(paper_three),
                authored,
                Term::Const(ann),
            )],
        );
        assert!(sols.is_empty());
    }

    #[test]
    fn empty_patterns_yield_one_empty_binding() {
        let st = store();
        let sols = query(&st, &[]);
        assert_eq!(sols.len(), 1);
        assert!(sols[0].is_empty());
    }

    #[test]
    fn textual_queries_parse_and_run() {
        let st = store();
        let sols = query_str(&st, r#"?pub AuthoredBy ?p . ?pub PublishedIn "SIGMOD""#).unwrap();
        assert_eq!(sols.len(), 3);
        let people: std::collections::HashSet<String> =
            sols.iter().map(|b| st.label(b["p"])).collect();
        assert!(people.contains("Ann Walker"));
        assert!(people.contains("Bob Fisher"));

        // Quoted label as subject; semicolon separator.
        let sols = query_str(&st, r#""Paper One" AuthoredBy ?who; ?pub2 AuthoredBy ?who"#).unwrap();
        assert!(!sols.is_empty());
    }

    #[test]
    fn textual_query_errors() {
        let st = store();
        assert!(matches!(
            query_str(&st, "?a Bogus ?b"),
            Err(ParseError::UnknownAssoc(_))
        ));
        assert!(matches!(
            query_str(&st, "?a AuthoredBy"),
            Err(ParseError::BadClause(_))
        ));
        assert!(matches!(
            query_str(&st, r#"?a AuthoredBy "No Such Label""#),
            Err(ParseError::UnknownObject(_))
        ));
        assert!(matches!(
            query_str(&st, "?a AuthoredBy o99999"),
            Err(ParseError::UnknownObject(_))
        ));
        // Empty text: one empty binding (no constraints).
        assert_eq!(query_str(&st, "").unwrap().len(), 1);
    }
}
