/root/repo/target/debug/examples/research_browser-5777faa7f098a817.d: examples/research_browser.rs

/root/repo/target/debug/examples/libresearch_browser-5777faa7f098a817.rmeta: examples/research_browser.rs

examples/research_browser.rs:
