//! Association triples.

use crate::{ObjectId, SourceId};
use semex_model::AssocId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One association instance: `subject --assoc--> object`, with provenance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Triple {
    /// The subject object (an instance of the association's domain class).
    pub subject: ObjectId,
    /// The association type.
    pub assoc: AssocId,
    /// The object (an instance of the association's range class).
    pub object: ObjectId,
    /// The source the triple was extracted from.
    pub source: SourceId,
}

impl Triple {
    /// A new triple.
    pub fn new(subject: ObjectId, assoc: AssocId, object: ObjectId, source: SourceId) -> Self {
        Triple {
            subject,
            assoc,
            object,
            source,
        }
    }

    /// The `(subject, assoc, object)` identity of the triple, ignoring
    /// provenance — two triples with the same key state the same fact.
    pub fn key(&self) -> (ObjectId, AssocId, ObjectId) {
        (self.subject, self.assoc, self.object)
    }
}

impl fmt::Display for Triple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({} -{}-> {})", self.subject, self.assoc, self.object)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_ignores_source() {
        let t1 = Triple::new(ObjectId(1), AssocId(2), ObjectId(3), SourceId(0));
        let t2 = Triple::new(ObjectId(1), AssocId(2), ObjectId(3), SourceId(9));
        assert_eq!(t1.key(), t2.key());
        assert_ne!(t1, t2);
        assert_eq!(t1.to_string(), "(o1 -r2-> o3)");
    }
}
