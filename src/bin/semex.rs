//! `semex` — command-line front end to the SEMEX platform.
//!
//! ```text
//! semex build <dir> -o space.json        index a directory tree into a snapshot
//! semex build <dir> --durable -o space.journal/   ...into a journal directory instead
//! semex demo  -o space.json [--seed N] [--scale F] [--durable]   build from a generated demo corpus
//!
//! `build` and `demo` accept `--recon-threads N` to pin the reconciliation
//! thread budget (defaults to the machine's parallelism; results are
//! identical at any setting).
//! semex journal-compact <space.journal> [--format json|binary]
//!                                        fold a journal into a fresh snapshot
//!                                        (--format migrates the snapshot
//!                                        encoding; the default preserves it)
//! semex stats <space.json>               show the association-DB inventory
//! semex search <space.json> [--exhaustive] <query...>   object-centric keyword
//!                                        search (--exhaustive bypasses the
//!                                        pruned top-k evaluator)
//! semex show <space.json> <query...>     full view of the top hit (attrs, links, sources)
//! semex explain <space.json> <query...>  provenance of every fact about the top hit
//! semex coauthors <space.json> <name...> derived-association browse
//! semex path <space.json> <from> <to>    association path between two people
//! semex query <space.json> '<patterns>'  triple-pattern query, e.g.
//!                                        '?pub AuthoredBy ?p . ?pub PublishedIn "SIGMOD"'
//! semex query <space.json> --path '<path>' [--page N] [--cursor TOK] [--threads N]
//!                                        association-path query, e.g.
//!                                        'Person("Ann") <-Sender ->Recipient ->CoAuthor <-AuthoredBy'
//!                                        (pages are deterministic; resume
//!                                        with the printed cursor)
//! semex top <space.json>                 importance-ranked people
//! semex repl <space.json>                 interactive session (search / show /
//!                                         browse / query / quit)
//! semex timeline <space.json> <name...>   monthly activity of a person
//! semex communities <space.json>          CoAuthor communities
//! semex serve <space> [--addr H:P] [--threads N] [--cache-mb N]   serve the
//!                                         space over TCP (snapshot-isolated
//!                                         reads, serialized durable writes,
//!                                         optional epoch-keyed read cache;
//!                                         see semex-serve)
//! semex serve --tenants <root> [--budget-mb N] [--writers N]   serve every
//!                                         space under <root>, one journal
//!                                         directory per tenant, LRU-evicted
//!                                         under the resident-memory budget
//! semex serve <journal-dir> --listen-replication H:P   additionally ship the
//!                                         journal to followers; client acks
//!                                         wait for the connected follower set
//! semex serve <journal-dir> --replicate-from H:P [--max-lag N]   run as a
//!                                         read replica of the primary at H:P
//!                                         (bootstraps via snapshot + journal
//!                                         tail; writes answer `not_primary`)
//! semex promote <addr>                    promote a follower to primary after
//!                                         primary loss (wait-for-durable-
//!                                         prefix handshake; idempotent)
//! semex client <addr> [--tenant NAME] [--retries N] <request...>
//!                                         talk to a running server: search,
//!                                         query, pathq, show, browse, stats,
//!                                         ingest, integrate, same, distinct,
//!                                         promote, shutdown
//! ```
//!
//! Wherever a command takes a `<space.json>` snapshot, a journal directory
//! (created with `--durable`) works too: the space is recovered from its
//! snapshot plus write-ahead-log replay.

use semex::corpus::{generate_personal, CorpusConfig};
use semex::{JournalConfig, Semex, SemexBuilder, SemexConfig, SnapshotFormat};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  semex build <dir> [--durable] [--format json|binary] [--recon-threads N] -o <snapshot.json | journal-dir>\n  semex demo [--durable] [--format json|binary] [--recon-threads N] -o <snapshot.json | journal-dir> [--seed N] [--scale F]\n  semex journal-compact <journal-dir> [--format json|binary]\n  semex stats <space>\n  semex search <space> [--exhaustive] <query...>\n  semex show <space> <query...>\n  semex explain <space> <query...>\n  semex coauthors <space> <person name...>\n  semex path <space> <from name> -- <to name>\n  semex query <space> '<pattern query>'\n  semex query <space> --path '<path query>' [--page N] [--cursor TOK] [--threads N]\n  semex top <space>\n  semex repl <space>\n  semex timeline <space> <person>\n  semex communities <space>\n  semex serve <space> [--addr HOST:PORT] [--threads N] [--writers N] [--cache-mb N] [--format json|binary]\n  semex serve --tenants <root> [--budget-mb N] [--cache-mb N] [--addr HOST:PORT] [--threads N] [--writers N] [--format json|binary]\n  semex serve <journal-dir> --listen-replication HOST:PORT [serve flags...]\n  semex serve <journal-dir> --replicate-from HOST:PORT [--max-lag N] [--follower-name NAME] [serve flags...]\n  semex promote <addr>\n  semex client <addr> [--tenant NAME] [--retries N] <request...>\n  semex client <addr> search [--exhaustive] <query...>\n  semex client <addr> query '<patterns>'\n  semex client <addr> pathq '<path query>' [--page N] [--cursor TOK]\n  semex client <addr> show <query...>\n  semex client <addr> browse <query...>\n  semex client <addr> stats\n  semex client <addr> ingest <mbox|vcard|bibtex|latex|ical> <name> <file>\n  semex client <addr> integrate <name> <file.csv>\n  semex client <addr> same <id> <id>\n  semex client <addr> distinct <id> <id>\n  semex client <addr> promote\n  semex client <addr> shutdown\n\n<space> is a snapshot file or a --durable journal directory.\nserve on a journal directory commits every acked write; on a snapshot,\nwrites live only for the session."
    );
    ExitCode::from(2)
}

/// Print what recovery had to repair: damage notes, and any repair steps
/// that themselves failed (those leave the journal read-only until a clean
/// reopen, so the operator must see them).
fn print_recovery(report: &semex::core::RecoveryReport) {
    if let Some(d) = &report.damage {
        eprintln!(
            "semex: journal damage ({:?} in {}) repaired; {} event(s) recovered",
            d.kind,
            d.segment.display(),
            report.events_applied
        );
    }
    for w in &report.warnings {
        eprintln!("semex: journal recovery warning: {w}");
    }
    if !report.warnings.is_empty() {
        eprintln!(
            "semex: the journal could not be fully repaired; it is read-only until the \
             underlying problem (disk space, permissions) is fixed and the space is reopened"
        );
    }
}

/// Open a space: a snapshot file, or a journal directory (recovered from
/// snapshot + write-ahead-log replay).
fn load(path: &str) -> Result<Semex, String> {
    let p = Path::new(path);
    if p.is_dir() {
        // Match the on-disk format so binary spaces restore their index
        // sidecar instead of rebuilding.
        let journal_config = JournalConfig {
            snapshot_format: detect_format(p),
            ..JournalConfig::default()
        };
        let (durable, report) = Semex::open_durable_with(p, SemexConfig::default(), journal_config)
            .map_err(|e| format!("cannot open journal {path}: {e}"))?;
        print_recovery(&report);
        Ok(durable.into_inner())
    } else {
        Semex::load(p, SemexConfig::default())
            .map_err(|e| format!("cannot load snapshot {path}: {e}"))
    }
}

fn top_hit(semex: &Semex, query: &str) -> Option<semex::core::SearchResult> {
    semex.search(query, 1).into_iter().next()
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first().map(String::as_str) else {
        return usage();
    };
    let result = match cmd {
        "build" => cmd_build(&args[1..]),
        "demo" => cmd_demo(&args[1..]),
        "journal-compact" => cmd_journal_compact(&args[1..]),
        "stats" => cmd_stats(&args[1..]),
        "search" => cmd_query(&args[1..], QueryMode::Search),
        "show" => cmd_query(&args[1..], QueryMode::Show),
        "explain" => cmd_query(&args[1..], QueryMode::Explain),
        "coauthors" => cmd_query(&args[1..], QueryMode::CoAuthors),
        "path" => cmd_path(&args[1..]),
        "query" => cmd_pattern_query(&args[1..]),
        "top" => cmd_top(&args[1..]),
        "repl" => cmd_repl(&args[1..]),
        "timeline" => cmd_timeline(&args[1..]),
        "communities" => cmd_communities(&args[1..]),
        "serve" => cmd_serve(&args[1..]),
        "promote" => cmd_promote(&args[1..]),
        "client" => cmd_client(&args[1..]),
        _ => return usage(),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("semex: {e}");
            ExitCode::FAILURE
        }
    }
}

fn out_flag(args: &[String]) -> Option<(PathBuf, Vec<&String>)> {
    let mut rest = Vec::new();
    let mut out = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "-o" || a == "--out" {
            out = it.next().map(PathBuf::from);
        } else {
            rest.push(a);
        }
    }
    out.map(|o| (o, rest))
}

/// Persist a freshly built platform: plain snapshot, or (`--durable`) a
/// journal directory seeded with the built state in the given snapshot
/// format.
fn persist(semex: Semex, out: &Path, durable: bool, format: SnapshotFormat) -> Result<(), String> {
    if durable {
        let config = JournalConfig {
            snapshot_format: format,
            ..JournalConfig::default()
        };
        let d = semex.into_durable(out, config).map_err(|e| e.to_string())?;
        println!(
            "journal initialized at {} (epoch {}, {:?} snapshot)",
            out.display(),
            d.journal().epoch(),
            format
        );
    } else {
        semex.save(out).map_err(|e| e.to_string())?;
        println!("snapshot written to {}", out.display());
    }
    Ok(())
}

/// Parse `--recon-threads N` out of an argument list, returning the
/// remaining arguments and the configuration to build with.
fn recon_threads_flag(args: Vec<&String>) -> Result<(Vec<&String>, SemexConfig), String> {
    let mut config = SemexConfig::default();
    let mut rest = Vec::new();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        if a == "--recon-threads" {
            config.recon.threads = it
                .next()
                .and_then(|s| s.parse().ok())
                .filter(|&n: &usize| n >= 1)
                .ok_or("--recon-threads needs a positive number")?;
        } else {
            rest.push(a);
        }
    }
    Ok((rest, config))
}

/// Parse `--format json|binary` out of an argument list, returning the
/// remaining arguments and the chosen snapshot format (if any).
fn format_flag(args: Vec<&String>) -> Result<(Vec<&String>, Option<SnapshotFormat>), String> {
    let mut format = None;
    let mut rest = Vec::new();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        if a == "--format" {
            format = Some(match it.next().map(String::as_str) {
                Some("json") => SnapshotFormat::Json,
                Some("binary" | "bin") => SnapshotFormat::Binary,
                _ => return Err("--format needs `json` or `binary`".into()),
            });
        } else {
            rest.push(a);
        }
    }
    Ok((rest, format))
}

/// The snapshot format a journal directory currently uses (its newest
/// epoch's snapshot), so commands preserve the on-disk format unless
/// `--format` says otherwise. Binary wins a same-epoch tie, matching
/// recovery's preference.
fn detect_format(dir: &Path) -> SnapshotFormat {
    use semex::journal::segment::parse_snapshot_name;
    let mut newest: Option<(u64, SnapshotFormat)> = None;
    if let Ok(entries) = std::fs::read_dir(dir) {
        for entry in entries.flatten() {
            let name = entry.file_name();
            let Some((epoch, format)) = name.to_str().and_then(parse_snapshot_name) else {
                continue;
            };
            let better = match newest {
                None => true,
                Some((e, _)) => epoch > e || (epoch == e && format == SnapshotFormat::Binary),
            };
            if better {
                newest = Some((epoch, format));
            }
        }
    }
    newest.map(|(_, f)| f).unwrap_or_default()
}

fn cmd_build(args: &[String]) -> Result<(), String> {
    let Some((out, rest)) = out_flag(args) else {
        return Err("build requires -o <snapshot.json | journal-dir>".into());
    };
    let durable = rest.iter().any(|a| a.as_str() == "--durable");
    let rest: Vec<&String> = rest
        .into_iter()
        .filter(|a| a.as_str() != "--durable")
        .collect();
    let (rest, config) = recon_threads_flag(rest)?;
    let (rest, format) = format_flag(rest)?;
    let [dir] = rest.as_slice() else {
        return Err("build requires exactly one directory".into());
    };
    let semex = SemexBuilder::new()
        .with_config(config)
        .add_directory("home", dir.as_str())
        .build()
        .map_err(|e| e.to_string())?;
    print_build(&semex);
    persist(semex, &out, durable, format.unwrap_or_default())
}

fn cmd_journal_compact(args: &[String]) -> Result<(), String> {
    let (rest, format) = format_flag(args.iter().collect())?;
    let [dir] = rest.as_slice() else {
        return Err("journal-compact requires a journal directory".into());
    };
    let dir = dir.as_str();
    // Without --format, keep the format the space already uses; with it,
    // this compaction migrates the snapshot to the requested encoding.
    let format = format.unwrap_or_else(|| detect_format(Path::new(dir)));
    let journal_config = JournalConfig {
        snapshot_format: format,
        ..JournalConfig::default()
    };
    let (mut durable, report) =
        Semex::open_durable_with(Path::new(dir), SemexConfig::default(), journal_config)
            .map_err(|e| format!("cannot open journal {dir}: {e}"))?;
    print_recovery(&report);
    println!(
        "recovered epoch {}: snapshot + {} replayed event(s) across {} segment(s)",
        report.epoch, report.events_applied, report.segments_replayed
    );
    let c = durable.compact().map_err(|e| e.to_string())?;
    println!(
        "compacted into epoch {}: folded {} event(s), removed {} file(s) ({} bytes, {:?} snapshot)",
        c.epoch, c.folded_events, c.removed_files, c.removed_bytes, format
    );
    Ok(())
}

fn cmd_demo(args: &[String]) -> Result<(), String> {
    let Some((out, rest)) = out_flag(args) else {
        return Err("demo requires -o <snapshot.json | journal-dir>".into());
    };
    let (rest, config) = recon_threads_flag(rest)?;
    let (rest, format) = format_flag(rest)?;
    let mut seed = 2005u64;
    let mut scale = 1.0f64;
    let mut durable = false;
    let mut it = rest.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--durable" => durable = true,
            "--seed" => {
                seed = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or("--seed needs a number")?;
            }
            "--scale" => {
                scale = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or("--scale needs a number")?;
            }
            other => return Err(format!("unknown demo flag {other:?}")),
        }
    }
    let corpus = generate_personal(
        &CorpusConfig {
            seed,
            ..CorpusConfig::default()
        }
        .scaled_size(scale),
    );
    let dir = std::env::temp_dir().join(format!("semex-demo-{}", std::process::id()));
    corpus.write_to(&dir).map_err(|e| e.to_string())?;
    let semex = SemexBuilder::new()
        .with_config(config)
        .add_directory("demo-corpus", &dir)
        .build()
        .map_err(|e| e.to_string())?;
    std::fs::remove_dir_all(&dir).ok();
    print_build(&semex);
    persist(semex, &out, durable, format.unwrap_or_default())
}

fn print_build(semex: &Semex) {
    let report = semex.report();
    for (source, stats) in &report.extraction {
        println!(
            "extracted {source}: {} records, {} references, {} links",
            stats.records, stats.objects, stats.triples
        );
    }
    if let Some(r) = &report.recon {
        println!(
            "reconciled {} references: {} merges in {:.1?}",
            r.refs, r.merges, r.elapsed
        );
    }
    println!(
        "indexed {} objects in {:.1?}",
        report.indexed, report.elapsed
    );
}

fn cmd_stats(args: &[String]) -> Result<(), String> {
    let [path] = args else {
        return Err("stats requires a snapshot path".into());
    };
    let semex = load(path)?;
    print!("{}", semex.stats().table());
    Ok(())
}

enum QueryMode {
    Search,
    Show,
    Explain,
    CoAuthors,
}

fn cmd_query(args: &[String], mode: QueryMode) -> Result<(), String> {
    let [path, query @ ..] = args else {
        return Err("missing snapshot path".into());
    };
    // `search --exhaustive` runs the reference scorer instead of the pruned
    // top-k evaluator (results are identical; the flag exists for
    // verification and timing comparisons).
    let exhaustive = query.iter().any(|a| a.as_str() == "--exhaustive");
    let query: Vec<&String> = query
        .iter()
        .filter(|a| a.as_str() != "--exhaustive")
        .collect();
    if query.is_empty() {
        return Err("missing query".into());
    }
    let semex = load(path)?;
    let query = query
        .iter()
        .map(|s| s.as_str())
        .collect::<Vec<_>>()
        .join(" ");
    match mode {
        QueryMode::Search => {
            let hits = if exhaustive {
                semex.search_exhaustive(&query, 10)
            } else {
                semex.search(&query, 10)
            };
            if hits.is_empty() {
                println!("no results");
            }
            for hit in hits {
                println!("{:>7.2}  [{}] {}", hit.score, hit.class, hit.label);
            }
        }
        QueryMode::Show => {
            let hit = top_hit(&semex, &query).ok_or("no results")?;
            print!("{}", semex.view(hit.object));
        }
        QueryMode::Explain => {
            let hit = top_hit(&semex, &query).ok_or("no results")?;
            println!("facts about [{}] {}:", hit.class, hit.label);
            for (source, fact) in semex.explain(hit.object) {
                println!("  [{source}] {fact}");
            }
        }
        QueryMode::CoAuthors => {
            let hit = top_hit(&semex, &format!("class:Person {query}")).ok_or("no such person")?;
            println!("co-authors of {}:", hit.label);
            let coauthors = semex
                .browser()
                .derived_by_name(hit.object, "CoAuthor")
                .expect("builtin derived association");
            if coauthors.is_empty() {
                println!("  (none)");
            }
            for c in coauthors {
                println!("  {}", semex.store().label(c));
            }
        }
    }
    Ok(())
}

fn cmd_pattern_query(args: &[String]) -> Result<(), String> {
    let [path, rest @ ..] = args else {
        return Err("missing snapshot path".into());
    };
    // `--path` switches from triple patterns to the association-path
    // engine; `--page` / `--cursor` / `--threads` only apply there.
    let mut path_text: Option<String> = None;
    let mut page = 50usize;
    let mut cursor: Option<String> = None;
    let mut threads = 1usize;
    let mut pattern_parts: Vec<&str> = Vec::new();
    let mut it = rest.iter();
    while let Some(a) = it.next() {
        let mut flag_value = |flag: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match a.as_str() {
            "--path" => path_text = Some(flag_value("--path")?),
            "--cursor" => cursor = Some(flag_value("--cursor")?),
            "--page" => {
                page = flag_value("--page")?
                    .parse()
                    .map_err(|e| format!("--page needs a number: {e}"))?
            }
            "--threads" => {
                threads = flag_value("--threads")?
                    .parse()
                    .map_err(|e| format!("--threads needs a number: {e}"))?
            }
            _ => pattern_parts.push(a),
        }
    }
    let semex = load(path)?;
    if let Some(text) = path_text {
        return run_path_query(&semex, &text, page, cursor.as_deref(), threads);
    }
    if pattern_parts.is_empty() {
        return Err("missing query text".into());
    }
    let text = pattern_parts.join(" ");
    let solutions =
        semex::query::join::query_str(semex.store(), &text).map_err(|e| e.to_string())?;
    println!("{} solution(s)", solutions.len());
    for b in solutions.iter().take(50) {
        let mut items: Vec<(&String, _)> = b.iter().collect();
        items.sort();
        let rendered: Vec<String> = items
            .into_iter()
            .map(|(k, v)| format!("?{k} = {}", semex.store().label(*v)))
            .collect();
        println!("  {}", rendered.join("   "));
    }
    Ok(())
}

/// Run one page of an association-path query against a local space. Local
/// one-shot runs have no published epoch, so cursors are minted at (and
/// checked against) epoch 0: resuming works as long as the snapshot file
/// is unchanged, which is exactly when the page sequence is still valid.
fn run_path_query(
    semex: &Semex,
    text: &str,
    page: usize,
    cursor: Option<&str>,
    threads: usize,
) -> Result<(), String> {
    let store = semex.store();
    let plan = semex::query::parse::parse(store, text)
        .map_err(|e| e.to_string())?
        .optimize();
    let after = cursor
        .map(semex::query::Cursor::decode)
        .transpose()
        .map_err(|e| e.to_string())?;
    let cfg = semex::query::ExecConfig {
        threads: threads.max(1),
        ..semex::query::ExecConfig::default()
    };
    let out = semex::query::exec::run_page(store, &plan, &cfg, 0, page, after.as_ref())
        .map_err(|e| e.to_string())?;
    println!("{} result(s)", out.total);
    for obj in &out.items {
        let class = store.model().class_def(store.class_of(*obj)).name.clone();
        println!("  [{class}] {}  #{obj}", store.label(*obj));
    }
    if let Some(next) = out.next {
        println!("next page: --cursor {}", next.encode());
    }
    Ok(())
}

fn cmd_top(args: &[String]) -> Result<(), String> {
    let [path] = args else {
        return Err("top requires a snapshot path".into());
    };
    let semex = load(path)?;
    let c_person = semex
        .store()
        .model()
        .class("Person")
        .ok_or("no Person class")?;
    println!("most important people (association-weighted):");
    for (obj, score) in semex::browse::analyze::importance(semex.store(), c_person, 3, 10) {
        println!("  {score:>8.5}  {}", semex.store().label(obj));
    }
    Ok(())
}

/// Interactive session over a snapshot: the closest CLI equivalent of the
/// demo's browser window.
fn cmd_repl(args: &[String]) -> Result<(), String> {
    let [path] = args else {
        return Err("repl requires a snapshot path".into());
    };
    let semex = load(path)?;
    println!(
        "semex repl — {} objects. Commands: s <query> | show <query> | b <query> | q <patterns> | help | quit",
        semex.store().object_count()
    );
    let stdin = std::io::stdin();
    let mut line = String::new();
    loop {
        use std::io::{BufRead, Write};
        print!("semex> ");
        std::io::stdout().flush().ok();
        line.clear();
        if stdin.lock().read_line(&mut line).unwrap_or(0) == 0 {
            break; // EOF
        }
        let input = line.trim();
        let (cmd, rest) = input.split_once(' ').unwrap_or((input, ""));
        match cmd {
            "" => {}
            "quit" | "exit" => break,
            "help" => println!(
                "  s <query>      keyword search (class:Name filter supported)\n                   show <query>   full view of the top hit\n                   b <query>      neighbourhood of the top hit\n                   q <patterns>   triple-pattern query (?x Assoc ?y . ...)\n                   quit"
            ),
            "s" => {
                for hit in semex.search(rest, 10) {
                    println!("  {:>7.2}  [{}] {}", hit.score, hit.class, hit.label);
                }
            }
            "show" => match top_hit(&semex, rest) {
                Some(hit) => print!("{}", semex.view(hit.object)),
                None => println!("  no results"),
            },
            "b" => match top_hit(&semex, rest) {
                Some(hit) => {
                    println!("  [{}] {}", hit.class, hit.label);
                    for (label, count) in semex.browser().neighborhood_summary(hit.object) {
                        println!("    {label}: {count}");
                    }
                }
                None => println!("  no results"),
            },
            "q" => match semex::browse::pattern::query_str(semex.store(), rest) {
                Ok(solutions) => {
                    println!("  {} solution(s)", solutions.len());
                    for b in solutions.iter().take(20) {
                        let mut items: Vec<(&String, _)> = b.iter().collect();
                        items.sort();
                        let rendered: Vec<String> = items
                            .into_iter()
                            .map(|(k, v)| format!("?{k}={}", semex.store().label(*v)))
                            .collect();
                        println!("    {}", rendered.join("  "));
                    }
                }
                Err(e) => println!("  error: {e}"),
            },
            other => println!("  unknown command {other:?} (try: help)"),
        }
    }
    Ok(())
}

fn cmd_timeline(args: &[String]) -> Result<(), String> {
    let [path, rest @ ..] = args else {
        return Err("missing snapshot path".into());
    };
    if rest.is_empty() {
        return Err("timeline requires a person query".into());
    }
    let semex = load(path)?;
    let hit =
        top_hit(&semex, &format!("class:Person {}", rest.join(" "))).ok_or("no such person")?;
    println!("activity of {}:", hit.label);
    let tl = semex::browse::analyze::timeline(semex.store(), hit.object);
    if tl.is_empty() {
        println!("  (no dated activity)");
    }
    for ((year, month), count) in tl {
        println!("  {year}-{month:02}  {}", "#".repeat(count.min(60)));
    }
    Ok(())
}

fn cmd_communities(args: &[String]) -> Result<(), String> {
    let [path] = args else {
        return Err("communities requires a snapshot path".into());
    };
    let semex = load(path)?;
    let def = semex
        .store()
        .model()
        .derived("CoAuthor")
        .ok_or("no CoAuthor rule")?
        .clone();
    let groups = semex::browse::analyze::communities(semex.store(), &def);
    println!("{} CoAuthor communities:", groups.len());
    for (i, g) in groups.iter().take(12).enumerate() {
        let names: Vec<String> = g.iter().take(5).map(|&o| semex.store().label(o)).collect();
        println!(
            "  {}: {} people — {}{}",
            i + 1,
            g.len(),
            names.join(", "),
            if g.len() > 5 { ", …" } else { "" }
        );
    }
    Ok(())
}

/// Serve one space — or, with `--tenants`, a whole registry of them —
/// over TCP until a client sends `shutdown` (or the process is killed).
/// A journal directory serves durably — every acked write is committed;
/// a plain snapshot serves ephemerally. Tenant spaces are always durable:
/// each is a journal directory under the registry root, activated on
/// demand and evicted LRU under `--budget-mb`.
fn cmd_serve(args: &[String]) -> Result<(), String> {
    use semex::serve::{serve, serve_tenants, Master, PoolConfig, ServeConfig, TenantRegistry};
    let mut config = ServeConfig::default();
    let mut pool = PoolConfig::default();
    let mut addr = "127.0.0.1:7019".to_string();
    let mut tenants: Option<String> = None;
    let mut path: Option<&String> = None;
    let mut format: Option<SnapshotFormat> = None;
    let mut listen_replication: Option<String> = None;
    let mut replicate_from: Option<String> = None;
    let mut max_lag: u64 = 1024;
    let mut follower_name: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--addr" => addr = it.next().ok_or("--addr needs HOST:PORT")?.clone(),
            "--listen-replication" => {
                listen_replication = Some(
                    it.next()
                        .ok_or("--listen-replication needs HOST:PORT")?
                        .clone(),
                );
            }
            "--replicate-from" => {
                replicate_from = Some(
                    it.next()
                        .ok_or("--replicate-from needs the primary's replication HOST:PORT")?
                        .clone(),
                );
            }
            "--max-lag" => {
                max_lag = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or("--max-lag needs a number of events")?;
            }
            "--follower-name" => {
                follower_name = Some(it.next().ok_or("--follower-name needs a name")?.clone());
            }
            "--format" => {
                format = Some(match it.next().map(String::as_str) {
                    Some("json") => SnapshotFormat::Json,
                    Some("binary" | "bin") => SnapshotFormat::Binary,
                    _ => return Err("--format needs `json` or `binary`".into()),
                });
            }
            "--threads" => {
                config.threads = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .filter(|&n: &usize| n >= 1)
                    .ok_or("--threads needs a positive number")?;
            }
            "--writers" => {
                config.writer_threads = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .filter(|&n: &usize| n >= 1)
                    .ok_or("--writers needs a positive number")?;
            }
            "--tenants" => {
                tenants = Some(
                    it.next()
                        .ok_or("--tenants needs a registry directory")?
                        .clone(),
                );
            }
            "--budget-mb" => {
                pool.memory_budget = it
                    .next()
                    .and_then(|s| s.parse::<usize>().ok())
                    .filter(|&n| n >= 1)
                    .map(|n| n << 20)
                    .ok_or("--budget-mb needs a positive number of MiB")?;
            }
            "--cache-mb" => {
                let budget = it
                    .next()
                    .and_then(|s| s.parse::<usize>().ok())
                    .map(|n| n << 20)
                    .ok_or("--cache-mb needs a number of MiB (0 disables)")?;
                config.cache_budget = budget;
                pool.cache_budget = budget;
            }
            other if other.starts_with("--") => {
                return Err(format!("unknown serve flag {other:?}"));
            }
            _ if path.is_none() => path = Some(a),
            other => return Err(format!("unexpected serve argument {other:?}")),
        }
    }

    if (listen_replication.is_some() || replicate_from.is_some()) && tenants.is_some() {
        return Err("replication serves a single space, not --tenants".into());
    }
    if listen_replication.is_some() && replicate_from.is_some() {
        return Err("a server is a replication primary or a follower, not both".into());
    }

    // Follower mode: bootstrap from the primary (snapshot + journal tail),
    // serve snapshot-isolated reads under the lag bound, refuse writes with
    // `not_primary` until a `promote`.
    if let Some(primary) = replicate_from {
        use std::net::ToSocketAddrs;
        let Some(path) = path else {
            return Err("--replicate-from requires a journal directory to follow into".into());
        };
        let p = Path::new(path);
        if p.is_file() {
            return Err(format!(
                "--replicate-from needs a journal directory, not a snapshot file: {path}"
            ));
        }
        let primary_addr = primary
            .to_socket_addrs()
            .map_err(|e| format!("bad primary address {primary:?}: {e}"))?
            .next()
            .ok_or_else(|| format!("primary address {primary:?} resolves to nothing"))?;
        let journal_config = JournalConfig {
            snapshot_format: format.unwrap_or_else(|| detect_format(p)),
            ..JournalConfig::default()
        };
        let name = follower_name.unwrap_or_else(|| format!("follower-{}", std::process::id()));
        let follower = semex::replica::follow(
            primary_addr,
            p,
            addr.as_str(),
            config,
            journal_config,
            max_lag,
            name.clone(),
        )?;
        let mut handle = follower.serve;
        println!(
            "following {primary_addr} as {name:?} (max lag {max_lag}) on {} — \
             reads only; promote with: semex promote {}",
            handle.addr(),
            handle.addr()
        );
        handle.wait();
        let report = handle.join();
        println!(
            "served {} request(s); final epoch {}",
            report.requests, report.writer.final_epoch
        );
        return Ok(());
    }

    let multi = tenants.is_some();
    let report = if let Some(root) = tenants {
        if path.is_some() {
            return Err("serve takes either a space path or --tenants, not both".into());
        }
        if let Some(f) = format {
            pool.journal.snapshot_format = f;
        }
        let registry =
            TenantRegistry::open(&root).map_err(|e| format!("cannot open registry {root}: {e}"))?;
        let known = registry
            .list()
            .map_err(|e| format!("cannot list registry {root}: {e}"))?;
        let mut handle =
            serve_tenants(registry, addr.as_str(), config, pool).map_err(|e| e.to_string())?;
        println!(
            "serving tenant spaces from {root} ({} known, created on demand) on {} — \
             stop with: semex client {} shutdown",
            known.len(),
            handle.addr(),
            handle.addr()
        );
        handle.wait();
        handle.join()
    } else {
        let Some(path) = path else {
            return Err("serve requires a snapshot path, journal directory, or --tenants".into());
        };
        let p = Path::new(path);
        let master = if p.is_dir() {
            let journal_config = JournalConfig {
                snapshot_format: format.unwrap_or_else(|| detect_format(p)),
                ..JournalConfig::default()
            };
            let (durable, report) =
                Semex::open_durable_with(p, SemexConfig::default(), journal_config)
                    .map_err(|e| format!("cannot open journal {path}: {e}"))?;
            print_recovery(&report);
            Master::Durable(durable)
        } else {
            Master::Ephemeral(
                Semex::load(p, SemexConfig::default())
                    .map_err(|e| format!("cannot load snapshot {path}: {e}"))?,
            )
        };
        let durable = matches!(master, Master::Durable(_));
        // A replicating primary: the hub ships the journal straight from
        // disk and gates every client ack on the connected follower set,
        // so it must be wired into the config before the writers start.
        let hub = if let Some(listen) = &listen_replication {
            if !durable {
                return Err(
                    "--listen-replication requires a journal directory (the journal \
                     is the replication log)"
                        .into(),
                );
            }
            let hub = semex::replica::replicate(
                p,
                master.boot_epoch(),
                listen.as_str(),
                &mut config,
                semex::replica::HubConfig::default(),
            )
            .map_err(|e| format!("cannot start replication hub: {e}"))?;
            println!(
                "shipping the journal to followers on {} — client acks wait for \
                 the connected follower set",
                hub.addr()
            );
            Some(hub)
        } else {
            None
        };
        let objects = master.semex().store().object_count();
        let mut handle = serve(master, addr.as_str(), config).map_err(|e| e.to_string())?;
        println!(
            "serving {objects} objects on {} ({}) — stop with: semex client {} shutdown",
            handle.addr(),
            if durable { "durable" } else { "ephemeral" },
            handle.addr()
        );
        handle.wait();
        let report = handle.join();
        if let Some(hub) = hub {
            hub.shutdown();
        }
        report
    };
    println!(
        "served {} request(s); writes: {} ok / {} failed / {} rejected in {} batch(es); \
         shed: {} connection(s), {} write(s); final epoch {}",
        report.requests,
        report.writer.writes_ok,
        report.writer.writes_failed,
        report.writer.writes_rejected,
        report.writer.batches,
        report.shed_connections,
        report.shed_writes,
        report.writer.final_epoch
    );
    if multi {
        println!(
            "tenants: {} activation(s), {} cold open(s), {} eviction(s); \
             peak {} resident ({} KiB)",
            report.tenants.activations,
            report.tenants.cold_opens,
            report.tenants.evictions,
            report.tenants.max_resident_tenants,
            report.tenants.max_resident_bytes >> 10
        );
    }
    if let Some(cache) = &report.cache {
        println!(
            "read cache: {} hit(s) / {} miss(es), {} coalesced, {} eviction(s), \
             {} KiB resident",
            cache.hits,
            cache.misses,
            cache.coalesced,
            cache.evictions,
            cache.resident_bytes >> 10
        );
    }
    Ok(())
}

/// Promote a follower to primary after primary loss: the server runs its
/// wait-for-durable-prefix handshake (stop pulling, finish applying the
/// in-flight batch) and starts accepting writes. Idempotent — promoting a
/// server that is already primary answers its current epoch.
fn cmd_promote(args: &[String]) -> Result<(), String> {
    use semex::serve::protocol::{Request, Response};
    use semex::serve::Client;
    let [addr] = args else {
        return Err("promote requires: <addr>".into());
    };
    let addr = addr
        .parse()
        .map_err(|e| format!("bad address {addr:?}: {e}"))?;
    let mut client = Client::connect(addr).map_err(|e| format!("cannot connect: {e}"))?;
    match client
        .request(&Request::Promote)
        .map_err(|e| format!("promote failed: {e}"))?
    {
        Response::Promoted { epoch } => {
            println!(
                "promoted: {addr} is primary at epoch {epoch} — every acknowledged \
                 write at or below it survived"
            );
            Ok(())
        }
        other => {
            print_response(&other);
            Err("server did not confirm the promotion".into())
        }
    }
}

/// One-shot client: send a single request to a running server and render
/// the response.
fn cmd_client(args: &[String]) -> Result<(), String> {
    use semex::serve::protocol::{IngestFormat, Request};
    use semex::serve::{Client, RetryPolicy};
    let [addr, rest @ ..] = args else {
        return Err("client requires: <addr> [--tenant NAME] [--retries N] <request...>".into());
    };
    let mut tenant: Option<String> = None;
    let mut retries: Option<u32> = None;
    let mut rest = rest;
    loop {
        match rest {
            [flag, value, more @ ..] if flag == "--tenant" => {
                tenant = Some(value.clone());
                rest = more;
            }
            [flag, value, more @ ..] if flag == "--retries" => {
                retries = Some(
                    value
                        .parse()
                        .map_err(|e| format!("--retries needs a number: {e}"))?,
                );
                rest = more;
            }
            _ => break,
        }
    }
    let [cmd, rest @ ..] = rest else {
        return Err("client requires: <addr> [--tenant NAME] [--retries N] <request...>".into());
    };
    let request = match cmd.as_str() {
        "search" => {
            let exhaustive = rest.iter().any(|a| a.as_str() == "--exhaustive");
            let query: Vec<&str> = rest
                .iter()
                .map(String::as_str)
                .filter(|a| *a != "--exhaustive")
                .collect();
            if query.is_empty() {
                return Err("search requires a query".into());
            }
            Request::Search {
                query: query.join(" "),
                k: 10,
                exhaustive,
            }
        }
        "query" => Request::Query {
            pattern: rest.join(" "),
        },
        "pathq" => {
            let mut page = 50usize;
            let mut cursor: Option<String> = None;
            let mut parts: Vec<&str> = Vec::new();
            let mut it = rest.iter();
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--page" => {
                        page = it
                            .next()
                            .ok_or("--page needs a value")?
                            .parse()
                            .map_err(|e| format!("--page needs a number: {e}"))?
                    }
                    "--cursor" => cursor = Some(it.next().ok_or("--cursor needs a value")?.clone()),
                    _ => parts.push(a),
                }
            }
            if parts.is_empty() {
                return Err("pathq requires a path query".into());
            }
            Request::PathQuery {
                path: parts.join(" "),
                page,
                cursor,
            }
        }
        "show" => Request::View {
            query: rest.join(" "),
        },
        "browse" => Request::Browse {
            query: rest.join(" "),
        },
        "stats" => Request::Stats,
        "promote" => Request::Promote,
        "shutdown" => Request::Shutdown,
        "ingest" => {
            let [format, name, file] = rest else {
                return Err("ingest requires: <mbox|vcard|bibtex|latex|ical> <name> <file>".into());
            };
            Request::Ingest {
                format: IngestFormat::from_name(format)
                    .ok_or_else(|| format!("unknown ingest format {format:?}"))?,
                name: name.clone(),
                content: std::fs::read_to_string(file)
                    .map_err(|e| format!("cannot read {file}: {e}"))?,
            }
        }
        "integrate" => {
            let [name, file] = rest else {
                return Err("integrate requires: <name> <file.csv>".into());
            };
            Request::IntegrateCsv {
                name: name.clone(),
                csv: std::fs::read_to_string(file)
                    .map_err(|e| format!("cannot read {file}: {e}"))?,
            }
        }
        "same" | "distinct" => {
            let ids: Vec<u64> = rest.iter().filter_map(|s| s.parse().ok()).collect();
            let [a, b] = ids.as_slice() else {
                return Err(format!("{cmd} requires two object ids"));
            };
            if cmd == "same" {
                Request::AssertSame { a: *a, b: *b }
            } else {
                Request::AssertDistinct { a: *a, b: *b }
            }
        }
        other => return Err(format!("unknown client request {other:?}")),
    };
    let addr = addr
        .parse()
        .map_err(|e| format!("bad address {addr:?}: {e}"))?;
    let mut client = Client::connect(addr).map_err(|e| format!("cannot connect: {e}"))?;
    if let Some(tenant) = tenant {
        client = client.with_tenant(tenant);
    }
    let response = match retries {
        // Retrying turns a typed `overloaded` shed into a capped
        // exponential backoff loop instead of a final answer.
        Some(max_retries) => client.request_with_retry(
            &request,
            &RetryPolicy {
                max_retries,
                ..RetryPolicy::default()
            },
        ),
        None => client.request(&request),
    }
    .map_err(|e| format!("request failed: {e}"))?;
    print_response(&response);
    Ok(())
}

fn print_response(response: &semex::serve::protocol::Response) {
    use semex::serve::protocol::Response;
    match response {
        Response::Hits { epoch, hits } => {
            if hits.is_empty() {
                println!("no results (epoch {epoch})");
            }
            for h in hits {
                println!("{:>7.2}  [{}] {}  #{}", h.score, h.class, h.label, h.object);
            }
        }
        Response::Solutions { epoch, total, rows } => {
            println!("{total} solution(s) (epoch {epoch})");
            for row in rows {
                let rendered: Vec<String> =
                    row.iter().map(|(k, v)| format!("?{k} = {v}")).collect();
                println!("  {}", rendered.join("   "));
            }
        }
        Response::PathPage {
            epoch,
            total,
            items,
            cursor,
        } => {
            println!("{total} result(s) (epoch {epoch})");
            for i in items {
                println!("  [{}] {}  #{}", i.class, i.label, i.object);
            }
            if let Some(cursor) = cursor {
                println!("next page: --cursor {cursor}");
            }
        }
        Response::View { text, .. } => print!("{text}"),
        Response::Links {
            label,
            object,
            links,
            ..
        } => {
            println!("{label}  #{object}");
            for (l, c) in links {
                println!("  {l}: {c}");
            }
        }
        Response::Ingested {
            epoch,
            records,
            objects,
            triples,
        } => println!(
            "ingested {records} record(s): {objects} reference(s), {triples} triple(s) — durable at epoch {epoch}"
        ),
        Response::Integrated {
            epoch,
            matched,
            score,
            created,
            merged,
        } => {
            if *matched {
                println!(
                    "integrated (mapping score {score:.2}): {created} created, {merged} merged — durable at epoch {epoch}"
                );
            } else {
                println!("table not integrated: no usable schema mapping");
            }
        }
        Response::Asserted { epoch, merged } => {
            println!("asserted (effective: {merged}) — durable at epoch {epoch}")
        }
        Response::Stats {
            epoch,
            objects,
            aliases,
            edges,
            sources,
            cache,
        } => {
            println!(
                "epoch {epoch}: {objects} object(s), {aliases} alias(es), {edges} edge(s), {sources} source(s)"
            );
            if let Some(cache) = cache {
                println!(
                    "cache: {} hit(s), {} miss(es), {} coalesced, {} eviction(s), {} resident byte(s)",
                    cache.hits, cache.misses, cache.coalesced, cache.evictions, cache.resident_bytes
                );
            }
        }
        Response::Promoted { epoch } => {
            println!("promoted: server is primary at epoch {epoch}")
        }
        Response::Replicated { epoch } => {
            println!("replicated batch folded; durable head {epoch}")
        }
        Response::ShutdownAck { epoch } => println!("server shutting down at epoch {epoch}"),
        Response::Overloaded { queue } => {
            println!("server overloaded ({queue} queue full); retry later")
        }
        Response::Error { kind, message } => println!("error ({kind:?}): {message}"),
    }
}

fn cmd_path(args: &[String]) -> Result<(), String> {
    let [path, rest @ ..] = args else {
        return Err("missing snapshot path".into());
    };
    let sep = rest
        .iter()
        .position(|a| a == "--")
        .ok_or("path requires: <from name> -- <to name>")?;
    let (from_q, to_q) = (rest[..sep].join(" "), rest[sep + 1..].join(" "));
    if from_q.is_empty() || to_q.is_empty() {
        return Err("path requires: <from name> -- <to name>".into());
    }
    let semex = load(path)?;
    let from = top_hit(&semex, &format!("class:Person {from_q}")).ok_or("from-person not found")?;
    let to = top_hit(&semex, &format!("class:Person {to_q}")).ok_or("to-person not found")?;
    match semex.browser().path_between(from.object, to.object, 6) {
        None => println!("no connection within 6 hops"),
        Some(steps) => {
            for (obj, via) in steps {
                match via {
                    None => println!("{}", semex.store().label(obj)),
                    Some(label) => println!("  --{label}--> {}", semex.store().label(obj)),
                }
            }
        }
    }
    Ok(())
}
