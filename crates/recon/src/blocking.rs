//! Blocking: cheap candidate-pair generation.
//!
//! Comparing all reference pairs is quadratic; blocking buckets references
//! by cheap keys so only within-bucket pairs are scored. Keys are chosen so
//! that true matches almost always share at least one bucket:
//!
//! * **Person** — normalized family name, its Soundex code, and each e-mail
//!   local part and full address;
//! * **Publication** — the two longest title tokens and a normalized title
//!   prefix;
//! * **Venue** — every identity token, the lowercased abbreviation, and the
//!   token initialism (so `"Very Large Data Bases"` buckets with `VLDB`);
//! * **Organization** — every name token.
//!
//! Buckets larger than [`MAX_BUCKET`] are dropped (a key shared by hundreds
//! of references carries no discriminative power and would reintroduce the
//! quadratic blow-up).
//!
//! Keys never materialize as owned strings on the hot path: [`visit_keys`]
//! streams `(namespace, body)` pairs out of reused scratch buffers, each key
//! is folded to a 64-bit FNV-1a fingerprint, and buckets are formed by
//! sorting one flat `(class, hash, ref)` row table — no per-key `String`,
//! no hash map of owned keys, no `HashSet` of pairs.

use crate::refs::RefTable;
use semex_similarity::name::PersonName;
use semex_similarity::venue::for_each_venue_token;
use semex_similarity::{lowercase_into, soundex, token_spans};
use std::collections::HashMap;

/// Buckets larger than this are considered non-discriminative and skipped.
pub const MAX_BUCKET: usize = 256;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a fingerprint of `namespace ++ body` — the same bytes the owned
/// string key would hold. A 64-bit collision across a class's key space is
/// vanishingly unlikely, and its worst case is one spurious candidate pair
/// that still has to clear the scorer, so blocking stays sound.
fn key_hash(ns: &str, body: &str) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in ns.as_bytes().iter().chain(body.as_bytes()) {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Generate candidate pairs `(a, b)` with `a < b`, both of the same class.
pub fn candidate_pairs(table: &RefTable) -> Vec<(u32, u32)> {
    // One row per (reference, distinct key): sorting the flat table groups
    // same-class same-key rows into adjacent runs — the buckets.
    let mut rows: Vec<(u16, u64, u32)> = Vec::new();
    let mut hashes: Vec<u64> = Vec::new();
    for (i, e) in table.entries.iter().enumerate() {
        hashes.clear();
        visit_keys(e, |ns, body| hashes.push(key_hash(ns, body)));
        hashes.sort_unstable();
        hashes.dedup();
        for &h in &hashes {
            rows.push((e.class.0, h, i as u32));
        }
    }
    rows.sort_unstable();
    let mut pairs: Vec<(u32, u32)> = Vec::new();
    for bucket in rows.chunk_by(|x, y| (x.0, x.1) == (y.0, y.1)) {
        if bucket.len() < 2 || bucket.len() > MAX_BUCKET {
            continue;
        }
        for (x, &(_, _, a)) in bucket.iter().enumerate() {
            for &(_, _, b) in &bucket[x + 1..] {
                pairs.push(if a < b { (a, b) } else { (b, a) });
            }
        }
    }
    pairs.sort_unstable();
    pairs.dedup();
    pairs
}

/// Visit the blocking keys of one reference as `(namespace, body)` pairs,
/// dispatched on its [`crate::RefKind`]. Bodies may point into scratch
/// buffers that are overwritten by the next callback — hash or copy them
/// inside the closure. [`keys_for`] is the collecting wrapper.
pub fn visit_keys(e: &crate::RefEntry, mut visit: impl FnMut(&str, &str)) {
    use crate::RefKind;
    let mut scratch = String::new();
    // Person-style: names parsed as people + e-mails.
    if e.kind == RefKind::Person {
        // The reference table caches person-name parses at build time;
        // hand-assembled entries fall back to parsing here.
        let parsed_storage: Vec<PersonName>;
        let parsed: &[PersonName] = if e.parsed_names.len() == e.names.len() {
            &e.parsed_names
        } else {
            parsed_storage = e.names.iter().map(|n| PersonName::parse(n)).collect();
            &parsed_storage
        };
        for p in parsed {
            if let Some(last) = &p.last {
                visit("l:", last);
                if let Some(sx) = soundex(last) {
                    visit("sx:", &sx);
                }
            }
        }
        for em in &e.emails {
            visit("e:", em);
            if let Some((local, _)) = em.split_once('@') {
                if local.len() >= 3 {
                    visit("el:", local);
                }
                // Derive name-shaped keys from the local part so a bare
                // address buckets with name-only references of the same
                // person: "ann.walker" → walker; "mcarey" → carey (initial
                // stripped); "walkera" → walker (trailing initial
                // stripped). These go into the family-name namespace.
                for seg in local.split(|c: char| !c.is_ascii_alphabetic()) {
                    if seg.len() >= 3 {
                        visit("l:", seg);
                        if let Some(sx) = soundex(seg) {
                            visit("sx:", &sx);
                        }
                    }
                    if seg.len() >= 4 {
                        visit("l:", &seg[1..]);
                        visit("l:", &seg[..seg.len() - 1]);
                    }
                }
            }
        }
    }
    // Publication-style: titles. The two longest tokens (by lowercased byte
    // length, earliest wins ties) and a normalized 10-char prefix.
    let mut lowered = String::new();
    for t in &e.titles {
        let (mut best, mut second) = ("", "");
        let (mut best_len, mut second_len) = (0usize, 0usize);
        for tok in token_spans(t) {
            // Lowercasing never changes a char's UTF-8 length except via
            // 1:N expansions, which both paths count identically.
            let len: usize = tok
                .chars()
                .flat_map(char::to_lowercase)
                .map(char::len_utf8)
                .sum();
            if len > best_len {
                (second, second_len) = (best, best_len);
                (best, best_len) = (tok, len);
            } else if len > second_len {
                (second, second_len) = (tok, len);
            }
        }
        for tok in [best, second] {
            if !tok.is_empty() {
                lowercase_into(tok, &mut scratch);
                visit("tt:", &scratch);
            }
        }
        lowercase_into(t, &mut lowered);
        scratch.clear();
        scratch.extend(lowered.chars().filter(|c| c.is_alphanumeric()).take(10));
        if !scratch.is_empty() {
            visit("tp:", &scratch);
        }
    }
    // Venue-style: identity tokens + abbreviations + initialism.
    // Organizations and user-defined classes block on name tokens too.
    if matches!(
        e.kind,
        RefKind::Venue | RefKind::Organization | RefKind::Other
    ) {
        for n in &e.names {
            for_each_venue_token(n, |tok| visit("vt:", tok));
            lowered.clear();
            for tok in token_spans(n) {
                lowercase_into(tok, &mut scratch);
                if matches!(scratch.as_str(), "of" | "the" | "on" | "and" | "in" | "for") {
                    continue;
                }
                if let Some(c) = scratch.chars().next() {
                    lowered.push(c);
                }
            }
            if lowered.len() >= 2 {
                // Same namespace as plain tokens so an abbreviation
                // reference ("ICMD") buckets with the spelt-out name.
                visit("vt:", &lowered);
            }
        }
        for a in &e.abbrevs {
            lowercase_into(a, &mut scratch);
            visit("vt:", &scratch);
        }
    }
}

/// The blocking keys of one reference as owned strings — a convenience
/// wrapper over [`visit_keys`] for diagnostics and tests.
pub fn keys_for(e: &crate::RefEntry) -> Vec<String> {
    let mut keys = Vec::new();
    visit_keys(e, |ns, body| keys.push(format!("{ns}{body}")));
    keys
}

/// Summary of a blocking run, reported by experiments (pairs considered vs.
/// the quadratic worst case).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BlockingStats {
    /// References in the table.
    pub refs: usize,
    /// Candidate pairs emitted.
    pub pairs: usize,
    /// All same-class pairs (the quadratic alternative).
    pub exhaustive_pairs: usize,
}

impl BlockingStats {
    /// Compute stats for a table and its candidate set.
    pub fn compute(table: &RefTable, pairs: &[(u32, u32)]) -> BlockingStats {
        let mut per_class: HashMap<u16, usize> = HashMap::new();
        for e in &table.entries {
            *per_class.entry(e.class.0).or_insert(0) += 1;
        }
        let exhaustive = per_class.values().map(|&n| n * (n - 1) / 2).sum();
        BlockingStats {
            refs: table.len(),
            pairs: pairs.len(),
            exhaustive_pairs: exhaustive,
        }
    }

    /// Fraction of the quadratic pair space actually scored.
    pub fn reduction(&self) -> f64 {
        if self.exhaustive_pairs == 0 {
            return 0.0;
        }
        self.pairs as f64 / self.exhaustive_pairs as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use semex_extract::{bibtex::extract_bibtex, ExtractContext};
    use semex_store::{SourceInfo, SourceKind, Store};
    use std::collections::HashSet;

    fn table_from_bib(bib: &str) -> RefTable {
        let mut st = Store::with_builtin_model();
        let src = st.register_source(SourceInfo::new("b", SourceKind::Bibliography));
        let mut ctx = ExtractContext::new(&mut st, src);
        extract_bibtex(bib, &mut ctx).unwrap();
        RefTable::build(&st, 64)
    }

    #[test]
    fn matching_references_share_buckets() {
        let t = table_from_bib(
            "@inproceedings{a, title={Adaptive Reconciliation of References}, author={Dong, Xin}, booktitle={SIGMOD}, year=2004}\n\
             @inproceedings{b, title={Adaptive Reconciliation for References}, author={X. Dong}, booktitle={ACM SIGMOD}, year=2004}",
        );
        let pairs = candidate_pairs(&t);
        // The two title references, the two Dong references and the two
        // venue references must each appear as a candidate.
        let mut classes_covered: HashSet<u16> = HashSet::new();
        for (a, b) in &pairs {
            let ea = &t.entries[*a as usize];
            let eb = &t.entries[*b as usize];
            assert_eq!(ea.class, eb.class, "pairs are within-class");
            classes_covered.insert(ea.class.0);
        }
        assert_eq!(classes_covered.len(), 3, "person, publication, venue");
    }

    #[test]
    fn unrelated_references_not_paired() {
        let t = table_from_bib(
            "@inproceedings{a, title={Streaming joins}, author={Ann Walker}, booktitle={VLDB}, year=2001}\n\
             @inproceedings{b, title={Ontology caches}, author={Bob Fisher}, booktitle={CIDR}, year=2003}",
        );
        let pairs = candidate_pairs(&t);
        // Walker/Fisher, the two unrelated titles and VLDB/CIDR share no key.
        assert!(pairs.is_empty(), "got {pairs:?}");
    }

    #[test]
    fn soundex_key_bridges_typos() {
        let t = table_from_bib(
            "@inproceedings{a, title={T one alpha}, author={Alon Halevy}, booktitle={X}, year=2001}\n\
             @inproceedings{b, title={T two beta}, author={Alon Halevi}, booktitle={Y}, year=2002}",
        );
        let pairs = candidate_pairs(&t);
        let person_pair = pairs.iter().any(|(a, b)| {
            !t.entries[*a as usize].names.is_empty()
                && !t.entries[*b as usize].names.is_empty()
                && t.entries[*a as usize].titles.is_empty()
                && t.entries[*b as usize].titles.is_empty()
        });
        assert!(person_pair, "Halevy/Halevi must be candidates via Soundex");
    }

    #[test]
    fn hashed_buckets_match_string_buckets() {
        // Reference implementation: bucket by owned (class, key-string);
        // the hashed row table must produce the identical pair set.
        let t = table_from_bib(
            "@inproceedings{a, title={Adaptive Reconciliation of References}, author={Dong, Xin and Halevy, Alon}, booktitle={Proceedings of the 24th ACM SIGMOD Conference}, year=2004}\n\
             @inproceedings{b, title={Adaptive Reconciliation for References}, author={X. Dong}, booktitle={SIGMOD}, year=2004}\n\
             @inproceedings{c, title={Streaming joins}, author={Ann Walker and A. Halevy}, booktitle={Very Large Data Bases}, year=2001}\n\
             @inproceedings{d, title={Streaming joins redux}, author={ann.walker@x.edu}, booktitle={VLDB}, year=2002}",
        );
        let mut buckets: HashMap<(u16, String), Vec<u32>> = HashMap::new();
        for (i, e) in t.entries.iter().enumerate() {
            let keys: HashSet<String> = keys_for(e).into_iter().collect();
            for k in keys {
                buckets.entry((e.class.0, k)).or_default().push(i as u32);
            }
        }
        let mut expect: HashSet<(u32, u32)> = HashSet::new();
        for ((_, _), mut members) in buckets {
            members.sort_unstable();
            if members.len() < 2 || members.len() > MAX_BUCKET {
                continue;
            }
            for (x, &a) in members.iter().enumerate() {
                for &b in &members[x + 1..] {
                    expect.insert(if a < b { (a, b) } else { (b, a) });
                }
            }
        }
        let mut expect: Vec<(u32, u32)> = expect.into_iter().collect();
        expect.sort_unstable();
        assert!(!expect.is_empty(), "fixture must produce candidates");
        assert_eq!(candidate_pairs(&t), expect);
    }

    #[test]
    fn stats_measure_reduction() {
        let t = table_from_bib(
            "@inproceedings{a, title={Adaptive things}, author={A One and B Two and C Three}, booktitle={V}, year=2001}",
        );
        let pairs = candidate_pairs(&t);
        let stats = BlockingStats::compute(&t, &pairs);
        assert_eq!(stats.refs, 5);
        assert!(stats.reduction() <= 1.0);
    }
}
