//! Research browser: the SIGMOD'05 demo's browsing scenario on a realistic
//! personal corpus.
//!
//! Generates a synthetic personal information space (mail archive,
//! bibliography, contacts, drafts, notes — with the full name-variant noise
//! model), writes it to a temporary directory, builds SEMEX over the
//! *directory tree* exactly like a desktop deployment would, and then walks
//! the demo script: search for a person, inspect them, browse co-authors
//! and correspondents, and answer "how am I connected to X?" with an
//! association path.
//!
//! Run with `cargo run --release --example research_browser`.

use semex::browse::Browser;
use semex::corpus::{generate_personal, CorpusConfig};
use semex::SemexBuilder;

fn main() {
    // A mid-sized personal information space.
    let cfg = CorpusConfig {
        seed: 2005,
        people: 80,
        organizations: 8,
        venues: 10,
        publications: 150,
        messages: 600,
        ..CorpusConfig::default()
    };
    let corpus = generate_personal(&cfg);
    let dir = std::env::temp_dir().join(format!("semex-research-{}", std::process::id()));
    corpus.write_to(&dir).expect("write corpus");
    println!(
        "personal corpus: {} files, {:.1} KiB at {}",
        corpus.files.len(),
        corpus.byte_size() as f64 / 1024.0,
        dir.display()
    );

    let semex = SemexBuilder::new()
        .add_directory("home", &dir)
        .build()
        .expect("pipeline");
    let recon = semex.report().recon.as_ref().unwrap();
    println!(
        "extracted {} references; reconciliation merged {} in {:?}\n",
        recon.refs, recon.merges, recon.elapsed
    );

    // Pick the most prolific author as the protagonist.
    let store = semex.store();
    let browser: Browser<'_> = semex.browser();
    let c_person = store.model().class("Person").unwrap();
    let protagonist = store
        .objects_of_class(c_person)
        .max_by_key(|&p| browser.derived_by_name(p, "CoAuthor").unwrap().len())
        .expect("people exist");
    println!("== protagonist: {} ==", store.label(protagonist));
    println!("{}", semex.view(protagonist));

    println!("== co-authors ==");
    for co in browser.derived_by_name(protagonist, "CoAuthor").unwrap() {
        println!("  {}", store.label(co));
    }

    let correspondents = browser
        .derived_by_name(protagonist, "CorrespondedWith")
        .unwrap();
    println!("== correspondents ({}) ==", correspondents.len());
    for c in correspondents.iter().take(8) {
        println!("  {}", store.label(*c));
    }

    // "How am I connected to this person?" — association path to someone
    // the protagonist never e-mailed or co-authored with.
    let stranger = store
        .objects_of_class(c_person)
        .find(|&p| {
            p != protagonist
                && !correspondents.contains(&p)
                && browser.path_between(protagonist, p, 4).is_some()
        })
        .or_else(|| store.objects_of_class(c_person).find(|&p| p != protagonist));
    if let Some(stranger) = stranger {
        println!("\n== connection to {} ==", store.label(stranger));
        match browser.path_between(protagonist, stranger, 6) {
            Some(path) => {
                for (obj, via) in path {
                    match via {
                        None => println!("  {}", store.label(obj)),
                        Some(label) => println!("    --{label}--> {}", store.label(obj)),
                    }
                }
            }
            None => println!("  (not connected within 6 hops)"),
        }
    }

    std::fs::remove_dir_all(&dir).ok();
}
