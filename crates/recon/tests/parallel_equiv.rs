//! Property test: sharded-parallel reconciliation is **byte-identical** to
//! sequential execution — for every [`Variant`], on randomized corpora,
//! with randomized must-link / cannot-link feedback.
//!
//! This is the hard guarantee behind [`semex_recon::ReconConfig::threads`]:
//! partitioning the reference graph into closed shards and running each
//! shard's worklist on its own thread must never change a single merge,
//! cluster, or even the iteration count.

use proptest::prelude::*;
use semex_extract::{bibtex::extract_bibtex, email::extract_mbox, ExtractContext};
use semex_recon::{reconcile, ReconConfig, RefTable, Variant};
use semex_store::{SourceInfo, SourceKind, Store};

const GIVEN: &[&str] = &[
    "Michael", "Alon", "Xin", "Ann", "Bob", "Jayant", "Luna", "Zack",
];
const SURNAMES: &[&str] = &[
    "Carey", "Halevy", "Dong", "Walker", "Fisher", "Madhavan", "Bennett", "Ives",
];
const WORDS: &[&str] = &[
    "semantic",
    "desktop",
    "search",
    "data",
    "integration",
    "reconciliation",
    "references",
    "personal",
    "information",
    "management",
    "streaming",
    "joins",
];
const VENUES: &[&str] = &["SIGMOD", "VLDB", "CIDR", "WebDB"];

fn author(g: usize, s: usize, form: u8) -> String {
    let (g, s) = (GIVEN[g % GIVEN.len()], SURNAMES[s % SURNAMES.len()]);
    match form % 3 {
        0 => format!("{g} {s}"),
        1 => format!("{s}, {g}"),
        _ => format!("{}. {s}", &g[..1]),
    }
}

type PubSpec = (Vec<(usize, usize, u8)>, Vec<usize>, usize, i64);
type MailSpec = ((usize, usize), (usize, usize), usize);

/// Render a random corpus as one bibtex string plus individual messages.
/// Sampling names and title words from small pools guarantees candidate
/// pairs, shared-evidence links and multi-reference shards.
fn render(pubs: &[PubSpec], mails: &[MailSpec]) -> (String, Vec<String>) {
    let mut bib = String::new();
    for (i, (authors, title, venue, year)) in pubs.iter().enumerate() {
        let authors: Vec<String> = authors.iter().map(|&(g, s, f)| author(g, s, f)).collect();
        let title: Vec<&str> = title.iter().map(|&w| WORDS[w % WORDS.len()]).collect();
        bib.push_str(&format!(
            "@inproceedings{{p{i}, title={{{}}}, author={{{}}}, booktitle={{{}}}, year={year}}}\n",
            title.join(" "),
            authors.join(" and "),
            VENUES[venue % VENUES.len()],
        ));
    }
    let mail = |&(g, s): &(usize, usize)| {
        let (g, s) = (GIVEN[g % GIVEN.len()], SURNAMES[s % SURNAMES.len()]);
        format!("{g} {s} <{}.{}@x.edu>", g.to_lowercase(), s.to_lowercase())
    };
    let mails = mails
        .iter()
        .map(|(from, to, subj)| {
            format!(
                "From: {}\nTo: {}\nSubject: about {}\n\nbody\n",
                mail(from),
                mail(to),
                WORDS[subj % WORDS.len()],
            )
        })
        .collect();
    (bib, mails)
}

fn corpus_strategy() -> impl Strategy<Value = (String, Vec<String>)> {
    let author = (0..GIVEN.len(), 0..SURNAMES.len(), any::<u8>());
    let publication = (
        prop::collection::vec(author, 1..4),
        prop::collection::vec(0..WORDS.len(), 2..6),
        0..VENUES.len(),
        2001i64..2006,
    );
    let mail = (
        (0..GIVEN.len(), 0..SURNAMES.len()),
        (0..GIVEN.len(), 0..SURNAMES.len()),
        0..WORDS.len(),
    );
    (
        prop::collection::vec(publication, 2..10),
        prop::collection::vec(mail, 0..6),
    )
        .prop_map(|(pubs, mails)| render(&pubs, &mails))
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

    #[test]
    fn parallel_reconciliation_is_byte_identical(
        (bib, mails) in corpus_strategy(),
        links in prop::collection::vec((any::<u32>(), any::<u32>(), any::<bool>()), 0..4),
    ) {
        let mut store = Store::with_builtin_model();
        let src = store.register_source(SourceInfo::new("t", SourceKind::Synthetic));
        let mut ctx = ExtractContext::new(&mut store, src);
        extract_bibtex(&bib, &mut ctx).unwrap();
        for m in &mails {
            extract_mbox(m, &mut ctx).unwrap();
        }

        // Random user feedback over same-class reference pairs.
        let table = RefTable::build(&store, 64);
        let mut must = Vec::new();
        let mut cannot = Vec::new();
        if !table.is_empty() {
            for &(a, b, is_must) in &links {
                let ea = &table.entries[a as usize % table.len()];
                let eb = &table.entries[b as usize % table.len()];
                if ea.obj == eb.obj || ea.class != eb.class {
                    continue;
                }
                if is_must {
                    must.push((ea.obj, eb.obj));
                } else {
                    cannot.push((ea.obj, eb.obj));
                }
            }
        }
        // Drop directly contradictory feedback; that input is undefined.
        cannot.retain(|&(a, b)| !must.contains(&(a, b)) && !must.contains(&(b, a)));

        for variant in Variant::ALL {
            let run = |threads: usize| {
                let mut st = store.clone();
                let cfg = ReconConfig {
                    threads,
                    must_link: must.clone(),
                    cannot_link: cannot.clone(),
                    ..ReconConfig::default()
                };
                let r = reconcile(&mut st, variant, &cfg);
                (r.merges, r.iterations, r.shards, r.clusters, st.object_count())
            };
            let seq = run(1);
            for threads in [2usize, 4, 8] {
                let par = run(threads);
                prop_assert_eq!(
                    &seq, &par,
                    "variant {} diverged at {} threads", variant, threads
                );
            }
        }
    }
}
