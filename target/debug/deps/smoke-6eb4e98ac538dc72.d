/root/repo/target/debug/deps/smoke-6eb4e98ac538dc72.d: crates/serve/tests/smoke.rs Cargo.toml

/root/repo/target/debug/deps/libsmoke-6eb4e98ac538dc72.rmeta: crates/serve/tests/smoke.rs Cargo.toml

crates/serve/tests/smoke.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
