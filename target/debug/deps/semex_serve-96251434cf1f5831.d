/root/repo/target/debug/deps/semex_serve-96251434cf1f5831.d: crates/serve/src/lib.rs crates/serve/src/json.rs crates/serve/src/protocol.rs crates/serve/src/client.rs crates/serve/src/engine.rs crates/serve/src/master.rs crates/serve/src/server.rs crates/serve/src/writer.rs

/root/repo/target/debug/deps/semex_serve-96251434cf1f5831: crates/serve/src/lib.rs crates/serve/src/json.rs crates/serve/src/protocol.rs crates/serve/src/client.rs crates/serve/src/engine.rs crates/serve/src/master.rs crates/serve/src/server.rs crates/serve/src/writer.rs

crates/serve/src/lib.rs:
crates/serve/src/json.rs:
crates/serve/src/protocol.rs:
crates/serve/src/client.rs:
crates/serve/src/engine.rs:
crates/serve/src/master.rs:
crates/serve/src/server.rs:
crates/serve/src/writer.rs:
