/root/repo/target/debug/deps/semex_browse-c9df2874adb367a0.d: crates/browse/src/lib.rs crates/browse/src/analyze.rs crates/browse/src/pattern.rs

/root/repo/target/debug/deps/libsemex_browse-c9df2874adb367a0.rmeta: crates/browse/src/lib.rs crates/browse/src/analyze.rs crates/browse/src/pattern.rs

crates/browse/src/lib.rs:
crates/browse/src/analyze.rs:
crates/browse/src/pattern.rs:
