//! Integration tests for binary-format snapshots: round trips through
//! commit/compact/reopen, migration from JSON spaces, and epoch fallback
//! when a binary snapshot is damaged.

use semex_journal::{segment, DurableStore, JournalConfig, SnapshotFormat};
use semex_model::names::{assoc, attr, class};
use semex_model::Value;
use semex_store::{ObjectId, SourceInfo, SourceKind, Store};
use std::fs;
use std::path::{Path, PathBuf};

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("semex-binfmt-{tag}-{}", std::process::id()));
    fs::remove_dir_all(&dir).ok();
    dir
}

fn config(format: SnapshotFormat) -> JournalConfig {
    JournalConfig {
        fsync: false,
        snapshot_format: format,
        ..JournalConfig::default()
    }
}

/// Deterministic mutation scenario (mirrors the recovery suite).
fn scenario(st: &mut Store) {
    let person = st.model().class(class::PERSON).unwrap();
    let publication = st.model().class(class::PUBLICATION).unwrap();
    let authored = st.model().assoc(assoc::AUTHORED_BY).unwrap();
    let name = st.model().attr(attr::NAME).unwrap();
    let title = st.model().attr(attr::TITLE).unwrap();
    let src = st.register_source(SourceInfo::new("inbox", SourceKind::Synthetic));
    let ann = st.add_object(person);
    let smith = st.add_object(person);
    st.add_attr(ann, name, Value::from("Ann Smith")).unwrap();
    st.add_attr(smith, name, Value::from("A. Smith")).unwrap();
    st.add_source_to(ann, src);
    let paper = st.add_object(publication);
    st.add_attr(paper, title, Value::from("On Binary Snapshots"))
        .unwrap();
    st.add_triple(paper, authored, smith, src).unwrap();
    st.merge(ann, smith).unwrap();
}

fn assert_same_store(recovered: &Store, expected: &Store) {
    assert_eq!(recovered.slot_count(), expected.slot_count(), "slot count");
    assert_eq!(recovered.triples_raw(), expected.triples_raw(), "triples");
    for i in 0..expected.slot_count() {
        let id = ObjectId(i as u64);
        assert_eq!(
            recovered.object_raw(id),
            expected.object_raw(id),
            "slot {i}"
        );
        assert_eq!(recovered.resolve(id), expected.resolve(id), "alias {i}");
    }
}

/// Names of all snapshot files in a journal directory.
fn snapshot_names(dir: &Path) -> Vec<String> {
    let mut names: Vec<String> = fs::read_dir(dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .filter_map(|e| e.file_name().to_str().map(str::to_owned))
        .filter(|n| segment::parse_snapshot_name(n).is_some())
        .collect();
    names.sort();
    names
}

#[test]
fn binary_space_round_trips_through_commit_compact_reopen() {
    let dir = scratch("roundtrip");
    let (mut durable, report) = DurableStore::open(&dir, config(SnapshotFormat::Binary)).unwrap();
    assert!(report.initialized);
    // The fresh epoch-0 snapshot is already binary.
    assert_eq!(
        snapshot_names(&dir),
        vec![segment::snapshot_file_name(0, SnapshotFormat::Binary)]
    );

    scenario(durable.store_mut());
    durable.commit().unwrap();
    let live = durable.store().clone();
    drop(durable);

    // Reopen: recover from binary snapshot + WAL replay.
    let (mut durable, report) = DurableStore::open(&dir, config(SnapshotFormat::Binary)).unwrap();
    assert!(report.damage.is_none(), "{report:?}");
    assert!(report.warnings.is_empty(), "{:?}", report.warnings);
    assert_same_store(durable.store(), &live);

    // Compact folds everything into a binary epoch-1 snapshot.
    let c = durable.compact().unwrap();
    assert_eq!(c.epoch, 1);
    assert_eq!(
        snapshot_names(&dir),
        vec![segment::snapshot_file_name(1, SnapshotFormat::Binary)]
    );
    drop(durable);

    let (durable, report) = DurableStore::open(&dir, config(SnapshotFormat::Binary)).unwrap();
    assert_eq!(report.epoch, 1);
    assert!(report.damage.is_none(), "{report:?}");
    assert_same_store(durable.store(), &live);
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn json_space_migrates_to_binary_at_compaction() {
    let dir = scratch("migrate");
    // Build a JSON-format space first.
    let (mut durable, _) = DurableStore::open(&dir, config(SnapshotFormat::Json)).unwrap();
    scenario(durable.store_mut());
    durable.commit().unwrap();
    let live = durable.store().clone();
    drop(durable);
    assert_eq!(
        snapshot_names(&dir),
        vec![segment::snapshot_file_name(0, SnapshotFormat::Json)]
    );

    // Reopen with the binary config: the JSON snapshot is still read
    // (formats are a read-both, write-configured gate) …
    let (mut durable, report) = DurableStore::open(&dir, config(SnapshotFormat::Binary)).unwrap();
    assert!(report.damage.is_none(), "{report:?}");
    assert_same_store(durable.store(), &live);

    // … and the next compaction rewrites the space in binary.
    let c = durable.compact().unwrap();
    assert_eq!(c.epoch, 1);
    assert_eq!(
        snapshot_names(&dir),
        vec![segment::snapshot_file_name(1, SnapshotFormat::Binary)]
    );
    drop(durable);

    let (durable, _) = DurableStore::open(&dir, config(SnapshotFormat::Binary)).unwrap();
    assert_same_store(durable.store(), &live);

    // And back: a JSON-configured compaction migrates the space again.
    drop(durable);
    let (mut durable, _) = DurableStore::open(&dir, config(SnapshotFormat::Json)).unwrap();
    let person = durable.store().model().class(class::PERSON).unwrap();
    durable.store_mut().add_object(person);
    durable.commit().unwrap();
    let live = durable.store().clone();
    durable.compact().unwrap();
    drop(durable);
    assert_eq!(
        snapshot_names(&dir),
        vec![segment::snapshot_file_name(2, SnapshotFormat::Json)]
    );
    let (durable, _) = DurableStore::open(&dir, config(SnapshotFormat::Json)).unwrap();
    assert_same_store(durable.store(), &live);
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn damaged_binary_snapshot_falls_back_to_previous_epoch() {
    let dir = scratch("fallback");
    let (mut durable, _) = DurableStore::open(&dir, config(SnapshotFormat::Binary)).unwrap();
    scenario(durable.store_mut());
    durable.commit().unwrap();
    let live = durable.store().clone();
    drop(durable);

    // Save the epoch-0 files, compact to epoch 1, then put the epoch-0
    // files back: exactly the directory a crash between "write new
    // snapshot" and "delete old epoch" leaves behind.
    let saved: Vec<(String, Vec<u8>)> = fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| {
            let name = e.file_name().to_str().unwrap().to_owned();
            (name.clone(), fs::read(dir.join(&name)).unwrap())
        })
        .collect();
    let (mut durable, _) = DurableStore::open(&dir, config(SnapshotFormat::Binary)).unwrap();
    durable.compact().unwrap();
    drop(durable);
    for (name, bytes) in &saved {
        if !dir.join(name).exists() {
            fs::write(dir.join(name), bytes).unwrap();
        }
    }

    // Corrupt the epoch-1 binary snapshot.
    let snap1 = dir.join(segment::snapshot_file_name(1, SnapshotFormat::Binary));
    let mut bytes = fs::read(&snap1).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xFF;
    fs::write(&snap1, &bytes).unwrap();

    // Recovery reports the damage as a warning, falls back to epoch 0, and
    // still reaches the full committed state by replaying epoch 0's WAL.
    let (durable, report) = DurableStore::open(&dir, config(SnapshotFormat::Binary)).unwrap();
    assert_eq!(report.epoch, 0, "fell back to the previous epoch");
    assert!(
        report.warnings.iter().any(|w| w.contains("snapshot")),
        "damage surfaced as a warning: {:?}",
        report.warnings
    );
    assert!(!snap1.exists(), "damaged snapshot removed");
    assert_same_store(durable.store(), &live);
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn damaged_sole_binary_snapshot_is_a_typed_error() {
    let dir = scratch("sole");
    let (mut durable, _) = DurableStore::open(&dir, config(SnapshotFormat::Binary)).unwrap();
    scenario(durable.store_mut());
    durable.commit().unwrap();
    durable.compact().unwrap();
    drop(durable);

    let snap = dir.join(segment::snapshot_file_name(1, SnapshotFormat::Binary));
    let mut bytes = fs::read(&snap).unwrap();
    let last = bytes.len() - 1;
    bytes[last] ^= 0x01;
    fs::write(&snap, &bytes).unwrap();

    let err = DurableStore::open(&dir, config(SnapshotFormat::Binary)).unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("no usable snapshot"), "typed error: {msg}");
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn truncated_binary_snapshot_falls_back_too() {
    let dir = scratch("truncated");
    let (mut durable, _) = DurableStore::open(&dir, config(SnapshotFormat::Binary)).unwrap();
    scenario(durable.store_mut());
    durable.commit().unwrap();
    let live = durable.store().clone();
    drop(durable);

    let saved: Vec<(String, Vec<u8>)> = fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| {
            let name = e.file_name().to_str().unwrap().to_owned();
            (name.clone(), fs::read(dir.join(&name)).unwrap())
        })
        .collect();
    let (mut durable, _) = DurableStore::open(&dir, config(SnapshotFormat::Binary)).unwrap();
    durable.compact().unwrap();
    drop(durable);
    for (name, bytes) in &saved {
        if !dir.join(name).exists() {
            fs::write(dir.join(name), bytes).unwrap();
        }
    }

    // Tear the epoch-1 snapshot in half (torn write at compaction).
    let snap1 = dir.join(segment::snapshot_file_name(1, SnapshotFormat::Binary));
    let bytes = fs::read(&snap1).unwrap();
    fs::write(&snap1, &bytes[..bytes.len() / 2]).unwrap();

    let (durable, report) = DurableStore::open(&dir, config(SnapshotFormat::Binary)).unwrap();
    assert_eq!(report.epoch, 0);
    assert!(!report.warnings.is_empty());
    assert_same_store(durable.store(), &live);
    fs::remove_dir_all(&dir).ok();
}
