//! Corpus statistics (document frequencies) backing IDF weighting.

use std::collections::{HashMap, HashSet};

/// Document-frequency table over a corpus of token documents.
///
/// Reconciliation builds one table per attribute (e.g. over all publication
/// titles) so that rare words carry more matching weight than ubiquitous
/// ones. Unknown tokens get the maximum IDF (they are rarer than anything
/// observed).
#[derive(Debug, Clone, Default)]
pub struct CorpusStats {
    docs: usize,
    df: HashMap<String, usize>,
}

impl CorpusStats {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register one document's tokens (counted once per document).
    pub fn add_doc<S: AsRef<str>>(&mut self, tokens: impl IntoIterator<Item = S>) {
        self.docs += 1;
        let uniq: HashSet<String> = tokens.into_iter().map(|t| t.as_ref().to_owned()).collect();
        for t in uniq {
            *self.df.entry(t).or_insert(0) += 1;
        }
    }

    /// Number of documents seen.
    pub fn doc_count(&self) -> usize {
        self.docs
    }

    /// Document frequency of a token.
    pub fn df(&self, token: &str) -> usize {
        self.df.get(token).copied().unwrap_or(0)
    }

    /// Smoothed inverse document frequency: `ln((1 + N) / (1 + df)) + 1`.
    /// Always positive; unseen tokens score highest.
    pub fn idf(&self, token: &str) -> f64 {
        let n = self.docs as f64;
        let df = self.df(token) as f64;
        ((1.0 + n) / (1.0 + df)).ln() + 1.0
    }

    /// Number of distinct tokens observed.
    pub fn vocab_size(&self) -> usize {
        self.df.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn df_counts_once_per_doc() {
        let mut s = CorpusStats::new();
        s.add_doc(["a", "a", "b"].iter());
        s.add_doc(["a", "c"].iter());
        assert_eq!(s.doc_count(), 2);
        assert_eq!(s.df("a"), 2);
        assert_eq!(s.df("b"), 1);
        assert_eq!(s.df("zzz"), 0);
        assert_eq!(s.vocab_size(), 3);
    }

    #[test]
    fn idf_orders_by_rarity() {
        let mut s = CorpusStats::new();
        for _ in 0..50 {
            s.add_doc(["the"].iter());
        }
        s.add_doc(["rare", "the"].iter());
        assert!(s.idf("unseen") > s.idf("rare"));
        assert!(s.idf("rare") > s.idf("the"));
        assert!(s.idf("the") >= 1.0);
    }

    #[test]
    fn empty_corpus_is_safe() {
        let s = CorpusStats::new();
        assert!(s.idf("x") > 0.0);
        assert_eq!(s.doc_count(), 0);
    }
}
