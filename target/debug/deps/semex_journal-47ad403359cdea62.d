/root/repo/target/debug/deps/semex_journal-47ad403359cdea62.d: crates/journal/src/lib.rs crates/journal/src/crc32.rs crates/journal/src/io.rs crates/journal/src/journal.rs crates/journal/src/record.rs crates/journal/src/segment.rs Cargo.toml

/root/repo/target/debug/deps/libsemex_journal-47ad403359cdea62.rmeta: crates/journal/src/lib.rs crates/journal/src/crc32.rs crates/journal/src/io.rs crates/journal/src/journal.rs crates/journal/src/record.rs crates/journal/src/segment.rs Cargo.toml

crates/journal/src/lib.rs:
crates/journal/src/crc32.rs:
crates/journal/src/io.rs:
crates/journal/src/journal.rs:
crates/journal/src/record.rs:
crates/journal/src/segment.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
