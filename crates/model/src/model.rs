//! The domain-model registry.

use crate::names::{assoc, attr, class, derived};
use crate::{
    AssocDef, AssocId, AttrDef, AttrId, ClassDef, ClassId, DerivedDef, PathExpr, PathStep,
    ValueKind,
};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// Errors raised when extending or querying a [`DomainModel`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelError {
    /// A class, attribute, association or derived association with this name
    /// already exists.
    DuplicateName(String),
    /// The named element does not exist.
    Unknown(String),
    /// A rule references an association that does not exist.
    BadRule(String),
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::DuplicateName(n) => write!(f, "duplicate name in domain model: {n}"),
            ModelError::Unknown(n) => write!(f, "unknown domain-model element: {n}"),
            ModelError::BadRule(n) => write!(f, "invalid derived-association rule: {n}"),
        }
    }
}

impl std::error::Error for ModelError {}

/// The registry of classes, attributes, associations and derived
/// associations.
///
/// A model starts from [`DomainModel::builtin`] (the SEMEX vocabulary) or
/// [`DomainModel::empty`] and grows monotonically: elements are added, never
/// removed, so ids handed out remain valid.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DomainModel {
    classes: Vec<ClassDef>,
    attrs: Vec<AttrDef>,
    assocs: Vec<AssocDef>,
    deriveds: Vec<DerivedDef>,
    class_by_name: HashMap<String, ClassId>,
    attr_by_name: HashMap<String, AttrId>,
    assoc_by_name: HashMap<String, AssocId>,
    derived_by_name: HashMap<String, usize>,
}

impl Default for DomainModel {
    fn default() -> Self {
        Self::builtin()
    }
}

impl DomainModel {
    /// A model with no elements.
    pub fn empty() -> Self {
        DomainModel {
            classes: Vec::new(),
            attrs: Vec::new(),
            assocs: Vec::new(),
            deriveds: Vec::new(),
            class_by_name: HashMap::new(),
            attr_by_name: HashMap::new(),
            assoc_by_name: HashMap::new(),
            derived_by_name: HashMap::new(),
        }
    }

    /// Register a class. Fails on duplicate name.
    pub fn add_class(&mut self, def: ClassDef) -> Result<ClassId, ModelError> {
        if self.class_by_name.contains_key(&def.name) {
            return Err(ModelError::DuplicateName(def.name));
        }
        let id = ClassId(self.classes.len() as u16);
        self.class_by_name.insert(def.name.clone(), id);
        self.classes.push(def);
        Ok(id)
    }

    /// Register an attribute. Fails on duplicate name.
    pub fn add_attr(&mut self, def: AttrDef) -> Result<AttrId, ModelError> {
        if self.attr_by_name.contains_key(&def.name) {
            return Err(ModelError::DuplicateName(def.name));
        }
        let id = AttrId(self.attrs.len() as u16);
        self.attr_by_name.insert(def.name.clone(), id);
        self.attrs.push(def);
        Ok(id)
    }

    /// Register an association. Fails on duplicate name or unknown classes.
    pub fn add_assoc(&mut self, def: AssocDef) -> Result<AssocId, ModelError> {
        if self.assoc_by_name.contains_key(&def.name) {
            return Err(ModelError::DuplicateName(def.name));
        }
        if def.domain.index() >= self.classes.len() || def.range.index() >= self.classes.len() {
            return Err(ModelError::Unknown(def.name));
        }
        let id = AssocId(self.assocs.len() as u16);
        self.assoc_by_name.insert(def.name.clone(), id);
        self.assocs.push(def);
        Ok(id)
    }

    /// Register a derived association. Fails on duplicate name or if the rule
    /// mentions an unknown association.
    pub fn add_derived(&mut self, def: DerivedDef) -> Result<(), ModelError> {
        if self.derived_by_name.contains_key(&def.name)
            || self.assoc_by_name.contains_key(&def.name)
        {
            return Err(ModelError::DuplicateName(def.name));
        }
        for a in def.rule.assocs() {
            if a.index() >= self.assocs.len() {
                return Err(ModelError::BadRule(def.name));
            }
        }
        self.derived_by_name
            .insert(def.name.clone(), self.deriveds.len());
        self.deriveds.push(def);
        Ok(())
    }

    /// Look up a class by name.
    pub fn class(&self, name: &str) -> Option<ClassId> {
        self.class_by_name.get(name).copied()
    }

    /// Look up a class by name, erroring when absent.
    pub fn class_req(&self, name: &str) -> Result<ClassId, ModelError> {
        self.class(name)
            .ok_or_else(|| ModelError::Unknown(name.to_owned()))
    }

    /// Look up an attribute by name.
    pub fn attr(&self, name: &str) -> Option<AttrId> {
        self.attr_by_name.get(name).copied()
    }

    /// Look up an attribute by name, erroring when absent.
    pub fn attr_req(&self, name: &str) -> Result<AttrId, ModelError> {
        self.attr(name)
            .ok_or_else(|| ModelError::Unknown(name.to_owned()))
    }

    /// Look up an association by name.
    pub fn assoc(&self, name: &str) -> Option<AssocId> {
        self.assoc_by_name.get(name).copied()
    }

    /// Look up an association by name, erroring when absent.
    pub fn assoc_req(&self, name: &str) -> Result<AssocId, ModelError> {
        self.assoc(name)
            .ok_or_else(|| ModelError::Unknown(name.to_owned()))
    }

    /// The definition of a class.
    pub fn class_def(&self, id: ClassId) -> &ClassDef {
        &self.classes[id.index()]
    }

    /// The definition of an attribute.
    pub fn attr_def(&self, id: AttrId) -> &AttrDef {
        &self.attrs[id.index()]
    }

    /// The definition of an association.
    pub fn assoc_def(&self, id: AssocId) -> &AssocDef {
        &self.assocs[id.index()]
    }

    /// The definition of a derived association, by name.
    pub fn derived(&self, name: &str) -> Option<&DerivedDef> {
        self.derived_by_name.get(name).map(|&i| &self.deriveds[i])
    }

    /// All classes, in id order.
    pub fn classes(&self) -> impl Iterator<Item = (ClassId, &ClassDef)> {
        self.classes
            .iter()
            .enumerate()
            .map(|(i, d)| (ClassId(i as u16), d))
    }

    /// All attributes, in id order.
    pub fn attrs(&self) -> impl Iterator<Item = (AttrId, &AttrDef)> {
        self.attrs
            .iter()
            .enumerate()
            .map(|(i, d)| (AttrId(i as u16), d))
    }

    /// All associations, in id order.
    pub fn assocs(&self) -> impl Iterator<Item = (AssocId, &AssocDef)> {
        self.assocs
            .iter()
            .enumerate()
            .map(|(i, d)| (AssocId(i as u16), d))
    }

    /// All derived associations.
    pub fn deriveds(&self) -> impl Iterator<Item = &DerivedDef> {
        self.deriveds.iter()
    }

    /// Number of classes.
    pub fn class_count(&self) -> usize {
        self.classes.len()
    }

    /// Number of associations.
    pub fn assoc_count(&self) -> usize {
        self.assocs.len()
    }

    /// Number of attributes.
    pub fn attr_count(&self) -> usize {
        self.attrs.len()
    }

    /// The built-in SEMEX vocabulary: the classes, attributes, associations
    /// and derived associations described in the paper's domain model.
    pub fn builtin() -> Self {
        let mut m = DomainModel::empty();

        // Attributes ----------------------------------------------------
        let a_name = m
            .add_attr(AttrDef::new(attr::NAME, ValueKind::Str))
            .unwrap();
        let a_first = m
            .add_attr(AttrDef::new(attr::FIRST_NAME, ValueKind::Str))
            .unwrap();
        let a_last = m
            .add_attr(AttrDef::new(attr::LAST_NAME, ValueKind::Str))
            .unwrap();
        let a_email = m
            .add_attr(AttrDef::new(attr::EMAIL, ValueKind::Str))
            .unwrap();
        let a_phone = m
            .add_attr(AttrDef::new(attr::PHONE, ValueKind::Str).unindexed())
            .unwrap();
        let a_title = m
            .add_attr(AttrDef::new(attr::TITLE, ValueKind::Str))
            .unwrap();
        let a_subject = m
            .add_attr(AttrDef::new(attr::SUBJECT, ValueKind::Str))
            .unwrap();
        let a_body = m
            .add_attr(AttrDef::new(attr::BODY, ValueKind::Str))
            .unwrap();
        let a_date = m
            .add_attr(AttrDef::new(attr::DATE, ValueKind::Date))
            .unwrap();
        let a_year = m
            .add_attr(AttrDef::new(attr::YEAR, ValueKind::Int))
            .unwrap();
        let a_pages = m
            .add_attr(AttrDef::new(attr::PAGES, ValueKind::Str).unindexed())
            .unwrap();
        let a_path = m
            .add_attr(AttrDef::new(attr::PATH, ValueKind::Str))
            .unwrap();
        let a_ext = m
            .add_attr(AttrDef::new(attr::EXTENSION, ValueKind::Str).unindexed())
            .unwrap();
        let a_url = m.add_attr(AttrDef::new(attr::URL, ValueKind::Str)).unwrap();
        let a_mid = m
            .add_attr(AttrDef::new(attr::MESSAGE_ID, ValueKind::Str).unindexed())
            .unwrap();
        let a_loc = m
            .add_attr(AttrDef::new(attr::LOCATION, ValueKind::Str))
            .unwrap();
        let a_abbr = m
            .add_attr(AttrDef::new(attr::ABBREVIATION, ValueKind::Str))
            .unwrap();

        // Classes -------------------------------------------------------
        let person = m
            .add_class(
                ClassDef::new(class::PERSON)
                    .with_attrs(vec![a_name, a_first, a_last, a_email, a_phone])
                    .with_label(a_name)
                    .reconcilable(),
            )
            .unwrap();
        let message = m
            .add_class(
                ClassDef::new(class::MESSAGE)
                    .with_attrs(vec![a_subject, a_date, a_body, a_mid])
                    .with_label(a_subject),
            )
            .unwrap();
        let publication = m
            .add_class(
                ClassDef::new(class::PUBLICATION)
                    .with_attrs(vec![a_title, a_year, a_pages])
                    .with_label(a_title)
                    .reconcilable(),
            )
            .unwrap();
        let venue = m
            .add_class(
                ClassDef::new(class::VENUE)
                    .with_attrs(vec![a_name, a_abbr])
                    .with_label(a_name)
                    .reconcilable(),
            )
            .unwrap();
        let organization = m
            .add_class(
                ClassDef::new(class::ORGANIZATION)
                    .with_attrs(vec![a_name, a_url])
                    .with_label(a_name)
                    .reconcilable(),
            )
            .unwrap();
        let file = m
            .add_class(
                ClassDef::new(class::FILE)
                    .with_attrs(vec![a_name, a_path, a_ext, a_date])
                    .with_label(a_name),
            )
            .unwrap();
        let folder = m
            .add_class(
                ClassDef::new(class::FOLDER)
                    .with_attrs(vec![a_name, a_path])
                    .with_label(a_name),
            )
            .unwrap();
        let event = m
            .add_class(
                ClassDef::new(class::EVENT)
                    .with_attrs(vec![a_title, a_date, a_loc])
                    .with_label(a_title),
            )
            .unwrap();
        let project = m
            .add_class(
                ClassDef::new(class::PROJECT)
                    .with_attrs(vec![a_name])
                    .with_label(a_name),
            )
            .unwrap();
        let web_page = m
            .add_class(
                ClassDef::new(class::WEB_PAGE)
                    .with_attrs(vec![a_title, a_url])
                    .with_label(a_title),
            )
            .unwrap();

        // Associations ----------------------------------------------------
        let sender = m
            .add_assoc(AssocDef::new(assoc::SENDER, message, person, "SenderOf"))
            .unwrap();
        let recipient = m
            .add_assoc(AssocDef::new(
                assoc::RECIPIENT,
                message,
                person,
                "RecipientOf",
            ))
            .unwrap();
        let _cc = m
            .add_assoc(AssocDef::new(
                assoc::CC_RECIPIENT,
                message,
                person,
                "CcRecipientOf",
            ))
            .unwrap();
        let _replied = m
            .add_assoc(
                AssocDef::new(assoc::REPLIED_TO, message, message, "RepliedBy")
                    .without_recon_evidence(),
            )
            .unwrap();
        let _attached = m
            .add_assoc(AssocDef::new(
                assoc::ATTACHED_TO,
                file,
                message,
                "HasAttachment",
            ))
            .unwrap();
        let authored_by = m
            .add_assoc(AssocDef::new(
                assoc::AUTHORED_BY,
                publication,
                person,
                "AuthorOf",
            ))
            .unwrap();
        let _published_in = m
            .add_assoc(AssocDef::new(
                assoc::PUBLISHED_IN,
                publication,
                venue,
                "Published",
            ))
            .unwrap();
        let cites = m
            .add_assoc(AssocDef::new(
                assoc::CITES,
                publication,
                publication,
                "CitedBy",
            ))
            .unwrap();
        let works_for = m
            .add_assoc(AssocDef::new(
                assoc::WORKS_FOR,
                person,
                organization,
                "Employs",
            ))
            .unwrap();
        let _member_of = m
            .add_assoc(AssocDef::new(
                assoc::MEMBER_OF,
                person,
                project,
                "HasMember",
            ))
            .unwrap();
        let _in_folder = m
            .add_assoc(
                AssocDef::new(assoc::IN_FOLDER, file, folder, "Contains").without_recon_evidence(),
            )
            .unwrap();
        let _subfolder = m
            .add_assoc(
                AssocDef::new(assoc::SUBFOLDER_OF, folder, folder, "HasSubfolder")
                    .without_recon_evidence(),
            )
            .unwrap();
        let _described_by = m
            .add_assoc(AssocDef::new(
                assoc::DESCRIBED_BY,
                publication,
                file,
                "Describes",
            ))
            .unwrap();
        let _mentions = m
            .add_assoc(AssocDef::new(assoc::MENTIONS, file, person, "MentionedIn"))
            .unwrap();
        let attendee = m
            .add_assoc(AssocDef::new(assoc::ATTENDEE, event, person, "Attends"))
            .unwrap();
        let _organized_by = m
            .add_assoc(AssocDef::new(
                assoc::ORGANIZED_BY,
                event,
                person,
                "Organizes",
            ))
            .unwrap();
        let _links_to = m
            .add_assoc(
                AssocDef::new(assoc::LINKS_TO, web_page, web_page, "LinkedFrom")
                    .without_recon_evidence(),
            )
            .unwrap();
        let _page_mentions = m
            .add_assoc(AssocDef::new(
                assoc::PAGE_MENTIONS,
                web_page,
                person,
                "MentionedOnPage",
            ))
            .unwrap();

        // Derived associations -------------------------------------------
        m.add_derived(DerivedDef::new(
            derived::CO_AUTHOR,
            person,
            person,
            PathExpr::share_subject(authored_by),
        ))
        .unwrap();
        m.add_derived(DerivedDef::new(
            derived::CORRESPONDED_WITH,
            person,
            person,
            PathExpr::Union(vec![
                PathExpr::path(vec![
                    PathStep::Inverse(sender),
                    PathStep::Forward(recipient),
                ]),
                PathExpr::path(vec![
                    PathStep::Inverse(recipient),
                    PathStep::Forward(sender),
                ]),
            ]),
        ))
        .unwrap();
        m.add_derived(DerivedDef::new(
            derived::COLLEAGUE,
            person,
            person,
            PathExpr::path(vec![
                PathStep::Forward(works_for),
                PathStep::Inverse(works_for),
            ]),
        ))
        .unwrap();
        m.add_derived(DerivedDef::new(
            derived::CITED_AUTHOR,
            publication,
            person,
            PathExpr::path(vec![
                PathStep::Forward(cites),
                PathStep::Forward(authored_by),
            ]),
        ))
        .unwrap();
        m.add_derived(DerivedDef::new(
            derived::CO_ATTENDEE,
            person,
            person,
            PathExpr::share_subject(attendee),
        ))
        .unwrap();

        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_has_expected_vocabulary() {
        let m = DomainModel::builtin();
        assert_eq!(m.class_count(), 10);
        assert!(m.class(class::PERSON).is_some());
        assert!(m.class(class::PUBLICATION).is_some());
        assert!(m.assoc(assoc::AUTHORED_BY).is_some());
        assert!(m.derived(derived::CO_AUTHOR).is_some());
        let person = m.class(class::PERSON).unwrap();
        assert!(m.class_def(person).reconcilable);
        let message = m.class(class::MESSAGE).unwrap();
        assert!(!m.class_def(message).reconcilable);
    }

    #[test]
    fn builtin_association_signatures() {
        let m = DomainModel::builtin();
        let authored = m.assoc(assoc::AUTHORED_BY).unwrap();
        let def = m.assoc_def(authored);
        assert_eq!(def.domain, m.class(class::PUBLICATION).unwrap());
        assert_eq!(def.range, m.class(class::PERSON).unwrap());
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut m = DomainModel::builtin();
        assert_eq!(
            m.add_class(ClassDef::new(class::PERSON)),
            Err(ModelError::DuplicateName(class::PERSON.to_owned()))
        );
        assert_eq!(
            m.add_attr(AttrDef::new(attr::NAME, ValueKind::Str)),
            Err(ModelError::DuplicateName(attr::NAME.to_owned()))
        );
    }

    #[test]
    fn malleable_extension() {
        let mut m = DomainModel::builtin();
        let a = m.add_attr(AttrDef::new("isbn", ValueKind::Str)).unwrap();
        let book = m
            .add_class(ClassDef::new("Book").with_attrs(vec![a]).reconcilable())
            .unwrap();
        let person = m.class(class::PERSON).unwrap();
        let wrote = m
            .add_assoc(AssocDef::new("WrittenBy", book, person, "WroteBook"))
            .unwrap();
        m.add_derived(DerivedDef::new(
            "CoBookAuthor",
            person,
            person,
            PathExpr::share_subject(wrote),
        ))
        .unwrap();
        assert_eq!(m.class("Book"), Some(book));
        assert!(m.derived("CoBookAuthor").is_some());
    }

    #[test]
    fn bad_rule_rejected() {
        let mut m = DomainModel::builtin();
        let person = m.class(class::PERSON).unwrap();
        let err = m.add_derived(DerivedDef::new(
            "Broken",
            person,
            person,
            PathExpr::share_subject(AssocId(999)),
        ));
        assert_eq!(err, Err(ModelError::BadRule("Broken".to_owned())));
    }

    #[test]
    fn assoc_with_unknown_class_rejected() {
        let mut m = DomainModel::empty();
        let err = m.add_assoc(AssocDef::new("X", ClassId(0), ClassId(1), "Y"));
        assert!(matches!(err, Err(ModelError::Unknown(_))));
    }

    #[test]
    fn lookup_req_errors() {
        let m = DomainModel::builtin();
        assert!(m.class_req("Nope").is_err());
        assert!(m.attr_req("nope").is_err());
        assert!(m.assoc_req("Nope").is_err());
        assert!(m.class_req(class::PERSON).is_ok());
    }

    #[test]
    fn iterators_cover_everything() {
        let m = DomainModel::builtin();
        assert_eq!(m.classes().count(), m.class_count());
        assert_eq!(m.assocs().count(), m.assoc_count());
        assert_eq!(m.attrs().count(), m.attr_count());
        assert_eq!(m.deriveds().count(), 5);
    }
}
