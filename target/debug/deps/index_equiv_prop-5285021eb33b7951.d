/root/repo/target/debug/deps/index_equiv_prop-5285021eb33b7951.d: crates/index/tests/index_equiv_prop.rs

/root/repo/target/debug/deps/index_equiv_prop-5285021eb33b7951: crates/index/tests/index_equiv_prop.rs

crates/index/tests/index_equiv_prop.rs:
