/root/repo/target/debug/deps/tenants-9c4c9feff4036158.d: crates/serve/tests/tenants.rs Cargo.toml

/root/repo/target/debug/deps/libtenants-9c4c9feff4036158.rmeta: crates/serve/tests/tenants.rs Cargo.toml

crates/serve/tests/tenants.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
