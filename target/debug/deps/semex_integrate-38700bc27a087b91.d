/root/repo/target/debug/deps/semex_integrate-38700bc27a087b91.d: crates/integrate/src/lib.rs crates/integrate/src/matcher.rs Cargo.toml

/root/repo/target/debug/deps/libsemex_integrate-38700bc27a087b91.rmeta: crates/integrate/src/lib.rs crates/integrate/src/matcher.rs Cargo.toml

crates/integrate/src/lib.rs:
crates/integrate/src/matcher.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
