//! Pluggable journal I/O: every file operation the journal performs goes
//! through the [`JournalIo`] trait, so the same append/recovery/compaction
//! logic runs against the real filesystem ([`RealIo`]) or a deterministic
//! fault-injecting wrapper ([`FaultIo`]) that can fail, short-write, or
//! "crash" the Nth operation — the substrate of the exhaustive
//! failure-point sweep in `tests/fault_sweep.rs`.
//!
//! The trait is deliberately narrow: it exposes exactly the operations the
//! journal needs (create/append/fsync/rename/remove/list/truncate), each of
//! which counts as **one I/O operation** for fault-injection purposes.

use std::fmt;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::Path;
use std::sync::{Arc, Mutex};

/// An open, append-position journal file.
pub trait JournalFile: fmt::Debug + Send {
    /// Write all of `buf` at the current position.
    fn write_all(&mut self, buf: &[u8]) -> io::Result<()>;
    /// Flush file data (not necessarily metadata) to stable storage.
    fn sync_data(&mut self) -> io::Result<()>;
    /// Flush file data and metadata to stable storage.
    fn sync_all(&mut self) -> io::Result<()>;
}

/// The file operations a [`crate::Journal`] performs, abstracted so tests
/// can interpose faults. Implementations must be usable from behind an
/// `Arc` (shared by the journal and, for [`FaultIo`], the test driving it).
pub trait JournalIo: fmt::Debug + Send + Sync {
    /// Create a directory and any missing parents.
    fn create_dir_all(&self, dir: &Path) -> io::Result<()>;
    /// List a directory: `(file name, byte length)` per entry, any order.
    fn list_dir(&self, dir: &Path) -> io::Result<Vec<(String, u64)>>;
    /// Read a whole file.
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;
    /// Create a file that must not already exist, open for appending.
    fn create_new(&self, path: &Path) -> io::Result<Box<dyn JournalFile>>;
    /// Create (or truncate) a file, open for writing.
    fn create_truncate(&self, path: &Path) -> io::Result<Box<dyn JournalFile>>;
    /// Atomically rename a file.
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;
    /// Remove a file.
    fn remove_file(&self, path: &Path) -> io::Result<()>;
    /// Truncate an existing file to `len` bytes and sync the result.
    fn truncate(&self, path: &Path, len: u64) -> io::Result<()>;
    /// Fsync a directory so renames and creations inside it are durable.
    fn sync_dir(&self, dir: &Path) -> io::Result<()>;
}

/// The production implementation: straight calls into `std::fs`.
#[derive(Debug, Default, Clone, Copy)]
pub struct RealIo;

impl JournalFile for File {
    fn write_all(&mut self, buf: &[u8]) -> io::Result<()> {
        Write::write_all(self, buf)
    }

    fn sync_data(&mut self) -> io::Result<()> {
        File::sync_data(self)
    }

    fn sync_all(&mut self) -> io::Result<()> {
        File::sync_all(self)
    }
}

impl JournalIo for RealIo {
    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        fs::create_dir_all(dir)
    }

    fn list_dir(&self, dir: &Path) -> io::Result<Vec<(String, u64)>> {
        let mut out = Vec::new();
        for entry in fs::read_dir(dir)? {
            let entry = entry?;
            let Some(name) = entry.file_name().to_str().map(str::to_owned) else {
                continue;
            };
            let len = entry.metadata().map(|m| m.len()).unwrap_or(0);
            out.push((name, len));
        }
        Ok(out)
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        let mut bytes = Vec::new();
        File::open(path)?.read_to_end(&mut bytes)?;
        Ok(bytes)
    }

    fn create_new(&self, path: &Path) -> io::Result<Box<dyn JournalFile>> {
        let file = OpenOptions::new().write(true).create_new(true).open(path)?;
        Ok(Box::new(file))
    }

    fn create_truncate(&self, path: &Path) -> io::Result<Box<dyn JournalFile>> {
        Ok(Box::new(File::create(path)?))
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        fs::rename(from, to)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        fs::remove_file(path)
    }

    fn truncate(&self, path: &Path, len: u64) -> io::Result<()> {
        let f = OpenOptions::new().write(true).open(path)?;
        f.set_len(len)?;
        f.sync_all()
    }

    fn sync_dir(&self, dir: &Path) -> io::Result<()> {
        File::open(dir)?.sync_all()
    }
}

/// What [`FaultIo`] injects, keyed by a zero-based global operation index.
///
/// Every [`JournalIo`] / [`JournalFile`] call counts as one operation, in
/// call order, so a plan is fully deterministic: re-running the same
/// workload against the same plan reproduces the same fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultPlan {
    /// Inject nothing (still counts operations — used to size a sweep).
    None,
    /// Fail operation `at` once with the given error kind; every other
    /// operation succeeds. `Interrupted` models EINTR, `TimedOut` a
    /// transient stall — faults a bounded retry must absorb.
    ErrorOnce {
        /// Zero-based index of the operation to fail.
        at: u64,
        /// The error kind the operation fails with.
        kind: io::ErrorKind,
    },
    /// Short-write operation `at` once: if it is a write, only half its
    /// bytes reach the file before it fails with `WriteZero` (transient —
    /// retry after rollback must clean the partial bytes up). Non-write
    /// operations just fail once with `WriteZero`.
    ShortWrite {
        /// Zero-based index of the operation to short-write.
        at: u64,
    },
    /// Simulate a crash at operation `at`: a write in flight is torn (only
    /// a prefix of its bytes reach the file), and that operation plus every
    /// later one fails. Models power loss / process death mid-operation.
    Crash {
        /// Zero-based index of the operation the crash hits.
        at: u64,
    },
    /// The disk fills up at operation `at`: that and every later *mutating*
    /// operation fails with `ENOSPC` until [`FaultIo::clear_faults`] frees
    /// space. Reads keep working — the degraded-mode scenario.
    DiskFull {
        /// Zero-based index of the first operation to hit `ENOSPC`.
        at: u64,
    },
}

#[derive(Debug)]
struct FaultState {
    plan: FaultPlan,
    ops: u64,
    injected: u64,
    crashed: bool,
    disk_full: bool,
}

/// The outcome of consulting the fault plan for one operation.
enum Gate {
    Pass,
    Fail(io::Error),
    /// Fail, but first `keep_num / keep_den` of the write's bytes must
    /// reach the file (torn or short write). Non-write operations treat
    /// this as a plain failure.
    Torn {
        error: io::Error,
        keep_num: usize,
        keep_den: usize,
    },
}

/// Raw OS error for `ENOSPC`, so `io::Error::raw_os_error` round-trips the
/// way a real full disk would.
const ENOSPC: i32 = 28;

fn enospc() -> io::Error {
    io::Error::from_raw_os_error(ENOSPC)
}

/// Deterministic fault-injecting [`JournalIo`] over the real filesystem.
///
/// Operations are numbered globally in call order; the configured
/// [`FaultPlan`] decides which one fails and how. Cloning shares state, so
/// a test can keep a handle to count operations, swap plans mid-run
/// ([`set_plan`](FaultIo::set_plan)) or clear a persistent fault
/// ([`clear_faults`](FaultIo::clear_faults)) while the journal owns another
/// clone behind `Arc<dyn JournalIo>`.
#[derive(Debug, Clone)]
pub struct FaultIo {
    inner: RealIo,
    state: Arc<Mutex<FaultState>>,
}

impl FaultIo {
    /// A fault injector with the given plan, operation counter at zero.
    pub fn new(plan: FaultPlan) -> FaultIo {
        FaultIo {
            inner: RealIo,
            state: Arc::new(Mutex::new(FaultState {
                plan,
                ops: 0,
                injected: 0,
                crashed: false,
                disk_full: false,
            })),
        }
    }

    /// Operations performed so far (including failed ones).
    pub fn op_count(&self) -> u64 {
        self.state.lock().unwrap().ops
    }

    /// Faults injected so far.
    pub fn faults_injected(&self) -> u64 {
        self.state.lock().unwrap().injected
    }

    /// Replace the plan (the operation counter keeps running).
    pub fn set_plan(&self, plan: FaultPlan) {
        let mut s = self.state.lock().unwrap();
        s.plan = plan;
    }

    /// Lift every standing fault: un-crash, free disk space, drop the plan.
    /// Subsequent operations succeed.
    pub fn clear_faults(&self) {
        let mut s = self.state.lock().unwrap();
        s.plan = FaultPlan::None;
        s.crashed = false;
        s.disk_full = false;
    }

    fn gate(state: &Mutex<FaultState>, mutating: bool) -> Gate {
        let mut s = state.lock().unwrap();
        let n = s.ops;
        s.ops += 1;
        if s.crashed {
            return Gate::Fail(io::Error::other("journal I/O after simulated crash"));
        }
        if s.disk_full && mutating {
            return Gate::Fail(enospc());
        }
        match s.plan {
            FaultPlan::None => Gate::Pass,
            FaultPlan::ErrorOnce { at, kind } if n == at => {
                s.injected += 1;
                s.plan = FaultPlan::None;
                Gate::Fail(io::Error::new(kind, "injected transient fault"))
            }
            FaultPlan::ShortWrite { at } if n == at => {
                s.injected += 1;
                s.plan = FaultPlan::None;
                Gate::Torn {
                    error: io::Error::new(io::ErrorKind::WriteZero, "injected short write"),
                    keep_num: 1,
                    keep_den: 2,
                }
            }
            FaultPlan::Crash { at } if n >= at => {
                s.injected += 1;
                s.crashed = true;
                Gate::Torn {
                    error: io::Error::other("injected crash"),
                    keep_num: 2,
                    keep_den: 3,
                }
            }
            FaultPlan::DiskFull { at } if n >= at => {
                s.disk_full = true;
                if mutating {
                    s.injected += 1;
                    Gate::Fail(enospc())
                } else {
                    Gate::Pass
                }
            }
            _ => Gate::Pass,
        }
    }

    fn gated<T>(&self, mutating: bool, op: impl FnOnce(&RealIo) -> io::Result<T>) -> io::Result<T> {
        match FaultIo::gate(&self.state, mutating) {
            Gate::Pass => op(&self.inner),
            Gate::Fail(e) | Gate::Torn { error: e, .. } => Err(e),
        }
    }
}

/// A file handle whose writes and syncs consult the shared fault plan.
#[derive(Debug)]
struct FaultFile {
    inner: File,
    state: Arc<Mutex<FaultState>>,
}

impl JournalFile for FaultFile {
    fn write_all(&mut self, buf: &[u8]) -> io::Result<()> {
        match FaultIo::gate(&self.state, true) {
            Gate::Pass => Write::write_all(&mut self.inner, buf),
            Gate::Torn {
                error,
                keep_num,
                keep_den,
            } => {
                // A crash or short write leaves a prefix of the bytes
                // behind. The fractions are chosen so the cut lands inside
                // a record often enough to exercise torn-record repair, and
                // past whole records often enough to exercise
                // commit-boundary truncation.
                let torn = buf.len() * keep_num / keep_den;
                let _ = Write::write_all(&mut self.inner, &buf[..torn]);
                let _ = self.inner.sync_data();
                Err(error)
            }
            Gate::Fail(e) => Err(e),
        }
    }

    fn sync_data(&mut self) -> io::Result<()> {
        match FaultIo::gate(&self.state, true) {
            Gate::Pass => self.inner.sync_data(),
            Gate::Fail(e) | Gate::Torn { error: e, .. } => Err(e),
        }
    }

    fn sync_all(&mut self) -> io::Result<()> {
        match FaultIo::gate(&self.state, true) {
            Gate::Pass => self.inner.sync_all(),
            Gate::Fail(e) | Gate::Torn { error: e, .. } => Err(e),
        }
    }
}

impl JournalIo for FaultIo {
    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        self.gated(true, |io| io.create_dir_all(dir))
    }

    fn list_dir(&self, dir: &Path) -> io::Result<Vec<(String, u64)>> {
        self.gated(false, |io| io.list_dir(dir))
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        self.gated(false, |io| io.read(path))
    }

    fn create_new(&self, path: &Path) -> io::Result<Box<dyn JournalFile>> {
        match FaultIo::gate(&self.state, true) {
            Gate::Pass => {
                let file = OpenOptions::new().write(true).create_new(true).open(path)?;
                Ok(Box::new(FaultFile {
                    inner: file,
                    state: Arc::clone(&self.state),
                }))
            }
            Gate::Fail(e) | Gate::Torn { error: e, .. } => Err(e),
        }
    }

    fn create_truncate(&self, path: &Path) -> io::Result<Box<dyn JournalFile>> {
        match FaultIo::gate(&self.state, true) {
            Gate::Pass => Ok(Box::new(FaultFile {
                inner: File::create(path)?,
                state: Arc::clone(&self.state),
            })),
            Gate::Fail(e) | Gate::Torn { error: e, .. } => Err(e),
        }
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        self.gated(true, |io| io.rename(from, to))
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        self.gated(true, |io| io.remove_file(path))
    }

    fn truncate(&self, path: &Path, len: u64) -> io::Result<()> {
        self.gated(true, |io| io.truncate(path, len))
    }

    fn sync_dir(&self, dir: &Path) -> io::Result<()> {
        self.gated(true, |io| io.sync_dir(dir))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("semex-io-{tag}-{}", std::process::id()));
        fs::remove_dir_all(&dir).ok();
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn fault_io_counts_and_injects_once() {
        let dir = scratch("count");
        let io = FaultIo::new(FaultPlan::ErrorOnce {
            at: 1,
            kind: io::ErrorKind::Interrupted,
        });
        let p = dir.join("a");
        let mut f = io.create_new(&p).unwrap(); // op 0
        let err = f.write_all(b"xy").unwrap_err(); // op 1: injected
        assert_eq!(err.kind(), io::ErrorKind::Interrupted);
        f.write_all(b"xy").unwrap(); // op 2: plan consumed
        assert_eq!(io.op_count(), 3);
        assert_eq!(io.faults_injected(), 1);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn crash_tears_the_write_and_downs_everything_after() {
        let dir = scratch("crash");
        let io = FaultIo::new(FaultPlan::Crash { at: 1 });
        let p = dir.join("a");
        let mut f = io.create_new(&p).unwrap();
        f.write_all(b"123456789").unwrap_err();
        // Two-thirds of the write survived as the torn prefix.
        assert_eq!(fs::metadata(&p).unwrap().len(), 6);
        // Everything afterwards is down, reads included.
        assert!(io.read(&p).is_err());
        io.clear_faults();
        assert_eq!(io.read(&p).unwrap().len(), 6);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn disk_full_blocks_writes_but_not_reads() {
        let dir = scratch("full");
        let io = FaultIo::new(FaultPlan::None);
        let p = dir.join("a");
        let mut f = io.create_new(&p).unwrap();
        f.write_all(b"data").unwrap();
        io.set_plan(FaultPlan::DiskFull { at: 0 });
        let err = io.rename(&p, &dir.join("b")).unwrap_err();
        assert_eq!(err.raw_os_error(), Some(ENOSPC));
        assert_eq!(io.read(&p).unwrap(), b"data");
        io.clear_faults();
        io.rename(&p, &dir.join("b")).unwrap();
        fs::remove_dir_all(&dir).ok();
    }
}
