//! File-system extraction.
//!
//! Walks a directory tree, creating `Folder` / `File` objects with
//! `InFolder` / `SubfolderOf` structure, and dispatches recognized file
//! types to the inner extractors:
//!
//! * `.mbox` / `.eml` → [`crate::email`]
//! * `.vcf` → [`crate::vcard`]
//! * `.ics` → [`crate::ical`]
//! * `.bib` → [`crate::bibtex`]
//! * `.tex` → [`crate::latex`] (processed after all `.bib` files so `\cite`
//!   keys resolve), with a `DescribedBy` edge from the extracted
//!   publication to the `File` object
//! * `.html` / `.htm` → [`crate::html`] (cached web pages)
//! * `.txt` / `.md` → scanned for mentions of already-known person names
//!   (`Mentions` edges)
//!
//! Traversal order is deterministic (paths sorted) so extraction runs are
//! reproducible.

use crate::{bibtex, email, html, ical, latex, vcard, ExtractContext, ExtractError, ExtractStats};
use semex_model::names::assoc as assoc_names;
use semex_model::names::{attr, class};
use semex_model::Value;
use semex_store::ObjectId;
use std::collections::HashMap;
use std::path::{Path, PathBuf};

/// Extract a directory tree rooted at `root` into the context's store.
///
/// The returned stats are cumulative over the walk *and* the inner
/// extractors it dispatched to (`records` counts files plus messages,
/// cards, bibliography entries and documents parsed out of them).
pub fn extract_tree(
    root: &Path,
    ctx: &mut ExtractContext<'_>,
) -> Result<ExtractStats, ExtractError> {
    let before = ctx.stats;
    let a_name = ctx.attr(attr::NAME);
    let a_path = ctx.attr(attr::PATH);
    let a_ext = ctx.attr(attr::EXTENSION);
    let a_date = ctx.attr(attr::DATE);
    let c_file = ctx
        .store()
        .model()
        .class_req(class::FILE)
        .expect("builtin File");
    let c_folder = ctx
        .store()
        .model()
        .class_req(class::FOLDER)
        .expect("builtin Folder");

    // Deterministic walk.
    let mut dirs: Vec<PathBuf> = Vec::new();
    let mut files: Vec<PathBuf> = Vec::new();
    collect(root, &mut dirs, &mut files)?;
    dirs.sort();
    files.sort();

    // Folders and their nesting.
    let mut folder_ids: HashMap<PathBuf, ObjectId> = HashMap::new();
    for d in std::iter::once(root.to_path_buf()).chain(dirs.iter().cloned()) {
        let name = d
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_else(|| d.to_string_lossy().into_owned());
        let id = ctx.reference(
            c_folder,
            &[
                (a_name, Value::from(name.as_str())),
                (a_path, Value::from(d.to_string_lossy().as_ref())),
            ],
        )?;
        folder_ids.insert(d.clone(), id);
        if let Some(parent) = d.parent() {
            if let Some(&pid) = folder_ids.get(parent) {
                if pid != id {
                    ctx.link_named(id, assoc_names::SUBFOLDER_OF, pid)?;
                }
            }
        }
    }

    // Files: create objects, remember typed ones for dispatch.
    let mut bibs: Vec<(PathBuf, ObjectId)> = Vec::new();
    let mut texs: Vec<(PathBuf, ObjectId)> = Vec::new();
    let mut texts: Vec<(PathBuf, ObjectId)> = Vec::new();
    let mut pages: Vec<(PathBuf, ObjectId)> = Vec::new();
    for f in &files {
        ctx.stats.records += 1;
        let name = f
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        let ext = f
            .extension()
            .map(|e| e.to_string_lossy().to_lowercase())
            .unwrap_or_default();
        let mut attrs = vec![
            (a_name, Value::from(name.as_str())),
            (a_path, Value::from(f.to_string_lossy().as_ref())),
        ];
        if !ext.is_empty() {
            attrs.push((a_ext, Value::from(ext.as_str())));
        }
        if let Ok(meta) = std::fs::metadata(f) {
            if let Ok(modified) = meta.modified() {
                if let Ok(d) = modified.duration_since(std::time::UNIX_EPOCH) {
                    attrs.push((a_date, Value::Date(d.as_secs() as i64)));
                }
            }
        }
        let fid = ctx.reference(c_file, &attrs)?;
        if let Some(parent) = f.parent() {
            if let Some(&pid) = folder_ids.get(parent) {
                ctx.link_named(fid, assoc_names::IN_FOLDER, pid)?;
            }
        }
        match ext.as_str() {
            "mbox" | "eml" => {
                let content = std::fs::read_to_string(f)?;
                email::extract_mbox(&content, ctx)?;
            }
            "vcf" => {
                let content = std::fs::read_to_string(f)?;
                vcard::extract_vcards(&content, ctx)?;
            }
            "ics" => {
                let content = std::fs::read_to_string(f)?;
                ical::extract_ical(&content, ctx)?;
            }
            "bib" => bibs.push((f.clone(), fid)),
            "tex" => texs.push((f.clone(), fid)),
            "txt" | "md" => texts.push((f.clone(), fid)),
            "html" | "htm" => pages.push((f.clone(), fid)),
            _ => {}
        }
    }

    // Bibliographies first, so LaTeX citations resolve.
    for (path, _fid) in &bibs {
        let content = std::fs::read_to_string(path)?;
        bibtex::extract_bibtex(&content, ctx)?;
    }
    for (path, fid) in &texs {
        let content = std::fs::read_to_string(path)?;
        let (_stats, pubn) = latex::extract_latex(&content, ctx)?;
        if let Some(p) = pubn {
            ctx.link_named(p, assoc_names::DESCRIBED_BY, *fid)?;
        }
    }

    // Cached web pages last, so name-mention spotting sees every person
    // extracted above. The page object is DescribedBy its cache file.
    for (path, fid) in &pages {
        let content = std::fs::read_to_string(path)?;
        let url = format!("file://{}", path.to_string_lossy());
        let (_stats, _page) = html::extract_html(&content, &url, ctx)?;
        let _ = fid;
    }

    // Mention spotting in plain-text files against already-known names.
    if !texts.is_empty() {
        let needles = known_names(ctx);
        for (path, fid) in &texts {
            let content = std::fs::read_to_string(path)?.to_lowercase();
            for (needle, person) in &needles {
                if content.contains(needle) {
                    ctx.link_named(*fid, assoc_names::MENTIONS, *person)?;
                }
            }
        }
    }

    Ok(ExtractStats {
        records: ctx.stats.records - before.records,
        objects: ctx.stats.objects - before.objects,
        triples: ctx.stats.triples - before.triples,
        skipped: ctx.stats.skipped - before.skipped,
    })
}

/// Person names usable as mention needles: lowercase full names with at
/// least two tokens and five characters.
fn known_names(ctx: &ExtractContext<'_>) -> Vec<(String, ObjectId)> {
    let store = ctx.store();
    let a_name = store.model().attr(attr::NAME).expect("builtin name");
    let c_person = store.model().class(class::PERSON).expect("builtin Person");
    let mut out = Vec::new();
    for p in store.objects_of_class(c_person) {
        for name in store.object(p).strs(a_name) {
            let lower = name.to_lowercase();
            if lower.len() >= 5 && lower.split_whitespace().count() >= 2 {
                out.push((lower, p));
            }
        }
    }
    out
}

fn collect(dir: &Path, dirs: &mut Vec<PathBuf>, files: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let ty = entry.file_type()?;
        if ty.is_dir() {
            dirs.push(path.clone());
            collect(&path, dirs, files)?;
        } else if ty.is_file() {
            files.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use semex_model::names::assoc;
    use semex_store::{SourceInfo, SourceKind, Store};

    fn write(path: &Path, content: &str) {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(path, content).unwrap();
    }

    fn temp_tree() -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "semex-fswalk-{}-{}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        ));
        write(
            &dir.join("papers/refs.bib"),
            "@inproceedings{dong05, title={Reference Reconciliation}, author={Dong, Xin and Halevy, Alon}, booktitle={SIGMOD}, year=2005}",
        );
        write(
            &dir.join("papers/semex.tex"),
            "\\title{SEMEX Demo}\n\\author{Xin Dong \\and Alon Halevy}\n\\cite{dong05}\n",
        );
        write(
            &dir.join("mail/inbox.mbox"),
            "From x\nFrom: Xin Dong <luna@cs.edu>\nTo: halevy@cs.edu\nSubject: demo\n\nhello\n",
        );
        write(
            &dir.join("contacts/team.vcf"),
            "BEGIN:VCARD\nFN:Alon Halevy\nEMAIL:alon@cs.edu\nEND:VCARD\n",
        );
        write(
            &dir.join("notes/todo.txt"),
            "ping Xin Dong about the demo\n",
        );
        write(&dir.join("notes/data.bin.skip"), "binary-ish\n");
        dir
    }

    #[test]
    fn walks_and_dispatches() {
        let root = temp_tree();
        let mut st = Store::with_builtin_model();
        let src = st.register_source(SourceInfo::new("home", SourceKind::FileSystem));
        let mut ctx = ExtractContext::new(&mut st, src);
        let stats = extract_tree(&root, &mut ctx).unwrap();
        assert_eq!(
            stats.records, 10,
            "six files + four inner records (message, card, bib entry, tex doc)"
        );

        let m = st.model();
        let c_file = m.class(class::FILE).unwrap();
        let c_folder = m.class(class::FOLDER).unwrap();
        let c_pub = m.class(class::PUBLICATION).unwrap();
        assert_eq!(st.class_count(c_file), 6);
        assert_eq!(st.class_count(c_folder), 5); // root + 4 subdirs
        assert_eq!(st.class_count(c_pub), 2); // bib entry + tex doc

        assert_eq!(st.assoc_count(m.assoc(assoc::SUBFOLDER_OF).unwrap()), 4);
        assert_eq!(st.assoc_count(m.assoc(assoc::IN_FOLDER).unwrap()), 6);
        assert_eq!(st.assoc_count(m.assoc(assoc::CITES).unwrap()), 1);
        assert_eq!(st.assoc_count(m.assoc(assoc::DESCRIBED_BY).unwrap()), 1);
        // "Xin Dong" appears in todo.txt and is a known person.
        assert!(st.assoc_count(m.assoc(assoc::MENTIONS).unwrap()) >= 1);

        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn missing_root_errors() {
        let mut st = Store::with_builtin_model();
        let src = st.register_source(SourceInfo::new("x", SourceKind::FileSystem));
        let mut ctx = ExtractContext::new(&mut st, src);
        let err = extract_tree(Path::new("/definitely/not/here"), &mut ctx);
        assert!(matches!(err, Err(ExtractError::Io(_))));
    }
}
