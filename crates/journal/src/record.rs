//! Record framing: length-prefixed, CRC-checksummed payloads.
//!
//! On disk a record is `[len: u32 LE][crc32(payload): u32 LE][payload]`.
//! Decoding distinguishes a *torn* record (the file ends mid-record — the
//! normal shape of a crash during append) from a *corrupt* one (the bytes
//! are all there but the checksum or length field is wrong). Recovery
//! truncates at either; the distinction is reported for diagnostics.

use crate::crc32::crc32;

/// Frame header size: 4-byte length + 4-byte CRC.
pub const HEADER_LEN: usize = 8;

/// Upper bound on a single record's payload. A length field above this is
/// treated as corruption rather than an instruction to wait for 4 GiB of
/// payload that will never come.
pub const MAX_PAYLOAD: usize = 64 * 1024 * 1024;

/// Payload of the record that seals a commit. Event payloads are JSON
/// objects (they start with `{`), so this can never collide with one.
pub const COMMIT_MARKER: &[u8] = b"!commit";

/// Outcome of decoding one record from the front of a buffer.
#[derive(Debug, PartialEq, Eq)]
pub enum Decoded<'a> {
    /// A complete, checksum-valid record. `consumed` covers header+payload.
    Record {
        /// The payload bytes.
        payload: &'a [u8],
        /// Total bytes consumed from the buffer.
        consumed: usize,
    },
    /// The buffer is empty: a clean end of log.
    End,
    /// The buffer ends mid-record (torn write).
    Torn,
    /// The record is present but damaged (bad checksum or absurd length).
    Corrupt,
}

/// Append one framed record to `out`.
pub fn encode(payload: &[u8], out: &mut Vec<u8>) {
    debug_assert!(payload.len() <= MAX_PAYLOAD);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
}

/// Decode the record at the front of `buf`.
pub fn decode(buf: &[u8]) -> Decoded<'_> {
    if buf.is_empty() {
        return Decoded::End;
    }
    if buf.len() < HEADER_LEN {
        return Decoded::Torn;
    }
    let len = u32::from_le_bytes([buf[0], buf[1], buf[2], buf[3]]) as usize;
    let crc = u32::from_le_bytes([buf[4], buf[5], buf[6], buf[7]]);
    if len > MAX_PAYLOAD {
        return Decoded::Corrupt;
    }
    if buf.len() < HEADER_LEN + len {
        return Decoded::Torn;
    }
    let payload = &buf[HEADER_LEN..HEADER_LEN + len];
    if crc32(payload) != crc {
        return Decoded::Corrupt;
    }
    Decoded::Record {
        payload,
        consumed: HEADER_LEN + len,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_multiple_records() {
        let mut buf = Vec::new();
        encode(b"first", &mut buf);
        encode(b"", &mut buf);
        encode(b"third record", &mut buf);
        let mut rest = buf.as_slice();
        let mut seen = Vec::new();
        loop {
            match decode(rest) {
                Decoded::Record { payload, consumed } => {
                    seen.push(payload.to_vec());
                    rest = &rest[consumed..];
                }
                Decoded::End => break,
                other => panic!("unexpected {other:?}"),
            }
        }
        assert_eq!(
            seen,
            vec![b"first".to_vec(), b"".to_vec(), b"third record".to_vec()]
        );
    }

    #[test]
    fn truncated_tail_is_torn() {
        let mut buf = Vec::new();
        encode(b"payload bytes", &mut buf);
        for cut in 1..buf.len() {
            assert_eq!(decode(&buf[..cut]), Decoded::Torn, "cut at {cut}");
        }
        assert_eq!(decode(&[]), Decoded::End);
    }

    #[test]
    fn flipped_byte_is_corrupt() {
        let mut buf = Vec::new();
        encode(b"payload bytes", &mut buf);
        // Flip each payload byte in turn.
        for i in HEADER_LEN..buf.len() {
            let mut bad = buf.clone();
            bad[i] ^= 0x40;
            assert_eq!(decode(&bad), Decoded::Corrupt, "flip at {i}");
        }
        // A flipped CRC byte is also corruption.
        let mut bad = buf.clone();
        bad[5] ^= 0x01;
        assert_eq!(decode(&bad), Decoded::Corrupt);
    }

    #[test]
    fn absurd_length_is_corrupt() {
        let mut buf = vec![0xFF, 0xFF, 0xFF, 0xFF, 0, 0, 0, 0];
        buf.extend_from_slice(&[0u8; 16]);
        assert_eq!(decode(&buf), Decoded::Corrupt);
    }
}
