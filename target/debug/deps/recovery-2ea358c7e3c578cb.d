/root/repo/target/debug/deps/recovery-2ea358c7e3c578cb.d: crates/journal/tests/recovery.rs

/root/repo/target/debug/deps/recovery-2ea358c7e3c578cb: crates/journal/tests/recovery.rs

crates/journal/tests/recovery.rs:
