/root/repo/target/debug/deps/semex-2df33e99d3ad0cd5.d: src/lib.rs

/root/repo/target/debug/deps/libsemex-2df33e99d3ad0cd5.rmeta: src/lib.rs

src/lib.rs:
