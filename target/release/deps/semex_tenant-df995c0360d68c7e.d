/root/repo/target/release/deps/semex_tenant-df995c0360d68c7e.d: crates/tenant/src/lib.rs crates/tenant/src/engine.rs crates/tenant/src/id.rs crates/tenant/src/master.rs crates/tenant/src/pool.rs crates/tenant/src/registry.rs

/root/repo/target/release/deps/semex_tenant-df995c0360d68c7e: crates/tenant/src/lib.rs crates/tenant/src/engine.rs crates/tenant/src/id.rs crates/tenant/src/master.rs crates/tenant/src/pool.rs crates/tenant/src/registry.rs

crates/tenant/src/lib.rs:
crates/tenant/src/engine.rs:
crates/tenant/src/id.rs:
crates/tenant/src/master.rs:
crates/tenant/src/pool.rs:
crates/tenant/src/registry.rs:
