//! A blocking client for the serve protocol: one request, one response,
//! over a persistent connection.
//!
//! The client can address a tenant (every request it sends then carries
//! the `tenant` field) and can retry typed `overloaded` refusals with
//! capped exponential backoff and jitter — overload answers are explicit
//! invitations to retry later, and the jitter keeps a thundering herd of
//! shed clients from re-arriving in lockstep.

use crate::protocol::{
    read_response, write_request_frame, FrameError, Request, RequestFrame, Response,
};
use std::io::{self, ErrorKind};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, SystemTime, UNIX_EPOCH};

/// A connected client. Requests are answered in order on one connection;
/// open several clients for concurrency.
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
    addr: SocketAddr,
    timeout: Duration,
    tenant: Option<String>,
}

/// How [`Client::request_with_retry`] behaves when the server sheds a
/// request with `overloaded`: up to `max_retries` retries, waiting
/// `base * 2^attempt` (capped at `cap`) with jitter before each.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Retries after the first attempt (0 disables retrying).
    pub max_retries: u32,
    /// Backoff before the first retry.
    pub base: Duration,
    /// Upper bound on any single backoff sleep.
    pub cap: Duration,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_retries: 5,
            base: Duration::from_millis(10),
            cap: Duration::from_secs(1),
        }
    }
}

impl RetryPolicy {
    /// The jittered sleep before retry number `attempt` (0-based): a
    /// uniform-ish draw from the upper half of the capped exponential
    /// delay, so concurrent shed clients spread out instead of
    /// re-stampeding together.
    fn backoff(&self, attempt: u32) -> Duration {
        let exp = self.base.saturating_mul(1u32 << attempt.min(16));
        let delay = exp.min(self.cap);
        // No RNG dependency down here: sub-microsecond clock bits are
        // plenty de-correlated across processes for jitter purposes.
        let nanos = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.subsec_nanos())
            .unwrap_or(0) as u64;
        let half = delay.as_nanos().max(2) as u64 / 2;
        Duration::from_nanos(half + nanos % half)
    }
}

impl Client {
    /// Connect with the default 30-second socket timeouts.
    pub fn connect(addr: SocketAddr) -> io::Result<Client> {
        Client::connect_timeout(addr, Duration::from_secs(30))
    }

    /// Connect with an explicit timeout applied to the connection attempt
    /// and to every subsequent read and write.
    pub fn connect_timeout(addr: SocketAddr, timeout: Duration) -> io::Result<Client> {
        let stream = Client::open(addr, timeout)?;
        Ok(Client {
            stream,
            addr,
            timeout,
            tenant: None,
        })
    }

    fn open(addr: SocketAddr, timeout: Duration) -> io::Result<TcpStream> {
        let stream = TcpStream::connect_timeout(&addr, timeout)?;
        stream.set_read_timeout(Some(timeout))?;
        stream.set_write_timeout(Some(timeout))?;
        stream.set_nodelay(true)?;
        Ok(stream)
    }

    /// Address every subsequent request to `tenant` (the server's default
    /// tenant when not set).
    pub fn with_tenant(mut self, tenant: impl Into<String>) -> Client {
        self.tenant = Some(tenant.into());
        self
    }

    /// The tenant this client addresses, if any.
    pub fn tenant(&self) -> Option<&str> {
        self.tenant.as_deref()
    }

    /// Send one request and wait for its response. The server closing the
    /// connection instead of answering surfaces as an `UnexpectedEof` I/O
    /// error.
    pub fn request(&mut self, request: &Request) -> Result<Response, FrameError> {
        let frame = RequestFrame {
            v: crate::protocol::PROTOCOL_VERSION,
            tenant: self.tenant.clone(),
            request: request.clone(),
        };
        write_request_frame(&mut self.stream, &frame)?;
        match read_response(&mut self.stream)? {
            Some(response) => Ok(response),
            None => Err(FrameError::Io(io::Error::new(
                ErrorKind::UnexpectedEof,
                "connection closed before a response arrived",
            ))),
        }
    }

    /// Send one request, transparently retrying typed `overloaded`
    /// refusals *and* transport failures — a connection dropped
    /// mid-stream (reset, timeout, a frame cut off by a dying server) —
    /// with the same capped exponential backoff and jitter. Reconnects
    /// before each retry: a connection shed at the door is closed after
    /// its `overloaded` answer, and a broken one is useless anyway, so a
    /// fresh connection is the only way back in. Decode-layer errors
    /// (malformed, oversized, foreign version) are protocol bugs that a
    /// retry cannot fix; they surface immediately. Exhausted retries
    /// return the last `overloaded` response or transport error so the
    /// caller still sees the real refusal, never a synthetic error.
    pub fn request_with_retry(
        &mut self,
        request: &Request,
        policy: &RetryPolicy,
    ) -> Result<Response, FrameError> {
        let mut attempt = 0u32;
        loop {
            let response = match self.request(request) {
                Ok(response) => response,
                Err(e) if retryable(&e) => {
                    if attempt >= policy.max_retries {
                        return Err(e);
                    }
                    std::thread::sleep(policy.backoff(attempt));
                    attempt += 1;
                    self.reconnect_with_backoff(policy, &mut attempt)?;
                    continue;
                }
                Err(e) => return Err(e),
            };
            let Response::Overloaded { .. } = &response else {
                return Ok(response);
            };
            if attempt >= policy.max_retries {
                return Ok(response);
            }
            std::thread::sleep(policy.backoff(attempt));
            attempt += 1;
            self.reconnect_with_backoff(policy, &mut attempt)?;
        }
    }

    /// Replace the connection, burning retry attempts (with their backoff
    /// sleeps) on refused connects until one succeeds or the budget runs
    /// out — so a restarting server is waited for, not given up on after
    /// a single refused SYN.
    fn reconnect_with_backoff(
        &mut self,
        policy: &RetryPolicy,
        attempt: &mut u32,
    ) -> Result<(), FrameError> {
        loop {
            match Client::open(self.addr, self.timeout) {
                Ok(stream) => {
                    self.stream = stream;
                    return Ok(());
                }
                Err(e) => {
                    if *attempt >= policy.max_retries {
                        return Err(FrameError::Io(e));
                    }
                    std::thread::sleep(policy.backoff(*attempt));
                    *attempt += 1;
                }
            }
        }
    }
}

/// Transport-level failures worth a reconnect-and-resend: I/O errors and
/// frames cut off mid-read. Everything else in [`FrameError`] means the
/// peer spoke the protocol wrong.
fn retryable(e: &FrameError) -> bool {
    matches!(e, FrameError::Io(_) | FrameError::Truncated { .. })
}
