/root/repo/target/debug/deps/semex_journal-d0f1d76c231e33d1.d: crates/journal/src/lib.rs crates/journal/src/crc32.rs crates/journal/src/io.rs crates/journal/src/journal.rs crates/journal/src/record.rs crates/journal/src/segment.rs

/root/repo/target/debug/deps/semex_journal-d0f1d76c231e33d1: crates/journal/src/lib.rs crates/journal/src/crc32.rs crates/journal/src/io.rs crates/journal/src/journal.rs crates/journal/src/record.rs crates/journal/src/segment.rs

crates/journal/src/lib.rs:
crates/journal/src/crc32.rs:
crates/journal/src/io.rs:
crates/journal/src/journal.rs:
crates/journal/src/record.rs:
crates/journal/src/segment.rs:
