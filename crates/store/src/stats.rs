//! Store statistics (per-class / per-association inventories).

use crate::Store;

/// A summary of a store's contents: the numbers SEMEX shows the user (and
/// the numbers experiment E1/E2 report).
#[derive(Debug, Clone, PartialEq)]
pub struct StoreStats {
    /// `(class name, live instance count)` in class-id order.
    pub classes: Vec<(String, usize)>,
    /// `(association name, distinct edge count)` in assoc-id order.
    pub assocs: Vec<(String, usize)>,
    /// Total live objects.
    pub objects: usize,
    /// Object slots consumed by merges.
    pub aliases: usize,
    /// Total distinct edges.
    pub edges: usize,
    /// Registered sources.
    pub sources: usize,
}

impl StoreStats {
    /// Compute statistics for a store.
    pub fn compute(store: &Store) -> Self {
        let model = store.model();
        let classes = model
            .classes()
            .map(|(id, def)| (def.name.clone(), store.class_count(id)))
            .collect();
        let assocs = model
            .assocs()
            .map(|(id, def)| (def.name.clone(), store.assoc_count(id)))
            .collect();
        StoreStats {
            classes,
            assocs,
            objects: store.object_count(),
            aliases: store.alias_count(),
            edges: store.edge_count(),
            sources: store.sources().count(),
        }
    }

    /// The instance count of a class, by name.
    pub fn class(&self, name: &str) -> usize {
        self.classes
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, c)| *c)
            .unwrap_or(0)
    }

    /// The edge count of an association, by name.
    pub fn assoc(&self, name: &str) -> usize {
        self.assocs
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, c)| *c)
            .unwrap_or(0)
    }

    /// Render the statistics as an aligned text table.
    pub fn table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "objects: {}  (+{} merged aliases)   edges: {}   sources: {}\n",
            self.objects, self.aliases, self.edges, self.sources
        ));
        out.push_str("  class instances:\n");
        for (name, count) in &self.classes {
            if *count > 0 {
                out.push_str(&format!("    {name:<16} {count:>8}\n"));
            }
        }
        out.push_str("  association edges:\n");
        for (name, count) in &self.assocs {
            if *count > 0 {
                out.push_str(&format!("    {name:<16} {count:>8}\n"));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SourceInfo, SourceKind};
    use semex_model::names::{assoc, class};

    #[test]
    fn stats_count_classes_and_edges() {
        let mut st = Store::with_builtin_model();
        let person = st.model().class(class::PERSON).unwrap();
        let publication = st.model().class(class::PUBLICATION).unwrap();
        let authored = st.model().assoc(assoc::AUTHORED_BY).unwrap();
        let src = st.register_source(SourceInfo::new("t", SourceKind::Synthetic));
        let p = st.add_object(person);
        let q = st.add_object(person);
        let b = st.add_object(publication);
        st.add_triple(b, authored, p, src).unwrap();
        st.add_triple(b, authored, q, src).unwrap();

        let stats = StoreStats::compute(&st);
        assert_eq!(stats.class(class::PERSON), 2);
        assert_eq!(stats.class(class::PUBLICATION), 1);
        assert_eq!(stats.assoc(assoc::AUTHORED_BY), 2);
        assert_eq!(stats.objects, 3);
        assert_eq!(stats.edges, 2);
        assert_eq!(stats.sources, 1);
        assert_eq!(stats.class("Nope"), 0);
        assert!(stats.table().contains("Person"));

        st.merge(p, q).unwrap();
        let stats = StoreStats::compute(&st);
        assert_eq!(stats.class(class::PERSON), 1);
        assert_eq!(stats.assoc(assoc::AUTHORED_BY), 1);
        assert_eq!(stats.aliases, 1);
    }
}
