/root/repo/target/debug/deps/semex-f5a8010b933791a3.d: src/bin/semex.rs

/root/repo/target/debug/deps/semex-f5a8010b933791a3: src/bin/semex.rs

src/bin/semex.rs:
