//! Property tests for the index sidecar codec: arbitrary corpora round-trip
//! to byte-identical search results, and arbitrary corruption of the image
//! (truncation, bit flips) is a typed error — the decoder never panics.

use proptest::prelude::*;
use semex_index::{Query, SearchIndex};
use semex_model::Value;
use semex_store::{SourceInfo, SourceKind, Store};

const WORDS: [&str; 12] = [
    "garcia",
    "halevy",
    "semex",
    "integration",
    "database",
    "query",
    "association",
    "snapshot",
    "journal",
    "tenant",
    "postings",
    "recovery",
];

/// Build a store whose people carry fuzz-chosen word salads, plus an index
/// that has absorbed a few merges (tombstones + pooled docs).
fn build(names: &[Vec<usize>], merges: &[(usize, usize)]) -> (Store, SearchIndex) {
    let mut st = Store::with_builtin_model();
    let person = st.model().class("Person").unwrap();
    let name = st.model().attr("name").unwrap();
    st.register_source(SourceInfo::new("t", SourceKind::Synthetic));
    let objs: Vec<_> = names
        .iter()
        .map(|words| {
            let p = st.add_object(person);
            let text = words
                .iter()
                .map(|&w| WORDS[w % WORDS.len()])
                .collect::<Vec<_>>()
                .join(" ");
            st.add_attr(p, name, Value::from(text.as_str())).unwrap();
            p
        })
        .collect();
    st.enable_events();
    let mut idx = SearchIndex::build(&st);
    for &(w, l) in merges {
        let (w, l) = (objs[w % objs.len()], objs[l % objs.len()]);
        if st.resolve(w) != st.resolve(l) {
            st.merge(w, l).unwrap();
        }
    }
    let events = st.take_events();
    idx.apply_events(&st, &events);
    (st, idx)
}

fn results(idx: &SearchIndex, st: &Store, q: &str) -> Vec<(u64, String)> {
    idx.search(st, &Query::parse(q), 10)
        .into_iter()
        .map(|h| (h.object.0, format!("{:.6}", h.score)))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn arbitrary_indexes_round_trip(
        names in prop::collection::vec(prop::collection::vec(0usize..12, 1..6), 1..16),
        merges in prop::collection::vec((0usize..16, 0usize..16), 0..4),
        epoch in 0u64..1000,
        seq in 0u64..100_000,
    ) {
        let (st, idx) = build(&names, &merges);
        let bytes = idx.to_sidecar(epoch, seq);
        let side = SearchIndex::from_sidecar(&bytes).unwrap();
        prop_assert_eq!(side.epoch, epoch);
        prop_assert_eq!(side.seq, seq);
        for q in ["garcia", "semex journal", "query database", "missingword"] {
            prop_assert_eq!(results(&side.index, &st, q), results(&idx, &st, q), "{}", q);
        }
    }

    #[test]
    fn corrupted_sidecars_are_typed_errors(
        names in prop::collection::vec(prop::collection::vec(0usize..12, 1..5), 1..8),
        cut_frac in 0.0f64..1.0,
        flip_frac in 0.0f64..1.0,
        bit in 0u8..8,
    ) {
        let (_st, idx) = build(&names, &[]);
        let bytes = idx.to_sidecar(3, 9);
        // Truncation never decodes.
        let cut = ((bytes.len() as f64) * cut_frac) as usize;
        prop_assert!(SearchIndex::from_sidecar(&bytes[..cut]).is_err(), "cut {}", cut);
        // A single bit flip never decodes (every byte is CRC-guarded).
        let mut bad = bytes.clone();
        let pos = ((bytes.len() as f64) * flip_frac) as usize % bytes.len();
        bad[pos] ^= 1 << bit;
        prop_assert!(
            SearchIndex::from_sidecar(&bad).is_err(),
            "flip at {} bit {}", pos, bit
        );
    }
}
