#![warn(missing_docs)]

//! Association browsing and queries over the SEMEX association database.
//!
//! The SEMEX demo's signature interaction is *browsing by association*: the
//! user lands on an object (via search) and navigates its semantically
//! meaningful neighbourhood — a Person's publications, co-authors,
//! correspondents; a Publication's authors, venue and citations. This crate
//! provides:
//!
//! * [`Browser`] — labelled neighbourhood expansion over extracted
//!   associations (both directions) and evaluation of the domain model's
//!   *derived* associations (`CoAuthor`, `CorrespondedWith`, …) by
//!   interpreting their [`semex_model::PathExpr`] rules against the store;
//! * [`pattern`] — a small triple-pattern query engine with variable joins
//!   (`(?p AuthoredBy ?pub)(?pub PublishedIn ?v)`), the analytical query
//!   capability the platform paper describes;
//! * [`Browser::path_between`] — shortest association path between two
//!   objects, the "how do I know this person?" demo query;
//! * [`analyze`] — analyses over the association database: importance
//!   ranking, activity timelines, community detection.

pub mod analyze;
pub mod pattern;

use semex_model::{DerivedDef, PathExpr, PathStep};
use semex_store::{ObjectId, Store};
use std::collections::{HashSet, VecDeque};

/// One labelled link in a neighbourhood listing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Link {
    /// Association (or derived association) name as displayed.
    pub label: String,
    /// The neighbouring object.
    pub target: ObjectId,
    /// The neighbour's display label.
    pub target_label: String,
}

/// A browsing view over a store.
pub struct Browser<'a> {
    store: &'a Store,
}

impl<'a> Browser<'a> {
    /// A browser over the given store.
    pub fn new(store: &'a Store) -> Self {
        Browser { store }
    }

    /// The underlying store.
    pub fn store(&self) -> &Store {
        self.store
    }

    /// All direct links of an object: forward associations under their own
    /// name, inverse associations under their `inverse_label`. Results are
    /// sorted by label then target for deterministic display.
    pub fn neighborhood(&self, obj: ObjectId) -> Vec<Link> {
        let model = self.store.model();
        let mut out = Vec::new();
        for (assoc, def) in model.assocs() {
            for &t in self.store.neighbors(obj, assoc) {
                out.push(Link {
                    label: def.name.clone(),
                    target: t,
                    target_label: self.store.label(t),
                });
            }
            for &t in self.store.inverse_neighbors(obj, assoc) {
                out.push(Link {
                    label: def.inverse_label.clone(),
                    target: t,
                    target_label: self.store.label(t),
                });
            }
        }
        out.sort_by(|a, b| a.label.cmp(&b.label).then(a.target.cmp(&b.target)));
        out
    }

    /// Group the neighbourhood by label: `(label, count)` pairs, sorted.
    pub fn neighborhood_summary(&self, obj: ObjectId) -> Vec<(String, usize)> {
        let mut counts: Vec<(String, usize)> = Vec::new();
        for link in self.neighborhood(obj) {
            match counts.last_mut() {
                Some((label, c)) if *label == link.label => *c += 1,
                _ => counts.push((link.label, 1)),
            }
        }
        counts
    }

    /// Follow one step of a rule from a set of objects.
    fn step(&self, from: &[ObjectId], step: PathStep) -> Vec<ObjectId> {
        let mut out = Vec::new();
        for &o in from {
            let targets = match step {
                PathStep::Forward(a) => self.store.neighbors(o, a),
                PathStep::Inverse(a) => self.store.inverse_neighbors(o, a),
            };
            out.extend_from_slice(targets);
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Evaluate a derived-association rule from a start object.
    pub fn eval_rule(&self, start: ObjectId, rule: &PathExpr) -> Vec<ObjectId> {
        match rule {
            PathExpr::Path(steps) => {
                let mut cur = vec![self.store.resolve(start)];
                for &s in steps {
                    cur = self.step(&cur, s);
                    if cur.is_empty() {
                        break;
                    }
                }
                cur
            }
            PathExpr::Union(alts) => {
                let mut out = Vec::new();
                for alt in alts {
                    out.extend(self.eval_rule(start, alt));
                }
                out.sort_unstable();
                out.dedup();
                out
            }
        }
    }

    /// Evaluate a derived association definition from a start object
    /// (drops the start itself when the definition is irreflexive).
    pub fn derived(&self, start: ObjectId, def: &DerivedDef) -> Vec<ObjectId> {
        let start = self.store.resolve(start);
        let mut out = self.eval_rule(start, &def.rule);
        if def.irreflexive {
            out.retain(|&o| o != start);
        }
        out
    }

    /// Evaluate a derived association by name. Returns `None` for an
    /// unknown name.
    pub fn derived_by_name(&self, start: ObjectId, name: &str) -> Option<Vec<ObjectId>> {
        let def = self.store.model().derived(name)?.clone();
        Some(self.derived(start, &def))
    }

    /// Breadth-first shortest path between two objects over all
    /// associations (both directions). Returns the node sequence with the
    /// labels of the traversed edges, or `None` when disconnected (search
    /// is capped at `max_depth` hops).
    pub fn path_between(
        &self,
        from: ObjectId,
        to: ObjectId,
        max_depth: usize,
    ) -> Option<Vec<(ObjectId, Option<String>)>> {
        let from = self.store.resolve(from);
        let to = self.store.resolve(to);
        if from == to {
            return Some(vec![(from, None)]);
        }
        let model = self.store.model();
        let mut prev: std::collections::HashMap<ObjectId, (ObjectId, String)> =
            std::collections::HashMap::new();
        let mut seen: HashSet<ObjectId> = HashSet::from([from]);
        let mut frontier = VecDeque::from([(from, 0usize)]);
        while let Some((cur, d)) = frontier.pop_front() {
            if d >= max_depth {
                continue;
            }
            for (assoc, def) in model.assocs() {
                let expansions = [
                    (self.store.neighbors(cur, assoc), &def.name),
                    (self.store.inverse_neighbors(cur, assoc), &def.inverse_label),
                ];
                for (targets, label) in expansions {
                    for &t in targets {
                        if seen.insert(t) {
                            prev.insert(t, (cur, label.clone()));
                            if t == to {
                                // Reconstruct.
                                let mut path = vec![(to, None)];
                                let mut at = to;
                                while at != from {
                                    let (p, label) = prev.get(&at).unwrap().clone();
                                    path.last_mut().unwrap().1 = Some(label);
                                    path.push((p, None));
                                    at = p;
                                }
                                path.reverse();
                                return Some(path);
                            }
                            frontier.push_back((t, d + 1));
                        }
                    }
                }
            }
        }
        None
    }
}

/// Convenience: evaluate a derived association over every instance of its
/// domain class, returning `(subject, object)` pairs — materializing the
/// association the way the SEMEX browser's "show all CoAuthor pairs" view
/// does.
pub fn materialize_derived(store: &Store, def: &DerivedDef) -> Vec<(ObjectId, ObjectId)> {
    let b = Browser::new(store);
    let mut out = Vec::new();
    for s in store.objects_of_class(def.domain) {
        for t in b.derived(s, def) {
            out.push((s, t));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use semex_extract::{bibtex::extract_bibtex, email::extract_mbox, ExtractContext};
    use semex_model::names::{class, derived};
    use semex_store::{SourceInfo, SourceKind};

    fn store() -> Store {
        let mut st = Store::with_builtin_model();
        let src = st.register_source(SourceInfo::new("t", SourceKind::Synthetic));
        let mut ctx = ExtractContext::new(&mut st, src);
        extract_bibtex(
            "@inproceedings{a, title={Paper One}, author={Ann Walker and Bob Fisher}, booktitle={SIGMOD}, year=2004}\n\
             @inproceedings{b, title={Paper Two}, author={Ann Walker and Carol Reyes}, booktitle={VLDB}, year=2005}",
            &mut ctx,
        )
        .unwrap();
        extract_mbox(
            "From: Ann Walker <ann@x.edu>\nTo: Dave Moss <dave@y.org>\nSubject: hi\n\nbody",
            &mut ctx,
        )
        .unwrap();
        st
    }

    fn person(st: &Store, name: &str) -> ObjectId {
        let c = st.model().class(class::PERSON).unwrap();
        st.objects_of_class(c)
            .find(|&p| st.label(p) == name)
            .unwrap_or_else(|| panic!("person {name}"))
    }

    #[test]
    fn neighborhood_lists_both_directions() {
        let st = store();
        let b = Browser::new(&st);
        let ann = person(&st, "Ann Walker");
        let links = b.neighborhood(ann);
        // Ann authored two papers (inverse AuthoredBy = "AuthorOf").
        let authored: Vec<&Link> = links.iter().filter(|l| l.label == "AuthorOf").collect();
        assert_eq!(authored.len(), 2);
        let summary = b.neighborhood_summary(ann);
        assert!(summary.contains(&("AuthorOf".to_owned(), 2)));
    }

    #[test]
    fn coauthor_derived_association() {
        let st = store();
        let b = Browser::new(&st);
        let ann = person(&st, "Ann Walker");
        let coauthors = b.derived_by_name(ann, derived::CO_AUTHOR).unwrap();
        let labels: Vec<String> = coauthors.iter().map(|&o| st.label(o)).collect();
        assert_eq!(labels.len(), 2);
        assert!(labels.contains(&"Bob Fisher".to_owned()));
        assert!(labels.contains(&"Carol Reyes".to_owned()));
        // Irreflexive: Ann is not her own co-author.
        assert!(!coauthors.contains(&ann));
        assert!(b.derived_by_name(ann, "NoSuchRule").is_none());
    }

    #[test]
    fn corresponded_with_union_rule() {
        let mut st = store();
        // "Ann Walker" appears as two references (bib author and mail
        // sender); merge them the way reconciliation would, then browse.
        let c = st.model().class(class::PERSON).unwrap();
        let anns: Vec<_> = st
            .objects_of_class(c)
            .filter(|&p| st.label(p) == "Ann Walker")
            .collect();
        assert_eq!(anns.len(), 2);
        st.merge(anns[0], anns[1]).unwrap();
        let b = Browser::new(&st);
        let ann = person(&st, "Ann Walker");
        let dave = person(&st, "Dave Moss");
        let corr = b.derived_by_name(ann, derived::CORRESPONDED_WITH).unwrap();
        assert_eq!(corr, vec![dave]);
        // Symmetric from Dave's side (the union covers both directions).
        let corr = b.derived_by_name(dave, derived::CORRESPONDED_WITH).unwrap();
        assert_eq!(corr, vec![ann]);
    }

    #[test]
    fn path_between_objects() {
        let st = store();
        let b = Browser::new(&st);
        let bob = person(&st, "Bob Fisher");
        let carol = person(&st, "Carol Reyes");
        // Bob -> Paper One -> Ann -> Paper Two -> Carol.
        let path = b.path_between(bob, carol, 6).unwrap();
        assert_eq!(path.len(), 5);
        assert_eq!(path[0].0, bob);
        assert_eq!(path.last().unwrap().0, carol);
        assert!(path[0].1.is_none());
        assert!(path[1].1.is_some());
        // Unreachable within depth 1.
        assert!(b.path_between(bob, carol, 1).is_none());
        // Self-path.
        assert_eq!(b.path_between(bob, bob, 3).unwrap().len(), 1);
    }

    #[test]
    fn materialize_counts_pairs() {
        let st = store();
        let def = st.model().derived(derived::CO_AUTHOR).unwrap().clone();
        let pairs = materialize_derived(&st, &def);
        // Ann-Bob, Ann-Carol in both directions.
        assert_eq!(pairs.len(), 4);
    }

    #[test]
    fn derived_respects_merges() {
        let mut st = store();
        // Merge Bob and Carol (hypothetically the same person) and check
        // CoAuthor reflects the merged graph.
        let bob = person(&st, "Bob Fisher");
        let carol = person(&st, "Carol Reyes");
        st.merge(bob, carol).unwrap();
        let b = Browser::new(&st);
        let ann = person(&st, "Ann Walker");
        let coauthors = b.derived_by_name(ann, derived::CO_AUTHOR).unwrap();
        assert_eq!(coauthors.len(), 1);
        // Querying through the stale id still works.
        let via_stale = b.derived_by_name(carol, derived::CO_AUTHOR).unwrap();
        assert_eq!(via_stale, vec![ann]);
    }
}
