/root/repo/target/debug/deps/experiments-fe9ed79e80ef7fe6.d: crates/bench/src/bin/experiments.rs

/root/repo/target/debug/deps/experiments-fe9ed79e80ef7fe6: crates/bench/src/bin/experiments.rs

crates/bench/src/bin/experiments.rs:
