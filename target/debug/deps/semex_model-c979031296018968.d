/root/repo/target/debug/deps/semex_model-c979031296018968.d: crates/model/src/lib.rs crates/model/src/attribute.rs crates/model/src/class.rs crates/model/src/derived.rs crates/model/src/model.rs crates/model/src/relation.rs crates/model/src/value.rs Cargo.toml

/root/repo/target/debug/deps/libsemex_model-c979031296018968.rmeta: crates/model/src/lib.rs crates/model/src/attribute.rs crates/model/src/class.rs crates/model/src/derived.rs crates/model/src/model.rs crates/model/src/relation.rs crates/model/src/value.rs Cargo.toml

crates/model/src/lib.rs:
crates/model/src/attribute.rs:
crates/model/src/class.rs:
crates/model/src/derived.rs:
crates/model/src/model.rs:
crates/model/src/relation.rs:
crates/model/src/value.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
