//! The underlying "true world" a personal corpus renders.

use crate::names;
use crate::CorpusConfig;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;
use std::collections::HashSet;

/// A real person in the synthetic world.
#[derive(Debug, Clone)]
pub struct TruePerson {
    /// Ground-truth entity id.
    pub id: u32,
    /// Given name.
    pub first: String,
    /// Optional middle initial (no dot).
    pub middle: Option<String>,
    /// Family name.
    pub last: String,
    /// E-mail addresses, primary first. Globally unique.
    pub emails: Vec<String>,
    /// Index into [`World::orgs`].
    pub org: usize,
}

impl TruePerson {
    /// Canonical display name (`First [M.] Last`).
    pub fn canonical_name(&self) -> String {
        match &self.middle {
            Some(m) => format!("{} {}. {}", self.first, m, self.last),
            None => format!("{} {}", self.first, self.last),
        }
    }
}

/// An organization.
#[derive(Debug, Clone)]
pub struct TrueOrg {
    /// Ground-truth entity id.
    pub id: u32,
    /// Display name.
    pub name: String,
    /// E-mail domain.
    pub domain: String,
}

/// A publication venue.
#[derive(Debug, Clone)]
pub struct TrueVenue {
    /// Ground-truth entity id.
    pub id: u32,
    /// Full name ("International Conference on …").
    pub name: String,
    /// Abbreviation ("ICMD").
    pub abbrev: String,
}

/// A publication.
#[derive(Debug, Clone)]
pub struct TruePublication {
    /// Ground-truth entity id.
    pub id: u32,
    /// Canonical title.
    pub title: String,
    /// Publication year.
    pub year: i64,
    /// Author indexes into [`World::people`], in order.
    pub authors: Vec<usize>,
    /// Venue index into [`World::venues`].
    pub venue: usize,
    /// Indexes of earlier publications this one cites.
    pub cites: Vec<usize>,
}

/// The complete true world behind a personal corpus.
#[derive(Debug, Clone)]
pub struct World {
    /// All people.
    pub people: Vec<TruePerson>,
    /// All organizations.
    pub orgs: Vec<TrueOrg>,
    /// All venues.
    pub venues: Vec<TrueVenue>,
    /// All publications.
    pub pubs: Vec<TruePublication>,
}

impl World {
    /// Sample a world from the configuration.
    pub fn generate(cfg: &CorpusConfig, rng: &mut StdRng) -> World {
        let orgs = gen_orgs(cfg, rng);
        let people = gen_people(cfg, &orgs, rng);
        let venues = gen_venues(cfg, rng);
        let pubs = gen_pubs(cfg, &people, venues.len(), rng);
        World {
            people,
            orgs,
            venues,
            pubs,
        }
    }

    /// Indexes of people in the same organization as `p` (excluding `p`).
    pub fn colleagues(&self, p: usize) -> Vec<usize> {
        let org = self.people[p].org;
        (0..self.people.len())
            .filter(|&i| i != p && self.people[i].org == org)
            .collect()
    }
}

fn gen_orgs(cfg: &CorpusConfig, rng: &mut StdRng) -> Vec<TrueOrg> {
    let mut out = Vec::with_capacity(cfg.organizations);
    let mut used = HashSet::new();
    let mut i = 0;
    while out.len() < cfg.organizations {
        let stem = names::ORG_STEMS[rng.gen_range(0..names::ORG_STEMS.len())];
        let suffix = names::ORG_SUFFIXES[rng.gen_range(0..names::ORG_SUFFIXES.len())];
        let name = format!("{stem} {suffix}");
        if !used.insert(name.clone()) {
            i += 1;
            // Pools are finite: disambiguate once combinations run dry.
            if i > 200 {
                let name = format!("{stem} {suffix} {}", out.len());
                let domain = format!("{}{}.example.edu", stem.to_lowercase(), out.len());
                out.push(TrueOrg {
                    id: out.len() as u32,
                    name,
                    domain,
                });
            }
            continue;
        }
        let domain = format!("{}.example.edu", stem.to_lowercase());
        out.push(TrueOrg {
            id: out.len() as u32,
            name,
            domain,
        });
    }
    out
}

fn gen_people(cfg: &CorpusConfig, orgs: &[TrueOrg], rng: &mut StdRng) -> Vec<TruePerson> {
    let mut out = Vec::with_capacity(cfg.people);
    let mut used_names = HashSet::new();
    let mut used_emails: HashSet<String> = HashSet::new();
    while out.len() < cfg.people {
        let first = names::FIRST_NAMES[rng.gen_range(0..names::FIRST_NAMES.len())].to_owned();
        let last = names::LAST_NAMES[rng.gen_range(0..names::LAST_NAMES.len())].to_owned();
        if !used_names.insert((first.clone(), last.clone())) {
            continue;
        }
        let middle = rng.gen_bool(0.4).then(|| {
            names::MIDDLE_INITIALS[rng.gen_range(0..names::MIDDLE_INITIALS.len())].to_owned()
        });
        let org = rng.gen_range(0..orgs.len());
        let domain = orgs[org].domain.clone();
        let fl = first.to_lowercase();
        let ll = last_ascii(&last);
        let local = match rng.gen_range(0..4) {
            0 => format!("{fl}.{ll}"),
            1 => format!("{}{ll}", &fl[..1]),
            2 => fl.clone(),
            _ => format!("{ll}{}", &fl[..1]),
        };
        let mut primary = format!("{local}@{domain}");
        let mut bump = 1;
        while used_emails.contains(&primary) {
            primary = format!("{local}{bump}@{domain}");
            bump += 1;
        }
        used_emails.insert(primary.clone());
        let mut emails = vec![primary];
        if rng.gen_bool(0.5) {
            let free = names::FREEMAIL[rng.gen_range(0..names::FREEMAIL.len())];
            let mut alias = format!("{fl}{ll}@{free}");
            let mut bump = 1;
            while used_emails.contains(&alias) {
                alias = format!("{fl}{ll}{bump}@{free}");
                bump += 1;
            }
            used_emails.insert(alias.clone());
            emails.push(alias);
        }
        out.push(TruePerson {
            id: out.len() as u32,
            first,
            middle,
            last,
            emails,
            org,
        });
    }
    out
}

/// Lowercased ASCII-folded family name for e-mail locals.
fn last_ascii(last: &str) -> String {
    last.to_lowercase()
        .chars()
        .filter(|c| c.is_ascii_alphanumeric())
        .collect()
}

fn gen_venues(cfg: &CorpusConfig, rng: &mut StdRng) -> Vec<TrueVenue> {
    let mut stems: Vec<&str> = names::VENUE_STEMS.to_vec();
    stems.shuffle(rng);
    let mut out = Vec::with_capacity(cfg.venues);
    let mut used_abbrevs = HashSet::new();
    for i in 0..cfg.venues {
        let stem = stems[i % stems.len()];
        let name = if i < stems.len() {
            format!("International Conference on {stem}")
        } else {
            format!("Workshop on {stem}")
        };
        let mut abbrev: String = name
            .split_whitespace()
            .filter(|w| w.len() > 2 || w.chars().next().is_some_and(char::is_uppercase))
            .filter(|w| !matches!(*w, "on" | "and" | "of" | "the" | "in"))
            .filter_map(|w| w.chars().next())
            .collect::<String>()
            .to_uppercase();
        while !used_abbrevs.insert(abbrev.clone()) {
            abbrev.push('X');
        }
        out.push(TrueVenue {
            id: i as u32,
            name,
            abbrev,
        });
    }
    out
}

fn gen_pubs(
    cfg: &CorpusConfig,
    people: &[TruePerson],
    venues: usize,
    rng: &mut StdRng,
) -> Vec<TruePublication> {
    let mut out: Vec<TruePublication> = Vec::with_capacity(cfg.publications);
    let mut used_titles = HashSet::new();
    while out.len() < cfg.publications {
        let word_count = rng.gen_range(3..=6);
        let mut words = Vec::with_capacity(word_count);
        for _ in 0..word_count {
            words.push(names::TITLE_WORDS[rng.gen_range(0..names::TITLE_WORDS.len())]);
        }
        let mut title = words.join(" ");
        // Capitalize the first word.
        if let Some(c) = title.get(..1) {
            title = format!("{}{}", c.to_uppercase(), &title[1..]);
        }
        if !used_titles.insert(title.clone()) {
            continue;
        }
        // Authors cluster by organization: seed author, then colleagues.
        let seed = rng.gen_range(0..people.len());
        let mut authors = vec![seed];
        let colleagues: Vec<usize> = (0..people.len())
            .filter(|&i| i != seed && people[i].org == people[seed].org)
            .collect();
        let extra = rng.gen_range(0..=3usize);
        for _ in 0..extra {
            let pick = if !colleagues.is_empty() && rng.gen_bool(0.7) {
                colleagues[rng.gen_range(0..colleagues.len())]
            } else {
                rng.gen_range(0..people.len())
            };
            if !authors.contains(&pick) {
                authors.push(pick);
            }
        }
        let venue = rng.gen_range(0..venues);
        let year = rng.gen_range(1995..=2005);
        let mut cites = Vec::new();
        if !out.is_empty() {
            for _ in 0..rng.gen_range(0..=4usize) {
                let c = rng.gen_range(0..out.len());
                if !cites.contains(&c) {
                    cites.push(c);
                }
            }
        }
        out.push(TruePublication {
            id: out.len() as u32,
            title,
            year,
            authors,
            venue,
            cites,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn world() -> World {
        let cfg = CorpusConfig::tiny(42);
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        World::generate(&cfg, &mut rng)
    }

    #[test]
    fn sizes_match_config() {
        let w = world();
        assert_eq!(w.people.len(), 20);
        assert_eq!(w.orgs.len(), 3);
        assert_eq!(w.venues.len(), 4);
        assert_eq!(w.pubs.len(), 25);
    }

    #[test]
    fn identities_are_unique() {
        let w = world();
        let names: HashSet<String> = w.people.iter().map(|p| p.canonical_name()).collect();
        assert_eq!(names.len(), w.people.len());
        let emails: Vec<&String> = w.people.iter().flat_map(|p| &p.emails).collect();
        let uniq: HashSet<&&String> = emails.iter().collect();
        assert_eq!(uniq.len(), emails.len());
        let titles: HashSet<&String> = w.pubs.iter().map(|p| &p.title).collect();
        assert_eq!(titles.len(), w.pubs.len());
        let abbrevs: HashSet<&String> = w.venues.iter().map(|v| &v.abbrev).collect();
        assert_eq!(abbrevs.len(), w.venues.len());
    }

    #[test]
    fn citations_point_backwards() {
        let w = world();
        for (i, p) in w.pubs.iter().enumerate() {
            for &c in &p.cites {
                assert!(c < i);
            }
            assert!(!p.authors.is_empty() && p.authors.len() <= 4);
            assert!(p.venue < w.venues.len());
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = CorpusConfig::tiny(7);
        let mut r1 = StdRng::seed_from_u64(cfg.seed);
        let mut r2 = StdRng::seed_from_u64(cfg.seed);
        let w1 = World::generate(&cfg, &mut r1);
        let w2 = World::generate(&cfg, &mut r2);
        assert_eq!(w1.people.len(), w2.people.len());
        for (a, b) in w1.people.iter().zip(&w2.people) {
            assert_eq!(a.canonical_name(), b.canonical_name());
            assert_eq!(a.emails, b.emails);
        }
        for (a, b) in w1.pubs.iter().zip(&w2.pubs) {
            assert_eq!(a.title, b.title);
        }
    }

    #[test]
    fn colleagues_share_org() {
        let w = world();
        for c in w.colleagues(0) {
            assert_eq!(w.people[c].org, w.people[0].org);
            assert_ne!(c, 0);
        }
    }
}
