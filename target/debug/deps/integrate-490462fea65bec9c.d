/root/repo/target/debug/deps/integrate-490462fea65bec9c.d: crates/bench/benches/integrate.rs

/root/repo/target/debug/deps/libintegrate-490462fea65bec9c.rmeta: crates/bench/benches/integrate.rs

crates/bench/benches/integrate.rs:
