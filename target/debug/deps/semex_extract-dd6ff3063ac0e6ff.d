/root/repo/target/debug/deps/semex_extract-dd6ff3063ac0e6ff.d: crates/extract/src/lib.rs crates/extract/src/bibtex.rs crates/extract/src/context.rs crates/extract/src/csv.rs crates/extract/src/date.rs crates/extract/src/email.rs crates/extract/src/fswalk.rs crates/extract/src/html.rs crates/extract/src/ical.rs crates/extract/src/latex.rs crates/extract/src/vcard.rs Cargo.toml

/root/repo/target/debug/deps/libsemex_extract-dd6ff3063ac0e6ff.rmeta: crates/extract/src/lib.rs crates/extract/src/bibtex.rs crates/extract/src/context.rs crates/extract/src/csv.rs crates/extract/src/date.rs crates/extract/src/email.rs crates/extract/src/fswalk.rs crates/extract/src/html.rs crates/extract/src/ical.rs crates/extract/src/latex.rs crates/extract/src/vcard.rs Cargo.toml

crates/extract/src/lib.rs:
crates/extract/src/bibtex.rs:
crates/extract/src/context.rs:
crates/extract/src/csv.rs:
crates/extract/src/date.rs:
crates/extract/src/email.rs:
crates/extract/src/fswalk.rs:
crates/extract/src/html.rs:
crates/extract/src/ical.rs:
crates/extract/src/latex.rs:
crates/extract/src/vcard.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
