/root/repo/target/release/deps/semex_store-efb036109539c8d2.d: crates/store/src/lib.rs crates/store/src/events.rs crates/store/src/object.rs crates/store/src/provenance.rs crates/store/src/snapshot.rs crates/store/src/stats.rs crates/store/src/store.rs crates/store/src/triple.rs

/root/repo/target/release/deps/semex_store-efb036109539c8d2: crates/store/src/lib.rs crates/store/src/events.rs crates/store/src/object.rs crates/store/src/provenance.rs crates/store/src/snapshot.rs crates/store/src/stats.rs crates/store/src/store.rs crates/store/src/triple.rs

crates/store/src/lib.rs:
crates/store/src/events.rs:
crates/store/src/object.rs:
crates/store/src/provenance.rs:
crates/store/src/snapshot.rs:
crates/store/src/stats.rs:
crates/store/src/store.rs:
crates/store/src/triple.rs:
