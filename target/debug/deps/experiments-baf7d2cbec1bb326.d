/root/repo/target/debug/deps/experiments-baf7d2cbec1bb326.d: crates/bench/src/bin/experiments.rs

/root/repo/target/debug/deps/libexperiments-baf7d2cbec1bb326.rmeta: crates/bench/src/bin/experiments.rs

crates/bench/src/bin/experiments.rs:
