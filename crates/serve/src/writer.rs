//! The serialized write path: one writer thread, batch coalescing, one
//! journal commit and one snapshot publication per batch.
//!
//! Every mutation funnels through an mpsc queue into this thread, which
//! owns the [`Master`]. The loop blocks for the first job, then drains
//! whatever else is already queued (up to `max_batch`): under write
//! pressure the queue naturally backs up while the previous batch commits,
//! so N queued writes cost **one** index refresh and **one** fsync instead
//! of N — without adding any artificial latency when the queue is idle.
//!
//! Acknowledgment order is the durability contract: apply → commit →
//! publish → reply. A client that has its ack (a) can read its own write
//! from the very next snapshot load, and (b) will find it after a crash
//! and [`semex_core::Semex::open_durable`] recovery. Jobs dequeued after
//! shutdown began are rejected with a typed `shutting_down` error — never
//! silently dropped — so a client always learns the fate of its write.

use crate::engine::SnapshotEngine;
use crate::master::Master;
use crate::protocol::{ErrorKindWire, IngestFormat, Request, Response};
use semex_core::{Semex, SemexError, SourceSpec};
use semex_store::ObjectId;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};

/// A mutation in queueable form. `Clone` so a recording server can return
/// the exact applied sequence for sequential-replay verification.
#[derive(Debug, Clone, PartialEq)]
pub enum WriteCommand {
    /// Ingest an inline source.
    Ingest {
        /// Source format.
        format: IngestFormat,
        /// Provenance name.
        name: String,
        /// The source text.
        content: String,
    },
    /// Integrate a CSV table.
    IntegrateCsv {
        /// Provenance name.
        name: String,
        /// The CSV text.
        csv: String,
    },
    /// Merge two objects on user say-so.
    AssertSame {
        /// One object id.
        a: u64,
        /// The other object id.
        b: u64,
    },
    /// Record a cannot-link constraint.
    AssertDistinct {
        /// One object id.
        a: u64,
        /// The other object id.
        b: u64,
    },
}

impl WriteCommand {
    /// Lift a write request into a command; `None` for read requests.
    pub fn from_request(req: &Request) -> Option<WriteCommand> {
        Some(match req {
            Request::Ingest {
                format,
                name,
                content,
            } => WriteCommand::Ingest {
                format: *format,
                name: name.clone(),
                content: content.clone(),
            },
            Request::IntegrateCsv { name, csv } => WriteCommand::IntegrateCsv {
                name: name.clone(),
                csv: csv.clone(),
            },
            Request::AssertSame { a, b } => WriteCommand::AssertSame { a: *a, b: *b },
            Request::AssertDistinct { a, b } => WriteCommand::AssertDistinct { a: *a, b: *b },
            _ => return None,
        })
    }

    /// Apply this command to a platform directly (the sequential-replay
    /// oracle the concurrency tests compare the served state against).
    /// Returns the success response minus its epoch.
    pub fn apply(&self, semex: &mut Semex) -> Result<Applied, Response> {
        match self {
            WriteCommand::Ingest {
                format,
                name,
                content,
            } => {
                let spec = match format {
                    IngestFormat::Mbox => SourceSpec::Mbox {
                        name: name.clone(),
                        content: content.clone(),
                    },
                    IngestFormat::Vcard => SourceSpec::Vcard {
                        name: name.clone(),
                        content: content.clone(),
                    },
                    IngestFormat::Bibtex => SourceSpec::Bibtex {
                        name: name.clone(),
                        content: content.clone(),
                    },
                    IngestFormat::Latex => SourceSpec::Latex {
                        name: name.clone(),
                        content: content.clone(),
                    },
                    IngestFormat::Ical => SourceSpec::Ical {
                        name: name.clone(),
                        content: content.clone(),
                    },
                };
                let stats = semex.ingest(spec).map_err(error_response)?;
                Ok(Applied::Ingested {
                    records: stats.records,
                    objects: stats.objects,
                    triples: stats.triples,
                })
            }
            WriteCommand::IntegrateCsv { name, csv } => {
                match semex.integrate(name, csv).map_err(error_response)? {
                    Some((score, report)) => Ok(Applied::Integrated {
                        matched: true,
                        score,
                        created: report.created,
                        merged: report.merged_into_existing,
                    }),
                    None => Ok(Applied::Integrated {
                        matched: false,
                        score: 0.0,
                        created: 0,
                        merged: 0,
                    }),
                }
            }
            WriteCommand::AssertSame { a, b } => {
                let (a, b) = (check_object(semex, *a)?, check_object(semex, *b)?);
                let merges = semex.store().resolve(a) != semex.store().resolve(b);
                semex.assert_same(a, b).map_err(error_response)?;
                Ok(Applied::Asserted { merged: merges })
            }
            WriteCommand::AssertDistinct { a, b } => {
                let (a, b) = (check_object(semex, *a)?, check_object(semex, *b)?);
                let accepted = semex.assert_distinct(a, b);
                Ok(Applied::Asserted { merged: accepted })
            }
        }
    }
}

/// A successfully applied write, waiting for its batch to commit so the
/// ack can carry the publication epoch.
#[derive(Debug)]
pub enum Applied {
    /// An ingest's extraction stats.
    Ingested {
        /// Input records consumed.
        records: usize,
        /// References created.
        objects: usize,
        /// Triples asserted.
        triples: usize,
    },
    /// A CSV integration's outcome.
    Integrated {
        /// Whether a usable mapping was found.
        matched: bool,
        /// Mapping quality.
        score: f64,
        /// References created.
        created: usize,
        /// References merged into existing objects.
        merged: usize,
    },
    /// An assertion's outcome.
    Asserted {
        /// See [`Response::Asserted`].
        merged: bool,
    },
}

impl Applied {
    fn into_response(self, epoch: u64) -> Response {
        match self {
            Applied::Ingested {
                records,
                objects,
                triples,
            } => Response::Ingested {
                epoch,
                records,
                objects,
                triples,
            },
            Applied::Integrated {
                matched,
                score,
                created,
                merged,
            } => Response::Integrated {
                epoch,
                matched,
                score,
                created,
                merged,
            },
            Applied::Asserted { merged } => Response::Asserted { epoch, merged },
        }
    }
}

fn check_object(semex: &Semex, id: u64) -> Result<ObjectId, Response> {
    if (id as usize) < semex.store().slot_count() {
        Ok(ObjectId(id))
    } else {
        Err(Response::Error {
            kind: ErrorKindWire::BadRequest,
            message: format!("no such object: {id}"),
        })
    }
}

fn error_response(e: SemexError) -> Response {
    let kind = match &e {
        SemexError::Extract { .. } => ErrorKindWire::Extract,
        SemexError::Store(_) => ErrorKindWire::Store,
        SemexError::Degraded { .. } => ErrorKindWire::Degraded,
    };
    Response::Error {
        kind,
        message: e.to_string(),
    }
}

/// One queued write: the command plus the channel its ack goes back on.
pub(crate) struct WriteJob {
    pub cmd: WriteCommand,
    pub reply: mpsc::Sender<Response>,
}

/// What the writer thread did, returned by
/// [`ServeHandle::join`](crate::ServeHandle::join).
#[derive(Debug, Default)]
pub struct WriterReport {
    /// Commit+publish cycles (each one index refresh and one fsync).
    pub batches: u64,
    /// Writes applied, committed, and acked with an epoch.
    pub writes_ok: u64,
    /// Writes that failed to apply or whose batch failed to commit.
    pub writes_failed: u64,
    /// Writes rejected with `shutting_down` after shutdown began.
    pub writes_rejected: u64,
    /// The final published epoch.
    pub final_epoch: u64,
    /// The applied commands in order, when the server was configured with
    /// `record_writes` (for sequential-replay verification).
    pub applied: Vec<WriteCommand>,
}

/// The writer thread body. Owns the master; returns it (and the report)
/// when every job sender has hung up.
pub(crate) fn run(
    mut master: Master,
    jobs: mpsc::Receiver<WriteJob>,
    engine: Arc<SnapshotEngine>,
    stop: Arc<AtomicBool>,
    max_batch: usize,
    record_writes: bool,
) -> (WriterReport, Master) {
    let mut report = WriterReport::default();
    // Batching on: per-mutation refreshes are suppressed; commit() is the
    // one point each batch's events fold into the index.
    master.semex_mut().set_index_batching(true);
    while let Ok(first) = jobs.recv() {
        // Coalesce: take everything already waiting, up to the cap.
        let mut batch = vec![first];
        while batch.len() < max_batch.max(1) {
            match jobs.try_recv() {
                Ok(job) => batch.push(job),
                Err(_) => break,
            }
        }
        let mut outcomes = Vec::with_capacity(batch.len());
        for job in batch {
            if stop.load(Ordering::SeqCst) {
                // Queued but unacked when shutdown began: reject, don't
                // drop — the client must learn its write did not happen.
                report.writes_rejected += 1;
                let _ = job.reply.send(Response::Error {
                    kind: ErrorKindWire::ShuttingDown,
                    message: "server is shutting down; the write was not applied".into(),
                });
                continue;
            }
            let outcome = job.cmd.apply(master.semex_mut());
            if record_writes && outcome.is_ok() {
                report.applied.push(job.cmd.clone());
            }
            outcomes.push((job.reply, outcome));
        }
        if outcomes.is_empty() {
            continue;
        }
        report.batches += 1;
        let commit_err = master.commit().err();
        // Publish even on commit failure: readers must track the master's
        // in-memory state (which, degraded, still serves the un-durable
        // mutations — exactly the degraded-mode contract).
        let epoch = engine.publish(master.snapshot());
        report.final_epoch = epoch;
        for (reply, outcome) in outcomes {
            let response = match (&commit_err, outcome) {
                (None, Ok(applied)) => {
                    report.writes_ok += 1;
                    applied.into_response(epoch)
                }
                (Some(e), Ok(_)) => {
                    report.writes_failed += 1;
                    Response::Error {
                        kind: ErrorKindWire::Degraded,
                        message: format!("applied but not durable — journal commit failed: {e}"),
                    }
                }
                (_, Err(error)) => {
                    report.writes_failed += 1;
                    error
                }
            };
            let _ = reply.send(response);
        }
    }
    // Every sender hung up: the listener and all workers are gone. Leave
    // batching mode (an implicit final flush) and commit any stragglers so
    // the journal is sealed at exactly the acked state.
    master.semex_mut().set_index_batching(false);
    let _ = master.commit();
    (report, master)
}
