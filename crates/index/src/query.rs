//! Query parsing.

use crate::tokenizer::index_tokens_into;

/// A parsed keyword query: free terms plus an optional class filter
/// (`class:Person luna dong`).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Query {
    /// Search terms (tokenized like indexed text).
    pub terms: Vec<String>,
    /// Restrict results to this class name, when present.
    pub class_filter: Option<String>,
}

impl Query {
    /// Parse a user query string.
    pub fn parse(input: &str) -> Query {
        let mut terms = Vec::new();
        let mut class_filter = None;
        for word in input.split_whitespace() {
            if let Some(rest) = word.strip_prefix("class:") {
                if !rest.is_empty() {
                    class_filter = Some(rest.to_owned());
                }
                continue;
            }
            index_tokens_into(word, &mut terms);
        }
        Query {
            terms,
            class_filter,
        }
    }

    /// True when the query has no usable terms.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_terms_and_filter() {
        let q = Query::parse("class:Person Luna Dong");
        assert_eq!(q.class_filter.as_deref(), Some("Person"));
        assert_eq!(q.terms, vec!["luna", "dong"]);
        assert!(!q.is_empty());
    }

    #[test]
    fn stopwords_dropped_from_query() {
        let q = Query::parse("the reconciliation of references");
        assert_eq!(q.terms, vec!["reconciliation", "references"]);
    }

    #[test]
    fn empty_and_filter_only() {
        assert!(Query::parse("").is_empty());
        let q = Query::parse("class:File");
        assert!(q.is_empty());
        assert_eq!(q.class_filter.as_deref(), Some("File"));
        assert_eq!(Query::parse("class:").class_filter, None);
    }

    #[test]
    fn email_query_matches_index_form() {
        let q = Query::parse("luna@cs.edu");
        assert!(q.terms.contains(&"luna@cs.edu".to_owned()));
    }
}
