//! Exhaustive failure-point sweep (SQLite/TigerBeetle style).
//!
//! A scripted workload — open → commit → commit → compact → commit →
//! recover — is first run fault-free to count its I/O operations and
//! compute the reference state. Each sweep then re-runs the workload once
//! per operation index with a fault injected there, and asserts the
//! journal's durability contract after recovery:
//!
//! * every acked commit is present;
//! * no partial commit is visible — the recovered state is always a commit
//!   boundary (an *unacked but fully durable* commit may legitimately
//!   survive when the fault hit after its final write, so the allowed set
//!   is the boundary states between the last ack and the last attempt);
//! * the store round-trips byte-identically through a second recovery.
//!
//! Three fault families are swept: crashes (torn write, then everything
//! down), transient errors (EINTR / timeout / short write — the journal's
//! bounded retry must absorb them), and a full disk (permanent `ENOSPC`
//! until space clears, after which the journal must converge).

use semex_journal::{
    recover_with_io, FaultIo, FaultPlan, Journal, JournalConfig, JournalError, JournalIo,
    RecoveryReport, SnapshotFormat,
};
use semex_model::names::{assoc, attr, class};
use semex_model::Value;
use semex_store::{SourceInfo, SourceKind, Store, StoreEvent};
use std::io::ErrorKind;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

static SCRATCH_N: AtomicU64 = AtomicU64::new(0);

fn scratch(tag: &str) -> PathBuf {
    let n = SCRATCH_N.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("semex-sweep-{tag}-{}-{n}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// Sweep config: fsync on (sync ops are fault points too), no backoff
/// sleeping. Both snapshot formats are swept — the binary writer is on the
/// same fault surface as the JSON one.
fn cfg(format: SnapshotFormat) -> JournalConfig {
    JournalConfig {
        fsync: true,
        retry_backoff: Duration::ZERO,
        snapshot_format: format,
        ..JournalConfig::default()
    }
}

/// The three event batches of the scripted workload, recorded once from a
/// live store so they replay deterministically.
fn batches() -> [Vec<StoreEvent>; 3] {
    let mut st = Store::with_builtin_model();
    st.enable_events();
    let person = st.model().class(class::PERSON).unwrap();
    let publication = st.model().class(class::PUBLICATION).unwrap();
    let authored = st.model().assoc(assoc::AUTHORED_BY).unwrap();
    let name = st.model().attr(attr::NAME).unwrap();
    let title = st.model().attr(attr::TITLE).unwrap();
    let email = st.model().attr(attr::EMAIL).unwrap();

    let src = st.register_source(SourceInfo::new("inbox", SourceKind::Synthetic));
    let ann = st.add_object(person);
    let smith = st.add_object(person);
    st.add_attr(ann, name, Value::from("Ann Smith")).unwrap();
    st.add_attr(smith, name, Value::from("A. Smith")).unwrap();
    let batch1 = st.take_events();

    let paper = st.add_object(publication);
    st.add_attr(paper, title, Value::from("On Journals"))
        .unwrap();
    st.add_triple(paper, authored, smith, src).unwrap();
    let batch2 = st.take_events();

    st.merge(ann, smith).unwrap();
    st.add_attr(ann, email, Value::from("ann@example.org"))
        .unwrap();
    let batch3 = st.take_events();

    assert!(!batch1.is_empty() && !batch2.is_empty() && !batch3.is_empty());
    [batch1, batch2, batch3]
}

/// Boundary states (as snapshot JSON) after 0, 1, 2, 3 acked batches.
fn boundary_states() -> [String; 4] {
    let b = batches();
    let mut st = Store::with_builtin_model();
    let mut states = vec![st.to_json().unwrap()];
    for batch in &b {
        for e in batch {
            st.apply_event(e).unwrap();
        }
        states.push(st.to_json().unwrap());
    }
    states.try_into().unwrap()
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum StepOutcome {
    Ok,
    Failed,
    Skipped,
}

struct WorkloadRun {
    append_outcomes: [StepOutcome; 3],
    attempted_appends: usize,
    compact_ok: Option<bool>,
    final_recover: Option<(Store, RecoveryReport)>,
}

/// Run the scripted workload against `io`. Steps stop at the first failed
/// append, the way a real application would. `retry_transient_steps`
/// re-runs a failed *recovery* step once when its error is transient (the
/// workload-level analog of the journal's internal retry, for the one
/// operation class that has none).
fn run_workload(
    dir: &Path,
    io: Arc<dyn JournalIo>,
    retry_transient_steps: bool,
    format: SnapshotFormat,
) -> WorkloadRun {
    let b = batches();
    let mut run = WorkloadRun {
        append_outcomes: [StepOutcome::Skipped; 3],
        attempted_appends: 0,
        compact_ok: None,
        final_recover: None,
    };

    let recover_step = || -> Option<(Store, Journal, RecoveryReport)> {
        match recover_with_io(dir, cfg(format), io.clone()) {
            Ok(v) => Some(v),
            Err(e) if retry_transient_steps && e.is_transient() => {
                recover_with_io(dir, cfg(format), io.clone()).ok()
            }
            Err(_) => None,
        }
    };

    let Some((_, mut j, _)) = recover_step() else {
        return run;
    };

    let mut mirror = Store::with_builtin_model();
    for (i, events) in b.iter().enumerate() {
        run.attempted_appends = i + 1;
        match j.append_commit(events) {
            Ok(_) => {
                run.append_outcomes[i] = StepOutcome::Ok;
                for e in events {
                    mirror.apply_event(e).unwrap();
                }
            }
            Err(_) => {
                run.append_outcomes[i] = StepOutcome::Failed;
                break;
            }
        }
        // Compact between batch 2 and 3, with the exact acked state. A
        // failed compaction leaves the journal usable in its old epoch;
        // keep going.
        if i == 1 {
            run.compact_ok = Some(j.compact(&mirror).is_ok());
        }
    }
    drop(j);

    run.final_recover = recover_step().map(|(s, _, r)| (s, r));
    run
}

/// Fault-free pass: returns the workload's total I/O op count and the
/// reference final state.
fn fault_free_op_count(format: SnapshotFormat) -> (u64, String) {
    let dir = scratch("ref");
    let io = FaultIo::new(FaultPlan::None);
    let run = run_workload(&dir, Arc::new(io.clone()), false, format);
    assert_eq!(run.append_outcomes, [StepOutcome::Ok; 3]);
    assert_eq!(run.compact_ok, Some(true));
    let (store, rep) = run.final_recover.expect("fault-free run must recover");
    assert!(rep.damage.is_none(), "{rep:?}");
    let reference = store.to_json().unwrap();
    assert_eq!(reference, boundary_states()[3]);
    std::fs::remove_dir_all(&dir).ok();
    (io.op_count(), reference)
}

fn sweep_crash(format: SnapshotFormat) {
    let (total_ops, _) = fault_free_op_count(format);
    let boundaries = boundary_states();
    assert!(
        total_ops > 20,
        "workload too small to be a meaningful sweep"
    );
    let mut survived = 0u64;
    for at in 0..total_ops {
        let dir = scratch("crash");
        let io = FaultIo::new(FaultPlan::Crash { at });
        let run = run_workload(&dir, Arc::new(io.clone()), false, format);

        let acked = run
            .append_outcomes
            .iter()
            .take_while(|o| **o == StepOutcome::Ok)
            .count();
        let attempted = run.attempted_appends.max(acked);

        // Power comes back: recovery must land on a commit boundary no
        // earlier than the last ack.
        io.clear_faults();
        let (store, _, rep) = recover_with_io(&dir, cfg(format), Arc::new(io.clone()))
            .unwrap_or_else(|e| panic!("recovery after crash at op {at} failed: {e}"));
        let recovered = store.to_json().unwrap();
        let allowed = &boundaries[acked..=attempted];
        assert!(
            allowed.contains(&recovered),
            "crash at op {at}: recovered state is not a commit boundary in \
             [acked {acked}, attempted {attempted}] (report {rep:?})"
        );
        // Repair round-trips byte-identically and cleanly.
        let (store2, _, rep2) = recover_with_io(&dir, cfg(format), Arc::new(io.clone())).unwrap();
        assert!(
            rep2.damage.is_none(),
            "crash at op {at}: damage survived repair: {rep2:?} (first: {rep:?})"
        );
        assert_eq!(store2.to_json().unwrap(), recovered, "crash at op {at}");
        survived += 1;
        std::fs::remove_dir_all(&dir).ok();
    }
    println!(
        "fault sweep [crash, {format:?}]: {total_ops} ops swept, {survived} recoveries verified"
    );
    assert_eq!(survived, total_ops);
}

#[test]
fn sweep_crash_at_every_op_preserves_acked_commits() {
    sweep_crash(SnapshotFormat::Json);
}

#[test]
fn sweep_crash_at_every_op_preserves_acked_commits_binary() {
    sweep_crash(SnapshotFormat::Binary);
}

fn sweep_transient(format: SnapshotFormat) {
    let (total_ops, reference) = fault_free_op_count(format);
    let mut survived = 0u64;
    let mut injected = 0u64;
    for at in 0..total_ops {
        for plan in [
            FaultPlan::ErrorOnce {
                at,
                kind: ErrorKind::Interrupted,
            },
            FaultPlan::ErrorOnce {
                at,
                kind: ErrorKind::TimedOut,
            },
            FaultPlan::ShortWrite { at },
        ] {
            let dir = scratch("transient");
            let io = FaultIo::new(plan);
            let run = run_workload(&dir, Arc::new(io.clone()), true, format);
            assert_eq!(
                run.append_outcomes,
                [StepOutcome::Ok; 3],
                "transient {plan:?} must be absorbed"
            );
            assert_eq!(
                run.compact_ok,
                Some(true),
                "transient {plan:?}: compaction must absorb it"
            );
            let (store, rep) = run
                .final_recover
                .unwrap_or_else(|| panic!("transient {plan:?}: no final recovery"));
            assert!(rep.damage.is_none(), "transient {plan:?}: {rep:?}");
            assert_eq!(store.to_json().unwrap(), reference, "transient {plan:?}");
            injected += io.faults_injected();
            survived += 1;
            std::fs::remove_dir_all(&dir).ok();
        }
    }
    println!(
        "fault sweep [transient, {format:?}]: {total_ops} ops × 3 kinds swept, \
         {survived} runs converged, {injected} faults injected"
    );
    assert_eq!(survived, total_ops * 3);
}

#[test]
fn sweep_transient_fault_at_every_op_is_absorbed() {
    sweep_transient(SnapshotFormat::Json);
}

#[test]
fn sweep_transient_fault_at_every_op_is_absorbed_binary() {
    sweep_transient(SnapshotFormat::Binary);
}

fn sweep_disk_full(format: SnapshotFormat) {
    let (total_ops, reference) = fault_free_op_count(format);
    let boundaries = boundary_states();
    let b = batches();
    let mut survived = 0u64;
    for at in 0..total_ops {
        let dir = scratch("full");
        let io = FaultIo::new(FaultPlan::DiskFull { at });
        let run = run_workload(&dir, Arc::new(io.clone()), false, format);
        let acked = run
            .append_outcomes
            .iter()
            .take_while(|o| **o == StepOutcome::Ok)
            .count();
        let attempted = run.attempted_appends.max(acked);

        // Operator frees space; the journal must converge to the reference.
        io.clear_faults();
        let (store, mut j, _) = recover_with_io(&dir, cfg(format), Arc::new(io.clone()))
            .unwrap_or_else(|e| panic!("disk-full at op {at}: recovery failed: {e}"));
        let recovered = store.to_json().unwrap();
        let allowed = &boundaries[acked..=attempted];
        assert!(
            allowed.contains(&recovered),
            "disk-full at op {at}: recovered state is not an allowed boundary"
        );
        let progress = boundaries.iter().position(|s| *s == recovered).unwrap();
        for events in &b[progress..] {
            j.append_commit(events)
                .unwrap_or_else(|e| panic!("disk-full at op {at}: re-append failed: {e}"));
        }
        drop(j);
        let (fin, _, rep) = recover_with_io(&dir, cfg(format), Arc::new(io.clone())).unwrap();
        assert!(rep.damage.is_none(), "disk-full at op {at}: {rep:?}");
        assert_eq!(fin.to_json().unwrap(), reference, "disk-full at op {at}");
        survived += 1;
        std::fs::remove_dir_all(&dir).ok();
    }
    println!(
        "fault sweep [disk-full, {format:?}]: {total_ops} ops swept, {survived} runs converged"
    );
    assert_eq!(survived, total_ops);
}

#[test]
fn sweep_disk_full_at_every_op_converges_after_space_clears() {
    sweep_disk_full(SnapshotFormat::Json);
}

#[test]
fn sweep_disk_full_at_every_op_converges_after_space_clears_binary() {
    sweep_disk_full(SnapshotFormat::Binary);
}

// ------------------------------------------------- retry & wedge units --

#[test]
fn transient_append_fault_is_retried_and_absorbed() {
    let dir = scratch("retry");
    let io = FaultIo::new(FaultPlan::None);
    let arc: Arc<dyn JournalIo> = Arc::new(io.clone());
    let (_, mut j, _) = recover_with_io(&dir, cfg(SnapshotFormat::Json), arc).unwrap();
    let b = batches();
    j.append_commit(&b[0]).unwrap();
    assert_eq!(j.retry_count(), 0);

    // Fault the next I/O op (a write inside the second commit).
    io.set_plan(FaultPlan::ErrorOnce {
        at: io.op_count(),
        kind: ErrorKind::Interrupted,
    });
    j.append_commit(&b[1]).unwrap();
    assert_eq!(j.retry_count(), 1);
    assert_eq!(io.faults_injected(), 1);
    drop(j);

    io.clear_faults();
    let (rs, _, rep) = recover_with_io(&dir, cfg(SnapshotFormat::Json), Arc::new(io)).unwrap();
    assert!(rep.damage.is_none(), "{rep:?}");
    assert_eq!(rs.to_json().unwrap(), boundary_states()[2]);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn permanent_fault_mid_commit_wedges_and_reopen_recovers() {
    let dir = scratch("wedge");
    let io = FaultIo::new(FaultPlan::None);
    let arc: Arc<dyn JournalIo> = Arc::new(io.clone());
    let (_, mut j, _) = recover_with_io(&dir, cfg(SnapshotFormat::Json), arc).unwrap();
    let b = batches();
    j.append_commit(&b[0]).unwrap();

    // Disk fills mid-append: the write fails AND the rollback fails.
    io.set_plan(FaultPlan::DiskFull { at: io.op_count() });
    let err = j.append_commit(&b[1]).unwrap_err();
    assert!(!err.is_transient(), "ENOSPC must classify permanent");
    assert!(j.is_wedged(), "failed rollback must wedge the journal");
    match j.append_commit(&b[1]) {
        Err(JournalError::Wedged { .. }) => {}
        other => panic!("expected Wedged, got {other:?}"),
    }

    // Space frees up: reopen repairs the tail; the failed commit must not
    // be visible, and the backlog can be re-appended.
    io.clear_faults();
    let (recovered, rep) = j.reopen().unwrap();
    assert!(!j.is_wedged());
    assert_eq!(
        recovered.to_json().unwrap(),
        boundary_states()[1],
        "failed commit leaked into recovery: {rep:?}"
    );
    j.append_commit(&b[1]).unwrap();
    drop(j);

    let (rs, _, rep) = recover_with_io(&dir, cfg(SnapshotFormat::Json), Arc::new(io)).unwrap();
    assert!(rep.damage.is_none(), "{rep:?}");
    assert_eq!(rs.to_json().unwrap(), boundary_states()[2]);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn unsealed_tail_is_discarded_on_recovery() {
    use std::io::Write;
    let dir = scratch("unsealed");
    let (_, mut j, _) = recover_with_io(
        &dir,
        cfg(SnapshotFormat::Json),
        Arc::new(semex_journal::RealIo),
    )
    .unwrap();
    let b = batches();
    j.append_commit(&b[0]).unwrap();
    drop(j);

    // Append a valid event record with no commit marker after it — the
    // shape a crash between append and acknowledgment leaves behind.
    let seg = dir.join(semex_journal::segment::segment_file_name(0, 0));
    let len_sealed = std::fs::metadata(&seg).unwrap().len();
    let mut extra = Vec::new();
    let payload = serde_json::to_vec(&b[1][0]).unwrap();
    semex_journal::record::encode(&payload, &mut extra);
    let mut f = std::fs::OpenOptions::new().append(true).open(&seg).unwrap();
    f.write_all(&extra).unwrap();
    drop(f);

    let (rs, _, rep) = recover_with_io(
        &dir,
        cfg(SnapshotFormat::Json),
        Arc::new(semex_journal::RealIo),
    )
    .unwrap();
    let damage = rep.damage.expect("unsealed tail must be reported");
    assert_eq!(damage.kind, semex_journal::DamageKind::Uncommitted);
    assert_eq!(damage.offset, len_sealed);
    assert_eq!(rs.to_json().unwrap(), boundary_states()[1]);

    // Repaired: second recovery is clean, the file is back to sealed size.
    let (rs2, _, rep2) = recover_with_io(
        &dir,
        cfg(SnapshotFormat::Json),
        Arc::new(semex_journal::RealIo),
    )
    .unwrap();
    assert!(rep2.damage.is_none(), "{rep2:?}");
    assert_eq!(rs2.to_json().unwrap(), rs.to_json().unwrap());
    assert_eq!(std::fs::metadata(&seg).unwrap().len(), len_sealed);
    std::fs::remove_dir_all(&dir).ok();
}
