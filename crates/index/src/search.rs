//! The inverted index: interned terms, flat postings, incremental
//! maintenance. Ranked retrieval lives in the `topk` module (pruned) and
//! [`SearchIndex::search_exhaustive`] (reference scorer).

use crate::dict::TermDict;
use crate::postings::PostingList;
use crate::tokenizer::index_tokens_into;
use crate::{Bm25Params, Query};
use semex_model::names::attr;
use semex_model::ClassId;
use semex_store::{ObjectId, Store, StoreEvent};
use std::collections::HashMap;

/// One ranked search result.
#[derive(Debug, Clone, PartialEq)]
pub struct Hit {
    /// The matching object.
    pub object: ObjectId,
    /// BM25 relevance score (higher is better).
    pub score: f64,
    /// Number of query terms the object matched.
    pub matched_terms: usize,
}

/// Per-document bookkeeping for one dense doc slot.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct DocEntry {
    pub(crate) object: ObjectId,
    pub(crate) class: ClassId,
    pub(crate) len: f32,
    pub(crate) live: bool,
}

/// Field weights: hits in identity fields outrank body hits.
fn field_weight(attr_name: &str) -> f64 {
    match attr_name {
        attr::NAME | attr::TITLE | attr::SUBJECT => 3.0,
        attr::EMAIL | attr::ABBREVIATION => 2.5,
        attr::PATH | attr::URL | attr::LOCATION => 1.5,
        _ => 1.0,
    }
}

/// The tokenized documents of one build shard: a local term dictionary
/// (ids in shard-wide first-encounter order) plus per-document term lists
/// in first-occurrence order. Workers produce shards independently;
/// [`SearchIndex::absorb`] merges them in shard order, which reproduces the
/// sequential build bit for bit.
struct Shard {
    dict: TermDict,
    docs: Vec<ShardDoc>,
}

struct ShardDoc {
    object: ObjectId,
    class: ClassId,
    len: f64,
    /// `(local term id, weighted tf)` in first-occurrence order.
    terms: Vec<(u32, f64)>,
}

/// Tokenize a slice of store objects into a self-contained shard.
fn tokenize_shard(store: &Store, objects: &[ObjectId]) -> Shard {
    let model = store.model();
    let mut dict = TermDict::new();
    let mut docs = Vec::new();
    let mut toks: Vec<String> = Vec::new();
    let mut slot: HashMap<u32, usize> = HashMap::new();
    for &obj in objects {
        let o = store.object(obj);
        let mut terms: Vec<(u32, f64)> = Vec::new();
        let mut len = 0.0f64;
        slot.clear();
        for (a, v) in &o.attrs {
            let def = model.attr_def(*a);
            if !def.indexed {
                continue;
            }
            let Some(text) = v.as_str() else { continue };
            let w = field_weight(&def.name);
            toks.clear();
            index_tokens_into(text, &mut toks);
            for t in toks.drain(..) {
                len += 1.0;
                let tid = dict.intern(&t);
                match slot.get(&tid) {
                    Some(&i) => terms[i].1 += w,
                    None => {
                        slot.insert(tid, terms.len());
                        terms.push((tid, w));
                    }
                }
            }
        }
        if !terms.is_empty() {
            docs.push(ShardDoc {
                object: obj,
                class: o.class,
                len,
                terms,
            });
        }
    }
    Shard { dict, docs }
}

/// An inverted index over the indexed string attributes of store objects.
///
/// Terms are interned to dense `u32` ids ([`TermDict`]); each term id owns a
/// flat doc-sorted [`PostingList`] carrying its live document frequency and
/// a max-impact bound for pruned top-k evaluation. Build with
/// [`SearchIndex::build`] / [`SearchIndex::build_threaded`] (after
/// reconciliation, so merged objects are single documents pooling all their
/// surface forms), then keep it current with [`SearchIndex::apply_events`]:
/// mutations tombstone and re-tokenize only the touched documents, and the
/// index compacts itself when enough tombstones accumulate.
#[derive(Debug, Clone, Default)]
pub struct SearchIndex {
    pub(crate) dict: TermDict,
    /// Indexed by term id.
    pub(crate) postings: Vec<PostingList>,
    /// Indexed by dense doc slot; tombstoned entries stay until compaction.
    pub(crate) docs: Vec<DocEntry>,
    /// Forward index: `(term id, weighted tf)` per live doc slot, in
    /// first-occurrence order. Emptied when a doc is tombstoned (its df
    /// contributions are retracted at that moment).
    doc_terms: Vec<Vec<(u32, f32)>>,
    doc_of: HashMap<ObjectId, u32>,
    pub(crate) live_docs: usize,
    /// Sum of live doc lengths. Lengths are integer-valued, so adds and
    /// retractions are exact and `avg_doc_len` matches a fresh build.
    pub(crate) total_len: f64,
    pub(crate) params: Bm25Params,
    /// Non-empty [`SearchIndex::apply_events`] batches folded in so far.
    /// Write-batching layers assert on this: N coalesced mutations must
    /// cost one delta application, not N.
    apply_calls: u64,
}

impl SearchIndex {
    /// An empty index.
    pub fn new(params: Bm25Params) -> Self {
        SearchIndex {
            params,
            ..Default::default()
        }
    }

    /// Index every live object of the store, sequentially.
    pub fn build(store: &Store) -> Self {
        SearchIndex::build_threaded(store, 1)
    }

    /// [`SearchIndex::build_threaded`] at the machine's parallelism.
    pub fn build_parallel(store: &Store) -> Self {
        let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
        SearchIndex::build_threaded(store, threads)
    }

    /// Index every live object across `threads` workers: store objects are
    /// partitioned into contiguous chunks, tokenized independently into
    /// per-shard dictionaries, and merged in chunk order. Term ids, posting
    /// order and every ranked result are identical to the sequential build
    /// at any thread count.
    pub fn build_threaded(store: &Store, threads: usize) -> Self {
        let mut idx = SearchIndex::new(Bm25Params::default());
        let objects: Vec<ObjectId> = store.objects().collect();
        if objects.is_empty() {
            return idx;
        }
        let workers = threads.max(1).min(objects.len());
        if workers <= 1 {
            idx.absorb(tokenize_shard(store, &objects));
            return idx;
        }
        let chunk = objects.len().div_ceil(workers);
        let shards: Vec<Shard> = std::thread::scope(|scope| {
            let handles: Vec<_> = objects
                .chunks(chunk)
                .map(|c| scope.spawn(move || tokenize_shard(store, c)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("index shard workers do not panic"))
                .collect()
        });
        for shard in shards {
            idx.absorb(shard);
        }
        idx
    }

    /// Intern a term into the global dictionary, growing the posting array.
    fn intern_term(&mut self, term: &str) -> u32 {
        let id = self.dict.intern(term);
        if self.postings.len() <= id as usize {
            self.postings
                .resize_with(id as usize + 1, PostingList::default);
        }
        id
    }

    /// Merge one shard into the index: remap its local term ids (in local
    /// order, so global ids come out exactly as a sequential build would
    /// assign them) and append its documents in order.
    fn absorb(&mut self, shard: Shard) {
        let mut remap: Vec<u32> = Vec::with_capacity(shard.dict.len());
        for lid in 0..shard.dict.len() {
            remap.push(self.intern_term(shard.dict.term(lid as u32)));
        }
        for d in shard.docs {
            debug_assert!(
                !self.doc_of.contains_key(&d.object),
                "absorb expects unseen objects; add_object replaces first"
            );
            let doc = u32::try_from(self.docs.len()).expect("doc slot space exceeded");
            let mut fwd = Vec::with_capacity(d.terms.len());
            for (lid, tf) in d.terms {
                let gid = remap[lid as usize];
                let tf = tf as f32;
                self.postings[gid as usize].push(doc, tf);
                fwd.push((gid, tf));
            }
            let len = d.len as f32;
            self.docs.push(DocEntry {
                object: d.object,
                class: d.class,
                len,
                live: true,
            });
            self.doc_terms.push(fwd);
            self.doc_of.insert(d.object, doc);
            self.live_docs += 1;
            self.total_len += f64::from(len);
        }
    }

    /// Add — or re-add — one object. A re-add *replaces* the object's
    /// document (tombstone + fresh slot), so post-merge re-indexing picks
    /// up pooled surface forms instead of silently keeping the stale ones.
    pub fn add_object(&mut self, store: &Store, obj: ObjectId) {
        let obj = store.resolve(obj);
        self.remove_object(obj);
        self.absorb(tokenize_shard(store, std::slice::from_ref(&obj)));
    }

    /// Tombstone an object's document, if it has one: the doc slot is
    /// marked dead, its length leaves the corpus totals and its postings'
    /// live counts (the df BM25 uses) are retracted immediately. The
    /// posting entries themselves linger until [`SearchIndex::compact`].
    /// Returns whether a document was removed.
    pub fn remove_object(&mut self, obj: ObjectId) -> bool {
        let Some(doc) = self.doc_of.remove(&obj) else {
            return false;
        };
        let entry = &mut self.docs[doc as usize];
        entry.live = false;
        self.total_len -= f64::from(entry.len);
        self.live_docs -= 1;
        for (tid, _) in std::mem::take(&mut self.doc_terms[doc as usize]) {
            self.postings[tid as usize].live -= 1;
        }
        true
    }

    /// Apply a drained batch of store mutation events: merges tombstone
    /// every alias on the loser's chain, and objects whose indexed text
    /// grew (new indexed string attribute, merge winners pooling attrs) are
    /// re-tokenized in place. Ends with an automatic compaction when the
    /// tombstone fraction is high. The result is identical to
    /// [`SearchIndex::build`] over the post-mutation store.
    pub fn apply_events(&mut self, store: &Store, events: &[StoreEvent]) {
        if events.is_empty() {
            return;
        }
        self.apply_calls += 1;
        let model = store.model();
        let mut dirty: Vec<ObjectId> = Vec::new();
        for e in events {
            if let Some(loser) = e.tombstones() {
                // The event may carry a pre-resolution loser; every alias
                // on its chain (in the *final* store state) is dead.
                let mut cur = loser;
                while let Some(next) = store.object_raw(cur).and_then(|o| o.merged_into) {
                    self.remove_object(cur);
                    cur = next;
                }
            }
            if let Some(obj) = e.retokenizes(model) {
                dirty.push(obj);
            }
        }
        for obj in &mut dirty {
            *obj = store.resolve(*obj);
        }
        dirty.sort_unstable();
        dirty.dedup();
        for obj in dirty {
            self.add_object(store, obj);
        }
        self.maybe_compact();
    }

    /// Compact when at least a quarter of the doc slots (and a minimum
    /// worth bothering about) are tombstones.
    fn maybe_compact(&mut self) {
        let dead = self.docs.len() - self.live_docs;
        if dead >= 64 && dead * 4 >= self.docs.len() {
            self.compact();
        }
    }

    /// Drop tombstoned doc slots and their postings, renumbering the
    /// survivors. Purely index-local (no store access): the forward index
    /// of live docs carries everything needed. Per-term `max_tf` bounds are
    /// recomputed exactly, so pruning tightens back up after heavy churn.
    pub fn compact(&mut self) {
        if self.live_docs == self.docs.len() {
            return;
        }
        let mut remap: Vec<u32> = vec![u32::MAX; self.docs.len()];
        let mut new_docs: Vec<DocEntry> = Vec::with_capacity(self.live_docs);
        let mut new_terms: Vec<Vec<(u32, f32)>> = Vec::with_capacity(self.live_docs);
        for (i, slot) in remap.iter_mut().enumerate() {
            if self.docs[i].live {
                *slot = new_docs.len() as u32;
                new_docs.push(self.docs[i]);
                new_terms.push(std::mem::take(&mut self.doc_terms[i]));
            }
        }
        for list in &mut self.postings {
            let mut max_tf = 0.0f32;
            list.postings.retain_mut(|p| {
                let nd = remap[p.doc as usize];
                if nd == u32::MAX {
                    return false;
                }
                p.doc = nd;
                if p.weighted_tf > max_tf {
                    max_tf = p.weighted_tf;
                }
                true
            });
            list.max_tf = max_tf;
            debug_assert_eq!(list.live as usize, list.postings.len());
        }
        self.docs = new_docs;
        self.doc_terms = new_terms;
        self.doc_of = self
            .docs
            .iter()
            .enumerate()
            .map(|(i, d)| (d.object, i as u32))
            .collect();
    }

    /// Number of live indexed documents (objects).
    pub fn doc_count(&self) -> usize {
        self.live_docs
    }

    /// Number of tombstoned doc slots awaiting compaction.
    pub fn dead_doc_count(&self) -> usize {
        self.docs.len() - self.live_docs
    }

    /// How many non-empty event batches [`SearchIndex::apply_events`] has
    /// folded in over this index's lifetime. A batched write path that
    /// coalesces N mutations into one published snapshot must advance this
    /// by exactly one per batch.
    pub fn apply_calls(&self) -> u64 {
        self.apply_calls
    }

    /// Every piece of state the binary sidecar format persists, borrowed.
    /// (`doc_of` is derivable from `docs`; `apply_calls` restarts at zero.)
    #[allow(clippy::type_complexity)]
    pub(crate) fn sidecar_parts(
        &self,
    ) -> (
        &TermDict,
        &[PostingList],
        &[DocEntry],
        &[Vec<(u32, f32)>],
        usize,
        f64,
        Bm25Params,
    ) {
        (
            &self.dict,
            &self.postings,
            &self.docs,
            &self.doc_terms,
            self.live_docs,
            self.total_len,
            self.params,
        )
    }

    /// Reassemble an index from decoded sidecar state: `doc_of` is rebuilt
    /// from the live doc slots, `apply_calls` restarts at zero.
    pub(crate) fn from_sidecar_parts(
        dict: TermDict,
        postings: Vec<PostingList>,
        docs: Vec<DocEntry>,
        doc_terms: Vec<Vec<(u32, f32)>>,
        live_docs: usize,
        total_len: f64,
        params: Bm25Params,
    ) -> Self {
        let doc_of = docs
            .iter()
            .enumerate()
            .filter(|(_, d)| d.live)
            .map(|(i, d)| (d.object, i as u32))
            .collect();
        SearchIndex {
            dict,
            postings,
            docs,
            doc_terms,
            doc_of,
            live_docs,
            total_len,
            params,
            apply_calls: 0,
        }
    }

    /// Number of distinct terms with at least one live posting.
    pub fn term_count(&self) -> usize {
        self.postings.iter().filter(|l| l.live > 0).count()
    }

    /// Document frequency of a term (live documents only).
    pub fn df(&self, term: &str) -> usize {
        self.dict
            .lookup(term)
            .map_or(0, |id| self.postings[id as usize].live as usize)
    }

    /// Average live-document length (0 when the index is empty). Stays
    /// equal to a fresh build's average across tombstones: lengths are
    /// integer-valued, so incremental retraction is exact.
    pub fn avg_doc_len(&self) -> f64 {
        if self.live_docs == 0 {
            0.0
        } else {
            self.total_len / self.live_docs as f64
        }
    }

    /// Run a parsed query, returning the top `k` hits ranked by BM25 with
    /// an all-terms boost. The class filter (if any) is resolved against
    /// the store's model.
    ///
    /// This is the pruned MaxScore evaluator: per-term impact bounds let it
    /// skip documents that cannot reach the current top-k floor. Results
    /// are identical — scores included — to
    /// [`SearchIndex::search_exhaustive`].
    pub fn search(&self, store: &Store, query: &Query, k: usize) -> Vec<Hit> {
        crate::topk::search_pruned(self, store, query, k)
    }

    /// The reference scorer: score every posting of every query term, sort,
    /// truncate. Kept as the oracle the pruned path is verified against
    /// (equivalence tests, benches).
    pub fn search_exhaustive(&self, store: &Store, query: &Query, k: usize) -> Vec<Hit> {
        if query.is_empty() || self.live_docs == 0 || k == 0 {
            return Vec::new();
        }
        let class_filter: Option<ClassId> = query
            .class_filter
            .as_deref()
            .and_then(|name| store.model().class(name));
        if query.class_filter.is_some() && class_filter.is_none() {
            return Vec::new(); // unknown class matches nothing
        }
        let n = self.live_docs;
        let avg_dl = self.total_len / n as f64;
        let mut scores: HashMap<u32, (f64, usize)> = HashMap::new();
        for term in &query.terms {
            let Some(tid) = self.dict.lookup(term) else {
                continue;
            };
            let list = &self.postings[tid as usize];
            let df = list.live as usize;
            if df == 0 {
                continue;
            }
            for p in &list.postings {
                let d = &self.docs[p.doc as usize];
                if !d.live {
                    continue;
                }
                let s =
                    self.params
                        .score(f64::from(p.weighted_tf), df, n, f64::from(d.len), avg_dl);
                let e = scores.entry(p.doc).or_insert((0.0, 0));
                e.0 += s;
                e.1 += 1;
            }
        }
        let n_terms = query.terms.len();
        let mut hits: Vec<Hit> = scores
            .into_iter()
            .filter(|(doc, _)| {
                class_filter
                    .map(|c| self.docs[*doc as usize].class == c)
                    .unwrap_or(true)
            })
            .map(|(doc, (mut score, matched))| {
                if matched == n_terms && n_terms > 1 {
                    score *= self.params.all_terms_boost;
                }
                Hit {
                    object: self.docs[doc as usize].object,
                    score,
                    matched_terms: matched,
                }
            })
            .collect();
        hits.sort_by(|a, b| b.score.total_cmp(&a.score).then(a.object.cmp(&b.object)));
        hits.truncate(k);
        hits
    }

    /// Convenience: parse and run a query string (pruned evaluator).
    pub fn search_str(&self, store: &Store, query: &str, k: usize) -> Vec<Hit> {
        self.search(store, &Query::parse(query), k)
    }

    /// Convenience: parse and run a query string through the reference
    /// scorer.
    pub fn search_str_exhaustive(&self, store: &Store, query: &str, k: usize) -> Vec<Hit> {
        self.search_exhaustive(store, &Query::parse(query), k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use semex_model::names::class;
    use semex_model::Value;
    use semex_store::{SourceInfo, SourceKind};

    fn sample_store() -> Store {
        let mut st = Store::with_builtin_model();
        let _ = st.register_source(SourceInfo::new("t", SourceKind::Synthetic));
        let model = st.model();
        let person = model.class(class::PERSON).unwrap();
        let publication = model.class(class::PUBLICATION).unwrap();
        let message = model.class(class::MESSAGE).unwrap();
        let a_name = model.attr(attr::NAME).unwrap();
        let a_email = model.attr(attr::EMAIL).unwrap();
        let a_title = model.attr(attr::TITLE).unwrap();
        let a_subject = model.attr(attr::SUBJECT).unwrap();
        let a_body = model.attr(attr::BODY).unwrap();

        let p1 = st.add_object(person);
        st.add_attr(p1, a_name, Value::from("Xin Luna Dong"))
            .unwrap();
        st.add_attr(p1, a_email, Value::from("luna@cs.example.edu"))
            .unwrap();
        let p2 = st.add_object(person);
        st.add_attr(p2, a_name, Value::from("Alon Halevy")).unwrap();

        let pb = st.add_object(publication);
        st.add_attr(
            pb,
            a_title,
            Value::from("Reference Reconciliation in Complex Information Spaces"),
        )
        .unwrap();

        let m = st.add_object(message);
        st.add_attr(m, a_subject, Value::from("reconciliation demo"))
            .unwrap();
        st.add_attr(
            m,
            a_body,
            Value::from("long body mentioning reconciliation and more reconciliation text about the demo session"),
        )
        .unwrap();
        st
    }

    #[test]
    fn finds_objects_by_any_field() {
        let st = sample_store();
        let idx = SearchIndex::build(&st);
        assert_eq!(idx.doc_count(), 4);
        let hits = idx.search_str(&st, "luna", 10);
        assert_eq!(hits.len(), 1);
        let hits = idx.search_str(&st, "luna@cs.example.edu", 10);
        assert_eq!(hits.len(), 1);
        let hits = idx.search_str(&st, "reconciliation", 10);
        assert_eq!(hits.len(), 2, "publication and message");
    }

    #[test]
    fn identity_fields_outrank_bodies() {
        let st = sample_store();
        let idx = SearchIndex::build(&st);
        let hits = idx.search_str(&st, "reconciliation", 10);
        // The publication (title field, weight 3) must outrank the message
        // despite the message's higher raw term frequency in the body.
        let model = st.model();
        let top_class = st.object(hits[0].object).class;
        assert_eq!(model.class_def(top_class).name, class::PUBLICATION);
    }

    #[test]
    fn class_filter() {
        let st = sample_store();
        let idx = SearchIndex::build(&st);
        let hits = idx.search_str(&st, "class:Message reconciliation", 10);
        assert_eq!(hits.len(), 1);
        let hits = idx.search_str(&st, "class:Venue reconciliation", 10);
        assert!(hits.is_empty());
        let hits = idx.search_str(&st, "class:Bogus reconciliation", 10);
        assert!(hits.is_empty());
    }

    #[test]
    fn all_terms_boost_orders_results() {
        let st = sample_store();
        let idx = SearchIndex::build(&st);
        let hits = idx.search_str(&st, "reconciliation demo", 10);
        assert!(hits.len() >= 2);
        // The message matches both terms; the publication only one.
        assert_eq!(hits[0].matched_terms, 2);
        let model = st.model();
        assert_eq!(
            model.class_def(st.object(hits[0].object).class).name,
            class::MESSAGE
        );
    }

    #[test]
    fn empty_query_and_k_truncation() {
        let st = sample_store();
        let idx = SearchIndex::build(&st);
        assert!(idx.search_str(&st, "", 10).is_empty());
        assert!(idx.search_str(&st, "the of", 10).is_empty());
        assert!(idx.search_str(&st, "reconciliation", 0).is_empty());
        let hits = idx.search_str(&st, "reconciliation", 1);
        assert_eq!(hits.len(), 1);
    }

    #[test]
    fn merged_objects_are_single_documents() {
        let mut st = sample_store();
        let model = st.model();
        let person = model.class(class::PERSON).unwrap();
        let a_name = model.attr(attr::NAME).unwrap();
        let p3 = st.add_object(person);
        st.add_attr(p3, a_name, Value::from("X. Dong")).unwrap();
        let p1 = st.objects_of_class(person).next().unwrap();
        st.merge(p1, p3).unwrap();
        let idx = SearchIndex::build(&st);
        let hits = idx.search_str(&st, "dong", 10);
        assert_eq!(hits.len(), 1, "one merged person document");
    }

    #[test]
    fn stats_accessors() {
        let st = sample_store();
        let idx = SearchIndex::build(&st);
        assert!(idx.term_count() > 5);
        assert_eq!(idx.df("reconciliation"), 2);
        assert_eq!(idx.df("nonexistentterm"), 0);
        assert_eq!(idx.dead_doc_count(), 0);
        assert!(idx.avg_doc_len() > 0.0);
    }

    #[test]
    fn threaded_build_matches_sequential() {
        let st = sample_store();
        let seq = SearchIndex::build(&st);
        let par = SearchIndex::build_threaded(&st, 3);
        assert_eq!(seq.doc_count(), par.doc_count());
        assert_eq!(seq.term_count(), par.term_count());
        for q in ["reconciliation demo", "luna dong", "class:Person dong"] {
            assert_eq!(
                seq.search_str(&st, q, 10),
                par.search_str(&st, q, 10),
                "{q}"
            );
        }
    }

    #[test]
    fn pruned_matches_exhaustive_on_samples() {
        let st = sample_store();
        let idx = SearchIndex::build(&st);
        for q in [
            "reconciliation",
            "reconciliation demo",
            "class:Message reconciliation demo",
            "luna@cs.example.edu",
            "dong halevy reconciliation",
            "missingterm reconciliation",
        ] {
            for k in [1, 2, 10] {
                assert_eq!(
                    idx.search_str(&st, q, k),
                    idx.search_str_exhaustive(&st, q, k),
                    "query {q:?} k {k}"
                );
            }
        }
    }

    /// Satellite regression: equal scores must tie-break on ascending
    /// object id, under both evaluators (`total_cmp` ordering).
    #[test]
    fn equal_scores_tie_break_on_object_id() {
        let mut st = Store::with_builtin_model();
        let person = st.model().class(class::PERSON).unwrap();
        let a_name = st.model().attr(attr::NAME).unwrap();
        let mut ids = Vec::new();
        for _ in 0..5 {
            let p = st.add_object(person);
            st.add_attr(p, a_name, Value::from("Twin Smith")).unwrap();
            ids.push(p);
        }
        let idx = SearchIndex::build(&st);
        let hits = idx.search_str(&st, "twin", 5);
        assert_eq!(hits.len(), 5);
        let order: Vec<ObjectId> = hits.iter().map(|h| h.object).collect();
        assert_eq!(order, ids, "identical scores sort by object id");
        assert!(hits.windows(2).all(|w| w[0].score == w[1].score));
        // Truncation keeps the smallest ids, in both evaluators.
        let top2 = idx.search_str(&st, "twin", 2);
        assert_eq!(top2, idx.search_str_exhaustive(&st, "twin", 2));
        assert_eq!(top2[0].object, ids[0]);
        assert_eq!(top2[1].object, ids[1]);
    }

    /// Satellite regression: re-adding an object replaces its document
    /// instead of silently keeping the stale one.
    #[test]
    fn re_add_replaces_document() {
        let mut st = Store::with_builtin_model();
        let person = st.model().class(class::PERSON).unwrap();
        let a_name = st.model().attr(attr::NAME).unwrap();
        let a_email = st.model().attr(attr::EMAIL).unwrap();
        let p = st.add_object(person);
        st.add_attr(p, a_name, Value::from("Ann Example")).unwrap();
        let mut idx = SearchIndex::new(Bm25Params::default());
        idx.add_object(&st, p);
        assert_eq!(idx.doc_count(), 1);
        assert!(idx.search_str(&st, "ann", 5).len() == 1);

        st.add_attr(p, a_email, Value::from("ann@z.example"))
            .unwrap();
        idx.add_object(&st, p);
        assert_eq!(idx.doc_count(), 1, "replaced, not duplicated");
        assert_eq!(idx.search_str(&st, "ann@z.example", 5).len(), 1);
        assert_eq!(idx.df("ann"), 1, "stale posting retracted from df");
    }

    /// Satellite regression: merged-away objects leave the corpus totals —
    /// `avg_doc_len` must match a fresh build once deletions exist.
    #[test]
    fn removal_maintains_lengths_and_counts() {
        let st = sample_store();
        let mut idx = SearchIndex::build(&st);
        let message = st.model().class(class::MESSAGE).unwrap();
        let m = st.objects_of_class(message).next().unwrap();
        assert!(idx.remove_object(m));
        assert!(!idx.remove_object(m), "second removal is a no-op");
        assert_eq!(idx.doc_count(), 3);
        assert_eq!(idx.dead_doc_count(), 1);
        assert_eq!(idx.df("reconciliation"), 1, "df excludes the tombstone");

        // The oracle: an index built without the message at all.
        let mut st2 = Store::with_builtin_model();
        let person = st2.model().class(class::PERSON).unwrap();
        let publication = st2.model().class(class::PUBLICATION).unwrap();
        let a_name = st2.model().attr(attr::NAME).unwrap();
        let a_email = st2.model().attr(attr::EMAIL).unwrap();
        let a_title = st2.model().attr(attr::TITLE).unwrap();
        let p1 = st2.add_object(person);
        st2.add_attr(p1, a_name, Value::from("Xin Luna Dong"))
            .unwrap();
        st2.add_attr(p1, a_email, Value::from("luna@cs.example.edu"))
            .unwrap();
        let p2 = st2.add_object(person);
        st2.add_attr(p2, a_name, Value::from("Alon Halevy"))
            .unwrap();
        let pb = st2.add_object(publication);
        st2.add_attr(
            pb,
            a_title,
            Value::from("Reference Reconciliation in Complex Information Spaces"),
        )
        .unwrap();
        let fresh = SearchIndex::build(&st2);
        assert_eq!(idx.avg_doc_len(), fresh.avg_doc_len());
        let a = idx.search_str(&st, "reconciliation", 10);
        let b = fresh.search_str(&st2, "reconciliation", 10);
        assert_eq!(a.len(), b.len());
        assert_eq!(a[0].score, b[0].score, "scores agree across tombstones");
    }

    /// Satellite regression: event-driven maintenance re-indexes merge
    /// winners, so pooled surface forms become searchable.
    #[test]
    fn merge_events_reindex_winner() {
        let mut st = sample_store();
        st.enable_events();
        let person = st.model().class(class::PERSON).unwrap();
        let a_name = st.model().attr(attr::NAME).unwrap();
        let mut idx = SearchIndex::build(&st);
        st.take_events(); // the index already covers the base store

        let p3 = st.add_object(person);
        st.add_attr(p3, a_name, Value::from("Luna D. Zyzzx"))
            .unwrap();
        let p1 = st.objects_of_class(person).next().unwrap();
        st.merge(p1, p3).unwrap();
        let events = st.take_events();
        idx.apply_events(&st, &events);

        assert_eq!(idx.doc_count(), 4, "loser tombstoned, winner re-indexed");
        let hits = idx.search_str(&st, "zyzzx", 10);
        assert_eq!(hits.len(), 1, "pooled surface form is searchable");
        assert_eq!(hits[0].object, st.resolve(p1));
        // Byte-identical to a from-scratch build.
        let rebuilt = SearchIndex::build(&st);
        for q in ["dong", "zyzzx", "reconciliation demo", "class:Person luna"] {
            assert_eq!(
                idx.search_str(&st, q, 10),
                rebuilt.search_str(&st, q, 10),
                "{q}"
            );
        }
        assert_eq!(idx.doc_count(), rebuilt.doc_count());
        assert_eq!(idx.term_count(), rebuilt.term_count());
        assert_eq!(idx.avg_doc_len(), rebuilt.avg_doc_len());
    }

    #[test]
    fn compaction_preserves_results() {
        let mut st = Store::with_builtin_model();
        let person = st.model().class(class::PERSON).unwrap();
        let a_name = st.model().attr(attr::NAME).unwrap();
        let mut ids = Vec::new();
        for i in 0..40 {
            let p = st.add_object(person);
            st.add_attr(p, a_name, Value::from(format!("Person{i} Shared").as_str()))
                .unwrap();
            ids.push(p);
        }
        let mut idx = SearchIndex::build(&st);
        for p in ids.iter().skip(20) {
            idx.remove_object(*p);
        }
        let before = idx.search_str(&st, "shared person5", 10);
        assert_eq!(idx.dead_doc_count(), 20);
        idx.compact();
        assert_eq!(idx.dead_doc_count(), 0);
        assert_eq!(idx.doc_count(), 20);
        let after = idx.search_str(&st, "shared person5", 10);
        assert_eq!(before, after, "compaction never changes results");
        assert_eq!(idx.df("shared"), 20);
        assert_eq!(idx.df("person25"), 0, "dead term has no live postings");
    }
}
