/root/repo/target/debug/deps/criterion-64791e9881759021.d: third_party/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-64791e9881759021.rmeta: third_party/criterion/src/lib.rs

third_party/criterion/src/lib.rs:
