//! Typed path steps: the algebra the engine executes.
//!
//! A path query is a start set plus a sequence of [`Step`]s. Every step
//! maps a *frontier* (a sorted, deduplicated, alias-resolved set of
//! objects) to a new frontier, so steps compose freely: hops traverse
//! associations, constraints and filters shrink the frontier in place,
//! and the structured steps ([`Step::Union`], [`Step::Optional`],
//! [`Step::Repeat`]) combine sub-paths.

use semex_model::{AssocId, AttrId, ClassId};

/// Direction of an association hop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dir {
    /// Follow the association from subject to object (`->`).
    Forward,
    /// Follow the association from object back to subject (`<-`).
    Inverse,
}

/// An attribute predicate applied to every object in the frontier.
#[derive(Debug, Clone, PartialEq)]
pub enum Filter {
    /// Keep objects where some value of the attribute renders exactly to
    /// the given string (numbers and dates use their display rendering).
    AttrEq(AttrId, String),
    /// Keep objects where some value of the attribute contains the needle,
    /// case-insensitively.
    AttrContains(AttrId, String),
    /// Keep objects where some `Int` or `Date` value of the attribute lies
    /// in the inclusive range; an open bound is `None`. This is the
    /// time-window filter (`Date` values are epoch seconds).
    Range {
        /// Attribute holding the numeric or date value.
        attr: AttrId,
        /// Inclusive lower bound, if any.
        min: Option<i64>,
        /// Inclusive upper bound, if any.
        max: Option<i64>,
    },
}

/// One step of an association path.
#[derive(Debug, Clone, PartialEq)]
pub enum Step {
    /// Traverse an association in one direction. `fanout`, when set,
    /// bounds how many neighbours each frontier object contributes (the
    /// first `fanout` in stored — hence deterministic — order).
    Hop {
        /// Direction of traversal.
        dir: Dir,
        /// The association to traverse.
        assoc: AssocId,
        /// Per-source expansion bound; `None` means unbounded.
        fanout: Option<usize>,
    },
    /// Keep only instances of the given class.
    Class(ClassId),
    /// Keep only objects passing the predicate.
    Filter(Filter),
    /// Evaluate every branch from the current frontier and union the
    /// results.
    Union(Vec<Vec<Step>>),
    /// Union of the current frontier with the branch applied to it — the
    /// branch's matches are added, objects without matches survive.
    Optional(Vec<Step>),
    /// Bounded transitive closure: apply the body up to `max_depth` times
    /// breadth-first, accumulating every *newly* reached object. A visited
    /// set is the cycle guard — no object is expanded twice, so cyclic
    /// graphs (citation loops, reply chains) terminate. The start frontier
    /// is pre-seeded into the visited set, so it is never part of the
    /// result: `Repeat` is strictly "what the closure reaches", mirroring
    /// the irreflexive reading of derived associations.
    Repeat {
        /// The path body applied at each depth.
        steps: Vec<Step>,
        /// Maximum number of applications (≥ 1).
        max_depth: usize,
    },
}

impl Step {
    /// An unbounded hop.
    pub fn hop(dir: Dir, assoc: AssocId) -> Step {
        Step::Hop {
            dir,
            assoc,
            fanout: None,
        }
    }

    /// A forward hop.
    pub fn forward(assoc: AssocId) -> Step {
        Step::hop(Dir::Forward, assoc)
    }

    /// An inverse hop.
    pub fn inverse(assoc: AssocId) -> Step {
        Step::hop(Dir::Inverse, assoc)
    }
}
