/root/repo/target/debug/deps/experiments-a8e4dcc771ddf966.d: crates/bench/src/bin/experiments.rs

/root/repo/target/debug/deps/experiments-a8e4dcc771ddf966: crates/bench/src/bin/experiments.rs

crates/bench/src/bin/experiments.rs:
