/root/repo/target/debug/deps/malleable_model-8ad1630fdf02ea81.d: tests/malleable_model.rs

/root/repo/target/debug/deps/libmalleable_model-8ad1630fdf02ea81.rmeta: tests/malleable_model.rs

tests/malleable_model.rs:
