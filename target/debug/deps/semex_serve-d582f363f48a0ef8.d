/root/repo/target/debug/deps/semex_serve-d582f363f48a0ef8.d: crates/serve/src/lib.rs crates/serve/src/json.rs crates/serve/src/protocol.rs crates/serve/src/client.rs crates/serve/src/server.rs crates/serve/src/writer.rs

/root/repo/target/debug/deps/libsemex_serve-d582f363f48a0ef8.rlib: crates/serve/src/lib.rs crates/serve/src/json.rs crates/serve/src/protocol.rs crates/serve/src/client.rs crates/serve/src/server.rs crates/serve/src/writer.rs

/root/repo/target/debug/deps/libsemex_serve-d582f363f48a0ef8.rmeta: crates/serve/src/lib.rs crates/serve/src/json.rs crates/serve/src/protocol.rs crates/serve/src/client.rs crates/serve/src/server.rs crates/serve/src/writer.rs

crates/serve/src/lib.rs:
crates/serve/src/json.rs:
crates/serve/src/protocol.rs:
crates/serve/src/client.rs:
crates/serve/src/server.rs:
crates/serve/src/writer.rs:
