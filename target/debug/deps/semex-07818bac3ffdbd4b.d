/root/repo/target/debug/deps/semex-07818bac3ffdbd4b.d: src/lib.rs

/root/repo/target/debug/deps/semex-07818bac3ffdbd4b: src/lib.rs

src/lib.rs:
