#!/usr/bin/env bash
# Tier-1 gate: formatting, lints, and the full test suite.
# Run from anywhere; operates on the repository root.
set -euo pipefail

cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (all targets, warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test"
cargo test -q --workspace

echo "==> durability fault sweep (a fault injected at every journal I/O op,"
echo "    swept once per snapshot format: JSON and binary)"
cargo test -q -p semex-journal --test fault_sweep -- --nocapture

echo "==> binary snapshot suite (round trips, format migration, epoch fallback"
echo "    on damage, and JSON/binary dual-read equivalence)"
cargo test -q -p semex-journal --test binary_format
cargo test -q --test format_equiv

echo "==> decoder fuzz (hostile bytes -> typed errors, never panics; arbitrary"
echo "    stores and indexes round-trip byte-identically)"
cargo test -q -p semex-store --test binary_fuzz_prop
cargo test -q -p semex-index --test sidecar_fuzz_prop

echo "==> index equivalence suite (parallel/incremental/pruned vs oracle)"
cargo test -q -p semex-index --test index_equiv_prop
cargo test -q -p semex-index --lib search::tests

echo "==> serve smoke (live server on an ephemeral port: every request variant,"
echo "    overload shedding, clean shutdown with zero leaked threads)"
cargo test -q -p semex-serve --test smoke
cargo test -q -p semex-serve --test shutdown

echo "==> tenancy suite (isolation over sockets, version handshake, budget"
echo "    eviction, and evict/reactivate equivalence vs a never-evicted twin)"
cargo test -q -p semex-serve --test tenants
cargo test -q -p semex-serve --test eviction_equiv

echo "==> cache equivalence suite (cached server vs cacheless twin: identical"
echo "    answers under random writes/reads/evictions, byte-identical frames,"
echo "    and the 8-reader miss herd collapsing to one evaluation)"
cargo test -q -p semex-serve --test cache_equiv_prop

echo "==> e14 smoke (multi-tenant serving at CI scale -> BENCH_tenants.json)"
cargo run --release -q -p semex-bench --bin experiments -- e14-smoke

echo "==> e15 smoke (binary vs JSON cold opens at CI scale -> BENCH_snapshot.json)"
cargo run --release -q -p semex-bench --bin experiments -- e15-smoke

echo "==> e16 smoke (read-cache hit rate, latency, and coalescing at CI scale"
echo "    -> BENCH_cache.json)"
cargo run --release -q -p semex-bench --bin experiments -- e16-smoke

echo "==> cluster fault sweep (primary crashed at every journal I/O op and every"
echo "    replication-stream send; promotion must land on an acked boundary, and"
echo "    follower reads must be byte-identical to the primary at equal epochs)"
cargo test -q -p semex-replica --test cluster_sweep -- --nocapture
cargo test -q -p semex-replica --test replica_e2e

echo "==> e17 smoke (1 primary + 1 follower over sockets: catch-up, byte-identical"
echo "    replica reads, synchronous write-ack cost -> BENCH_replica.json)"
cargo run --release -q -p semex-bench --bin experiments -- e17-smoke

echo "==> query equivalence suite (path engine vs brute-force reference at every"
echo "    thread count, cursor pages stitching to the unpaginated run, engine-side"
echo "    joins vs the original browser, and the three-hop wire query with"
echo "    resumable cursors and typed errors)"
cargo test -q -p semex-query --test query_equiv_prop
cargo test -q -p semex-serve --test path_query
cargo test -q -p semex-serve --test protocol_prop

echo "==> e18 smoke (path-query latency vs size/hops, thread scaling, and the"
echo "    over-the-wire cache uplift at CI scale -> BENCH_query.json)"
cargo run --release -q -p semex-bench --bin experiments -- e18-smoke

echo "==> cargo doc (no deps, warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "==> cargo bench --no-run (benches must keep compiling)"
cargo bench --workspace --no-run

echo "==> OK"
