/root/repo/target/debug/deps/serde_derive-9efd8abec932a211.d: third_party/serde_derive/src/lib.rs

/root/repo/target/debug/deps/libserde_derive-9efd8abec932a211.so: third_party/serde_derive/src/lib.rs

third_party/serde_derive/src/lib.rs:
