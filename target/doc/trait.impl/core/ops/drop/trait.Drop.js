(function() {
    const implementors = Object.fromEntries([["semex_tenant",[["impl&lt;J&gt; <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/ops/drop/trait.Drop.html\" title=\"trait core::ops::drop::Drop\">Drop</a> for <a class=\"struct\" href=\"semex_tenant/struct.InflightPermit.html\" title=\"struct semex_tenant::InflightPermit\">InflightPermit</a>&lt;J&gt;",0]]]]);
    if (window.register_implementors) {
        window.register_implementors(implementors);
    } else {
        window.pending_implementors = implementors;
    }
})()
//{"start":59,"fragment_lengths":[323]}