/root/repo/target/debug/examples/email_triage-7624596b133c67ff.d: examples/email_triage.rs

/root/repo/target/debug/examples/email_triage-7624596b133c67ff: examples/email_triage.rs

examples/email_triage.rs:
