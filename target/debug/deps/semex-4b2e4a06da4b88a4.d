/root/repo/target/debug/deps/semex-4b2e4a06da4b88a4.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libsemex-4b2e4a06da4b88a4.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
