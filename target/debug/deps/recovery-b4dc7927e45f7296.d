/root/repo/target/debug/deps/recovery-b4dc7927e45f7296.d: crates/journal/tests/recovery.rs Cargo.toml

/root/repo/target/debug/deps/librecovery-b4dc7927e45f7296.rmeta: crates/journal/tests/recovery.rs Cargo.toml

crates/journal/tests/recovery.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
