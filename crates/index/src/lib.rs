#![warn(missing_docs)]

//! Keyword search over SEMEX objects.
//!
//! SEMEX search is *object-centric*: a query returns ranked domain objects
//! (people, publications, messages, files…), not documents. The index is a
//! from-scratch inverted index over every indexed string attribute of every
//! live object, with BM25 ranking, field weighting (a hit in a `name` or
//! `title` outweighs a hit deep in a message body), conjunctive boosting
//! (objects matching *all* query terms rank above partial matches) and an
//! optional class filter (`class:Person luna`).

mod bm25;
mod query;
mod search;
mod tokenizer;

pub use bm25::Bm25Params;
pub use query::Query;
pub use search::{Hit, SearchIndex};
pub use tokenizer::{index_tokens, STOPWORDS};
