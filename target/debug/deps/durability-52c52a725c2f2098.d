/root/repo/target/debug/deps/durability-52c52a725c2f2098.d: tests/durability.rs

/root/repo/target/debug/deps/libdurability-52c52a725c2f2098.rmeta: tests/durability.rs

tests/durability.rs:
