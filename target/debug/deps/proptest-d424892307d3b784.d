/root/repo/target/debug/deps/proptest-d424892307d3b784.d: third_party/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-d424892307d3b784.rlib: third_party/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-d424892307d3b784.rmeta: third_party/proptest/src/lib.rs

third_party/proptest/src/lib.rs:
