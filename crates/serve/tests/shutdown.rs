//! The graceful-shutdown durability contract.
//!
//! - Every write acked before shutdown is journal-committed: a fresh
//!   `open_durable` recovery finds it.
//! - Writes that were queued but unacked when shutdown began are answered
//!   with a typed `shutting_down` error — never silently dropped — and are
//!   *not* in the recovered store.
//! - During the drain, admitted connections keep getting read service,
//!   while new writes on them are deterministically rejected.
//! - `join` returns only after every thread is finished: nothing leaks.

use semex_core::{JournalConfig, Semex, SemexConfig};
use semex_serve::protocol::{ErrorKindWire, IngestFormat, Request, Response};
use semex_serve::{serve, Client, Master, ServeConfig};
use std::thread;
use std::time::Duration;

fn ingest(name: &str, content: String) -> Request {
    Request::Ingest {
        format: IngestFormat::Mbox,
        name: name.into(),
        content,
    }
}

/// Whether a token is findable after recovering the journal directory.
fn recovered_has(dir: &std::path::Path, cfg: &JournalConfig, tokens: &[(&str, bool)]) {
    let (recovered, report) =
        Semex::open_durable_with(dir, SemexConfig::default(), cfg.clone()).unwrap();
    assert!(report.damage.is_none(), "{report:?}");
    for (tok, expected) in tokens {
        assert_eq!(
            !recovered.search(tok, 3).is_empty(),
            *expected,
            "token {tok:?} — acked writes must be recoverable, rejected ones absent"
        );
    }
}

#[test]
fn acked_writes_recover_and_unacked_queued_writes_are_rejected() {
    let dir = std::env::temp_dir().join(format!("semex-serve-shutdown-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let journal_cfg = JournalConfig {
        fsync: false,
        ..JournalConfig::default()
    };
    let (durable, report) =
        Semex::open_durable_with(&dir, SemexConfig::default(), journal_cfg.clone()).unwrap();
    assert!(report.initialized);

    let config = ServeConfig {
        threads: 3,
        ..ServeConfig::default()
    };
    let handle = serve(Master::Durable(durable), "127.0.0.1:0", config).unwrap();
    let addr = handle.addr();

    // 1. A write acked well before shutdown.
    let mut session = Client::connect(addr).unwrap();
    let acked_epoch = match session
        .request(&ingest(
            "first",
            "From: a@pre.example\nSubject: ackedword\n\nbody".into(),
        ))
        .unwrap()
    {
        Response::Ingested { epoch, .. } => epoch,
        other => panic!("unexpected response: {other:?}"),
    };
    assert!(acked_epoch > 0);

    // 2. A deliberately slow write occupies the writer thread...
    let slow = thread::spawn(move || {
        let mut client = Client::connect(addr).unwrap();
        let mbox: String = (0..250)
            .map(|i| format!("From: p{i}@slow.example\nSubject: slowword\n\nbody {i}\n\n"))
            .collect();
        client.request(&ingest("slow", mbox)).unwrap()
    });
    thread::sleep(Duration::from_millis(30));
    // ...so this one queues behind it, unacked...
    let queued = thread::spawn(move || {
        let mut client = Client::connect(addr).unwrap();
        client
            .request(&ingest(
                "queued",
                "From: q@late.example\nSubject: queuedword\n\nbody".into(),
            ))
            .unwrap()
    });
    thread::sleep(Duration::from_millis(10));
    // ...when shutdown begins.
    handle.shutdown();

    // 3. During the drain, the admitted session still gets reads served —
    //    and its new writes are deterministically rejected with the typed
    //    error (the write was NOT applied).
    match session.request(&Request::Stats).unwrap() {
        Response::Stats { .. } => {}
        other => panic!("reads must drain through shutdown: {other:?}"),
    }
    match session
        .request(&ingest(
            "late",
            "From: z@late.example\nSubject: lateword\n\nbody".into(),
        ))
        .unwrap()
    {
        Response::Error {
            kind: ErrorKindWire::ShuttingDown,
            ..
        } => {}
        other => panic!("post-shutdown writes must be rejected, got: {other:?}"),
    }

    // 4. The raced writes each got a definitive, typed answer: either an
    //    acked epoch (then the write is durable) or shutting_down (then it
    //    was never applied). Nothing hangs, nothing is dropped.
    let slow_response = slow.join().unwrap();
    let queued_response = queued.join().unwrap();
    let verdict = |response: &Response| match response {
        Response::Ingested { epoch, .. } => {
            assert!(*epoch > 0);
            true
        }
        Response::Error {
            kind: ErrorKindWire::ShuttingDown,
            ..
        } => false,
        other => panic!("a raced write must ack or reject, got: {other:?}"),
    };
    let slow_acked = verdict(&slow_response);
    let queued_acked = verdict(&queued_response);

    drop(session);
    let report = handle.join(); // joins every thread — nothing leaks
    assert_eq!(
        report.writer.writes_ok,
        1 + [slow_acked, queued_acked].iter().filter(|a| **a).count() as u64,
        "every ack corresponds to exactly one applied write: {report:?}"
    );

    // 5. Recovery sees exactly the acked writes.
    recovered_has(
        &dir,
        &journal_cfg,
        &[
            ("ackedword", true),
            ("slowword", slow_acked),
            ("queuedword", queued_acked),
            ("lateword", false),
        ],
    );
    std::fs::remove_dir_all(&dir).ok();
}
