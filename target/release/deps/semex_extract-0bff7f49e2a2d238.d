/root/repo/target/release/deps/semex_extract-0bff7f49e2a2d238.d: crates/extract/src/lib.rs crates/extract/src/bibtex.rs crates/extract/src/context.rs crates/extract/src/csv.rs crates/extract/src/date.rs crates/extract/src/email.rs crates/extract/src/fswalk.rs crates/extract/src/html.rs crates/extract/src/ical.rs crates/extract/src/latex.rs crates/extract/src/vcard.rs

/root/repo/target/release/deps/libsemex_extract-0bff7f49e2a2d238.rlib: crates/extract/src/lib.rs crates/extract/src/bibtex.rs crates/extract/src/context.rs crates/extract/src/csv.rs crates/extract/src/date.rs crates/extract/src/email.rs crates/extract/src/fswalk.rs crates/extract/src/html.rs crates/extract/src/ical.rs crates/extract/src/latex.rs crates/extract/src/vcard.rs

/root/repo/target/release/deps/libsemex_extract-0bff7f49e2a2d238.rmeta: crates/extract/src/lib.rs crates/extract/src/bibtex.rs crates/extract/src/context.rs crates/extract/src/csv.rs crates/extract/src/date.rs crates/extract/src/email.rs crates/extract/src/fswalk.rs crates/extract/src/html.rs crates/extract/src/ical.rs crates/extract/src/latex.rs crates/extract/src/vcard.rs

crates/extract/src/lib.rs:
crates/extract/src/bibtex.rs:
crates/extract/src/context.rs:
crates/extract/src/csv.rs:
crates/extract/src/date.rs:
crates/extract/src/email.rs:
crates/extract/src/fswalk.rs:
crates/extract/src/html.rs:
crates/extract/src/ical.rs:
crates/extract/src/latex.rs:
crates/extract/src/vcard.rs:
