/root/repo/target/debug/examples/quickstart-051e304f43aa3bb5.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-051e304f43aa3bb5.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
