/root/repo/target/debug/examples/research_browser-11311ff5d0488c88.d: examples/research_browser.rs Cargo.toml

/root/repo/target/debug/examples/libresearch_browser-11311ff5d0488c88.rmeta: examples/research_browser.rs Cargo.toml

examples/research_browser.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
