/root/repo/target/debug/deps/framing_prop-257e6dea73ebb249.d: crates/journal/tests/framing_prop.rs

/root/repo/target/debug/deps/framing_prop-257e6dea73ebb249: crates/journal/tests/framing_prop.rs

crates/journal/tests/framing_prop.rs:
