/root/repo/target/debug/deps/demo_scenarios-69841df47245bd0c.d: tests/demo_scenarios.rs tests/common/mod.rs

/root/repo/target/debug/deps/libdemo_scenarios-69841df47245bd0c.rmeta: tests/demo_scenarios.rs tests/common/mod.rs

tests/demo_scenarios.rs:
tests/common/mod.rs:
