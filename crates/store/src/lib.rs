#![warn(missing_docs)]

//! The SEMEX **association database**.
//!
//! All extracted and reconciled personal information lives here: *objects*
//! (instances of domain-model classes) carrying multi-valued attributes, and
//! *association triples* `(subject, assoc, object)` linking them. Every
//! object and triple records its provenance — the source it was extracted
//! from — so the user can always trace a fact back to the e-mail, file or
//! bibliography entry it came from.
//!
//! The store maintains forward and inverse adjacency indexes per association
//! type (browsing is bidirectional), a per-class object index, and supports
//! *object merging*, the primitive reference reconciliation is built on:
//! merging re-points all edges of the losing object to the winner and pools
//! attributes, while keeping the loser resolvable as an alias.
//!
//! Persistence is a JSON snapshot ([`Store::to_json`] / [`Store::from_json`]).
//! For durable, incremental persistence the store can additionally record a
//! typed stream of mutation events ([`StoreEvent`], [`Store::enable_events`])
//! that the `semex-journal` crate appends to a checksummed write-ahead log;
//! replaying recorded events onto the snapshot's state reproduces the store
//! exactly ([`Store::apply_event`]).
//!
//! ```
//! use semex_store::{SourceInfo, SourceKind, Store};
//! use semex_model::Value;
//!
//! let mut store = Store::with_builtin_model();
//! let src = store.register_source(SourceInfo::new("example", SourceKind::Synthetic));
//! let person = store.model().class("Person").unwrap();
//! let publication = store.model().class("Publication").unwrap();
//! let name = store.model().attr("name").unwrap();
//! let title = store.model().attr("title").unwrap();
//! let authored = store.model().assoc("AuthoredBy").unwrap();
//!
//! let ann = store.add_object(person);
//! store.add_attr(ann, name, Value::from("Ann Walker")).unwrap();
//! let also_ann = store.add_object(person);
//! store.add_attr(also_ann, name, Value::from("Walker, Ann")).unwrap();
//! let paper = store.add_object(publication);
//! store.add_attr(paper, title, Value::from("Adaptive Indexing")).unwrap();
//! store.add_triple(paper, authored, also_ann, src).unwrap();
//!
//! // Reconciliation's primitive: merge re-points edges and pools values.
//! store.merge(ann, also_ann).unwrap();
//! assert_eq!(store.neighbors(paper, authored), &[ann]);
//! assert_eq!(store.object(ann).strs(name).count(), 2);
//! ```

pub mod binary;
mod events;
mod object;
mod provenance;
mod snapshot;
mod stats;
mod store;
mod triple;

pub use binary::{BinaryError, SnapshotReader};
pub use events::StoreEvent;
pub use object::{Object, ObjectId};
pub use provenance::{SourceId, SourceInfo, SourceKind};
pub use snapshot::SnapshotError;
pub use stats::StoreStats;
pub use store::{Store, StoreError};
pub use triple::Triple;
