//! The binary index sidecar format: a persisted search index image that
//! lets a durable open skip the full rebuild.
//!
//! A sidecar is written next to a binary snapshot and is *advisory*: it
//! records the `(epoch, seq)` of the store state it was built from, and a
//! loader uses it only when those match the recovered journal position
//! exactly (any journal tail is then folded in with
//! [`SearchIndex::apply_events`], which is equivalence-tested against a
//! scratch build). Any damage — torn write, bit flip, wrong epoch — is a
//! typed error and the caller falls back to rebuilding from the store.
//!
//! Layout (same section discipline as the store snapshot format, shared
//! via [`semex_store::binary`]):
//!
//! ```text
//! offset  size  field
//! 0       8     magic "SEMEXIDX"
//! 8       4     sidecar version (u32 LE, currently 1)
//! 12      8     epoch (u64 LE)      — store epoch this index reflects
//! 20      8     seq (u64 LE)        — journal seq this index reflects
//! 28      4     section count
//! 32      24×n  section table (id, offset, len, crc32 per section)
//! ...     4     header CRC32, then contiguous sections
//! ```
//!
//! Sections: `1 TERMS` (string arena, arena index == term id), `2 POSTINGS`
//! (u32 offset table, then per list: live, max_tf, n, varint-delta doc ids
//! with weighted tf), `3 DOCS` (fixed-width 15-byte records: object u64,
//! class u16, len f32, live u8), `4 DOCTERMS` (forward index per doc slot),
//! `5 STATS` (live docs, total length, BM25 parameters).

use crate::postings::{Posting, PostingList};
use crate::search::SearchIndex;
use crate::{Bm25Params, TermDict};
use semex_model::ClassId;
use semex_store::binary::{
    write_varint, ArenaReader, ArenaWriter, BinaryError, Cursor, SectionWriter, Sections,
};
use semex_store::ObjectId;

/// Magic bytes opening an index sidecar image.
pub const SIDECAR_MAGIC: &[u8; 8] = b"SEMEXIDX";

/// Sidecar format version.
pub const SIDECAR_VERSION: u32 = 1;

const SEC_TERMS: u32 = 1;
const SEC_POSTINGS: u32 = 2;
const SEC_DOCS: u32 = 3;
const SEC_DOCTERMS: u32 = 4;
const SEC_STATS: u32 = 5;

/// Fixed-width doc record: object u64 + class u16 + len f32 + live u8.
const DOC_RECORD: usize = 15;

/// A decoded sidecar: the index plus the journal position it reflects.
pub struct Sidecar {
    /// Store epoch the index was serialized at.
    pub epoch: u64,
    /// Journal sequence number the index was serialized at.
    pub seq: u64,
    /// The reassembled index.
    pub index: SearchIndex,
}

/// Lazy, borrowing view of a sidecar image: header and CRCs verified on
/// open, term strings and posting lists resolved on demand from offsets.
pub struct PostingsReader<'a> {
    epoch: u64,
    seq: u64,
    terms: ArenaReader<'a>,
    list_count: usize,
    list_offsets: &'a [u8],
    list_records: &'a [u8],
    doc_count: usize,
    doc_records: &'a [u8],
    docterms: &'a [u8],
    stats: &'a [u8],
}

impl<'a> PostingsReader<'a> {
    /// Open a sidecar image: verify magic, version, header CRC, section
    /// layout and per-section CRCs; parse nothing else.
    pub fn open(buf: &'a [u8]) -> Result<PostingsReader<'a>, BinaryError> {
        let sections = Sections::open(buf, SIDECAR_MAGIC, SIDECAR_VERSION, 16)?;
        if sections.len() != 5 {
            return Err(BinaryError::Sections {
                detail: "expected exactly 5 sections",
            });
        }
        let extra = sections.extra();
        let epoch = u64::from_le_bytes(extra[..8].try_into().unwrap());
        let seq = u64::from_le_bytes(extra[8..16].try_into().unwrap());

        let terms = ArenaReader::open(sections.get(SEC_TERMS, "terms")?, "terms")?;

        let post = sections.get(SEC_POSTINGS, "postings")?;
        let mut c = Cursor::new(post, "postings");
        let list_count = c.u32()? as usize;
        let list_offsets = c.bytes(list_count.checked_mul(4).ok_or(BinaryError::Malformed {
            section: "postings",
            detail: "count overflow",
        })?)?;
        let list_records = c.rest();

        let docs = sections.get(SEC_DOCS, "docs")?;
        let mut c = Cursor::new(docs, "docs");
        let doc_count = c.u32()? as usize;
        let doc_records = c.bytes(doc_count.checked_mul(DOC_RECORD).ok_or(
            BinaryError::Malformed {
                section: "docs",
                detail: "count overflow",
            },
        )?)?;
        if !c.at_end() {
            return Err(BinaryError::Malformed {
                section: "docs",
                detail: "trailing doc bytes",
            });
        }

        Ok(PostingsReader {
            epoch,
            seq,
            terms,
            list_count,
            list_offsets,
            list_records,
            doc_count,
            doc_records,
            docterms: sections.get(SEC_DOCTERMS, "docterms")?,
            stats: sections.get(SEC_STATS, "stats")?,
        })
    }

    /// Store epoch this sidecar reflects.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Journal sequence number this sidecar reflects.
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// Number of term ids (== number of posting lists).
    pub fn term_count(&self) -> usize {
        self.list_count
    }

    /// Number of doc slots (tombstones included).
    pub fn doc_count(&self) -> usize {
        self.doc_count
    }

    /// Resolve the term string for `id`, borrowing from the buffer.
    pub fn term(&self, id: u32) -> Result<&'a str, BinaryError> {
        self.terms.get(u64::from(id))
    }

    /// Decode the posting list of term `id` on demand from its offset.
    pub fn posting_list(&self, id: u32) -> Result<PostingList, BinaryError> {
        let i = usize::try_from(id)
            .ok()
            .filter(|&i| i < self.list_count)
            .ok_or(BinaryError::Malformed {
                section: "postings",
                detail: "term id out of range",
            })?;
        let start =
            u32::from_le_bytes(self.list_offsets[i * 4..i * 4 + 4].try_into().unwrap()) as usize;
        if start > self.list_records.len() {
            return Err(BinaryError::Malformed {
                section: "postings",
                detail: "list offset out of bounds",
            });
        }
        let mut c = Cursor::new(&self.list_records[start..], "postings");
        let live = u32::try_from(c.varint()?).map_err(|_| BinaryError::Malformed {
            section: "postings",
            detail: "live count does not fit",
        })?;
        let max_tf = c.f32()?;
        let n = c.index()?;
        if n > self.list_records.len() {
            return Err(BinaryError::Malformed {
                section: "postings",
                detail: "posting count exceeds section",
            });
        }
        if (live as usize) > n {
            return Err(BinaryError::Malformed {
                section: "postings",
                detail: "live exceeds posting count",
            });
        }
        let mut postings = Vec::with_capacity(n);
        let mut doc: u64 = 0;
        for k in 0..n {
            let delta = c.varint()?;
            doc = if k == 0 {
                delta
            } else {
                // Strictly ascending: delta is stored minus one.
                doc.checked_add(delta)
                    .and_then(|d| d.checked_add(1))
                    .ok_or(BinaryError::Malformed {
                        section: "postings",
                        detail: "doc id overflow",
                    })?
            };
            let d = u32::try_from(doc)
                .ok()
                .filter(|&d| (d as usize) < self.doc_count)
                .ok_or(BinaryError::Malformed {
                    section: "postings",
                    detail: "doc id out of range",
                })?;
            postings.push(Posting {
                doc: d,
                weighted_tf: c.f32()?,
            });
        }
        Ok(PostingList {
            postings,
            live,
            max_tf,
        })
    }

    /// Decode doc slot `i` (fixed-width record, O(1)).
    fn doc(&self, i: usize) -> Result<crate::search::DocEntry, BinaryError> {
        debug_assert!(i < self.doc_count);
        let r = &self.doc_records[i * DOC_RECORD..(i + 1) * DOC_RECORD];
        let live = match r[14] {
            0 => false,
            1 => true,
            _ => {
                return Err(BinaryError::Malformed {
                    section: "docs",
                    detail: "bad live flag",
                })
            }
        };
        Ok(crate::search::DocEntry {
            object: ObjectId(u64::from_le_bytes(r[..8].try_into().unwrap())),
            class: ClassId(u16::from_le_bytes(r[8..10].try_into().unwrap())),
            len: f32::from_le_bytes(r[10..14].try_into().unwrap()),
            live,
        })
    }

    /// Materialize the full [`SearchIndex`]. Cross-section invariants
    /// (forward index parallel to docs, term/doc ids in range, live flags
    /// consistent with empty forward lists) are all typed errors.
    pub fn read_index(&self) -> Result<SearchIndex, BinaryError> {
        let mut dict = TermDict::with_capacity(self.list_count);
        for id in 0..self.list_count {
            let term = self.terms.get(id as u64)?;
            if dict.intern(term) != id as u32 {
                return Err(BinaryError::Malformed {
                    section: "terms",
                    detail: "duplicate term",
                });
            }
        }

        let mut postings = Vec::with_capacity(self.list_count);
        for id in 0..self.list_count {
            postings.push(self.posting_list(id as u32)?);
        }

        let mut docs = Vec::with_capacity(self.doc_count);
        for i in 0..self.doc_count {
            docs.push(self.doc(i)?);
        }

        let mut c = Cursor::new(self.docterms, "docterms");
        let ndocs = c.u32()? as usize;
        if ndocs != self.doc_count {
            return Err(BinaryError::Malformed {
                section: "docterms",
                detail: "forward index not parallel to docs",
            });
        }
        let mut doc_terms = Vec::with_capacity(ndocs);
        for doc in docs.iter().take(ndocs) {
            let n = c.index()?;
            if n > self.docterms.len() {
                return Err(BinaryError::Malformed {
                    section: "docterms",
                    detail: "term count exceeds section",
                });
            }
            if n > 0 && !doc.live {
                return Err(BinaryError::Malformed {
                    section: "docterms",
                    detail: "tombstoned doc has forward terms",
                });
            }
            let mut fwd = Vec::with_capacity(n);
            for _ in 0..n {
                let tid = u32::try_from(c.varint()?)
                    .ok()
                    .filter(|&t| (t as usize) < self.list_count)
                    .ok_or(BinaryError::Malformed {
                        section: "docterms",
                        detail: "term id out of range",
                    })?;
                fwd.push((tid, c.f32()?));
            }
            doc_terms.push(fwd);
        }
        if !c.at_end() {
            return Err(BinaryError::Malformed {
                section: "docterms",
                detail: "trailing forward-index bytes",
            });
        }

        let mut c = Cursor::new(self.stats, "stats");
        let live_docs = usize::try_from(c.u64()?).map_err(|_| BinaryError::Malformed {
            section: "stats",
            detail: "live docs does not fit",
        })?;
        let total_len = c.f64()?;
        let params = Bm25Params {
            k1: c.f64()?,
            b: c.f64()?,
            all_terms_boost: c.f64()?,
        };
        if !c.at_end() {
            return Err(BinaryError::Malformed {
                section: "stats",
                detail: "trailing stats bytes",
            });
        }
        if live_docs != docs.iter().filter(|d| d.live).count() {
            return Err(BinaryError::Malformed {
                section: "stats",
                detail: "live doc count inconsistent",
            });
        }

        Ok(SearchIndex::from_sidecar_parts(
            dict, postings, docs, doc_terms, live_docs, total_len, params,
        ))
    }
}

impl SearchIndex {
    /// Serialize this index to a binary sidecar image stamped with the
    /// journal position (`epoch`, `seq`) it reflects.
    pub fn to_sidecar(&self, epoch: u64, seq: u64) -> Vec<u8> {
        let (dict, postings, docs, doc_terms, live_docs, total_len, params) = self.sidecar_parts();

        let mut terms = ArenaWriter::new();
        for id in 0..dict.len() {
            terms.intern(dict.term(id as u32));
        }

        let mut list_records: Vec<u8> = Vec::new();
        let mut list_offsets: Vec<u32> = Vec::with_capacity(postings.len());
        for list in postings {
            list_offsets.push(u32::try_from(list_records.len()).expect("postings over 4 GiB"));
            write_varint(u64::from(list.live), &mut list_records);
            list_records.extend_from_slice(&list.max_tf.to_le_bytes());
            write_varint(list.postings.len() as u64, &mut list_records);
            let mut prev: u64 = 0;
            for (k, p) in list.postings.iter().enumerate() {
                let doc = u64::from(p.doc);
                // First doc id plain; the rest strictly ascending, minus one.
                let delta = if k == 0 { doc } else { doc - prev - 1 };
                write_varint(delta, &mut list_records);
                prev = doc;
                list_records.extend_from_slice(&p.weighted_tf.to_le_bytes());
            }
        }
        let mut post_section = Vec::with_capacity(4 + list_offsets.len() * 4 + list_records.len());
        post_section.extend_from_slice(&(list_offsets.len() as u32).to_le_bytes());
        for o in &list_offsets {
            post_section.extend_from_slice(&o.to_le_bytes());
        }
        post_section.extend_from_slice(&list_records);

        let mut doc_section = Vec::with_capacity(4 + docs.len() * DOC_RECORD);
        doc_section.extend_from_slice(&(docs.len() as u32).to_le_bytes());
        for d in docs {
            doc_section.extend_from_slice(&d.object.0.to_le_bytes());
            doc_section.extend_from_slice(&d.class.0.to_le_bytes());
            doc_section.extend_from_slice(&d.len.to_le_bytes());
            doc_section.push(u8::from(d.live));
        }

        let mut fwd_section = Vec::new();
        fwd_section.extend_from_slice(&(doc_terms.len() as u32).to_le_bytes());
        for fwd in doc_terms {
            write_varint(fwd.len() as u64, &mut fwd_section);
            for (tid, tf) in fwd {
                write_varint(u64::from(*tid), &mut fwd_section);
                fwd_section.extend_from_slice(&tf.to_le_bytes());
            }
        }

        let mut stats = Vec::with_capacity(40);
        stats.extend_from_slice(&(live_docs as u64).to_le_bytes());
        stats.extend_from_slice(&total_len.to_le_bytes());
        stats.extend_from_slice(&params.k1.to_le_bytes());
        stats.extend_from_slice(&params.b.to_le_bytes());
        stats.extend_from_slice(&params.all_terms_boost.to_le_bytes());

        let mut extra = Vec::with_capacity(16);
        extra.extend_from_slice(&epoch.to_le_bytes());
        extra.extend_from_slice(&seq.to_le_bytes());
        let mut w = SectionWriter::new(SIDECAR_MAGIC, SIDECAR_VERSION, extra);
        w.section(SEC_TERMS, terms.finish());
        w.section(SEC_POSTINGS, post_section);
        w.section(SEC_DOCS, doc_section);
        w.section(SEC_DOCTERMS, fwd_section);
        w.section(SEC_STATS, stats);
        w.finish()
    }

    /// Decode a sidecar image produced by [`SearchIndex::to_sidecar`].
    pub fn from_sidecar(bytes: &[u8]) -> Result<Sidecar, BinaryError> {
        let r = PostingsReader::open(bytes)?;
        Ok(Sidecar {
            epoch: r.epoch(),
            seq: r.seq(),
            index: r.read_index()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Query;
    use semex_store::{SourceInfo, SourceKind, Store};

    fn sample_index() -> (Store, SearchIndex) {
        let mut st = Store::with_builtin_model();
        let person = st.model().class("Person").unwrap();
        let publication = st.model().class("Publication").unwrap();
        let name = st.model().attr("name").unwrap();
        let title = st.model().attr("title").unwrap();
        st.register_source(SourceInfo::new("t", SourceKind::Synthetic));
        for i in 0..20 {
            let p = st.add_object(person);
            st.add_attr(p, name, format!("person number {i} garcia").into())
                .unwrap();
        }
        let pb = st.add_object(publication);
        st.add_attr(pb, title, "data integration with garcia".into())
            .unwrap();
        // A merge so the index carries a tombstone + pooled doc.
        st.enable_events();
        let a = semex_store::ObjectId(0);
        let b = semex_store::ObjectId(1);
        let mut idx = SearchIndex::build(&st);
        st.merge(a, b).unwrap();
        let events = st.take_events();
        idx.apply_events(&st, &events);
        (st, idx)
    }

    fn results(idx: &SearchIndex, st: &Store, q: &str) -> Vec<(u64, String)> {
        idx.search(st, &Query::parse(q), 10)
            .into_iter()
            .map(|h| (h.object.0, format!("{:.6}", h.score)))
            .collect()
    }

    #[test]
    fn sidecar_round_trips_byte_identical_results() {
        let (st, idx) = sample_index();
        let bytes = idx.to_sidecar(7, 42);
        let side = SearchIndex::from_sidecar(&bytes).unwrap();
        assert_eq!(side.epoch, 7);
        assert_eq!(side.seq, 42);
        for q in ["garcia", "person number", "data integration", "nothing"] {
            assert_eq!(results(&side.index, &st, q), results(&idx, &st, q), "{q}");
        }
        assert_eq!(side.index.doc_count(), idx.doc_count());
        assert_eq!(side.index.term_count(), idx.term_count());
        assert_eq!(side.index.apply_calls(), 0);
    }

    #[test]
    fn sidecar_survives_further_mutations() {
        let (mut st, idx) = sample_index();
        let bytes = idx.to_sidecar(1, 1);
        let mut side = SearchIndex::from_sidecar(&bytes).unwrap().index;
        let mut twin = idx.clone();
        // The restored index must absorb deltas exactly like the original.
        let name = st.model().attr("name").unwrap();
        let p = st.add_object(st.model().class("Person").unwrap());
        st.add_attr(p, name, "late arrival garcia".into()).unwrap();
        let events = st.take_events();
        side.apply_events(&st, &events);
        twin.apply_events(&st, &events);
        for q in ["garcia", "late arrival"] {
            assert_eq!(results(&side, &st, q), results(&twin, &st, q), "{q}");
        }
    }

    #[test]
    fn lazy_reader_resolves_lists_on_demand() {
        let (_, idx) = sample_index();
        let bytes = idx.to_sidecar(0, 0);
        let r = PostingsReader::open(&bytes).unwrap();
        assert!(r.term_count() > 0);
        let garcia = (0..r.term_count() as u32)
            .find(|&id| r.term(id).unwrap() == "garcia")
            .expect("term present");
        let list = r.posting_list(garcia).unwrap();
        assert!(list.live > 0);
        assert!(list.postings.windows(2).all(|w| w[0].doc < w[1].doc));
    }

    #[test]
    fn truncation_and_bit_flips_are_typed_errors() {
        let (_, idx) = sample_index();
        let bytes = idx.to_sidecar(3, 9);
        for cut in 0..bytes.len() {
            let r = PostingsReader::open(&bytes[..cut]).map(|r| r.read_index());
            assert!(
                matches!(r, Err(_) | Ok(Err(_))),
                "truncation at {cut} was not rejected"
            );
        }
        for pos in (0..bytes.len()).step_by(7) {
            let mut bad = bytes.clone();
            bad[pos] ^= 0x40;
            let r = PostingsReader::open(&bad).map(|r| r.read_index());
            assert!(
                matches!(r, Err(_) | Ok(Err(_))),
                "bit flip at {pos} was not rejected"
            );
        }
    }
}
