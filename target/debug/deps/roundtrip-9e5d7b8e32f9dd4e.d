/root/repo/target/debug/deps/roundtrip-9e5d7b8e32f9dd4e.d: crates/extract/tests/roundtrip.rs Cargo.toml

/root/repo/target/debug/deps/libroundtrip-9e5d7b8e32f9dd4e.rmeta: crates/extract/tests/roundtrip.rs Cargo.toml

crates/extract/tests/roundtrip.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
