/root/repo/target/debug/deps/malleable_model-f914e2f223fba790.d: tests/malleable_model.rs

/root/repo/target/debug/deps/malleable_model-f914e2f223fba790: tests/malleable_model.rs

tests/malleable_model.rs:
