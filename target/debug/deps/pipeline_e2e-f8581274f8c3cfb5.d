/root/repo/target/debug/deps/pipeline_e2e-f8581274f8c3cfb5.d: tests/pipeline_e2e.rs tests/common/mod.rs

/root/repo/target/debug/deps/libpipeline_e2e-f8581274f8c3cfb5.rmeta: tests/pipeline_e2e.rs tests/common/mod.rs

tests/pipeline_e2e.rs:
tests/common/mod.rs:
