/root/repo/target/debug/deps/semex_core-cfe9f4a7ddaeb4ff.d: crates/core/src/lib.rs crates/core/src/facade.rs crates/core/src/pipeline.rs

/root/repo/target/debug/deps/semex_core-cfe9f4a7ddaeb4ff: crates/core/src/lib.rs crates/core/src/facade.rs crates/core/src/pipeline.rs

crates/core/src/lib.rs:
crates/core/src/facade.rs:
crates/core/src/pipeline.rs:
