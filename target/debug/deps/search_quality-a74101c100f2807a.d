/root/repo/target/debug/deps/search_quality-a74101c100f2807a.d: tests/search_quality.rs tests/common/mod.rs

/root/repo/target/debug/deps/search_quality-a74101c100f2807a: tests/search_quality.rs tests/common/mod.rs

tests/search_quality.rs:
tests/common/mod.rs:
