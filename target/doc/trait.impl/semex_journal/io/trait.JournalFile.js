(function() {
    const implementors = Object.fromEntries([["semex_journal",[]]]);
    if (window.register_implementors) {
        window.register_implementors(implementors);
    } else {
        window.pending_implementors = implementors;
    }
})()
//{"start":59,"fragment_lengths":[20]}