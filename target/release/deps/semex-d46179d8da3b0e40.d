/root/repo/target/release/deps/semex-d46179d8da3b0e40.d: src/lib.rs

/root/repo/target/release/deps/libsemex-d46179d8da3b0e40.rlib: src/lib.rs

/root/repo/target/release/deps/libsemex-d46179d8da3b0e40.rmeta: src/lib.rs

src/lib.rs:
