//! Schema matching for on-the-fly integration.

use semex_extract::csv::Table;
use semex_extract::parse_date;
use semex_model::names::attr as attr_names;
use semex_model::{AttrId, ClassId, ValueKind};
use semex_similarity::name::PersonName;
use semex_similarity::{jaro_winkler, tokenize_lower};
use semex_store::Store;
use std::collections::HashSet;

/// Column-header synonyms for the built-in attributes.
const SYNONYMS: &[(&str, &[&str])] = &[
    (
        attr_names::NAME,
        &[
            "name",
            "full name",
            "fullname",
            "person",
            "contact",
            "author",
            "attendee",
            "who",
        ],
    ),
    (
        attr_names::EMAIL,
        &["email", "e-mail", "mail", "email address", "e-mail address"],
    ),
    (
        attr_names::PHONE,
        &[
            "phone",
            "tel",
            "telephone",
            "mobile",
            "cell",
            "phone number",
        ],
    ),
    (
        attr_names::TITLE,
        &["title", "paper", "publication", "talk"],
    ),
    (attr_names::YEAR, &["year", "yr", "published"]),
    (attr_names::DATE, &["date", "when", "time", "day"]),
    (
        attr_names::URL,
        &["url", "link", "website", "homepage", "web"],
    ),
    (
        attr_names::LOCATION,
        &["location", "place", "city", "venue location", "room"],
    ),
    (
        attr_names::FIRST_NAME,
        &["first", "first name", "given", "given name"],
    ),
    (
        attr_names::LAST_NAME,
        &["last", "last name", "family", "surname", "family name"],
    ),
];

/// Statistical profile of one column's values (over a sample).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ColumnProfile {
    /// Column header.
    pub header: String,
    /// Fraction of non-empty values that parse as e-mail addresses.
    pub email_frac: f64,
    /// Fraction that parse as dates.
    pub date_frac: f64,
    /// Fraction that are plausible years (1800–2100).
    pub year_frac: f64,
    /// Fraction that parse as integers.
    pub int_frac: f64,
    /// Fraction that look like person names (given + family parsed).
    pub name_frac: f64,
    /// Fraction that look like phone numbers.
    pub phone_frac: f64,
    /// Non-empty values seen.
    pub non_empty: usize,
}

impl ColumnProfile {
    /// Profile a column from its values.
    pub fn from_values<'a>(header: &str, values: impl Iterator<Item = &'a str>) -> ColumnProfile {
        let mut p = ColumnProfile {
            header: header.to_owned(),
            ..Default::default()
        };
        let mut counts = [0usize; 6];
        for v in values {
            let v = v.trim();
            if v.is_empty() {
                continue;
            }
            p.non_empty += 1;
            if semex_similarity::email::EmailAddr::parse(v).is_some() {
                counts[0] += 1;
            }
            if parse_date(v).is_some() {
                counts[1] += 1;
            }
            if let Ok(n) = v.parse::<i64>() {
                counts[3] += 1;
                if (1800..=2100).contains(&n) {
                    counts[2] += 1;
                }
            }
            let name = PersonName::parse(v);
            if name.first.is_some() && name.last.is_some() && !v.contains('@') {
                counts[4] += 1;
            }
            let digits = v.chars().filter(char::is_ascii_digit).count();
            if digits >= 7
                && v.chars()
                    .all(|c| c.is_ascii_digit() || "+-() .".contains(c))
            {
                counts[5] += 1;
            }
        }
        if p.non_empty > 0 {
            let n = p.non_empty as f64;
            p.email_frac = counts[0] as f64 / n;
            p.date_frac = counts[1] as f64 / n;
            p.year_frac = counts[2] as f64 / n;
            p.int_frac = counts[3] as f64 / n;
            p.name_frac = counts[4] as f64 / n;
            p.phone_frac = counts[5] as f64 / n;
        }
        p
    }
}

/// One matched column.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MatchedColumn {
    /// Index into the table's columns.
    pub column: usize,
    /// The attribute the column maps to.
    pub attr: AttrId,
    /// Matcher confidence in `[0, 1]`.
    pub confidence: f64,
}

/// A complete table → class mapping.
#[derive(Debug, Clone, PartialEq)]
pub struct Mapping {
    /// Target class for each row.
    pub class: ClassId,
    /// Column assignments (at most one column per attribute).
    pub columns: Vec<MatchedColumn>,
    /// Overall mapping quality (mean matched confidence, weighted by
    /// coverage).
    pub score: f64,
}

/// The schema matcher: knows the store's model and samples its instance
/// values for overlap signals.
pub struct SchemaMatcher<'a> {
    store: &'a Store,
    /// Lowercased sample values per attribute, for instance overlap.
    samples: Vec<HashSet<String>>,
}

/// How many store values to sample per attribute.
const SAMPLE_CAP: usize = 2000;
/// Minimum per-column confidence to accept an assignment.
const MIN_CONFIDENCE: f64 = 0.45;

impl<'a> SchemaMatcher<'a> {
    /// Build a matcher over the store (samples instance values once).
    pub fn new(store: &'a Store) -> Self {
        let model = store.model();
        let mut samples: Vec<HashSet<String>> = vec![HashSet::new(); model.attr_count()];
        'outer: for obj in store.objects() {
            for (a, v) in &store.object(obj).attrs {
                if let Some(s) = v.as_str() {
                    let set = &mut samples[a.index()];
                    if set.len() < SAMPLE_CAP {
                        set.insert(s.to_lowercase());
                    }
                }
            }
            if samples.iter().all(|s| s.len() >= SAMPLE_CAP) {
                break 'outer;
            }
        }
        SchemaMatcher { store, samples }
    }

    /// Header-name similarity against an attribute (synonyms + fuzzy).
    fn header_score(&self, header: &str, attr: AttrId) -> f64 {
        let def = self.store.model().attr_def(attr);
        let h = tokenize_lower(header).join(" ");
        if h.is_empty() {
            return 0.0;
        }
        let attr_lower = def.name.to_lowercase();
        if h == attr_lower {
            return 1.0;
        }
        let mut best = jaro_winkler(&h, &attr_lower) * 0.8;
        if let Some((_, syns)) = SYNONYMS.iter().find(|(n, _)| *n == def.name) {
            for s in *syns {
                // Normalize synonyms the same way headers are normalized
                // ("e-mail" and "E-Mail" both become "e mail").
                let s_norm = tokenize_lower(s).join(" ");
                if h == s_norm {
                    return 0.95;
                }
                best = best.max(jaro_winkler(&h, &s_norm) * 0.85);
            }
        }
        best
    }

    /// Instance-based score of a column profile against an attribute.
    fn instance_score(
        &self,
        table: &Table,
        col: usize,
        profile: &ColumnProfile,
        attr: AttrId,
    ) -> f64 {
        let def = self.store.model().attr_def(attr);
        let mut score: f64 = match (def.name.as_str(), def.kind) {
            (attr_names::EMAIL, _) => profile.email_frac,
            (attr_names::YEAR, _) => profile.year_frac,
            (attr_names::DATE, _) => profile.date_frac * 0.9,
            (attr_names::PHONE, _) => profile.phone_frac,
            (attr_names::NAME | attr_names::FIRST_NAME | attr_names::LAST_NAME, _) => {
                profile.name_frac * 0.8
            }
            (_, ValueKind::Int) => profile.int_frac * 0.6,
            _ => 0.0,
        };
        // Value overlap with what the store already holds for this attr.
        let sample = &self.samples[attr.index()];
        if !sample.is_empty() && profile.non_empty > 0 {
            let hits = table
                .values(col)
                .filter(|v| !v.trim().is_empty())
                .filter(|v| sample.contains(&v.trim().to_lowercase()))
                .count();
            let overlap = hits as f64 / profile.non_empty as f64;
            score = score.max(overlap);
        }
        score
    }

    /// Match a table against one class: greedy best assignment of columns
    /// to the class's declared attributes.
    pub fn match_class(&self, table: &Table, class: ClassId) -> Mapping {
        let model = self.store.model();
        let attrs = &model.class_def(class).attrs;
        let profiles: Vec<ColumnProfile> = (0..table.headers.len())
            .map(|c| ColumnProfile::from_values(&table.headers[c], table.values(c)))
            .collect();

        // Score every (column, attr) pair.
        let mut scored: Vec<(f64, usize, AttrId)> = Vec::new();
        for (c, profile) in profiles.iter().enumerate() {
            for &a in attrs {
                let s = 0.55 * self.header_score(&profile.header, a)
                    + 0.45 * self.instance_score(table, c, profile, a);
                if s >= MIN_CONFIDENCE {
                    scored.push((s, c, a));
                }
            }
        }
        scored.sort_by(|x, y| y.0.partial_cmp(&x.0).unwrap_or(std::cmp::Ordering::Equal));

        let mut used_cols = HashSet::new();
        let mut used_attrs = HashSet::new();
        let mut columns = Vec::new();
        for (s, c, a) in scored {
            if used_cols.contains(&c) || used_attrs.contains(&a) {
                continue;
            }
            used_cols.insert(c);
            used_attrs.insert(a);
            columns.push(MatchedColumn {
                column: c,
                attr: a,
                confidence: s,
            });
        }
        columns.sort_by_key(|m| m.column);
        let coverage = columns.len() as f64 / table.headers.len().max(1) as f64;
        let mean: f64 = if columns.is_empty() {
            0.0
        } else {
            columns.iter().map(|m| m.confidence).sum::<f64>() / columns.len() as f64
        };
        Mapping {
            class,
            columns,
            score: mean * (0.5 + 0.5 * coverage),
        }
    }

    /// Match a table against every reconcilable class and pick the best
    /// mapping. Returns `None` when nothing clears the confidence bar.
    pub fn match_table(&self, table: &Table) -> Option<Mapping> {
        let model = self.store.model();
        let mut best: Option<Mapping> = None;
        for (class, def) in model.classes() {
            if !def.reconcilable {
                continue;
            }
            let m = self.match_class(table, class);
            if m.columns.is_empty() {
                continue;
            }
            if best.as_ref().map(|b| m.score > b.score).unwrap_or(true) {
                best = Some(m);
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use semex_extract::csv::parse_csv;
    use semex_model::names::class;
    use semex_store::{SourceInfo, SourceKind};

    fn empty_store() -> Store {
        let mut st = Store::with_builtin_model();
        st.register_source(SourceInfo::new("t", SourceKind::Synthetic));
        st
    }

    #[test]
    fn profiles_detect_value_shapes() {
        let p = ColumnProfile::from_values("col", ["ann@x.edu", "bob@y.org", ""].iter().copied());
        assert_eq!(p.non_empty, 2);
        assert_eq!(p.email_frac, 1.0);
        let p = ColumnProfile::from_values("col", ["2004", "1999"].iter().copied());
        assert_eq!(p.year_frac, 1.0);
        assert_eq!(p.int_frac, 1.0);
        let p = ColumnProfile::from_values("col", ["Ann Walker", "Bob M. Fisher"].iter().copied());
        assert_eq!(p.name_frac, 1.0);
        let p = ColumnProfile::from_values("col", ["+1-555-0100", "555 010 1234"].iter().copied());
        assert_eq!(p.phone_frac, 1.0);
    }

    #[test]
    fn header_synonyms_match() {
        let st = empty_store();
        let m = SchemaMatcher::new(&st);
        let a_email = st.model().attr(attr_names::EMAIL).unwrap();
        assert!(m.header_score("E-Mail", a_email) > 0.9);
        assert!(m.header_score("email address", a_email) > 0.9);
        assert!(m.header_score("quantity", a_email) < 0.5);
    }

    #[test]
    fn people_table_maps_to_person() {
        let st = empty_store();
        let table = parse_csv(
            "full name,e-mail,phone\nAnn Walker,ann@x.edu,555-0101\nBob Fisher,bob@y.org,555-0102\n",
        )
        .unwrap();
        let matcher = SchemaMatcher::new(&st);
        let mapping = matcher.match_table(&table).unwrap();
        assert_eq!(st.model().class_def(mapping.class).name, class::PERSON);
        assert_eq!(mapping.columns.len(), 3, "{mapping:?}");
        let attrs: Vec<&str> = mapping
            .columns
            .iter()
            .map(|c| st.model().attr_def(c.attr).name.as_str())
            .collect();
        assert_eq!(attrs, vec!["name", "email", "phone"]);
    }

    #[test]
    fn publications_table_maps_to_publication() {
        let st = empty_store();
        let table =
            parse_csv("title,year\nAdaptive Queries,2004\nSemantic Browsing,2005\n").unwrap();
        let matcher = SchemaMatcher::new(&st);
        let mapping = matcher.match_table(&table).unwrap();
        assert_eq!(st.model().class_def(mapping.class).name, class::PUBLICATION);
    }

    #[test]
    fn instance_overlap_rescues_cryptic_headers() {
        // Headers are useless ("c1", "c2") but the values match what the
        // store already knows about people.
        let mut st = empty_store();
        let c_person = st.model().class(class::PERSON).unwrap();
        let a_name = st.model().attr(attr_names::NAME).unwrap();
        let a_email = st.model().attr(attr_names::EMAIL).unwrap();
        for (n, e) in [("Ann Walker", "ann@x.edu"), ("Bob Fisher", "bob@y.org")] {
            let p = st.add_object(c_person);
            st.add_attr(p, a_name, semex_model::Value::from(n)).unwrap();
            st.add_attr(p, a_email, semex_model::Value::from(e))
                .unwrap();
        }
        let table = parse_csv("c1,c2\nAnn Walker,ann@x.edu\nBob Fisher,bob@y.org\n").unwrap();
        let matcher = SchemaMatcher::new(&st);
        let mapping = matcher.match_table(&table).unwrap();
        assert_eq!(st.model().class_def(mapping.class).name, class::PERSON);
        assert_eq!(mapping.columns.len(), 2);
    }

    #[test]
    fn hopeless_table_yields_nothing() {
        let st = empty_store();
        let table = parse_csv("qty,sku\n3,AB-1\n7,CD-2\n").unwrap();
        let matcher = SchemaMatcher::new(&st);
        let mapping = matcher.match_table(&table);
        assert!(
            mapping.is_none() || mapping.as_ref().unwrap().score < 0.6,
            "{mapping:?}"
        );
    }
}
