//! A small CSV parser (RFC-4180 style) shared by extraction and on-the-fly
//! integration.

use crate::ExtractError;

/// A parsed tabular source: header row plus data rows.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Table {
    /// Column names from the header row.
    pub headers: Vec<String>,
    /// Data rows; every row has exactly `headers.len()` cells.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Index of a column by (case-insensitive) name.
    pub fn column(&self, name: &str) -> Option<usize> {
        self.headers
            .iter()
            .position(|h| h.eq_ignore_ascii_case(name))
    }

    /// Iterate the values of one column.
    pub fn values(&self, col: usize) -> impl Iterator<Item = &str> {
        self.rows.iter().map(move |r| r[col].as_str())
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

/// Parse one CSV record starting at `chars[pos]`; returns the cells and the
/// position after the record's terminating newline.
fn record(chars: &[char], mut pos: usize) -> (Vec<String>, usize) {
    let mut cells = Vec::new();
    let mut cell = String::new();
    let mut in_quotes = false;
    while pos < chars.len() {
        let c = chars[pos];
        if in_quotes {
            if c == '"' {
                if chars.get(pos + 1) == Some(&'"') {
                    cell.push('"');
                    pos += 2;
                    continue;
                }
                in_quotes = false;
                pos += 1;
                continue;
            }
            cell.push(c);
            pos += 1;
            continue;
        }
        match c {
            '"' if cell.is_empty() => {
                in_quotes = true;
                pos += 1;
            }
            ',' => {
                cells.push(std::mem::take(&mut cell));
                pos += 1;
            }
            '\r' => {
                pos += 1;
            }
            '\n' => {
                pos += 1;
                break;
            }
            _ => {
                cell.push(c);
                pos += 1;
            }
        }
    }
    cells.push(cell);
    (cells, pos)
}

/// Parse a CSV document. The first record is the header; subsequent records
/// are padded or truncated to the header width. Returns an error for an
/// empty input (no header).
pub fn parse_csv(input: &str) -> Result<Table, ExtractError> {
    let chars: Vec<char> = input.chars().collect();
    let mut pos = 0;
    // Skip leading blank lines.
    while pos < chars.len() && (chars[pos] == '\n' || chars[pos] == '\r') {
        pos += 1;
    }
    if pos >= chars.len() {
        return Err(ExtractError::Malformed {
            format: "csv",
            line: Some(1),
            reason: "empty input: no header row".into(),
        });
    }
    let (headers, mut pos) = record(&chars, pos);
    let headers: Vec<String> = headers.into_iter().map(|h| h.trim().to_owned()).collect();
    let width = headers.len();
    let mut rows = Vec::new();
    while pos < chars.len() {
        // Skip blank lines between records.
        if chars[pos] == '\n' || chars[pos] == '\r' {
            pos += 1;
            continue;
        }
        let (mut cells, next) = record(&chars, pos);
        pos = next;
        if cells.iter().all(|c| c.trim().is_empty()) {
            continue;
        }
        cells.resize(width, String::new());
        cells.truncate(width);
        rows.push(cells);
    }
    Ok(Table { headers, rows })
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn basic_table() {
        let t = parse_csv("name,email\nAnn,ann@x.edu\nBob,bob@y.org\n").unwrap();
        assert_eq!(t.headers, vec!["name", "email"]);
        assert_eq!(t.len(), 2);
        assert_eq!(t.rows[0], vec!["Ann", "ann@x.edu"]);
        assert_eq!(t.column("EMAIL"), Some(1));
        assert_eq!(t.column("missing"), None);
        assert_eq!(t.values(0).collect::<Vec<_>>(), vec!["Ann", "Bob"]);
    }

    #[test]
    fn quoted_fields() {
        let t = parse_csv("name,quote\n\"Carey, Michael\",\"said \"\"hi\"\"\"\n").unwrap();
        assert_eq!(t.rows[0][0], "Carey, Michael");
        assert_eq!(t.rows[0][1], "said \"hi\"");
    }

    #[test]
    fn multiline_quoted_field() {
        let t = parse_csv("a,b\n\"line1\nline2\",x\n").unwrap();
        assert_eq!(t.rows[0][0], "line1\nline2");
        assert_eq!(t.rows[0][1], "x");
    }

    #[test]
    fn ragged_rows_normalized() {
        let t = parse_csv("a,b,c\n1,2\n1,2,3,4\n").unwrap();
        assert_eq!(t.rows[0], vec!["1", "2", ""]);
        assert_eq!(t.rows[1], vec!["1", "2", "3"]);
    }

    #[test]
    fn blank_lines_and_crlf() {
        let t = parse_csv("a,b\r\n\r\n1,2\r\n\n").unwrap();
        assert_eq!(t.len(), 1);
        assert_eq!(t.rows[0], vec!["1", "2"]);
    }

    #[test]
    fn empty_input_errors() {
        assert!(parse_csv("").is_err());
        assert!(parse_csv("\n\n").is_err());
    }

    proptest! {
        #[test]
        fn roundtrip_simple_cells(rows in prop::collection::vec(prop::collection::vec("[a-z0-9 ]{0,8}", 3), 1..6)) {
            let mut text = String::from("c1,c2,c3\n");
            for r in &rows {
                text.push_str(&r.join(","));
                text.push('\n');
            }
            let t = parse_csv(&text).unwrap();
            let kept: Vec<&Vec<String>> = rows.iter().filter(|r| !r.iter().all(|c| c.trim().is_empty())).collect();
            prop_assert_eq!(t.len(), kept.len());
            for (parsed, original) in t.rows.iter().zip(kept) {
                prop_assert_eq!(parsed, original);
            }
        }

        #[test]
        fn never_panics(s in ".{0,80}") {
            let _ = parse_csv(&s);
        }
    }
}
