/root/repo/target/release/deps/experiments-9a69aa140be1927d.d: crates/bench/src/bin/experiments.rs

/root/repo/target/release/deps/experiments-9a69aa140be1927d: crates/bench/src/bin/experiments.rs

crates/bench/src/bin/experiments.rs:
