//! The [`Semex`] facade: search, browse, integrate, inspect, persist.

use crate::pipeline::{BuildReport, SemexConfig};
use semex_browse::{Browser, Link};
use semex_extract::csv::{parse_csv, Table};
use semex_index::SearchIndex;
use semex_integrate::{import, ImportReport, SchemaMatcher};
use semex_journal::{
    CompactionReport, DurableStore, Journal, JournalConfig, JournalError, JournalIo,
    RecoveryReport, SnapshotFormat,
};
use semex_store::{ObjectId, SnapshotError, Store, StoreEvent, StoreStats};
use std::fmt;

/// One search result, resolved to display form.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchResult {
    /// The matching object.
    pub object: ObjectId,
    /// Its display label.
    pub label: String,
    /// Its class name.
    pub class: String,
    /// Relevance score.
    pub score: f64,
}

/// A display-oriented view of one object: label, class, attributes,
/// associations — what the SEMEX browser pane shows.
#[derive(Debug, Clone, PartialEq)]
pub struct ObjectView {
    /// The object.
    pub object: ObjectId,
    /// Display label.
    pub label: String,
    /// Class name.
    pub class: String,
    /// `(attribute name, rendered value)` pairs.
    pub attrs: Vec<(String, String)>,
    /// Outgoing and incoming links, labelled.
    pub links: Vec<Link>,
    /// Names of the sources this object was extracted from.
    pub sources: Vec<String>,
}

impl fmt::Display for ObjectView {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "[{}] {}", self.class, self.label)?;
        for (a, v) in &self.attrs {
            writeln!(f, "  {a}: {v}")?;
        }
        for l in &self.links {
            writeln!(f, "  --{}--> {}", l.label, l.target_label)?;
        }
        if !self.sources.is_empty() {
            writeln!(f, "  (from: {})", self.sources.join(", "))?;
        }
        Ok(())
    }
}

/// Resolve raw index hits to display form against a store.
fn results_of(store: &Store, hits: Vec<semex_index::Hit>) -> Vec<SearchResult> {
    hits.into_iter()
        .map(|h| SearchResult {
            object: h.object,
            label: store.label(h.object),
            class: store
                .model()
                .class_def(store.class_of(h.object))
                .name
                .clone(),
            score: h.score,
        })
        .collect()
}

/// Assemble the full display view of one object against a store.
fn view_of(store: &Store, obj: ObjectId) -> ObjectView {
    let obj = store.resolve(obj);
    let o = store.object(obj);
    let model = store.model();
    let attrs = o
        .attrs
        .iter()
        .map(|(a, v)| (model.attr_def(*a).name.clone(), v.render()))
        .collect();
    let sources = o
        .sources
        .iter()
        .filter_map(|&s| store.source(s).map(|i| i.name.clone()))
        .collect();
    ObjectView {
        object: obj,
        label: store.label(obj),
        class: model.class_def(o.class).name.clone(),
        attrs,
        links: Browser::new(store).neighborhood(obj),
        sources,
    }
}

/// Group the asserted facts about one object by provenance source.
fn explain_of(store: &Store, obj: ObjectId) -> Vec<(String, String)> {
    let obj = store.resolve(obj);
    let model = store.model();
    let mut out = Vec::new();
    for t in store.triples() {
        if t.subject != obj && t.object != obj {
            continue;
        }
        let source = store
            .source(t.source)
            .map(|i| i.name.clone())
            .unwrap_or_else(|| t.source.to_string());
        let def = model.assoc_def(t.assoc);
        let fact = format!(
            "{} --{}--> {}",
            store.label(t.subject),
            def.name,
            store.label(t.object)
        );
        out.push((source, fact));
    }
    out.sort();
    out.dedup();
    out
}

/// An immutable, self-contained copy of the queryable platform state: the
/// association store plus the keyword index, detached from the live
/// [`Semex`].
///
/// This is the unit of *snapshot isolation* the serving layer is built on:
/// the writer clones the master's state into a `Snapshot`, publishes it
/// behind an `Arc`, and any number of reader threads query it concurrently
/// — every read method takes `&self`, and a snapshot never observes a
/// mutation applied after it was taken.
#[derive(Debug, Clone)]
pub struct Snapshot {
    store: Store,
    index: SearchIndex,
}

impl Snapshot {
    /// The association database at snapshot time.
    pub fn store(&self) -> &Store {
        &self.store
    }

    /// The keyword index at snapshot time.
    pub fn index(&self) -> &SearchIndex {
        &self.index
    }

    /// A browser over the snapshot's association database.
    pub fn browser(&self) -> Browser<'_> {
        Browser::new(&self.store)
    }

    /// Keyword search (pruned top-k evaluator); see [`Semex::search`].
    pub fn search(&self, query: &str, k: usize) -> Vec<SearchResult> {
        results_of(&self.store, self.index.search_str(&self.store, query, k))
    }

    /// Keyword search through the exhaustive reference scorer.
    pub fn search_exhaustive(&self, query: &str, k: usize) -> Vec<SearchResult> {
        results_of(
            &self.store,
            self.index.search_str_exhaustive(&self.store, query, k),
        )
    }

    /// A full display view of one object; see [`Semex::view`].
    pub fn view(&self, obj: ObjectId) -> ObjectView {
        view_of(&self.store, obj)
    }

    /// Facts about an object grouped by provenance source; see
    /// [`Semex::explain`].
    pub fn explain(&self, obj: ObjectId) -> Vec<(String, String)> {
        explain_of(&self.store, obj)
    }

    /// Store statistics at snapshot time.
    pub fn stats(&self) -> StoreStats {
        StoreStats::compute(&self.store)
    }
}

/// The assembled SEMEX platform.
pub struct Semex {
    store: Store,
    index: SearchIndex,
    config: SemexConfig,
    report: BuildReport,
    /// Events already folded into the index but not yet journaled. Only
    /// populated when `retain_events` is set (durable mode); otherwise
    /// drained events are dropped after indexing.
    pending_events: Vec<StoreEvent>,
    retain_events: bool,
    /// When set, mutating paths leave store events buffered instead of
    /// folding them into the index per mutation; [`Semex::flush_index`]
    /// drains the whole batch in one [`SearchIndex::apply_events`] call.
    /// The serving layer's writer thread uses this so N coalesced writes
    /// cost one index refresh.
    batch_index: bool,
    /// `Some(cause)` when the platform is in degraded read-only mode after
    /// a permanent journal failure: mutations are rejected with
    /// [`crate::SemexError::Degraded`] until
    /// [`DurableSemex::try_recover_journal`] clears the condition.
    degraded: Option<String>,
}

impl fmt::Debug for Semex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Semex")
            .field("objects", &self.store.object_count())
            .field("indexed", &self.index.doc_count())
            .finish_non_exhaustive()
    }
}

impl Semex {
    pub(crate) fn assemble(
        mut store: Store,
        index: SearchIndex,
        config: SemexConfig,
        report: BuildReport,
    ) -> Self {
        // From here on every mutation is recorded, so the index is kept
        // current with deltas instead of rebuilds (and durable mode can
        // journal the same stream).
        store.enable_events();
        Semex {
            store,
            index,
            config,
            report,
            pending_events: Vec::new(),
            retain_events: false,
            batch_index: false,
            degraded: None,
        }
    }

    /// Clone the queryable state into an immutable [`Snapshot`].
    ///
    /// The snapshot reflects every mutation applied so far (including
    /// event batches not yet flushed into the master's index: those are
    /// folded into the *snapshot's* index copy so it is always current),
    /// and never changes afterwards. This is what the serving layer
    /// publishes to reader threads after each write batch.
    pub fn snapshot(&self) -> Snapshot {
        let mut index = self.index.clone();
        // Don't drain the master's buffer — peeking keeps the pending
        // journal/flush bookkeeping untouched.
        let pending = self.store.peek_events();
        if !pending.is_empty() {
            index.apply_events(&self.store, pending);
        }
        Snapshot {
            store: self.store.clone(),
            index,
        }
    }

    /// Switch index-refresh batching on or off. While batching is on,
    /// mutating calls ([`Semex::ingest`], [`Semex::integrate`],
    /// [`Semex::assert_same`], …) leave their store events buffered and the
    /// master's keyword index goes stale; one [`Semex::flush_index`] call
    /// (or a durable [`DurableSemex::commit`]) folds the whole batch in at
    /// once. Turning batching *off* flushes implicitly, so the index is
    /// never silently stale outside a batch.
    pub fn set_index_batching(&mut self, on: bool) {
        self.batch_index = on;
        if !on {
            self.flush_index();
        }
    }

    /// Drain all buffered store events into the keyword index in a single
    /// delta application. A no-op when nothing is buffered; the batched
    /// write path calls this exactly once per published snapshot.
    pub fn flush_index(&mut self) {
        let events = self.store.take_events();
        if events.is_empty() {
            return;
        }
        self.index.apply_events(&self.store, &events);
        if self.retain_events {
            self.pending_events.extend(events);
        }
    }

    /// When the platform is in degraded read-only mode, the journal failure
    /// that caused it; `None` on a healthy platform. See
    /// [`crate::SemexError::Degraded`].
    pub fn degraded(&self) -> Option<&str> {
        self.degraded.as_deref()
    }

    /// Reject mutations while degraded: accepting them would let state
    /// diverge from what the journal can make durable.
    fn check_writable(&self) -> Result<(), crate::SemexError> {
        match &self.degraded {
            Some(cause) => Err(crate::SemexError::Degraded {
                cause: cause.clone(),
            }),
            None => Ok(()),
        }
    }

    /// Fold any recorded store mutations into the keyword index. Called by
    /// every mutating facade path; a no-op while index batching is on
    /// (the batch is drained once by [`Semex::flush_index`]). A full
    /// [`SearchIndex::build`] remains only as the restore/recovery fallback
    /// when no event stream exists.
    fn refresh_index(&mut self) {
        if self.batch_index {
            return;
        }
        self.flush_index();
    }

    /// The association database.
    pub fn store(&self) -> &Store {
        &self.store
    }

    /// The keyword index.
    pub fn index(&self) -> &SearchIndex {
        &self.index
    }

    /// What the build pipeline did.
    pub fn report(&self) -> &BuildReport {
        &self.report
    }

    /// The active configuration.
    pub fn config(&self) -> &SemexConfig {
        &self.config
    }

    /// A browser over the association database.
    pub fn browser(&self) -> Browser<'_> {
        Browser::new(&self.store)
    }

    /// Keyword search: top-`k` objects for a query string (supports the
    /// `class:Name` filter syntax). Runs the pruned top-k evaluator.
    pub fn search(&self, query: &str, k: usize) -> Vec<SearchResult> {
        results_of(&self.store, self.index.search_str(&self.store, query, k))
    }

    /// [`Semex::search`] through the exhaustive reference scorer. Returns
    /// identical results; kept as the oracle for verification and for
    /// benchmarking the pruned path against.
    pub fn search_exhaustive(&self, query: &str, k: usize) -> Vec<SearchResult> {
        results_of(
            &self.store,
            self.index.search_str_exhaustive(&self.store, query, k),
        )
    }

    /// A full display view of one object.
    pub fn view(&self, obj: ObjectId) -> ObjectView {
        view_of(&self.store, obj)
    }

    /// Integrate an external CSV source on the fly: match its schema,
    /// import its rows, reconcile against the existing space, and refresh
    /// the keyword index. Returns the mapping quality and import report;
    /// `Ok(None)` when the text is not usable CSV or no usable mapping was
    /// found. Errors when the platform is degraded or the store rejects the
    /// import.
    pub fn integrate(
        &mut self,
        name: &str,
        csv: &str,
    ) -> Result<Option<(f64, ImportReport)>, crate::SemexError> {
        let Ok(table) = parse_csv(csv) else {
            return Ok(None);
        };
        self.integrate_table(name, &table)
    }

    /// [`Semex::integrate`] over an already-parsed table.
    pub fn integrate_table(
        &mut self,
        name: &str,
        table: &Table,
    ) -> Result<Option<(f64, ImportReport)>, crate::SemexError> {
        self.check_writable()?;
        let Some(mapping) = SchemaMatcher::new(&self.store).match_table(table) else {
            return Ok(None);
        };
        let score = mapping.score;
        let result = import(&mut self.store, name, table, &mapping, &self.config.recon);
        // Refresh on both paths: a rejected import may have applied a prefix
        // of the rows, and the index must track whatever the store holds.
        self.refresh_index();
        let report = result.map_err(crate::SemexError::Store)?;
        Ok(Some((score, report)))
    }

    /// Incrementally ingest a new source into a built platform: extract,
    /// reconcile the grown reference graph, and fold the mutations into
    /// the keyword index.
    /// This is the demo's "desktop monitor noticed new mail" path. Returns
    /// the extraction stats for the new source.
    ///
    /// Cross-source registries (reply threading to *old* messages, BibTeX
    /// keys from *old* bibliographies) do not span ingest calls; batch
    /// related sources into one [`crate::SemexBuilder`] build when that
    /// matters.
    pub fn ingest(
        &mut self,
        spec: crate::SourceSpec,
    ) -> Result<semex_extract::ExtractStats, crate::SemexError> {
        self.check_writable()?;
        use semex_extract::{
            bibtex::extract_bibtex, email::extract_mbox, fswalk::extract_tree, ical::extract_ical,
            latex::extract_latex, vcard::extract_vcards, ExtractContext,
        };
        let name = match &spec {
            crate::SourceSpec::Mbox { name, .. }
            | crate::SourceSpec::Vcard { name, .. }
            | crate::SourceSpec::Bibtex { name, .. }
            | crate::SourceSpec::Latex { name, .. }
            | crate::SourceSpec::Ical { name, .. }
            | crate::SourceSpec::Directory { name, .. } => name.clone(),
        };
        let kind = match &spec {
            crate::SourceSpec::Mbox { .. } => semex_store::SourceKind::Email,
            crate::SourceSpec::Vcard { .. } => semex_store::SourceKind::Contacts,
            crate::SourceSpec::Bibtex { .. } => semex_store::SourceKind::Bibliography,
            crate::SourceSpec::Latex { .. } => semex_store::SourceKind::Latex,
            crate::SourceSpec::Ical { .. } => semex_store::SourceKind::Calendar,
            crate::SourceSpec::Directory { .. } => semex_store::SourceKind::FileSystem,
        };
        let sid = self
            .store
            .register_source(semex_store::SourceInfo::new(&name, kind));
        let first_new_slot = self.store.slot_count() as u64;
        let mut ctx = ExtractContext::new(&mut self.store, sid);
        let result = match &spec {
            crate::SourceSpec::Mbox { content, .. } => extract_mbox(content, &mut ctx),
            crate::SourceSpec::Vcard { content, .. } => extract_vcards(content, &mut ctx),
            crate::SourceSpec::Bibtex { content, .. } => extract_bibtex(content, &mut ctx),
            crate::SourceSpec::Latex { content, .. } => {
                extract_latex(content, &mut ctx).map(|(s, _)| s)
            }
            crate::SourceSpec::Ical { content, .. } => extract_ical(content, &mut ctx),
            crate::SourceSpec::Directory { root, .. } => extract_tree(root, &mut ctx),
        };
        let stats = result.map_err(|error| crate::SemexError::Extract {
            source: name,
            error,
        })?;
        if !self.config.skip_recon {
            // Incremental: only pairs touching the just-extracted
            // references are (re)considered — old-old pairs were settled by
            // the build-time run.
            let new_objects: Vec<ObjectId> = (first_new_slot..self.store.slot_count() as u64)
                .map(ObjectId)
                .collect();
            semex_recon::reconcile_incremental(
                &mut self.store,
                &new_objects,
                self.config.recon_variant,
                &self.config.recon,
            );
        }
        self.refresh_index();
        Ok(stats)
    }

    /// Explain an object: its asserted facts grouped by provenance source —
    /// `(source name, rendered fact)` pairs. The demo's "where does SEMEX
    /// know this from?" affordance.
    pub fn explain(&self, obj: ObjectId) -> Vec<(String, String)> {
        explain_of(&self.store, obj)
    }

    /// User feedback: assert that two objects denote the same entity.
    /// Merges them immediately (pooling attributes and re-pointing edges),
    /// records the pair as a must-link constraint for future
    /// reconciliation runs, and refreshes the index.
    pub fn assert_same(&mut self, a: ObjectId, b: ObjectId) -> Result<(), crate::SemexError> {
        self.check_writable()?;
        self.config.recon.must_link.push((a, b));
        if self.store.resolve(a) != self.store.resolve(b) {
            self.store.merge(a, b).map_err(crate::SemexError::Store)?;
        }
        self.refresh_index();
        Ok(())
    }

    /// User feedback: assert that two objects denote different entities.
    /// Recorded as a cannot-link constraint respected by every future
    /// reconciliation run (ingest, integrate). Already-merged objects
    /// cannot be split — returns `false` in that case so the caller can
    /// tell the user.
    pub fn assert_distinct(&mut self, a: ObjectId, b: ObjectId) -> bool {
        if self.store.resolve(a) == self.store.resolve(b) {
            return false;
        }
        self.config.recon.cannot_link.push((a, b));
        true
    }

    /// Store statistics (the numbers the demo's status pane shows).
    pub fn stats(&self) -> StoreStats {
        StoreStats::compute(&self.store)
    }

    /// Snapshot the association database to a file.
    pub fn save(&self, path: &std::path::Path) -> Result<(), SnapshotError> {
        self.store.save(path)
    }

    /// Snapshot a *compacted* copy of the association database: merge-alias
    /// slots are dropped and objects renumbered, shrinking the file after
    /// heavy reconciliation. Note that object ids in the snapshot differ
    /// from this session's ids (the store itself is untouched).
    pub fn save_compacted(&self, path: &std::path::Path) -> Result<(), SnapshotError> {
        let (compact, _mapping) = self.store.compacted();
        compact.save(path)
    }

    /// Restore a platform from a snapshot (rebuilds the keyword index).
    /// The returned platform's [`BuildReport`] is marked
    /// [`restored`](BuildReport::restored): empty extraction stats mean
    /// "loaded, not built", not "built from nothing".
    pub fn load(path: &std::path::Path, config: SemexConfig) -> Result<Semex, SnapshotError> {
        let store = Store::load(path)?;
        let index = SearchIndex::build_threaded(&store, config.recon.threads.max(1));
        let indexed = index.doc_count();
        Ok(Semex::assemble(
            store,
            index,
            config,
            BuildReport::restored(indexed),
        ))
    }

    /// Open a durable platform backed by a write-ahead journal directory:
    /// recover the store from snapshot + journal replay (initializing the
    /// directory on first use) and rebuild the keyword index. See
    /// [`DurableSemex`].
    pub fn open_durable(
        dir: impl AsRef<std::path::Path>,
        config: SemexConfig,
    ) -> Result<(DurableSemex, RecoveryReport), JournalError> {
        Semex::open_durable_with(dir, config, JournalConfig::default())
    }

    /// [`Semex::open_durable`] with explicit journal tunables.
    pub fn open_durable_with(
        dir: impl AsRef<std::path::Path>,
        config: SemexConfig,
        journal_config: JournalConfig,
    ) -> Result<(DurableSemex, RecoveryReport), JournalError> {
        let (durable, report) = DurableStore::open(dir, journal_config)?;
        Ok((Semex::assemble_durable(durable, config, &report), report))
    }

    /// [`Semex::open_durable_with`] through an explicit [`JournalIo`]
    /// implementation (fault injection, instrumentation).
    pub fn open_durable_io(
        dir: impl AsRef<std::path::Path>,
        config: SemexConfig,
        journal_config: JournalConfig,
        io: std::sync::Arc<dyn JournalIo>,
    ) -> Result<(DurableSemex, RecoveryReport), JournalError> {
        let (durable, report) = DurableStore::open_with_io(dir, journal_config, io)?;
        Ok((Semex::assemble_durable(durable, config, &report), report))
    }

    fn assemble_durable(
        durable: DurableStore,
        config: SemexConfig,
        report: &RecoveryReport,
    ) -> DurableSemex {
        let (store, journal) = durable.into_parts();
        let restored = Semex::restore_index(&store, &journal, report);
        // `fresh` = the sidecar already matches the recovered position
        // byte-for-byte, so re-writing it would only add an fsync to the
        // cold-open path the sidecar exists to make cheap.
        let fresh = matches!(restored, Some((_, true)));
        let index = restored
            .map(|(index, _)| index)
            .unwrap_or_else(|| SearchIndex::build_threaded(&store, config.recon.threads.max(1)));
        let indexed = index.doc_count();
        let mut semex = Semex::assemble(store, index, config, BuildReport::restored(indexed));
        semex.retain_events = true;
        let durable = DurableSemex { semex, journal };
        if !fresh {
            durable.refresh_index_sidecar();
        }
        durable
    }

    /// Try to restore the keyword index from the epoch's binary sidecar
    /// instead of rebuilding it from the store. The sidecar is *advisory*:
    /// it is used only when intact (CRC-verified) and stamped inside the
    /// recovered journal position — at `(epoch, seq)` with `seq` on the
    /// replayed prefix — and the journal tail past its seq is folded in
    /// with the same delta path live commits use (equivalence-tested
    /// against a scratch build). Anything else returns `None` and the
    /// caller rebuilds.
    fn restore_index(
        store: &Store,
        journal: &Journal,
        report: &RecoveryReport,
    ) -> Option<(SearchIndex, bool)> {
        if journal.config().snapshot_format != SnapshotFormat::Binary {
            // The JSON gate keeps the original full-rebuild path.
            return None;
        }
        let bytes = journal.read_index_sidecar().ok()??;
        let sidecar = SearchIndex::from_sidecar(&bytes).ok()?;
        if sidecar.epoch != report.epoch || sidecar.seq < report.base_seq {
            return None;
        }
        let already_folded = usize::try_from(sidecar.seq - report.base_seq).ok()?;
        let tail = report.replayed.get(already_folded..)?;
        let mut index = sidecar.index;
        if !tail.is_empty() {
            index.apply_events(store, tail);
        }
        Some((index, tail.is_empty()))
    }

    /// Put an already-built platform under journal protection: the
    /// directory is initialized with a snapshot of this platform's store
    /// (it must not already hold a journal), and every subsequent mutation
    /// is journaled. See [`DurableSemex`].
    pub fn into_durable(
        mut self,
        dir: impl AsRef<std::path::Path>,
        journal_config: JournalConfig,
    ) -> Result<DurableSemex, JournalError> {
        let dir = dir.as_ref();
        // The initial snapshot captures the store as-is; make sure no
        // recorded-but-unindexed (and thus unjournaled) events stay behind,
        // even when index batching is on.
        self.flush_index();
        let (durable, report) = DurableStore::open_with(dir, journal_config, self.store)?;
        if !report.initialized {
            return Err(JournalError::Invalid {
                dir: dir.to_path_buf(),
                reason: "directory already holds a journal; open it with open_durable instead"
                    .into(),
            });
        }
        let (store, journal) = durable.into_parts();
        self.store = store;
        self.store.enable_events();
        self.retain_events = true;
        self.pending_events.clear();
        let durable = DurableSemex {
            semex: self,
            journal,
        };
        durable.refresh_index_sidecar();
        Ok(durable)
    }
}

/// A [`Semex`] platform whose store mutations are journaled to disk.
///
/// Dereferences to [`Semex`], so every query and mutation API is available
/// directly. Mutations (ingest, integrate, assert-same feedback, …) are
/// buffered as store events; call [`commit`](DurableSemex::commit) to make
/// them durable — after a crash, [`Semex::open_durable`] recovers exactly
/// the committed state. [`compact`](DurableSemex::compact) folds the
/// journal into a fresh snapshot when replay gets long.
pub struct DurableSemex {
    semex: Semex,
    journal: Journal,
}

impl fmt::Debug for DurableSemex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DurableSemex")
            .field("semex", &self.semex)
            .field("journal_dir", &self.journal.dir())
            .field("epoch", &self.journal.epoch())
            .field(
                "pending_events",
                &(self.semex.pending_events.len() + self.semex.store.pending_events()),
            )
            .finish()
    }
}

impl std::ops::Deref for DurableSemex {
    type Target = Semex;

    fn deref(&self) -> &Semex {
        &self.semex
    }
}

impl std::ops::DerefMut for DurableSemex {
    fn deref_mut(&mut self) -> &mut Semex {
        &mut self.semex
    }
}

impl DurableSemex {
    /// The underlying journal.
    pub fn journal(&self) -> &Journal {
        &self.journal
    }

    /// Store events buffered since the last commit: those already folded
    /// into the index plus any the store recorded since.
    pub fn pending_events(&self) -> usize {
        self.semex.pending_events.len() + self.semex.store.pending_events()
    }

    /// Append all buffered mutation events to the journal and fsync.
    /// Returns the number of events made durable. On failure the events are
    /// kept buffered (the index already reflects them), so a retry commits
    /// them. Transient failures were already retried inside the journal; a
    /// permanent failure (full disk, wedged log) additionally puts the
    /// platform into degraded read-only mode — see
    /// [`DurableSemex::try_recover_journal`].
    pub fn commit(&mut self) -> Result<usize, JournalError> {
        // Force a drain even under index batching: commit is the batch
        // boundary of the batched write path, and this is the single
        // `apply_events` call its mutations cost.
        self.semex.flush_index();
        let events = std::mem::take(&mut self.semex.pending_events);
        match self.journal.append_commit(&events) {
            Ok(n) => Ok(n),
            Err(e) => {
                self.semex.pending_events = events;
                if !e.is_transient() {
                    self.semex.degraded = Some(e.to_string());
                }
                Err(e)
            }
        }
    }

    /// Attempt to leave degraded read-only mode after the underlying
    /// condition (full disk, I/O failure) has been fixed: re-open the
    /// journal in place — repairing any damaged or un-sealed tail — then
    /// make the buffered mutation backlog durable again. On success the
    /// platform accepts mutations again; returns the number of backlog
    /// events committed. On failure the platform stays degraded, with the
    /// backlog still buffered, and the call can simply be retried.
    ///
    /// Also callable on a healthy platform, where it is just a reopen plus
    /// commit.
    pub fn try_recover_journal(&mut self) -> Result<usize, JournalError> {
        self.semex.flush_index();
        let durable_seq = self.journal.next_seq();
        self.journal.reopen()?;
        let mut events = std::mem::take(&mut self.semex.pending_events);
        if self.journal.next_seq() > durable_seq {
            // The failed commit actually reached the disk in full — only its
            // acknowledgment was lost — and recovery just replayed it.
            // Re-appending the backlog would duplicate those events.
            events.clear();
        }
        match self.journal.append_commit(&events) {
            Ok(n) => {
                self.semex.degraded = None;
                Ok(n)
            }
            Err(e) => {
                self.semex.pending_events = events;
                if !e.is_transient() {
                    self.semex.degraded = Some(e.to_string());
                }
                Err(e)
            }
        }
    }

    /// Apply one sealed commit batch shipped from a replication primary:
    /// journal it first (a follower's acknowledgment must never run ahead
    /// of its own durability), then fold the events into the store and
    /// the keyword index. Returns the new durable head — the journal's
    /// next sequence number, which is the epoch the batch is acked at.
    ///
    /// The facade must have no local mutations buffered: a follower that
    /// wrote locally has diverged from the primary, and interleaving its
    /// events with shipped ones would corrupt both histories. Such a call
    /// is refused with [`JournalError::Invalid`] and nothing is applied.
    /// An event that fails to apply after journaling is logical
    /// divergence; the platform degrades to read-only.
    pub fn apply_replicated(&mut self, events: &[StoreEvent]) -> Result<u64, JournalError> {
        if let Some(cause) = &self.semex.degraded {
            return Err(JournalError::Invalid {
                dir: self.journal.dir().to_path_buf(),
                reason: format!("follower is degraded: {cause}"),
            });
        }
        if self.semex.store.pending_events() > 0 || !self.semex.pending_events.is_empty() {
            return Err(JournalError::Invalid {
                dir: self.journal.dir().to_path_buf(),
                reason: "follower has local uncommitted mutations; it has diverged \
                         from the primary"
                    .into(),
            });
        }
        self.journal.append_commit(events)?;
        for event in events {
            if let Err(e) = self.semex.store.apply_event(event) {
                // The journal already sealed the batch but the store
                // cannot represent it: logical divergence. Degrade —
                // serving reads of a half-applied batch is worse than
                // refusing writes.
                let reason = format!("replicated event failed to apply: {e}");
                self.semex.degraded = Some(reason.clone());
                return Err(JournalError::Invalid {
                    dir: self.journal.dir().to_path_buf(),
                    reason,
                });
            }
        }
        self.semex.index.apply_events(&self.semex.store, events);
        // `apply_event` replays outside the recorder, so nothing is
        // buffered — the batch is fully folded and fully durable.
        Ok(self.journal.next_seq())
    }

    /// Commit, then fold the whole journal into a new snapshot and delete
    /// the old epoch's files. Under the binary snapshot format the keyword
    /// index is also persisted as the new epoch's sidecar, so the next
    /// open skips the rebuild.
    pub fn compact(&mut self) -> Result<CompactionReport, JournalError> {
        self.commit()?;
        let report = self.journal.compact(&self.semex.store)?;
        self.refresh_index_sidecar();
        Ok(report)
    }

    /// Persist the current keyword index as the epoch's binary sidecar.
    /// Best-effort and binary-format only: the sidecar is advisory (any
    /// damage just costs the next open a rebuild), so failures are
    /// swallowed rather than failing the commit path that triggered it.
    fn refresh_index_sidecar(&self) {
        if self.journal.config().snapshot_format != SnapshotFormat::Binary {
            return;
        }
        // Stamp the position the index actually reflects. The index has
        // folded every journaled event in (callers flush first), so that
        // is the journal's next sequence number.
        let bytes = self
            .semex
            .index
            .to_sidecar(self.journal.epoch(), self.journal.next_seq());
        self.journal.write_index_sidecar(&bytes).ok();
    }

    /// Detach the platform from its journal (for read-only use of a
    /// recovered space). Uncommitted events are lost; the journal files
    /// stay valid on disk.
    pub fn into_inner(self) -> Semex {
        self.semex
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SemexBuilder;
    use semex_model::names::class;

    fn demo() -> Semex {
        SemexBuilder::new()
            .add_bibtex(
                "library",
                "@inproceedings{d5, title={Reference Reconciliation in Complex Spaces}, author={Dong, Xin and Halevy, Alon}, booktitle={SIGMOD}, year=2005}",
            )
            .add_mbox(
                "inbox",
                "From: Xin Dong <luna@cs.example.edu>\nTo: Alon Halevy <alon@cs.example.edu>\nSubject: demo plan\n\nSee you Friday.",
            )
            .build()
            .unwrap()
    }

    #[test]
    fn view_renders_object() {
        let semex = demo();
        let hits = semex.search("class:Person dong", 5);
        assert_eq!(hits.len(), 1);
        let view = semex.view(hits[0].object);
        assert_eq!(view.class, class::PERSON);
        assert!(view.attrs.iter().any(|(a, _)| a == "name"));
        assert!(!view.links.is_empty(), "authored + sender links");
        let text = view.to_string();
        assert!(text.contains("[Person]"));
        assert!(text.contains("-->"));
    }

    #[test]
    fn integrate_csv_end_to_end() {
        let mut semex = demo();
        let c_person = semex.store().model().class(class::PERSON).unwrap();
        let before = semex.store().class_count(c_person);
        let (score, report) = semex
            .integrate(
                "attendees",
                "name,email\nXin Dong,luna@cs.example.edu\nCarol Reyes,carol@z.net\n",
            )
            .unwrap()
            .unwrap();
        assert!(score > 0.5);
        assert_eq!(report.created, 2);
        assert_eq!(report.merged_into_existing, 1);
        assert_eq!(semex.store().class_count(c_person), before + 1);
        // The new person is searchable immediately.
        assert_eq!(semex.search("carol", 5).len(), 1);
    }

    #[test]
    fn integrate_rejects_hopeless_tables() {
        let mut semex = demo();
        assert!(semex
            .integrate("junk", "qty,sku\n1,AB\n")
            .unwrap()
            .is_none());
        assert!(semex.integrate("junk", "not a csv").unwrap().is_none());
    }

    #[test]
    fn compacted_snapshot_is_smaller_and_equivalent() {
        let semex = demo();
        let dir = std::env::temp_dir().join(format!("semex-compact-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let full = dir.join("full.json");
        let compact = dir.join("compact.json");
        semex.save(&full).unwrap();
        semex.save_compacted(&compact).unwrap();
        let full_len = std::fs::metadata(&full).unwrap().len();
        let compact_len = std::fs::metadata(&compact).unwrap().len();
        assert!(compact_len < full_len, "{compact_len} < {full_len}");
        let restored = Semex::load(&compact, SemexConfig::default()).unwrap();
        assert_eq!(
            restored.store().object_count(),
            semex.store().object_count()
        );
        assert_eq!(restored.store().alias_count(), 0);
        assert_eq!(
            restored.search("reconciliation", 5).len(),
            semex.search("reconciliation", 5).len()
        );
        std::fs::remove_file(&full).ok();
        std::fs::remove_file(&compact).ok();
    }

    #[test]
    fn snapshot_roundtrip() {
        let semex = demo();
        let dir = std::env::temp_dir().join(format!("semex-core-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snapshot.json");
        semex.save(&path).unwrap();
        let restored = Semex::load(&path, SemexConfig::default()).unwrap();
        assert_eq!(
            restored.store().object_count(),
            semex.store().object_count()
        );
        assert_eq!(restored.search("reconciliation", 5).len(), 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn restored_platform_reports_itself_as_restored() {
        let semex = demo();
        assert!(!semex.report().restored, "a built platform is not restored");
        let dir = std::env::temp_dir().join(format!("semex-restored-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snapshot.json");
        semex.save(&path).unwrap();
        let restored = Semex::load(&path, SemexConfig::default()).unwrap();
        assert!(restored.report().restored);
        assert!(restored.report().extraction.is_empty());
        assert_eq!(restored.report().indexed, semex.report().indexed);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn durable_platform_survives_reopen() {
        let dir = std::env::temp_dir().join(format!("semex-durable-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let journal_cfg = JournalConfig {
            fsync: false,
            ..JournalConfig::default()
        };
        let (mut durable, report) =
            Semex::open_durable_with(&dir, SemexConfig::default(), journal_cfg.clone()).unwrap();
        assert!(report.initialized);
        durable
            .ingest(crate::SourceSpec::Mbox {
                name: "inbox".into(),
                content: "From: Xin Dong <luna@cs.example.edu>\nTo: alon@cs.example.edu\nSubject: demo plan\n\nhi".into(),
            })
            .unwrap();
        let committed = durable.commit().unwrap();
        assert!(committed > 0);
        let objects = durable.store().object_count();
        assert_eq!(durable.search("demo", 5).len(), 1);
        drop(durable);

        let (reopened, report) =
            Semex::open_durable_with(&dir, SemexConfig::default(), journal_cfg).unwrap();
        assert!(!report.initialized);
        assert!(report.damage.is_none(), "{report:?}");
        assert_eq!(reopened.store().object_count(), objects);
        assert!(reopened.report().restored);
        // The keyword index is rebuilt over the recovered store.
        assert_eq!(reopened.search("demo", 5).len(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn into_durable_adopts_a_built_platform() {
        let dir = std::env::temp_dir().join(format!("semex-adopt-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let journal_cfg = JournalConfig {
            fsync: false,
            ..JournalConfig::default()
        };
        let built = demo();
        let objects = built.store().object_count();
        let durable = built.into_durable(&dir, journal_cfg.clone()).unwrap();
        assert_eq!(durable.store().object_count(), objects);
        drop(durable);

        // The built state was snapshotted: a plain reopen recovers it.
        let (reopened, _) =
            Semex::open_durable_with(&dir, SemexConfig::default(), journal_cfg.clone()).unwrap();
        assert_eq!(reopened.store().object_count(), objects);
        assert_eq!(reopened.search("reconciliation", 5).len(), 1);
        drop(reopened);

        // Adopting into a directory that already holds a journal is refused.
        assert!(demo().into_durable(&dir, journal_cfg).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn permanent_journal_failure_degrades_to_read_only() {
        use semex_journal::{FaultIo, FaultPlan};
        let dir = std::env::temp_dir().join(format!("semex-degraded-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let journal_cfg = JournalConfig {
            retry_backoff: std::time::Duration::ZERO,
            ..JournalConfig::default()
        };
        let io = FaultIo::new(FaultPlan::None);
        let (mut durable, report) = Semex::open_durable_io(
            &dir,
            SemexConfig::default(),
            journal_cfg.clone(),
            std::sync::Arc::new(io.clone()),
        )
        .unwrap();
        assert!(report.initialized);
        durable
            .ingest(crate::SourceSpec::Mbox {
                name: "inbox".into(),
                content: "From: Xin Dong <luna@cs.example.edu>\nTo: alon@cs.example.edu\nSubject: kickoff\n\nhi".into(),
            })
            .unwrap();
        durable.commit().unwrap();

        // More mutations land in memory, then the disk fills mid-commit.
        durable
            .ingest(crate::SourceSpec::Mbox {
                name: "inbox-2".into(),
                content: "From: Carol Reyes <carol@z.net>\nTo: luna@cs.example.edu\nSubject: zanzibar\n\nbye".into(),
            })
            .unwrap();
        let backlog = durable.pending_events();
        assert!(backlog > 0);
        io.set_plan(FaultPlan::DiskFull { at: io.op_count() });
        let err = durable.commit().unwrap_err();
        assert!(!err.is_transient(), "ENOSPC is permanent: {err}");
        assert!(durable.journal().is_wedged(), "failed rollback wedges");
        assert!(durable.degraded().is_some(), "platform must degrade");
        assert_eq!(durable.pending_events(), backlog, "backlog preserved");

        // Reads are still served from the in-memory state, un-durable
        // mutations included.
        assert_eq!(durable.search("kickoff", 5).len(), 1);
        assert_eq!(durable.search("zanzibar", 5).len(), 1);
        assert!(!durable
            .view(durable.search("carol", 1)[0].object)
            .attrs
            .is_empty());

        // Every mutating path is rejected with SemexError::Degraded.
        let spec = crate::SourceSpec::Mbox {
            name: "inbox-3".into(),
            content: "From: a@b.c\nSubject: x\n\nx".into(),
        };
        match durable.ingest(spec) {
            Err(crate::SemexError::Degraded { .. }) => {}
            other => panic!("ingest while degraded: {other:?}"),
        }
        match durable.integrate("t", "name,email\nA,a@b.c\n") {
            Err(crate::SemexError::Degraded { .. }) => {}
            other => panic!("integrate while degraded: {other:?}"),
        }
        match durable.assert_same(ObjectId(0), ObjectId(1)) {
            Err(crate::SemexError::Degraded { .. }) => {}
            other => panic!("assert_same while degraded: {other:?}"),
        }

        // While the disk is still full, recovery fails and the platform
        // stays degraded with the backlog intact.
        assert!(durable.try_recover_journal().is_err());
        assert!(durable.degraded().is_some());
        assert_eq!(durable.pending_events(), backlog);

        // Space frees up: recovery repairs the journal, flushes the backlog
        // and lifts the degradation.
        io.clear_faults();
        let flushed = durable.try_recover_journal().unwrap();
        assert_eq!(flushed, backlog);
        assert!(durable.degraded().is_none());
        assert_eq!(durable.pending_events(), 0);

        // Mutations are accepted and journaled again.
        durable
            .ingest(crate::SourceSpec::Mbox {
                name: "inbox-3".into(),
                content: "From: a@b.c\nSubject: quetzal\n\nx".into(),
            })
            .unwrap();
        durable.commit().unwrap();
        drop(durable);

        // A fresh recovery sees every commit, including the flushed backlog.
        let (reopened, report) =
            Semex::open_durable_with(&dir, SemexConfig::default(), journal_cfg).unwrap();
        assert!(report.damage.is_none(), "{report:?}");
        for q in ["kickoff", "zanzibar", "quetzal"] {
            assert_eq!(reopened.search(q, 5).len(), 1, "{q}");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn ingest_grows_and_reconciles() {
        let mut semex = demo();
        let c_person = semex.store().model().class(class::PERSON).unwrap();
        let before = semex.store().class_count(c_person);
        let stats = semex
            .ingest(crate::SourceSpec::Mbox {
                name: "new-mail".into(),
                content: "From: Xin Dong <luna@cs.example.edu>\nTo: Carol Reyes <carol@z.net>\nSubject: welcome\n\nhi".into(),
            })
            .unwrap();
        assert_eq!(stats.records, 1);
        // Xin Dong reconciles into the existing object; Carol is new.
        assert_eq!(semex.store().class_count(c_person), before + 1);
        assert_eq!(semex.search("carol", 3).len(), 1, "index refreshed");
        // Bad input surfaces as an error with the source name.
        let err = semex
            .ingest(crate::SourceSpec::Bibtex {
                name: "broken".into(),
                content: "@article{x, title={oops".into(),
            })
            .unwrap_err();
        assert!(err.to_string().contains("broken"));
    }

    #[test]
    fn explain_groups_facts_by_source() {
        let semex = demo();
        let dong = semex.search("class:Person dong", 1)[0].object;
        let facts = semex.explain(dong);
        assert!(!facts.is_empty());
        let sources: std::collections::HashSet<&str> =
            facts.iter().map(|(s, _)| s.as_str()).collect();
        assert!(sources.contains("library"), "{sources:?}");
        assert!(sources.contains("inbox"), "{sources:?}");
        assert!(facts.iter().any(|(_, f)| f.contains("AuthoredBy")));
        assert!(facts.iter().any(|(_, f)| f.contains("Sender")));
    }

    #[test]
    fn feedback_constraints_stick() {
        let mut semex = demo();
        // Assert the reconciled Dong and Halevy are the same (a wrong but
        // legal user action): they merge and the constraint persists.
        let dong = semex.search("class:Person dong", 1)[0].object;
        let halevy = semex.search("class:Person halevy", 1)[0].object;
        semex.assert_same(dong, halevy).unwrap();
        assert_eq!(semex.store().resolve(dong), semex.store().resolve(halevy));
        assert!(!semex.assert_distinct(dong, halevy), "cannot split a merge");

        // A cannot-link on distinct objects survives future ingests.
        let c_person = semex.store().model().class(class::PERSON).unwrap();
        let objs: Vec<_> = semex.store().objects_of_class(c_person).take(2).collect();
        if objs.len() == 2 {
            assert!(semex.assert_distinct(objs[0], objs[1]));
            assert_eq!(semex.config().recon.cannot_link.len(), 1);
        }
    }

    #[test]
    fn incremental_refresh_matches_full_rebuild() {
        let mut semex = demo();
        semex
            .integrate(
                "attendees",
                "name,email\nXin Dong,luna@cs.example.edu\nCarol Reyes,carol@z.net\n",
            )
            .unwrap()
            .unwrap();
        semex
            .ingest(crate::SourceSpec::Mbox {
                name: "new-mail".into(),
                content: "From: Carol Reyes <carol@z.net>\nTo: luna@cs.example.edu\nSubject: thanks\n\nbye".into(),
            })
            .unwrap();
        let dong = semex.search("class:Person dong", 1)[0].object;
        let halevy = semex.search("class:Person halevy", 1)[0].object;
        semex.assert_same(dong, halevy).unwrap();
        // Every refresh site above was incremental; the index must still be
        // indistinguishable from a from-scratch build.
        let rebuilt = SearchIndex::build(semex.store());
        assert_eq!(semex.index().doc_count(), rebuilt.doc_count());
        assert_eq!(semex.index().avg_doc_len(), rebuilt.avg_doc_len());
        for q in [
            "carol",
            "reconciliation demo",
            "class:Person dong",
            "thanks",
        ] {
            assert_eq!(
                semex.index().search_str(semex.store(), q, 10),
                rebuilt.search_str(semex.store(), q, 10),
                "{q}"
            );
        }
        // Pruned and exhaustive agree through the facade too.
        assert_eq!(
            semex.search("reconciliation demo", 5),
            semex.search_exhaustive("reconciliation demo", 5)
        );
    }

    #[test]
    fn batched_mutations_refresh_index_once() {
        let mut semex = demo();
        let base = semex.index().apply_calls();
        semex.set_index_batching(true);
        for (i, token) in ["quokka", "axolotl", "pangolin"].iter().enumerate() {
            semex
                .ingest(crate::SourceSpec::Mbox {
                    name: format!("batch-{i}"),
                    content: format!("From: w{i}@batch.example\nSubject: {token}\n\nbody {token}"),
                })
                .unwrap();
        }
        assert_eq!(
            semex.index().apply_calls(),
            base,
            "no per-mutation index deltas while batching"
        );
        assert!(semex.store().pending_events() > 0, "events stay buffered");
        semex.flush_index();
        assert_eq!(
            semex.index().apply_calls(),
            base + 1,
            "one drain per published batch, not one per mutation"
        );
        assert_eq!(semex.store().pending_events(), 0);
        for token in ["quokka", "axolotl", "pangolin"] {
            assert_eq!(semex.search(token, 5).len(), 1, "{token}");
        }
        // The batched deltas leave the index indistinguishable from a
        // from-scratch build.
        let rebuilt = SearchIndex::build(semex.store());
        assert_eq!(semex.index().doc_count(), rebuilt.doc_count());
        assert_eq!(semex.index().avg_doc_len(), rebuilt.avg_doc_len());

        // Turning batching off flushes implicitly.
        semex.set_index_batching(true);
        semex
            .ingest(crate::SourceSpec::Mbox {
                name: "batch-4".into(),
                content: "From: w4@batch.example\nSubject: capybara\n\nbody".into(),
            })
            .unwrap();
        semex.set_index_batching(false);
        assert_eq!(semex.index().apply_calls(), base + 2);
        assert_eq!(semex.search("capybara", 5).len(), 1);
    }

    #[test]
    fn snapshot_isolates_reads_from_later_writes() {
        let mut semex = demo();
        let snap = semex.snapshot();
        let before_objects = snap.store().object_count();
        assert_eq!(snap.search("reconciliation", 5).len(), 1);
        semex
            .ingest(crate::SourceSpec::Mbox {
                name: "later".into(),
                content: "From: new@person.example\nSubject: wombat\n\nhi".into(),
            })
            .unwrap();
        // The live platform sees the write; the snapshot never does.
        assert_eq!(semex.search("wombat", 5).len(), 1);
        assert!(snap.search("wombat", 5).is_empty());
        assert_eq!(snap.store().object_count(), before_objects);
        // Snapshot views and explanations match the live ones for
        // pre-existing objects.
        let dong = snap.search("class:Person dong", 1)[0].object;
        assert_eq!(snap.view(dong), semex.view(dong));
        assert_eq!(snap.explain(dong), semex.explain(dong));
        // A snapshot taken mid-batch folds the buffered events into its
        // own index copy without draining the master's buffer.
        semex.set_index_batching(true);
        semex
            .ingest(crate::SourceSpec::Mbox {
                name: "mid".into(),
                content: "From: mid@person.example\nSubject: numbat\n\nhi".into(),
            })
            .unwrap();
        let pending = semex.store().pending_events();
        assert!(pending > 0);
        let mid = semex.snapshot();
        assert_eq!(mid.search("numbat", 5).len(), 1, "snapshot is current");
        assert_eq!(semex.store().pending_events(), pending, "not drained");
        semex.set_index_batching(false);
    }

    #[test]
    fn stats_reflect_reconciled_store() {
        let semex = demo();
        let stats = semex.stats();
        assert!(stats.class(class::PERSON) >= 2);
        assert!(stats.aliases > 0, "reconciliation merged duplicates");
    }
}
