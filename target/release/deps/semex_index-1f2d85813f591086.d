/root/repo/target/release/deps/semex_index-1f2d85813f591086.d: crates/index/src/lib.rs crates/index/src/bm25.rs crates/index/src/dict.rs crates/index/src/postings.rs crates/index/src/query.rs crates/index/src/search.rs crates/index/src/tokenizer.rs crates/index/src/topk.rs

/root/repo/target/release/deps/semex_index-1f2d85813f591086: crates/index/src/lib.rs crates/index/src/bm25.rs crates/index/src/dict.rs crates/index/src/postings.rs crates/index/src/query.rs crates/index/src/search.rs crates/index/src/tokenizer.rs crates/index/src/topk.rs

crates/index/src/lib.rs:
crates/index/src/bm25.rs:
crates/index/src/dict.rs:
crates/index/src/postings.rs:
crates/index/src/query.rs:
crates/index/src/search.rs:
crates/index/src/tokenizer.rs:
crates/index/src/topk.rs:
