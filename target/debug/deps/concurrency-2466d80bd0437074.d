/root/repo/target/debug/deps/concurrency-2466d80bd0437074.d: crates/serve/tests/concurrency.rs

/root/repo/target/debug/deps/concurrency-2466d80bd0437074: crates/serve/tests/concurrency.rs

crates/serve/tests/concurrency.rs:
