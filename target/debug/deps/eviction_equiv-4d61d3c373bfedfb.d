/root/repo/target/debug/deps/eviction_equiv-4d61d3c373bfedfb.d: crates/serve/tests/eviction_equiv.rs

/root/repo/target/debug/deps/libeviction_equiv-4d61d3c373bfedfb.rmeta: crates/serve/tests/eviction_equiv.rs

crates/serve/tests/eviction_equiv.rs:
