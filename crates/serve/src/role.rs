//! Replication roles for a serving process: primary or follower.
//!
//! The serve stack itself stays role-agnostic — it asks two small hooks
//! for the answers that differ between roles. A [`ReplicaRole`] gates the
//! request path (a follower refuses writes with `not_primary`, refuses
//! reads beyond its configured lag bound with `stale_replica`, and turns
//! a `promote` request into a wait-for-durable-prefix handshake). A
//! [`CommitTap`] hooks the write path's commit boundary on a primary, so
//! the replication hub learns of every durable head advance *before* the
//! client ack is released — which is what makes "no client-acked write is
//! ever lost" hold across failover: an ack only exists once the
//! synchronous follower set has the batch.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

/// The write path's commit-boundary hook on a replicating primary.
///
/// Called after a batch's journal commit succeeds and before any client
/// ack is sent. The implementation (the replication hub) wakes its
/// per-follower senders and blocks until the synchronous follower set has
/// acknowledged `head` (or a policy timeout evicts a dead follower from
/// the set). An `Err` withholds the batch's client acks: the writes are
/// durable locally but were never acknowledged, so losing them in a
/// failover breaks no promise.
pub trait CommitTap: Send + Sync {
    /// The primary's durable head advanced to `head`; return once the
    /// ack-gating replication policy is satisfied.
    fn on_commit(&self, head: u64) -> Result<(), String>;
}

/// Shared role state for one serving process.
///
/// A process starts as either primary (no `ReplicaRole` at all, the
/// common case) or follower ([`ReplicaRole::follower`]); a follower
/// becomes primary exactly once, through [`ReplicaRole::promote`]. The
/// flag is monotonic — there is deliberately no way back to follower.
pub struct ReplicaRole {
    /// True while following; flipped (once) by promotion.
    follower: AtomicBool,
    /// Most events a served read may trail the primary's announced head.
    max_lag: u64,
    /// The primary's durable head as last announced on the stream.
    primary_head: AtomicU64,
    /// The promotion handshake: stop the puller, finish applying every
    /// frame already received, return the final durable epoch. Installed
    /// by the replication client once it is running; consumed by the
    /// first promote.
    #[allow(clippy::type_complexity)]
    promote_hook: Mutex<Option<Box<dyn FnOnce() -> u64 + Send>>>,
}

impl std::fmt::Debug for ReplicaRole {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReplicaRole")
            .field("follower", &self.is_follower())
            .field("max_lag", &self.max_lag)
            .field("primary_head", &self.primary_head())
            .finish_non_exhaustive()
    }
}

impl ReplicaRole {
    /// A follower role with the given read-lag bound.
    pub fn follower(max_lag: u64) -> ReplicaRole {
        ReplicaRole {
            follower: AtomicBool::new(true),
            max_lag,
            primary_head: AtomicU64::new(0),
            promote_hook: Mutex::new(None),
        }
    }

    /// True while this process is a follower.
    pub fn is_follower(&self) -> bool {
        self.follower.load(Ordering::SeqCst)
    }

    /// The configured read-lag bound.
    pub fn max_lag(&self) -> u64 {
        self.max_lag
    }

    /// Record the primary's durable head, as announced on a stream frame.
    /// Monotonic: a reconnect announcing an older head (the primary
    /// restarted and is re-syncing) never makes the lag look smaller.
    pub fn note_primary_head(&self, head: u64) {
        self.primary_head.fetch_max(head, Ordering::SeqCst);
    }

    /// The primary's durable head as last announced.
    pub fn primary_head(&self) -> u64 {
        self.primary_head.load(Ordering::SeqCst)
    }

    /// How many events a snapshot at `epoch` trails the announced head.
    pub fn lag(&self, epoch: u64) -> u64 {
        self.primary_head().saturating_sub(epoch)
    }

    /// Install the promotion handshake (the replication client does this
    /// once its pull loop is running).
    pub fn set_promote_hook(&self, hook: Box<dyn FnOnce() -> u64 + Send>) {
        *self
            .promote_hook
            .lock()
            .expect("promote hook lock poisoned") = Some(hook);
    }

    /// Promote this process: run the wait-for-durable-prefix handshake
    /// (stop pulling, apply everything already received) and start
    /// accepting writes. Returns the final epoch when this call performed
    /// the promotion, `None` when the process was already primary (the
    /// caller answers with its current epoch — promotion is idempotent).
    pub fn promote(&self) -> Option<u64> {
        let hook = self
            .promote_hook
            .lock()
            .expect("promote hook lock poisoned")
            .take();
        // Flip after taking the hook: a concurrent second promote sees
        // `None` and reports idempotent success, never a double drain.
        let epoch = hook.map(|h| h());
        self.follower.store(false, Ordering::SeqCst);
        epoch
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lag_tracks_monotonic_head() {
        let role = ReplicaRole::follower(8);
        assert_eq!(role.lag(0), 0);
        role.note_primary_head(100);
        role.note_primary_head(40); // stale announcement must not rewind
        assert_eq!(role.primary_head(), 100);
        assert_eq!(role.lag(90), 10);
        assert_eq!(role.lag(120), 0);
    }

    #[test]
    fn promote_runs_hook_once_and_flips_role() {
        let role = ReplicaRole::follower(0);
        role.set_promote_hook(Box::new(|| 77));
        assert!(role.is_follower());
        assert_eq!(role.promote(), Some(77));
        assert!(!role.is_follower());
        // Second promotion is idempotent: no hook left, still primary.
        assert_eq!(role.promote(), None);
        assert!(!role.is_follower());
    }

    #[test]
    fn promote_without_hook_still_becomes_primary() {
        let role = ReplicaRole::follower(0);
        assert_eq!(role.promote(), None);
        assert!(!role.is_follower());
    }
}
