/root/repo/target/debug/deps/shutdown-36d1d754b578a2cd.d: crates/serve/tests/shutdown.rs

/root/repo/target/debug/deps/shutdown-36d1d754b578a2cd: crates/serve/tests/shutdown.rs

crates/serve/tests/shutdown.rs:
