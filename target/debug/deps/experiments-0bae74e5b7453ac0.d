/root/repo/target/debug/deps/experiments-0bae74e5b7453ac0.d: crates/bench/src/bin/experiments.rs Cargo.toml

/root/repo/target/debug/deps/libexperiments-0bae74e5b7453ac0.rmeta: crates/bench/src/bin/experiments.rs Cargo.toml

crates/bench/src/bin/experiments.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
