/root/repo/target/debug/deps/durability-e503899031bb8dd3.d: tests/durability.rs

/root/repo/target/debug/deps/durability-e503899031bb8dd3: tests/durability.rs

tests/durability.rs:
