/root/repo/target/debug/deps/search_quality-dcbd995417a2bfe6.d: tests/search_quality.rs tests/common/mod.rs

/root/repo/target/debug/deps/search_quality-dcbd995417a2bfe6: tests/search_quality.rs tests/common/mod.rs

tests/search_quality.rs:
tests/common/mod.rs:
