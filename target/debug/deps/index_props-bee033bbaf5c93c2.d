/root/repo/target/debug/deps/index_props-bee033bbaf5c93c2.d: crates/index/tests/index_props.rs

/root/repo/target/debug/deps/index_props-bee033bbaf5c93c2: crates/index/tests/index_props.rs

crates/index/tests/index_props.rs:
