//! Offline stand-in for `serde`.
//!
//! The build environment has no network and no crates.io cache, so this
//! workspace vendors the handful of external crates it relies on as minimal
//! reimplementations of exactly the API surface the workspace uses. This
//! one covers `serde`: the `Serialize`/`Deserialize` traits, a
//! self-describing [`Content`] tree as the data model (instead of serde's
//! visitor machinery), and the derive macros re-exported from
//! `serde_derive`.
//!
//! Unlike real serde, maps serialize with their keys **sorted**, so two
//! structurally equal values always produce byte-identical encodings —
//! a property the eviction-equivalence tests lean on.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::HashMap;
use std::fmt;

/// A serialized value: the data model both traits speak.
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// An unsigned integer.
    U64(u64),
    /// A signed (negative) integer.
    I64(i64),
    /// A floating-point number.
    F64(f64),
    /// A string.
    Str(String),
    /// A sequence.
    Seq(Vec<Content>),
    /// A map with string keys, in insertion order.
    Map(Vec<(String, Content)>),
}

impl Content {
    /// The entries if this is a map.
    pub fn as_map(&self) -> Option<&[(String, Content)]> {
        match self {
            Content::Map(m) => Some(m),
            _ => None,
        }
    }

    /// The elements if this is a sequence.
    pub fn as_seq(&self) -> Option<&[Content]> {
        match self {
            Content::Seq(s) => Some(s),
            _ => None,
        }
    }

    /// The text if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Content::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an unsigned integer, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Content::U64(v) => Some(v),
            Content::I64(v) if v >= 0 => Some(v as u64),
            _ => None,
        }
    }

    /// The value as a signed integer, if it fits.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Content::I64(v) => Some(v),
            Content::U64(v) => i64::try_from(v).ok(),
            _ => None,
        }
    }

    /// The value as a float (any numeric representation).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Content::F64(v) => Some(v),
            Content::U64(v) => Some(v as f64),
            Content::I64(v) => Some(v as f64),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Content::Bool(b) => Some(b),
            _ => None,
        }
    }
}

/// A (de)serialization error: a plain message.
#[derive(Debug, Clone)]
pub struct Error(pub String);

impl Error {
    /// An error from a message.
    pub fn custom(msg: impl fmt::Display) -> Error {
        Error(msg.to_string())
    }

    /// A type-mismatch error.
    pub fn expected(what: &str, got: &Content) -> Error {
        let kind = match got {
            Content::Null => "null",
            Content::Bool(_) => "bool",
            Content::U64(_) | Content::I64(_) => "integer",
            Content::F64(_) => "float",
            Content::Str(_) => "string",
            Content::Seq(_) => "sequence",
            Content::Map(_) => "map",
        };
        Error(format!("expected {what}, found {kind}"))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Look up a struct field in a serialized map.
pub fn field<'a>(map: &'a [(String, Content)], key: &str) -> Result<&'a Content, Error> {
    map.iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .ok_or_else(|| Error(format!("missing field `{key}`")))
}

/// Types that can serialize themselves into a [`Content`] tree.
pub trait Serialize {
    /// Serialize `self`.
    fn to_content(&self) -> Content;
}

/// Types that can reconstruct themselves from a [`Content`] tree.
pub trait Deserialize: Sized {
    /// Deserialize from `content`.
    fn from_content(content: &Content) -> Result<Self, Error>;
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl Serialize for Content {
    fn to_content(&self) -> Content {
        self.clone()
    }
}

impl Deserialize for Content {
    fn from_content(content: &Content) -> Result<Self, Error> {
        Ok(content.clone())
    }
}

impl Serialize for bool {
    fn to_content(&self) -> Content {
        Content::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_content(content: &Content) -> Result<Self, Error> {
        content
            .as_bool()
            .ok_or_else(|| Error::expected("bool", content))
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                Content::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_content(content: &Content) -> Result<Self, Error> {
                let v = content
                    .as_u64()
                    .ok_or_else(|| Error::expected("unsigned integer", content))?;
                <$t>::try_from(v).map_err(|_| Error(format!("integer {v} out of range")))
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                let v = *self as i64;
                if v >= 0 {
                    Content::U64(v as u64)
                } else {
                    Content::I64(v)
                }
            }
        }
        impl Deserialize for $t {
            fn from_content(content: &Content) -> Result<Self, Error> {
                let v = content
                    .as_i64()
                    .ok_or_else(|| Error::expected("integer", content))?;
                <$t>::try_from(v).map_err(|_| Error(format!("integer {v} out of range")))
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_content(&self) -> Content {
        Content::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_content(content: &Content) -> Result<Self, Error> {
        content
            .as_f64()
            .ok_or_else(|| Error::expected("number", content))
    }
}

impl Serialize for f32 {
    fn to_content(&self) -> Content {
        Content::F64(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_content(content: &Content) -> Result<Self, Error> {
        Ok(f64::from_content(content)? as f32)
    }
}

impl Serialize for String {
    fn to_content(&self) -> Content {
        Content::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_content(content: &Content) -> Result<Self, Error> {
        content
            .as_str()
            .map(str::to_string)
            .ok_or_else(|| Error::expected("string", content))
    }
}

impl Serialize for str {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_content(content: &Content) -> Result<Self, Error> {
        let s = content
            .as_str()
            .ok_or_else(|| Error::expected("single-character string", content))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error(format!("expected single character, got {s:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_content(&self) -> Content {
        match self {
            Some(v) => v.to_content(),
            None => Content::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_content(content: &Content) -> Result<Self, Error> {
        match content {
            Content::Null => Ok(None),
            other => T::from_content(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_content(content: &Content) -> Result<Self, Error> {
        content
            .as_seq()
            .ok_or_else(|| Error::expected("sequence", content))?
            .iter()
            .map(T::from_content)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_content(&self) -> Content {
                Content::Seq(vec![$(self.$idx.to_content()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_content(content: &Content) -> Result<Self, Error> {
                let seq = content
                    .as_seq()
                    .ok_or_else(|| Error::expected("tuple sequence", content))?;
                let want = [$($idx),+].len();
                if seq.len() != want {
                    return Err(Error(format!(
                        "expected tuple of {want}, found sequence of {}",
                        seq.len()
                    )));
                }
                Ok(($($name::from_content(&seq[$idx])?,)+))
            }
        }
    )*};
}
impl_tuple! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

impl<V: Serialize, S> Serialize for HashMap<String, V, S> {
    fn to_content(&self) -> Content {
        let mut entries: Vec<(String, Content)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.to_content()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Content::Map(entries)
    }
}

impl<V: Deserialize, S: std::hash::BuildHasher + Default> Deserialize for HashMap<String, V, S> {
    fn from_content(content: &Content) -> Result<Self, Error> {
        content
            .as_map()
            .ok_or_else(|| Error::expected("map", content))?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::from_content(v)?)))
            .collect()
    }
}

// Conversions used by `serde_json::json!` value interpolation.
macro_rules! impl_from_int {
    ($($t:ty),*) => {$(
        impl From<$t> for Content {
            fn from(v: $t) -> Content {
                (&v).to_content()
            }
        }
    )*};
}
impl_from_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64, bool);

impl From<&str> for Content {
    fn from(v: &str) -> Content {
        Content::Str(v.to_string())
    }
}

impl From<String> for Content {
    fn from(v: String) -> Content {
        Content::Str(v)
    }
}

impl From<&String> for Content {
    fn from(v: &String) -> Content {
        Content::Str(v.clone())
    }
}

impl<T: Into<Content>> From<Vec<T>> for Content {
    fn from(v: Vec<T>) -> Content {
        Content::Seq(v.into_iter().map(Into::into).collect())
    }
}

impl<T: Serialize> From<&[T]> for Content {
    fn from(v: &[T]) -> Content {
        Content::Seq(v.iter().map(Serialize::to_content).collect())
    }
}
