/root/repo/target/release/examples/seed_scan-057fe7bf33d8999e.d: examples/seed_scan.rs examples/../tests/common/mod.rs

/root/repo/target/release/examples/seed_scan-057fe7bf33d8999e: examples/seed_scan.rs examples/../tests/common/mod.rs

examples/seed_scan.rs:
examples/../tests/common/mod.rs:
