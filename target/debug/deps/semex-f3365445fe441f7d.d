/root/repo/target/debug/deps/semex-f3365445fe441f7d.d: src/bin/semex.rs

/root/repo/target/debug/deps/semex-f3365445fe441f7d: src/bin/semex.rs

src/bin/semex.rs:
