//! Association (relation) definitions.

use crate::ClassId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of an association type in a [`crate::DomainModel`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct AssocId(pub u16);

impl AssocId {
    /// The dense index of this association type.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for AssocId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// Definition of a directed association type.
///
/// An association instance is a triple `(subject, assoc, object)` where
/// `subject` is an instance of `domain` and `object` an instance of `range`.
/// Every association is navigable in both directions; `inverse_label` names
/// the reverse direction for display (`AuthoredBy` ⇄ `AuthorOf`).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AssocDef {
    /// Unique association name, e.g. `"AuthoredBy"`.
    pub name: String,
    /// Class of the subject.
    pub domain: ClassId,
    /// Class of the object.
    pub range: ClassId,
    /// Human-readable label for the inverse direction.
    pub inverse_label: String,
    /// Whether two subjects sharing an object of this association is evidence
    /// that the subjects are related (used by reconciliation's dependency
    /// graph; e.g. two Publication references sharing a Venue).
    pub recon_evidence: bool,
}

impl AssocDef {
    /// A new association from `domain` to `range`.
    pub fn new(
        name: impl Into<String>,
        domain: ClassId,
        range: ClassId,
        inverse_label: impl Into<String>,
    ) -> Self {
        AssocDef {
            name: name.into(),
            domain,
            range,
            inverse_label: inverse_label.into(),
            recon_evidence: true,
        }
    }

    /// Builder-style: exclude this association from reconciliation evidence
    /// (e.g. `InFolder`, which groups unrelated files).
    pub fn without_recon_evidence(mut self) -> Self {
        self.recon_evidence = false;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_defaults() {
        let d = AssocDef::new("AuthoredBy", ClassId(2), ClassId(0), "AuthorOf");
        assert_eq!(d.domain, ClassId(2));
        assert_eq!(d.range, ClassId(0));
        assert!(d.recon_evidence);
        assert!(!d.clone().without_recon_evidence().recon_evidence);
    }
}
